//! Simulated CPU package and node DRAM devices.
//!
//! These are deliberately simple compared to the GPU: SPH-EXA runs entirely
//! on the GPU, so the host devices mostly idle at a constant activity level —
//! which is exactly the paper's Fig. 5 observation that CPU energy per
//! function is proportional to that function's duration.

use serde::{Deserialize, Serialize};

use crate::spec::{CpuSpec, MemSpec};
use crate::time::SimInstant;
use crate::timeline::PowerTimeline;
use crate::units::Joules;

/// A simulated CPU package (one socket).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuDevice {
    spec: CpuSpec,
    now: SimInstant,
    power_tl: PowerTimeline,
    /// Pinned package frequency in kHz (defaults to the maximum; Slurm's
    /// `--cpu-freq` lowers it).
    freq_khz: u64,
}

impl CpuDevice {
    pub fn new(spec: CpuSpec) -> Self {
        let freq_khz = spec.max_freq_khz;
        CpuDevice {
            spec,
            now: SimInstant::ZERO,
            power_tl: PowerTimeline::new(),
            freq_khz,
        }
    }

    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Current pinned frequency, kHz.
    pub fn frequency_khz(&self) -> u64 {
        self.freq_khz
    }

    /// Pin the package frequency (kHz), clamped to the part's range — the
    /// `--cpu-freq` path.
    pub fn set_frequency_khz(&mut self, khz: u64) {
        self.freq_khz = khz.clamp(self.spec.min_freq_khz, self.spec.max_freq_khz);
    }

    /// Run at `activity` in `[0, 1]` until instant `t`.
    pub fn busy_until(&mut self, t: SimInstant, activity: f64) {
        if t <= self.now {
            return;
        }
        self.power_tl
            .push_until(t, self.spec.power_at(activity, self.freq_khz));
        self.now = t;
    }

    /// Idle until instant `t`.
    pub fn idle_until(&mut self, t: SimInstant) {
        self.busy_until(t, 0.0);
    }

    pub fn power_timeline(&self) -> &PowerTimeline {
        &self.power_tl
    }

    pub fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.power_tl.energy_between(a, b)
    }

    pub fn total_energy(&self) -> Joules {
        self.power_tl.total_energy()
    }
}

/// Node DRAM as a power-drawing device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryDevice {
    spec: MemSpec,
    now: SimInstant,
    power_tl: PowerTimeline,
}

impl MemoryDevice {
    pub fn new(spec: MemSpec) -> Self {
        MemoryDevice {
            spec,
            now: SimInstant::ZERO,
            power_tl: PowerTimeline::new(),
        }
    }

    pub fn spec(&self) -> &MemSpec {
        &self.spec
    }

    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Sustain `activity` access intensity until instant `t`.
    pub fn busy_until(&mut self, t: SimInstant, activity: f64) {
        if t <= self.now {
            return;
        }
        self.power_tl.push_until(t, self.spec.power(activity));
        self.now = t;
    }

    pub fn idle_until(&mut self, t: SimInstant) {
        self.busy_until(t, 0.0);
    }

    pub fn power_timeline(&self) -> &PowerTimeline {
        &self.power_tl
    }

    pub fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.power_tl.energy_between(a, b)
    }

    pub fn total_energy(&self) -> Joules {
        self.power_tl.total_energy()
    }
}

/// Advance a CPU through a span at constant activity, splitting it so later
/// analysis can still see function boundaries in the record.
pub fn drive_constant(cpu: &mut CpuDevice, spans: &[(SimInstant, f64)], end: SimInstant) {
    for &(until, activity) in spans {
        cpu.busy_until(until, activity);
    }
    cpu.idle_until(end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Watts;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn cpu_energy_proportional_to_time_at_constant_activity() {
        let mut cpu = CpuDevice::new(CpuSpec::epyc_7713());
        cpu.busy_until(t(1000), 0.2);
        let half = cpu.energy_between(t(0), t(500));
        let full = cpu.energy_between(t(0), t(1000));
        assert!((full.0 - 2.0 * half.0).abs() < 1e-9);
    }

    #[test]
    fn lower_cpu_frequency_cuts_dynamic_power_quadratically() {
        let spec = CpuSpec::epyc_7713();
        let mut full = CpuDevice::new(spec.clone());
        full.busy_until(t(1000), 0.5);
        let mut slow = CpuDevice::new(spec.clone());
        slow.set_frequency_khz(1_800_000); // the paper's --cpu-freq example
        assert_eq!(slow.frequency_khz(), 1_800_000);
        slow.busy_until(t(1000), 0.5);
        let e_full = full.total_energy().0;
        let e_slow = slow.total_energy().0;
        assert!(e_slow < e_full);
        // Dynamic share scales by (1.8/3.675)^2 ~ 0.24.
        let dyn_full = e_full - spec.idle_power.0;
        let dyn_slow = e_slow - spec.idle_power.0;
        let ratio = dyn_slow / dyn_full;
        assert!(
            (ratio - (1.8f64 / 3.675).powi(2)).abs() < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn cpu_frequency_clamps_to_part_range() {
        let mut cpu = CpuDevice::new(CpuSpec::xeon_6258r());
        cpu.set_frequency_khz(100);
        assert_eq!(cpu.frequency_khz(), 1_200_000);
        cpu.set_frequency_khz(99_000_000);
        assert_eq!(cpu.frequency_khz(), 4_000_000);
    }

    #[test]
    fn cpu_busy_until_is_monotonic() {
        let mut cpu = CpuDevice::new(CpuSpec::epyc_7713());
        cpu.busy_until(t(10), 0.5);
        cpu.busy_until(t(5), 1.0); // no-op: already past
        assert_eq!(cpu.now(), t(10));
    }

    #[test]
    fn memory_idle_draws_refresh_power() {
        let mut mem = MemoryDevice::new(MemSpec::ddr4_512gib());
        mem.idle_until(t(1000));
        let avg = mem.power_timeline().average_power(t(0), t(1000));
        assert_eq!(avg, Watts(35.0));
    }

    #[test]
    fn drive_constant_splits_spans() {
        let mut cpu = CpuDevice::new(CpuSpec::xeon_6258r());
        drive_constant(&mut cpu, &[(t(10), 0.3), (t(20), 0.6)], t(30));
        assert_eq!(cpu.now(), t(30));
        assert!(cpu.energy_between(t(10), t(20)) > cpu.energy_between(t(0), t(10)));
        assert!(cpu.energy_between(t(20), t(30)) < cpu.energy_between(t(10), t(20)));
    }
}
