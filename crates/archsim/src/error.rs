//! Error type for the architecture simulator.

use std::fmt;

use crate::units::MegaHertz;

/// Errors surfaced by the simulator's control plane (the data plane — kernel
/// execution and timeline recording — is infallible by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A hardware specification was internally inconsistent.
    InvalidSpec(String),
    /// A clock request named a frequency the device does not support.
    UnsupportedClock {
        requested: MegaHertz,
        min: MegaHertz,
        max: MegaHertz,
    },
    /// The caller lacks the (simulated) privilege for this operation; mirrors
    /// `NVML_ERROR_NO_PERMISSION`, the "restricted access" problem the paper's
    /// user-level frequency control solves.
    NoPermission(&'static str),
    /// A device index was out of range.
    NoSuchDevice { index: usize, count: usize },
    /// The (simulated) driver failed transiently; mirrors
    /// `NVML_ERROR_UNKNOWN`, the catch-all real NVML returns for exactly the
    /// intermittent clock-set failures the fault injector models. Retryable.
    Transient(&'static str),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidSpec(msg) => write!(f, "invalid hardware spec: {msg}"),
            ArchError::UnsupportedClock {
                requested,
                min,
                max,
            } => write!(
                f,
                "unsupported clock {requested} (device supports {min}..={max})"
            ),
            ArchError::NoPermission(op) => write!(f, "no permission for {op}"),
            ArchError::NoSuchDevice { index, count } => {
                write!(f, "no device at index {index} ({count} present)")
            }
            ArchError::Transient(op) => {
                write!(f, "transient driver error in {op} (retryable)")
            }
        }
    }
}

impl std::error::Error for ArchError {}
