//! Timeline export for external plotting (gnuplot / matplotlib / pandas).
//!
//! Power and frequency timelines are the primary artifacts the simulator
//! produces; these helpers serialize them as plain CSV so the figures can be
//! redrawn outside the terminal.

use std::io::{self, Write};

use crate::gpu::GpuDevice;
use crate::time::{SimDuration, SimInstant};

/// Write a device's power timeline as `start_s,end_s,watts` CSV rows.
pub fn write_power_csv<W: Write>(dev: &GpuDevice, mut out: W) -> io::Result<()> {
    writeln!(out, "start_s,end_s,watts")?;
    for seg in dev.power_timeline().segments() {
        writeln!(
            out,
            "{:.9},{:.9},{:.3}",
            seg.start.as_secs_f64(),
            seg.end.as_secs_f64(),
            seg.power.0
        )?;
    }
    Ok(())
}

/// Write a device's clock trace as `t_s,mhz` CSV rows (change points).
pub fn write_freq_csv<W: Write>(dev: &GpuDevice, mut out: W) -> io::Result<()> {
    writeln!(out, "t_s,mhz")?;
    for &(t, f) in dev.freq_timeline().points() {
        writeln!(out, "{:.9},{}", t.as_secs_f64(), f.0)?;
    }
    Ok(())
}

/// Write a fixed-rate resampling of both timelines as `t_s,watts,mhz` rows —
/// one file a plotting script can consume directly.
pub fn write_sampled_csv<W: Write>(
    dev: &GpuDevice,
    from: SimInstant,
    to: SimInstant,
    period: SimDuration,
    mut out: W,
) -> io::Result<()> {
    writeln!(out, "t_s,watts,mhz")?;
    let mut t = from;
    loop {
        let w = dev.power_timeline().power_at(t);
        let f = dev.freq_timeline().freq_at(t).map_or(0, |m| m.0);
        writeln!(out, "{:.9},{:.3},{}", t.as_secs_f64(), w.0, f)?;
        if t >= to {
            break;
        }
        t += period;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelWorkload;
    use crate::spec::GpuSpec;
    use crate::units::MegaHertz;

    fn busy_device() -> GpuDevice {
        let mut d = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
        d.set_application_clocks(MegaHertz(1410)).expect("pin");
        d.run_region(&KernelWorkload::new("k", 1e12, 1e11));
        d.advance_idle(SimDuration::from_millis(5));
        d.set_application_clocks(MegaHertz(1005)).expect("pin");
        d.run_region(&KernelWorkload::new("k", 1e12, 1e11));
        d
    }

    #[test]
    fn power_csv_covers_every_segment() {
        let d = busy_device();
        let mut buf = Vec::new();
        write_power_csv(&d, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines[0], "start_s,end_s,watts");
        assert_eq!(lines.len() - 1, d.power_timeline().segments().len());
        // Rows are contiguous: each start equals the previous end.
        let mut prev_end: Option<&str> = None;
        for line in &lines[1..] {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 3);
            if let Some(pe) = prev_end {
                assert_eq!(cols[0], pe, "segments must be contiguous");
            }
            prev_end = Some(cols[1]);
        }
    }

    #[test]
    fn freq_csv_records_both_pinned_clocks() {
        let d = busy_device();
        let mut buf = Vec::new();
        write_freq_csv(&d, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert!(text.contains(",1410"));
        assert!(text.contains(",1005"));
    }

    #[test]
    fn sampled_csv_has_fixed_cadence() {
        let d = busy_device();
        let end = d.now();
        let mut buf = Vec::new();
        write_sampled_csv(
            &d,
            SimInstant::ZERO,
            end,
            SimDuration::from_millis(10),
            &mut buf,
        )
        .expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        let rows = text.trim_end().lines().count() - 1;
        let expected = end.as_nanos() / 10_000_000 + 1;
        assert!(
            rows as u64 >= expected,
            "{rows} rows for {expected} samples"
        );
        assert!(text.starts_with("t_s,watts,mhz"));
    }
}
