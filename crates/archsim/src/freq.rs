//! Supported-clock tables and voltage/frequency curves.
//!
//! Mirrors what `nvmlDeviceGetSupportedGraphicsClocks` exposes: a discrete
//! ladder of graphics clocks (A100: 210–1410 MHz in 15 MHz steps) plus a fixed
//! memory clock, and the voltage each clock step requires — the `V(f)` curve
//! that makes down-scaling pay off quadratically in dynamic power.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::units::{MegaHertz, Volts};

/// Discrete ladder of supported graphics clocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockTable {
    min: MegaHertz,
    max: MegaHertz,
    step: u32,
}

impl ClockTable {
    /// Build a table covering `[min, max]` with the given step. `max` must be
    /// reachable from `min` in whole steps.
    pub fn new(min: MegaHertz, max: MegaHertz, step: u32) -> Result<Self, ArchError> {
        if step == 0 {
            return Err(ArchError::InvalidSpec("clock step must be positive".into()));
        }
        if max < min {
            return Err(ArchError::InvalidSpec(format!(
                "clock table max {max} below min {min}"
            )));
        }
        if !(max.0 - min.0).is_multiple_of(step) {
            return Err(ArchError::InvalidSpec(format!(
                "max {max} not reachable from min {min} in steps of {step} MHz"
            )));
        }
        Ok(ClockTable { min, max, step })
    }

    /// Nvidia A100 graphics-clock ladder (210..=1410 MHz, 15 MHz steps).
    pub fn a100() -> Self {
        ClockTable::new(MegaHertz(210), MegaHertz(1410), 15).expect("valid A100 table")
    }

    /// AMD MI250X GCD compute-clock ladder (500..=1700 MHz, 25 MHz granularity).
    pub fn mi250x() -> Self {
        ClockTable::new(MegaHertz(500), MegaHertz(1700), 25).expect("valid MI250X table")
    }

    pub fn min(&self) -> MegaHertz {
        self.min
    }

    pub fn max(&self) -> MegaHertz {
        self.max
    }

    pub fn step(&self) -> u32 {
        self.step
    }

    /// Number of supported clock steps.
    pub fn len(&self) -> usize {
        ((self.max.0 - self.min.0) / self.step) as usize + 1
    }

    pub fn is_empty(&self) -> bool {
        false // a valid table always contains at least `min`
    }

    /// True if `f` is exactly one of the supported clocks.
    pub fn supports(&self, f: MegaHertz) -> bool {
        f >= self.min && f <= self.max && (f.0 - self.min.0).is_multiple_of(self.step)
    }

    /// All supported clocks, descending — the order NVML enumerates them.
    pub fn supported_clocks(&self) -> Vec<MegaHertz> {
        (0..self.len() as u32)
            .map(|i| MegaHertz(self.max.0 - i * self.step))
            .collect()
    }

    /// The nearest supported clock to `f` (clamping to the table range).
    /// Ties round *down*, matching the conservative behaviour of
    /// `nvmlDeviceSetApplicationsClocks` when handed an unsupported value.
    pub fn nearest(&self, f: MegaHertz) -> MegaHertz {
        if f <= self.min {
            return self.min;
        }
        if f >= self.max {
            return self.max;
        }
        let offset = f.0 - self.min.0;
        let below = offset / self.step * self.step;
        let above = below + self.step;
        let chosen = if offset - below <= above - offset {
            below
        } else {
            above
        };
        MegaHertz(self.min.0 + chosen)
    }

    /// Clocks within `[lo, hi]`, descending. This is the search space handed
    /// to the tuner (the paper sweeps 1005–1410 MHz).
    pub fn clocks_in_range(&self, lo: MegaHertz, hi: MegaHertz) -> Vec<MegaHertz> {
        self.supported_clocks()
            .into_iter()
            .filter(|f| *f >= lo && *f <= hi)
            .collect()
    }
}

/// Linear voltage/frequency operating curve.
///
/// Real parts ship per-step VF tables; a linear fit between the min- and
/// max-clock operating points captures the quadratic dynamic-power behaviour
/// that drives every result in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    pub v_min: Volts,
    pub v_max: Volts,
    pub f_min: MegaHertz,
    pub f_max: MegaHertz,
}

impl VoltageCurve {
    /// A100-like curve: 0.70 V at 210 MHz up to 1.05 V at 1410 MHz.
    pub fn a100() -> Self {
        VoltageCurve {
            v_min: Volts(0.70),
            v_max: Volts(1.05),
            f_min: MegaHertz(210),
            f_max: MegaHertz(1410),
        }
    }

    /// MI250X-like curve: 0.75 V at 500 MHz up to 1.10 V at 1700 MHz.
    pub fn mi250x() -> Self {
        VoltageCurve {
            v_min: Volts(0.75),
            v_max: Volts(1.10),
            f_min: MegaHertz(500),
            f_max: MegaHertz(1700),
        }
    }

    /// Operating voltage at clock `f`, clamped to the curve's range.
    pub fn volts(&self, f: MegaHertz) -> Volts {
        let f = f.0.clamp(self.f_min.0, self.f_max.0);
        let span = (self.f_max.0 - self.f_min.0) as f64;
        let x = if span == 0.0 {
            1.0
        } else {
            (f - self.f_min.0) as f64 / span
        };
        Volts(self.v_min.0 + (self.v_max.0 - self.v_min.0) * x)
    }

    /// The `(V(f)/V(f_max))^2 * (f/f_max)` scaling factor of dynamic power.
    pub fn dynamic_power_scale(&self, f: MegaHertz) -> f64 {
        self.volts(f).squared_ratio(self.volts(self.f_max)) * f.ratio(self.f_max).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_table_shape() {
        let t = ClockTable::a100();
        assert_eq!(t.len(), 81);
        assert!(t.supports(MegaHertz(1410)));
        assert!(t.supports(MegaHertz(1005)));
        assert!(t.supports(MegaHertz(210)));
        assert!(!t.supports(MegaHertz(1000)));
        assert!(!t.supports(MegaHertz(1420)));
    }

    #[test]
    fn supported_clocks_descending() {
        let t = ClockTable::new(MegaHertz(100), MegaHertz(130), 15).unwrap();
        assert_eq!(
            t.supported_clocks(),
            vec![MegaHertz(130), MegaHertz(115), MegaHertz(100)]
        );
    }

    #[test]
    fn nearest_clamps_and_rounds() {
        let t = ClockTable::a100();
        assert_eq!(t.nearest(MegaHertz(0)), MegaHertz(210));
        assert_eq!(t.nearest(MegaHertz(9999)), MegaHertz(1410));
        assert_eq!(t.nearest(MegaHertz(1007)), MegaHertz(1005));
        assert_eq!(t.nearest(MegaHertz(1013)), MegaHertz(1020));
        // Exact midpoint rounds down.
        assert_eq!(t.nearest(MegaHertz(217)), MegaHertz(210));
        assert_eq!(t.nearest(MegaHertz(218)), MegaHertz(225));
    }

    #[test]
    fn range_query_matches_paper_sweep() {
        let t = ClockTable::a100();
        let sweep = t.clocks_in_range(MegaHertz(1005), MegaHertz(1410));
        assert_eq!(sweep.len(), 28);
        assert_eq!(sweep[0], MegaHertz(1410));
        assert_eq!(*sweep.last().unwrap(), MegaHertz(1005));
    }

    #[test]
    fn invalid_tables_rejected() {
        assert!(ClockTable::new(MegaHertz(100), MegaHertz(90), 10).is_err());
        assert!(ClockTable::new(MegaHertz(100), MegaHertz(105), 10).is_err());
        assert!(ClockTable::new(MegaHertz(100), MegaHertz(110), 0).is_err());
    }

    #[test]
    fn voltage_curve_endpoints_and_monotonicity() {
        let c = VoltageCurve::a100();
        assert_eq!(c.volts(MegaHertz(210)), Volts(0.70));
        assert_eq!(c.volts(MegaHertz(1410)), Volts(1.05));
        let mut prev = 0.0;
        for f in (210..=1410).step_by(15) {
            let v = c.volts(MegaHertz(f)).0;
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn dynamic_power_scale_superlinear() {
        let c = VoltageCurve::a100();
        // At ~71% clock the dynamic power should be well below 71%.
        let s = c.dynamic_power_scale(MegaHertz(1005));
        assert!(s < 0.66, "expected superlinear drop, got {s}");
        assert!(s > 0.4);
        assert!((c.dynamic_power_scale(MegaHertz(1410)) - 1.0).abs() < 1e-12);
    }
}
