//! Clock policies: pinned application clocks vs. the autonomous DVFS governor.
//!
//! The governor reproduces the behaviour the paper measures in §IV-E (Fig. 9):
//! every kernel launch boosts the clock before any utilization feedback
//! exists, compute-heavy kernels settle near the top of the ladder, the many
//! lightweight launches of `DomainDecompAndSync` hold an unnecessarily high
//! plateau, and communication gaps let the clock decay below 1000 MHz.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelWorkload;
use crate::spec::GpuSpec;
use crate::units::MegaHertz;

/// How the device's compute clock is controlled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClockPolicy {
    /// `nvmlDeviceSetApplicationsClocks`-style pin: the clock snaps to the
    /// requested value and stays there. No boost guard-band is applied.
    ApplicationClocks(MegaHertz),
    /// The hardware/driver DVFS governor owns the clock.
    Dvfs(DvfsParams),
}

impl ClockPolicy {
    /// Default-of-the-machine policy: DVFS with standard parameters.
    pub fn default_dvfs() -> Self {
        ClockPolicy::Dvfs(DvfsParams::default())
    }
}

/// Tunable constants of the simulated DVFS governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsParams {
    /// Clock ramp rate while boosting, MHz per microsecond.
    pub ramp_up_mhz_per_us: f64,
    /// Clock decay rate while idle, MHz per microsecond (much slower:
    /// governors are reluctant to drop clocks between launches).
    pub ramp_down_mhz_per_us: f64,
    /// Clock the governor decays toward when the device stays idle.
    pub idle_floor: MegaHertz,
    /// Base clock of the utilization-feedback target range: a kernel with
    /// zero compute activity targets this, full activity targets `max`.
    pub target_base: MegaHertz,
    /// Gain applied to compute activity when choosing the settle target;
    /// >1 means moderately intense kernels already target the top step.
    pub activity_gain: f64,
    /// Initial launch-boost target as a fraction of the max clock — applied
    /// on every launch *before* utilization feedback exists (the §IV-E
    /// "kernel does not yet have any information" effect).
    pub launch_boost_fraction: f64,
}

impl Default for DvfsParams {
    fn default() -> Self {
        DvfsParams {
            ramp_up_mhz_per_us: 1.5,
            ramp_down_mhz_per_us: 0.05,
            idle_floor: MegaHertz(690),
            target_base: MegaHertz(1110),
            activity_gain: 1.05,
            launch_boost_fraction: 0.93,
        }
    }
}

impl DvfsParams {
    /// The clock the governor settles at for a kernel region once utilization
    /// feedback is available, before snapping to the device's ladder.
    pub fn settle_target(&self, w: &KernelWorkload, gpu: &GpuSpec) -> MegaHertz {
        let fmax = gpu.clock_table.max();
        let base = self.target_base.min(fmax);
        let x = (self.activity_gain * w.compute_activity).clamp(0.0, 1.0);
        let raw = base.0 as f64 + (fmax.0 - base.0) as f64 * x;
        gpu.clock_table.nearest(MegaHertz(raw.round() as u32))
    }

    /// The clock targeted immediately on a kernel launch (no feedback yet).
    pub fn launch_boost_target(&self, gpu: &GpuSpec) -> MegaHertz {
        let fmax = gpu.clock_table.max();
        let raw = fmax.0 as f64 * self.launch_boost_fraction.clamp(0.0, 1.0);
        gpu.clock_table
            .nearest(MegaHertz(raw.round() as u32))
            .max(self.idle_floor)
    }

    /// Advance an *analog* (unquantized) clock one step of `dt_us` toward
    /// `target`, rate-limited. The caller quantizes to the device ladder for
    /// reporting; keeping the analog value prevents slow ramps from being
    /// trapped by the 15/25 MHz step size.
    pub fn step_analog(&self, current_mhz: f64, target: MegaHertz, dt_us: f64) -> f64 {
        let tgt = target.0 as f64;
        if tgt > current_mhz {
            (current_mhz + self.ramp_up_mhz_per_us * dt_us).min(tgt)
        } else {
            (current_mhz - self.ramp_down_mhz_per_us * dt_us).max(tgt)
        }
    }

    /// Quantized convenience wrapper over [`DvfsParams::step_analog`].
    pub fn step_toward(
        &self,
        current: MegaHertz,
        target: MegaHertz,
        dt_us: f64,
        gpu: &GpuSpec,
    ) -> MegaHertz {
        let next = self.step_analog(current.0 as f64, target, dt_us);
        gpu.clock_table.nearest(MegaHertz(next.round() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::a100_sxm4_80gb()
    }

    fn kernel(activity: f64) -> KernelWorkload {
        KernelWorkload::new("k", 1e9, 1e9).with_activity(activity, 0.5)
    }

    #[test]
    fn compute_heavy_kernel_targets_max_clock() {
        let p = DvfsParams::default();
        assert_eq!(p.settle_target(&kernel(0.97), &gpu()), MegaHertz(1410));
    }

    #[test]
    fn moderate_kernel_targets_midrange() {
        let p = DvfsParams::default();
        let t = p.settle_target(&kernel(0.65), &gpu());
        assert!(t >= MegaHertz(1280) && t <= MegaHertz(1350), "got {t}");
    }

    #[test]
    fn lightweight_kernel_targets_low_but_above_base() {
        let p = DvfsParams::default();
        let t = p.settle_target(&kernel(0.15), &gpu());
        assert!(t >= MegaHertz(1110) && t <= MegaHertz(1230), "got {t}");
    }

    #[test]
    fn launch_boost_is_high_regardless_of_kernel() {
        let p = DvfsParams::default();
        let b = p.launch_boost_target(&gpu());
        assert!(b >= MegaHertz(1290), "launch boost should be near max: {b}");
    }

    #[test]
    fn targets_land_on_supported_steps() {
        let p = DvfsParams::default();
        let g = gpu();
        for a in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            assert!(g.clock_table.supports(p.settle_target(&kernel(a), &g)));
        }
        assert!(g.clock_table.supports(p.launch_boost_target(&g)));
    }

    #[test]
    fn ramp_is_rate_limited_and_asymmetric() {
        let p = DvfsParams::default();
        let g = gpu();
        // Boosting 100us from 1005 -> at most 1005 + 150 MHz.
        let up = p.step_toward(MegaHertz(1005), MegaHertz(1410), 100.0, &g);
        assert_eq!(up, MegaHertz(1155));
        // Decaying 100us from 1410 -> only ~5 MHz (snaps to nearest step).
        let down = p.step_toward(MegaHertz(1410), MegaHertz(690), 100.0, &g);
        assert!(down >= MegaHertz(1395), "decay should be slow, got {down}");
        // Decay eventually reaches the floor.
        let settled = p.step_toward(MegaHertz(700), MegaHertz(690), 10_000.0, &g);
        assert_eq!(settled, MegaHertz(690));
    }

    #[test]
    fn step_never_overshoots_target() {
        let p = DvfsParams::default();
        let g = gpu();
        let up = p.step_toward(MegaHertz(1400), MegaHertz(1410), 1e6, &g);
        assert_eq!(up, MegaHertz(1410));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_settle_target_monotone_in_activity(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
                // More compute-intense kernels never settle *lower*.
                let p = DvfsParams::default();
                let g = gpu();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let t_lo = p.settle_target(&kernel(lo), &g);
                let t_hi = p.settle_target(&kernel(hi), &g);
                prop_assert!(t_lo <= t_hi, "{lo}->{t_lo} vs {hi}->{t_hi}");
            }

            #[test]
            fn prop_analog_step_bounded_and_directed(
                cur in 210.0f64..1410.0,
                tgt in 210u32..=1410,
                dt_us in 0.0f64..100_000.0,
            ) {
                let p = DvfsParams::default();
                let next = p.step_analog(cur, MegaHertz(tgt), dt_us);
                let tgt_f = f64::from(tgt);
                // Moves toward the target without overshooting it.
                if tgt_f >= cur {
                    prop_assert!(next >= cur && next <= tgt_f + 1e-9);
                    prop_assert!(next - cur <= p.ramp_up_mhz_per_us * dt_us + 1e-9);
                } else {
                    prop_assert!(next <= cur && next >= tgt_f - 1e-9);
                    prop_assert!(cur - next <= p.ramp_down_mhz_per_us * dt_us + 1e-9);
                }
            }

            #[test]
            fn prop_targets_always_on_device_ladder(a in 0.0f64..=1.0) {
                let p = DvfsParams::default();
                let g = gpu();
                prop_assert!(g.clock_table.supports(p.settle_target(&kernel(a), &g)));
                prop_assert!(g.clock_table.supports(p.launch_boost_target(&g)));
            }
        }
    }
}
