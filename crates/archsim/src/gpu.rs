//! The simulated GPU device: executes kernel regions, advances virtual time,
//! and records power/frequency timelines under a [`ClockPolicy`].

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::governor::{ClockPolicy, DvfsParams};
use crate::kernel::{ExecModel, KernelWorkload, NaiveInverseModel, RooflineModel};
use crate::spec::GpuSpec;
use crate::time::{SimDuration, SimInstant};
use crate::timeline::{FreqTimeline, PowerTimeline};
use crate::units::{Joules, MegaHertz, Watts};

/// Execution-model selector (kept as an enum so devices stay `Clone` and
/// serializable; the ablation bench swaps `Roofline` for `Naive`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecModelKind {
    Roofline(RooflineModel),
    Naive(NaiveInverseModel),
}

impl Default for ExecModelKind {
    fn default() -> Self {
        ExecModelKind::Roofline(RooflineModel::default())
    }
}

impl ExecModel for ExecModelKind {
    fn breakdown(
        &self,
        w: &KernelWorkload,
        f: MegaHertz,
        gpu: &GpuSpec,
    ) -> crate::kernel::ExecBreakdown {
        match self {
            ExecModelKind::Roofline(m) => m.breakdown(w, f, gpu),
            ExecModelKind::Naive(m) => m.breakdown(w, f, gpu),
        }
    }
}

/// Result of executing one instrumented kernel region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionExec {
    /// Function name (copied from the workload).
    pub name: String,
    pub start: SimInstant,
    pub end: SimInstant,
    /// GPU energy over `[start, end)` — the exact timeline integral.
    pub energy: Joules,
    /// Time-weighted average clock during the region.
    pub avg_freq: MegaHertz,
    /// Device launches issued.
    pub launches: u32,
}

impl RegionExec {
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Activity factors assumed while only launch/driver overhead is running.
const OVERHEAD_COMPUTE_ACTIVITY: f64 = 0.08;
const OVERHEAD_MEMORY_ACTIVITY: f64 = 0.08;
/// Virtual time after a launch before utilization feedback steers the
/// governor away from the blind launch boost.
const FEEDBACK_DELAY: SimDuration = SimDuration::from_micros(50);
/// Regions issuing more launches than this are treated as a continuous
/// launch stream (the `DomainDecompAndSync` pattern of §IV-E).
const STREAM_LAUNCH_THRESHOLD: u32 = 4;
/// Discretization steps for one DVFS region / idle gap.
const DVFS_STEPS: u32 = 64;
const IDLE_STEPS: u32 = 32;

/// A simulated GPU (one NVML device / one GCD).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuDevice {
    id: usize,
    spec: GpuSpec,
    model: ExecModelKind,
    policy: ClockPolicy,
    /// Whether user-level clock control is permitted (production systems in
    /// the paper lock this down; miniHPC does not).
    user_clock_control: bool,
    now: SimInstant,
    cur_freq: MegaHertz,
    /// Unquantized governor clock; `cur_freq` is this snapped to the ladder.
    analog_freq: f64,
    power_tl: PowerTimeline,
    freq_tl: FreqTimeline,
    busy: Vec<(SimInstant, SimInstant)>,
    transitions: u64,
    total_launches: u64,
    /// Transition energy not yet folded into an emitted power segment.
    pending_transition_j: f64,
    /// Current memory clock (defaults to the spec's maximum; the paper
    /// never lowers it — see the `ablation_memclock` bench for why).
    cur_mem_clock: MegaHertz,
    /// Junction temperature at `now`, °C.
    temp_c: f64,
    /// Enforced board power limit (`nvmlDeviceSetPowerManagementLimit`).
    power_limit: Watts,
    /// True while the last emitted segment was clock-capped by the power
    /// limit / by thermal slowdown (NVML clocks-event reasons).
    sw_power_capped: bool,
    hw_thermal_slowdown: bool,
    /// Count of segments that ran clock-capped.
    throttled_segments: u64,
    /// Fault handle for this device (inert unless an injector is installed;
    /// not part of the device's persistent state).
    #[serde(skip, default)]
    faults: faults::DeviceFaults,
    /// An injected transient thermal throttle is active for the current
    /// region.
    #[serde(skip, default)]
    forced_throttle: bool,
    /// The injected throttle actually capped the clock at least once.
    #[serde(skip, default)]
    forced_throttle_hit: bool,
}

impl GpuDevice {
    /// A device starting idle at the clock floor under the default DVFS
    /// governor.
    pub fn new(id: usize, spec: GpuSpec) -> Self {
        let cur = spec.clock_table.min();
        let ambient_c = spec.thermal.ambient_c;
        let tdp = spec.tdp();
        let mem_clock = spec.mem_clock;
        let mut freq_tl = FreqTimeline::new();
        freq_tl.record(SimInstant::ZERO, cur);
        GpuDevice {
            id,
            spec,
            model: ExecModelKind::default(),
            policy: ClockPolicy::default_dvfs(),
            user_clock_control: true,
            now: SimInstant::ZERO,
            cur_freq: cur,
            analog_freq: cur.0 as f64,
            power_tl: PowerTimeline::new(),
            freq_tl,
            busy: Vec::new(),
            transitions: 0,
            total_launches: 0,
            pending_transition_j: 0.0,
            cur_mem_clock: mem_clock,
            temp_c: ambient_c,
            power_limit: tdp,
            sw_power_capped: false,
            hw_thermal_slowdown: false,
            throttled_segments: 0,
            faults: faults::DeviceFaults::default(),
            forced_throttle: false,
            forced_throttle_hit: false,
        }
    }

    /// Install this device's fault handle (from
    /// `faults::FaultInjector::device`). The default handle is inert, so
    /// devices without one behave exactly as before.
    pub fn set_fault_handle(&mut self, handle: faults::DeviceFaults) {
        self.faults = handle;
    }

    /// This device's fault handle (inert unless one was installed).
    pub fn fault_handle(&self) -> &faults::DeviceFaults {
        &self.faults
    }

    pub fn id(&self) -> usize {
        self.id
    }

    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    pub fn now(&self) -> SimInstant {
        self.now
    }

    pub fn current_freq(&self) -> MegaHertz {
        self.cur_freq
    }

    pub fn policy(&self) -> ClockPolicy {
        self.policy
    }

    pub fn exec_model(&self) -> ExecModelKind {
        self.model
    }

    pub fn set_exec_model(&mut self, model: ExecModelKind) {
        self.model = model;
    }

    /// Number of clock transitions performed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total device kernel launches issued so far.
    pub fn total_launches(&self) -> u64 {
        self.total_launches
    }

    /// Current junction temperature, °C (`nvmlDeviceGetTemperature`).
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Current enforced board power limit.
    pub fn power_limit(&self) -> Watts {
        self.power_limit
    }

    /// Set the board power limit (`nvmlDeviceSetPowerManagementLimit`).
    /// Valid range: idle power ..= TDP.
    pub fn set_power_limit(&mut self, limit: Watts) -> Result<(), ArchError> {
        if !self.user_clock_control {
            return Err(ArchError::NoPermission("SetPowerManagementLimit"));
        }
        if limit.0 < self.spec.idle_power.0 || limit.0 > self.spec.tdp().0 {
            return Err(ArchError::InvalidSpec(format!(
                "power limit {limit} outside {}..={}",
                self.spec.idle_power,
                self.spec.tdp()
            )));
        }
        self.power_limit = limit;
        Ok(())
    }

    /// `(software power cap active, thermal slowdown active)` for the most
    /// recent segment.
    pub fn cap_state(&self) -> (bool, bool) {
        (self.sw_power_capped, self.hw_thermal_slowdown)
    }

    /// Segments that ran with a capped clock.
    pub fn throttled_segments(&self) -> u64 {
        self.throttled_segments
    }

    /// Current memory clock.
    pub fn current_mem_clock(&self) -> MegaHertz {
        self.cur_mem_clock
    }

    /// Set the memory clock to one of the supported P-states (the memory
    /// half of `nvmlDeviceSetApplicationsClocks`).
    ///
    /// Rides the same fault channels as the graphics half: the transition
    /// can be transiently rejected (`ClockSet`) or silently land one P-state
    /// lower (`ClockClamp`, detectable only by readback). Re-requesting the
    /// clock the device already holds is a no-op and draws no faults, so
    /// core-only tuners keep their exact fault schedules.
    pub fn set_memory_clock(&mut self, mem_mhz: MegaHertz) -> Result<(), ArchError> {
        if !self.user_clock_control {
            return Err(ArchError::NoPermission("SetApplicationsClocks(mem)"));
        }
        let Some(idx) = self.spec.mem_clock_table.iter().position(|&f| f == mem_mhz) else {
            return Err(ArchError::UnsupportedClock {
                requested: mem_mhz,
                min: *self
                    .spec
                    .mem_clock_table
                    .last()
                    .expect("non-empty mem table"),
                max: self.spec.mem_clock,
            });
        };
        if mem_mhz == self.cur_mem_clock {
            return Ok(());
        }
        if self.faults.clock_set_rejects() {
            self.faults.note_injected(faults::Channel::ClockSet);
            return Err(ArchError::Transient("SetApplicationsClocks(mem)"));
        }
        // Silent clamping: the table is descending, so losing rungs means
        // moving toward its tail (lower P-states).
        let mut mem_mhz = mem_mhz;
        let clamp_rungs = self.faults.clock_clamp_rungs();
        if clamp_rungs > 0 {
            let clamped_idx = (idx + clamp_rungs as usize).min(self.spec.mem_clock_table.len() - 1);
            let clamped = self.spec.mem_clock_table[clamped_idx];
            if clamped < mem_mhz {
                self.faults.note_injected(faults::Channel::ClockClamp);
                mem_mhz = clamped;
            }
        }
        self.cur_mem_clock = mem_mhz;
        telemetry::instant(
            "gpu",
            "set_memory_clock",
            Some(self.now.as_nanos()),
            vec![("mhz", mem_mhz.0.into())],
        );
        Ok(())
    }

    /// The spec adjusted for the current memory clock (what the execution
    /// and power models actually see).
    fn effective_spec(&self) -> GpuSpec {
        if self.cur_mem_clock == self.spec.mem_clock {
            self.spec.clone()
        } else {
            self.spec.with_memory_clock(self.cur_mem_clock)
        }
    }

    pub fn power_timeline(&self) -> &PowerTimeline {
        &self.power_tl
    }

    pub fn freq_timeline(&self) -> &FreqTimeline {
        &self.freq_tl
    }

    /// Deny user-level clock changes, as the paper's production systems do.
    pub fn lock_clock_control(&mut self) {
        self.user_clock_control = false;
    }

    /// Re-allow user-level clock changes (miniHPC-style).
    pub fn unlock_clock_control(&mut self) {
        self.user_clock_control = true;
    }

    pub fn clock_control_allowed(&self) -> bool {
        self.user_clock_control
    }

    /// Pin the compute clock (`nvmlDeviceSetApplicationsClocks`). The clock
    /// snaps immediately; the boost guard-band is dropped.
    pub fn set_application_clocks(&mut self, f: MegaHertz) -> Result<(), ArchError> {
        if !self.user_clock_control {
            return Err(ArchError::NoPermission("SetApplicationsClocks"));
        }
        if !self.spec.clock_table.supports(f) {
            return Err(ArchError::UnsupportedClock {
                requested: f,
                min: self.spec.clock_table.min(),
                max: self.spec.clock_table.max(),
            });
        }
        if self.faults.clock_set_rejects() {
            self.faults.note_injected(faults::Channel::ClockSet);
            return Err(ArchError::Transient("SetApplicationsClocks"));
        }
        // Silent clamping: the call "succeeds" but the device pins a few
        // ladder rungs lower (power/thermal-limit behaviour documented by
        // Calore et al.). Detectable only by reading the clock back.
        let mut f = f;
        let clamp_rungs = self.faults.clock_clamp_rungs();
        if clamp_rungs > 0 {
            let floor = self.spec.clock_table.min();
            let step = self.spec.clock_table.step();
            let clamped = self.spec.clock_table.nearest(MegaHertz(
                f.0.saturating_sub(clamp_rungs * step).max(floor.0),
            ));
            if clamped < f {
                self.faults.note_injected(faults::Channel::ClockClamp);
                f = clamped;
            }
        }
        self.policy = ClockPolicy::ApplicationClocks(f);
        self.analog_freq = f.0 as f64;
        self.change_freq(f);
        telemetry::instant(
            "gpu",
            "set_application_clocks",
            Some(self.now.as_nanos()),
            vec![("mhz", f.0.into())],
        );
        Ok(())
    }

    /// Return clock ownership to the DVFS governor
    /// (`nvmlDeviceResetApplicationsClocks`).
    pub fn reset_application_clocks(&mut self) -> Result<(), ArchError> {
        if !self.user_clock_control {
            return Err(ArchError::NoPermission("ResetApplicationsClocks"));
        }
        self.policy = ClockPolicy::default_dvfs();
        telemetry::instant(
            "gpu",
            "reset_application_clocks",
            Some(self.now.as_nanos()),
            Vec::new(),
        );
        Ok(())
    }

    /// Replace the governor parameters (ablation hook).
    pub fn set_dvfs_params(&mut self, params: DvfsParams) {
        self.policy = ClockPolicy::Dvfs(params);
    }

    fn change_freq(&mut self, f: MegaHertz) {
        if f != self.cur_freq {
            self.transitions += 1;
            self.pending_transition_j += self.spec.transition_cost.0;
            self.cur_freq = f;
            telemetry::counter_add("gpu.freq_transitions", 1);
        }
        self.freq_tl.record(self.now, f);
    }

    /// Record a power segment from `self.now` until `until`, folding any
    /// pending clock-transition energy into it.
    fn emit(&mut self, until: SimInstant, mut power: Watts) {
        let dur = until - self.now;
        if dur.is_zero() {
            return;
        }
        // Temperature-dependent leakage rides on top of the model power.
        let leak_factor = self.spec.thermal.leakage_factor(self.temp_c);
        power += Watts(self.spec.idle_power.0 * (leak_factor - 1.0));
        if self.pending_transition_j > 0.0 {
            power += Watts(self.pending_transition_j / dur.as_secs_f64());
            self.pending_transition_j = 0.0;
        }
        self.power_tl.push_until(until, power);
        // Advance the junction temperature through this segment.
        self.temp_c = self.spec.thermal.step(self.temp_c, power, dur);
        self.now = until;
    }

    /// Execute one instrumented kernel region, advancing the device clock.
    pub fn run_region(&mut self, w: &KernelWorkload) -> RegionExec {
        // An injected transient thermal throttle caps this one region; it
        // lifts at region end (the device restores the requested clock), so
        // injection and recovery are both accounted here.
        if self.faults.thermal_throttle() {
            self.forced_throttle = true;
        }
        let start = self.now;
        match self.policy {
            ClockPolicy::ApplicationClocks(f) => self.run_pinned(w, f),
            ClockPolicy::Dvfs(p) => self.run_dvfs(w, p),
        }
        if self.forced_throttle {
            if self.forced_throttle_hit {
                self.faults.note_injected(faults::Channel::Thermal);
                self.faults.note_recovered(faults::Channel::Thermal);
            }
            self.forced_throttle = false;
            self.forced_throttle_hit = false;
        }
        let end = self.now;
        self.busy.push((start, end));
        self.total_launches += u64::from(w.launches);
        let exec = RegionExec {
            name: w.name.clone(),
            start,
            end,
            energy: self.power_tl.energy_between(start, end),
            avg_freq: self
                .freq_tl
                .average_freq(start, end)
                .unwrap_or(self.cur_freq),
            launches: w.launches,
        };
        if telemetry::active() {
            telemetry::span_complete(
                "gpu",
                "kernel",
                start.as_nanos(),
                end.as_nanos(),
                vec![
                    ("func", exec.name.clone().into()),
                    ("freq_mhz", exec.avg_freq.0.into()),
                    ("energy_j", exec.energy.0.into()),
                    ("launches", exec.launches.into()),
                ],
            );
        }
        exec
    }

    /// Compute-activity factor scaled by occupancy: an under-filled device
    /// keeps most SMs idle, so its dynamic power share drops.
    fn effective_compute_activity(&self, w: &KernelWorkload) -> f64 {
        let occ = self.spec.occupancy(w.parallelism);
        w.compute_activity * (0.4 + 0.6 * occ)
    }

    /// Apply the power-limit and thermal-slowdown control loops to a
    /// desired clock: walk down the ladder until the projected busy power
    /// (including temperature-dependent leakage) fits under the limit, and
    /// cap at ~80 % of max while the junction is past the slowdown
    /// threshold. Updates the clocks-event reason flags.
    fn apply_caps(&mut self, desired: MegaHertz, a_c: f64, a_m: f64, boosted: bool) -> MegaHertz {
        let mut f = desired;
        self.sw_power_capped = false;
        self.hw_thermal_slowdown = false;
        if self.forced_throttle || self.spec.thermal.throttling(self.temp_c) {
            let cap = self.spec.clock_table.nearest(MegaHertz(
                (self.spec.clock_table.max().0 as f64 * 0.8) as u32,
            ));
            if cap < f {
                f = cap;
                self.hw_thermal_slowdown = true;
                if self.forced_throttle {
                    self.forced_throttle_hit = true;
                }
            }
        }
        let leak =
            Watts(self.spec.idle_power.0 * (self.spec.thermal.leakage_factor(self.temp_c) - 1.0));
        let step = self.spec.clock_table.step();
        while f > self.spec.clock_table.min() {
            let p = self.spec.busy_power(f, a_c, a_m, boosted) + leak;
            if p.0 <= self.power_limit.0 {
                break;
            }
            self.sw_power_capped = true;
            f = MegaHertz(f.0 - step);
        }
        if self.sw_power_capped || self.hw_thermal_slowdown {
            self.throttled_segments += 1;
        }
        f
    }

    fn run_pinned(&mut self, w: &KernelWorkload, f: MegaHertz) {
        let spec = self.effective_spec();
        let f = self.apply_caps(
            f,
            self.effective_compute_activity(w),
            w.memory_activity,
            false,
        );
        self.change_freq(f);
        let bd = self.model.breakdown(w, f, &spec);
        let overhead_end = self.now + bd.overhead;
        let p_overhead = spec.busy_power(
            f,
            OVERHEAD_COMPUTE_ACTIVITY,
            OVERHEAD_MEMORY_ACTIVITY,
            false,
        );
        self.emit(overhead_end, p_overhead);
        let busy_end = self.now + bd.compute + bd.memory;
        let p_busy = spec.busy_power(
            f,
            self.effective_compute_activity(w),
            w.memory_activity,
            false,
        );
        self.emit(busy_end, p_busy);
    }

    fn run_dvfs(&mut self, w: &KernelWorkload, p: DvfsParams) {
        let spec = self.effective_spec();
        let fmax = spec.clock_table.max();
        let bd_ref = self.model.breakdown(w, fmax, &spec);
        let busy_ref_s = (bd_ref.compute + bd_ref.memory).as_secs_f64();
        let beta = if busy_ref_s > 0.0 {
            bd_ref.compute.as_secs_f64() / busy_ref_s
        } else {
            0.0
        };
        let mut remaining_overhead_s = bd_ref.overhead.as_secs_f64();
        let mut remaining_busy_ref_s = busy_ref_s;

        let stream = w.launches > STREAM_LAUNCH_THRESHOLD;
        let settle = p.settle_target(w, &spec);
        let launch_boost = p.launch_boost_target(&spec);
        // A continuous launch stream keeps re-triggering partial boosts: the
        // governor hovers between the settle target and the launch boost.
        let stream_target = if stream {
            let raw = settle.0 as f64 + 0.3 * (launch_boost.0.saturating_sub(settle.0)) as f64;
            self.spec.clock_table.nearest(MegaHertz(raw.round() as u32))
        } else {
            settle
        };
        if stream {
            // Partial ramps on every launch dissipate transition energy even
            // when the quantized clock barely moves.
            self.pending_transition_j += self.spec.transition_cost.0 * 0.25 * f64::from(w.launches);
        }

        // Estimate the region length at the current clock to size the steps.
        let est_s = remaining_overhead_s
            + remaining_busy_ref_s
                * (beta * fmax.ratio(self.cur_freq.max(p.idle_floor)) + (1.0 - beta));
        let dt_s = (est_s / f64::from(DVFS_STEPS)).max(2e-6);
        let region_start = self.now;

        while remaining_overhead_s > 1e-12 || remaining_busy_ref_s > 1e-12 {
            let in_feedback_window = (self.now - region_start) < FEEDBACK_DELAY;
            let target = if stream {
                stream_target
            } else if remaining_overhead_s > 1e-12 || in_feedback_window {
                launch_boost.max(settle)
            } else {
                settle
            };
            self.analog_freq = p.step_analog(self.analog_freq, target, dt_s * 1e6);
            let next = self
                .spec
                .clock_table
                .nearest(MegaHertz(self.analog_freq.round() as u32));
            let next = self.apply_caps(
                next,
                self.effective_compute_activity(w),
                w.memory_activity,
                true,
            );
            self.change_freq(next);
            let f = self.cur_freq;

            let (step_s, power) = if remaining_overhead_s > 1e-12 {
                let step = remaining_overhead_s.min(dt_s);
                remaining_overhead_s -= step;
                (
                    step,
                    spec.busy_power(f, OVERHEAD_COMPUTE_ACTIVITY, OVERHEAD_MEMORY_ACTIVITY, true),
                )
            } else {
                // Busy progress: one wall-second completes
                // `1 / (beta*fmax/f + (1-beta))` reference-seconds of work.
                let slowdown = beta * fmax.ratio(f) + (1.0 - beta);
                let wall_for_rest = remaining_busy_ref_s * slowdown;
                let step = wall_for_rest.min(dt_s);
                remaining_busy_ref_s -= step / slowdown;
                (
                    step,
                    spec.busy_power(
                        f,
                        self.effective_compute_activity(w),
                        w.memory_activity,
                        true,
                    ),
                )
            };
            let until = self.now + SimDuration::from_secs_f64(step_s);
            self.emit(until, power);
        }
    }

    /// Advance the device through an idle gap (host work, MPI communication)
    /// until instant `t`. Under DVFS the clock decays toward the idle floor —
    /// the end-of-time-step dips of Fig. 9.
    pub fn idle_until(&mut self, t: SimInstant) {
        if t <= self.now {
            return;
        }
        match self.policy {
            ClockPolicy::ApplicationClocks(f) => {
                let p = self.spec.idle_power_at(f, false);
                self.emit(t, p);
            }
            ClockPolicy::Dvfs(params) => {
                let gap = t - self.now;
                let dt = (gap / u64::from(IDLE_STEPS)).max(SimDuration::from_micros(20));
                while self.now < t {
                    let until = (self.now + dt).min(t);
                    let step_us = (until - self.now).as_secs_f64() * 1e6;
                    self.analog_freq =
                        params.step_analog(self.analog_freq, params.idle_floor, step_us);
                    let next = self
                        .spec
                        .clock_table
                        .nearest(MegaHertz(self.analog_freq.round() as u32));
                    self.change_freq(next);
                    let p = self.spec.idle_power_at(self.cur_freq, true);
                    self.emit(until, p);
                    if self.analog_freq <= params.idle_floor.0 as f64 {
                        // Settled: emit the remainder as one segment.
                        let p = self.spec.idle_power_at(self.cur_freq, true);
                        self.emit(t, p);
                        break;
                    }
                }
            }
        }
    }

    /// Advance idle by a duration.
    pub fn advance_idle(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.idle_until(t);
    }

    /// Exact device energy over `[a, b)`.
    pub fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.power_tl.energy_between(a, b)
    }

    /// Total recorded device energy.
    pub fn total_energy(&self) -> Joules {
        self.power_tl.total_energy()
    }

    /// Coarse, nvidia-smi-style utilization over `[a, b)`: the fraction of
    /// wall time with *any* kernel resident, launch overhead included. This
    /// deliberately overestimates real occupancy, as reported in the paper's
    /// reference \[25\].
    pub fn utilization_coarse(&self, a: SimInstant, b: SimInstant) -> f64 {
        let span = (b - a).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let mut busy = 0.0;
        for &(s, e) in &self.busy {
            if e <= a {
                continue;
            }
            if s >= b {
                break;
            }
            busy += (e.min(b) - s.max(a)).as_secs_f64();
        }
        (busy / span).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())
    }

    fn heavy() -> KernelWorkload {
        KernelWorkload::new("MomentumEnergy", 200e9, 20e9).with_activity(0.95, 0.55)
    }

    fn light_stream() -> KernelWorkload {
        KernelWorkload::new("DomainDecompAndSync", 0.5e9, 2e9)
            .with_launches(300)
            .with_activity(0.15, 0.35)
    }

    #[test]
    fn pinned_execution_advances_clock_and_records_energy() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        let r = d.run_region(&heavy());
        assert!(r.duration() > SimDuration::ZERO);
        assert!(r.energy.0 > 0.0);
        assert_eq!(r.avg_freq, MegaHertz(1410));
        assert_eq!(d.now(), r.end);
        // Energy must equal average power * time within TDP bounds.
        let avg_w = r.energy.average_power(r.duration());
        assert!(avg_w.0 <= d.spec().tdp().0);
        assert!(avg_w.0 > d.spec().idle_power.0);
    }

    #[test]
    fn lower_pinned_clock_is_slower_but_cheaper() {
        let mut hi = device();
        hi.set_application_clocks(MegaHertz(1410)).unwrap();
        let r_hi = hi.run_region(&heavy());
        let mut lo = device();
        lo.set_application_clocks(MegaHertz(1005)).unwrap();
        let r_lo = lo.run_region(&heavy());
        assert!(r_lo.duration() > r_hi.duration());
        assert!(r_lo.energy < r_hi.energy, "energy should drop at 1005 MHz");
    }

    #[test]
    fn unsupported_clock_rejected() {
        let mut d = device();
        let err = d.set_application_clocks(MegaHertz(1000)).unwrap_err();
        assert!(matches!(err, ArchError::UnsupportedClock { .. }));
    }

    #[test]
    fn locked_device_denies_user_clock_control() {
        let mut d = device();
        d.lock_clock_control();
        assert!(matches!(
            d.set_application_clocks(MegaHertz(1410)),
            Err(ArchError::NoPermission(_))
        ));
        assert!(matches!(
            d.reset_application_clocks(),
            Err(ArchError::NoPermission(_))
        ));
        d.unlock_clock_control();
        assert!(d.set_application_clocks(MegaHertz(1410)).is_ok());
    }

    #[test]
    fn dvfs_boosts_on_launch_and_decays_when_idle() {
        let mut d = device();
        // Warm up: run a heavy kernel; the governor should climb high.
        let r = d.run_region(&heavy());
        assert!(
            r.avg_freq > MegaHertz(1200),
            "governor should boost a heavy kernel, got {}",
            r.avg_freq
        );
        let peak = d.current_freq();
        assert!(peak >= MegaHertz(1350));
        // Long idle: decay toward the floor.
        d.advance_idle(SimDuration::from_secs(20));
        assert_eq!(d.current_freq(), MegaHertz(690));
    }

    #[test]
    fn dvfs_stream_region_holds_elevated_plateau() {
        let mut d = device();
        d.run_region(&heavy()); // boost first
        let r = d.run_region(&light_stream());
        // The paper observes ~1200 MHz during DomainDecompAndSync: elevated
        // well above the idle floor, well below max.
        assert!(r.avg_freq > MegaHertz(1100), "got {}", r.avg_freq);
        assert!(r.avg_freq < MegaHertz(1390), "got {}", r.avg_freq);
    }

    #[test]
    fn dvfs_energy_exceeds_pinned_baseline_for_same_work() {
        // §IV-D: DVFS has ~baseline time but higher energy than pinned max
        // clocks, due to the boost guard-band and transition losses.
        let steps = 5usize;
        let mut pinned = device();
        pinned.set_application_clocks(MegaHertz(1410)).unwrap();
        let mut dvfs = device();
        for _ in 0..steps {
            for d in [&mut pinned, &mut dvfs] {
                d.run_region(&light_stream());
                d.run_region(&heavy());
                d.advance_idle(SimDuration::from_millis(3));
            }
        }
        let e_pinned = pinned.total_energy();
        let e_dvfs = dvfs.total_energy();
        let t_pinned = pinned.now().as_secs_f64();
        let t_dvfs = dvfs.now().as_secs_f64();
        assert!(
            e_dvfs > e_pinned,
            "DVFS {e_dvfs:?} should exceed pinned {e_pinned:?}"
        );
        let dt = (t_dvfs - t_pinned).abs() / t_pinned;
        assert!(dt < 0.05, "times should be similar, diff {dt}");
    }

    #[test]
    fn transition_energy_is_conserved_in_timeline() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        d.run_region(&heavy());
        d.set_application_clocks(MegaHertz(1005)).unwrap();
        d.run_region(&heavy());
        assert!(d.transitions() >= 2);
        // All pending transition energy must be folded into segments.
        assert_eq!(d.pending_transition_j, 0.0);
    }

    #[test]
    fn utilization_coarse_counts_overhead_as_busy() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        let r = d.run_region(&light_stream());
        let u = d.utilization_coarse(r.start, r.end);
        assert!(u > 0.99, "whole region counts as busy: {u}");
        d.advance_idle(SimDuration::from_millis(10));
        let u2 = d.utilization_coarse(r.start, d.now());
        assert!(u2 < 1.0);
    }

    #[test]
    fn idle_until_is_noop_for_past_instants() {
        let mut d = device();
        d.advance_idle(SimDuration::from_millis(5));
        let now = d.now();
        d.idle_until(SimInstant::ZERO);
        assert_eq!(d.now(), now);
    }

    #[test]
    fn sustained_load_heats_the_junction() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        let t0 = d.temperature_c();
        // ~tens of seconds of virtual load.
        for _ in 0..200 {
            d.run_region(&heavy());
        }
        let t1 = d.temperature_c();
        assert!(t1 > t0 + 10.0, "junction should heat: {t0} -> {t1}");
        assert!(t1 < d.spec().thermal.slowdown_c + 10.0, "bounded: {t1}");
        // Long idle cools back toward the idle-at-held-clock steady state
        // (clocks stay pinned, so the package sits a few degrees above
        // ambient, not at it).
        d.advance_idle(SimDuration::from_secs(120));
        let idle_ss = d
            .spec()
            .thermal
            .steady_state_c(d.spec().idle_power_at(MegaHertz(1410), false));
        assert!(
            (d.temperature_c() - idle_ss).abs() < 2.0,
            "cooled to {} (idle steady state {idle_ss})",
            d.temperature_c()
        );
    }

    #[test]
    fn power_limit_caps_the_clock() {
        let mut d = device();
        d.set_power_limit(Watts(220.0)).unwrap();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        let r = d.run_region(&heavy());
        assert!(
            r.avg_freq < MegaHertz(1410),
            "clock must drop under the cap: {}",
            r.avg_freq
        );
        let (sw, _) = d.cap_state();
        assert!(sw, "SW power cap reason must be raised");
        assert!(d.throttled_segments() > 0);
        // Average power respects the limit (leakage + transition smearing
        // allow small excursions).
        let avg = r.energy.average_power(r.duration());
        assert!(avg.0 <= 220.0 * 1.08, "avg {avg} vs cap 220 W");
    }

    #[test]
    fn power_limit_validation_and_permissions() {
        let mut d = device();
        assert!(d.set_power_limit(Watts(10.0)).is_err(), "below idle power");
        assert!(d.set_power_limit(Watts(9999.0)).is_err(), "above TDP");
        assert!(d.set_power_limit(Watts(300.0)).is_ok());
        assert_eq!(d.power_limit(), Watts(300.0));
        d.lock_clock_control();
        assert!(matches!(
            d.set_power_limit(Watts(250.0)),
            Err(ArchError::NoPermission(_))
        ));
    }

    #[test]
    fn thermal_slowdown_engages_past_threshold() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        // Run until the junction crosses the slowdown threshold. The SXM
        // envelope at full tilt reaches ~74C steady state, so force a hotter
        // environment by running a very long sustained burst with the
        // threshold lowered via a custom spec.
        let mut spec = GpuSpec::a100_sxm4_80gb();
        spec.thermal.slowdown_c = 50.0;
        let mut d = GpuDevice::new(0, spec);
        d.set_application_clocks(MegaHertz(1410)).unwrap();
        for _ in 0..800 {
            d.run_region(&heavy());
        }
        let (_, thermal) = d.cap_state();
        assert!(
            thermal,
            "thermal slowdown must engage at {}",
            d.temperature_c()
        );
        assert!(
            d.current_freq() <= MegaHertz(1130),
            "clock capped: {}",
            d.current_freq()
        );
    }

    #[test]
    fn leakage_makes_hot_runs_cost_more() {
        // Same work, same clock: a pre-heated device burns more energy.
        let mut cold = device();
        cold.set_application_clocks(MegaHertz(1410)).unwrap();
        let e_cold = cold.run_region(&heavy()).energy;

        let mut hot = device();
        hot.set_application_clocks(MegaHertz(1410)).unwrap();
        for _ in 0..800 {
            hot.run_region(&heavy());
        }
        let e_hot = hot.run_region(&heavy()).energy;
        assert!(
            e_hot.0 > e_cold.0 * 1.01,
            "leakage should show: cold {e_cold}, hot {e_hot}"
        );
    }

    #[test]
    fn memory_downclock_slows_memory_bound_kernels() {
        let mem_bound = KernelWorkload::new("XMass", 5e9, 100e9).with_activity(0.3, 0.9);
        let mut full = device();
        full.set_application_clocks(MegaHertz(1410)).unwrap();
        let r_full = full.run_region(&mem_bound);
        let mut slow = device();
        slow.set_application_clocks(MegaHertz(1410)).unwrap();
        slow.set_memory_clock(MegaHertz(810)).unwrap();
        assert_eq!(slow.current_mem_clock(), MegaHertz(810));
        let r_slow = slow.run_region(&mem_bound);
        let slowdown = r_slow.duration().as_secs_f64() / r_full.duration().as_secs_f64();
        // Bandwidth scales with the memory clock: ~1593/810 for a
        // bandwidth-dominated kernel.
        assert!(slowdown > 1.5, "memory-bound slowdown {slowdown}");
        // And the energy saving is nowhere near proportional — the paper's
        // reason to leave memory frequency alone.
        let e_ratio = r_slow.energy.0 / r_full.energy.0;
        assert!(
            e_ratio > 0.95,
            "energy barely drops (often rises): {e_ratio}"
        );
    }

    #[test]
    fn memory_clock_validation() {
        let mut d = device();
        assert!(matches!(
            d.set_memory_clock(MegaHertz(1000)),
            Err(ArchError::UnsupportedClock { .. })
        ));
        assert!(d.set_memory_clock(MegaHertz(1215)).is_ok());
        d.lock_clock_control();
        assert!(matches!(
            d.set_memory_clock(MegaHertz(1593)),
            Err(ArchError::NoPermission(_))
        ));
    }

    #[test]
    fn region_exec_reports_average_frequency() {
        let mut d = device();
        d.set_application_clocks(MegaHertz(1110)).unwrap();
        let r = d.run_region(&heavy());
        assert_eq!(r.avg_freq, MegaHertz(1110));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn memory_clock_set_rides_the_clock_set_channel() {
        let inj = faults::FaultInjector::new(faults::FaultProfile {
            seed: 42,
            clock_set_reject: 1.0,
            ..faults::FaultProfile::default()
        });
        let mut d = device();
        d.set_fault_handle(inj.device(0));
        // Re-requesting the clock the device already holds draws no fault —
        // core-only tuners keep their exact schedules.
        assert!(d.set_memory_clock(MegaHertz(1593)).is_ok());
        assert_eq!(inj.stats().clock_set_injected, 0);
        // A real transition is transiently rejected, leaving the clock as-is.
        assert!(matches!(
            d.set_memory_clock(MegaHertz(1215)),
            Err(ArchError::Transient(_))
        ));
        assert_eq!(inj.stats().clock_set_injected, 1);
        assert_eq!(d.current_mem_clock(), MegaHertz(1593));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn memory_clock_clamp_lands_a_pstate_lower_and_reads_back() {
        let inj = faults::FaultInjector::new(faults::FaultProfile {
            seed: 7,
            clock_clamp: 1.0,
            clock_clamp_rungs: 1,
            ..faults::FaultProfile::default()
        });
        let mut d = device();
        d.set_fault_handle(inj.device(0));
        // The call "succeeds" but the device holds the next lower P-state —
        // detectable only by reading the clock back.
        assert!(d.set_memory_clock(MegaHertz(1215)).is_ok());
        assert_eq!(d.current_mem_clock(), MegaHertz(810));
        assert_eq!(inj.stats().clock_clamp_injected, 1);
        // At the bottom of the table there is nothing lower to clamp to.
        let mut d2 = device();
        d2.set_fault_handle(inj.device(1));
        assert!(d2.set_memory_clock(MegaHertz(810)).is_ok());
        assert_eq!(d2.current_mem_clock(), MegaHertz(810));
    }
}
