//! GPU kernel workload descriptors and execution-time models.
//!
//! A kernel region (one instrumented SPH-EXA function) is described by the
//! work it performs — floating-point operations, DRAM traffic, and how many
//! device launches it issues. An [`ExecModel`] maps (workload, clock) to busy
//! time. The roofline model is the default; a naive `1/f` model is kept for
//! the ablation bench showing why memory-bound kernels tolerate down-scaling.

use serde::{Deserialize, Serialize};

use crate::spec::GpuSpec;
use crate::time::SimDuration;
use crate::units::MegaHertz;

/// Work performed by one instrumented kernel region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelWorkload {
    /// Function name as it appears in the instrumentation report
    /// (e.g. `MomentumEnergy`, `IADVelocityDivCurl`).
    pub name: String,
    /// Total floating-point operations in the region.
    pub flops: f64,
    /// Total DRAM bytes moved by the region.
    pub bytes: f64,
    /// Number of device kernel launches the region issues. Heavy physics
    /// kernels launch once or a few times; `DomainDecompAndSync` issues many
    /// lightweight launches (§IV-E).
    pub launches: u32,
    /// Activity factor (0..=1) of the SM/compute logic while the region runs.
    /// Scales the core-clock-dependent share of dynamic power.
    pub compute_activity: f64,
    /// Activity factor (0..=1) of the memory subsystem while the region runs.
    /// This share of dynamic power does *not* scale with the core clock.
    pub memory_activity: f64,
    /// Available parallelism (independent work items, e.g. particles).
    /// `0` means "assume the device is saturated". Below the device's
    /// saturation point, throughput efficiency and clock sensitivity both
    /// drop — the §IV-C observation that under-utilized GPUs (the 200³ case
    /// of Fig. 6) tolerate lower clocks.
    #[serde(default)]
    pub parallelism: f64,
}

impl KernelWorkload {
    /// A workload with sane defaults: a single launch, moderate activity.
    pub fn new(name: impl Into<String>, flops: f64, bytes: f64) -> Self {
        KernelWorkload {
            name: name.into(),
            flops,
            bytes,
            launches: 1,
            compute_activity: 0.7,
            memory_activity: 0.5,
            parallelism: 0.0,
        }
    }

    /// Builder: set the number of device launches.
    pub fn with_launches(mut self, launches: u32) -> Self {
        self.launches = launches;
        self
    }

    /// Builder: set compute/memory activity factors (clamped to 0..=1).
    pub fn with_activity(mut self, compute: f64, memory: f64) -> Self {
        self.compute_activity = compute.clamp(0.0, 1.0);
        self.memory_activity = memory.clamp(0.0, 1.0);
        self
    }

    /// Builder: declare the available parallelism (work items).
    pub fn with_parallelism(mut self, parallelism: f64) -> Self {
        self.parallelism = parallelism.max(0.0);
        self
    }

    /// Arithmetic intensity in FLOP/byte — the roofline x-axis.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Scale the amount of work (flops, bytes) by `k`, keeping activity and
    /// launch structure. Used to re-run the same function shape at another
    /// problem size.
    pub fn scaled(&self, k: f64) -> Self {
        KernelWorkload {
            flops: self.flops * k,
            bytes: self.bytes * k,
            ..self.clone()
        }
    }
}

/// Decomposition of a region's busy time at a given clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecBreakdown {
    /// Core-clock-sensitive compute time.
    pub compute: SimDuration,
    /// Core-clock-insensitive memory time.
    pub memory: SimDuration,
    /// Frequency-independent launch/driver overhead.
    pub overhead: SimDuration,
    /// Total busy time (what the caller advances the virtual clock by).
    pub total: SimDuration,
}

impl ExecBreakdown {
    /// Fraction of the total that scales with the core clock — the kernel's
    /// effective frequency sensitivity `beta`.
    pub fn compute_fraction(&self) -> f64 {
        let t = self.total.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.compute.as_secs_f64() / t
        }
    }
}

/// Maps a workload and a core clock to execution time.
pub trait ExecModel: Send + Sync {
    /// Busy-time breakdown at constant clock `f`.
    fn breakdown(&self, w: &KernelWorkload, f: MegaHertz, gpu: &GpuSpec) -> ExecBreakdown;

    /// Busy time at constant clock `f`.
    fn duration(&self, w: &KernelWorkload, f: MegaHertz, gpu: &GpuSpec) -> SimDuration {
        self.breakdown(w, f, gpu).total
    }
}

/// Roofline-style model with partial compute/memory overlap:
///
/// ```text
/// t_comp(f) = flops / (peak_flops * f/f_max)
/// t_mem     = bytes / mem_bandwidth
/// t_busy    = alpha * max(t_comp, t_mem) + (1-alpha) * (t_comp + t_mem)
///           + launches * launch_overhead
/// ```
///
/// With `overlap = 0` the phases serialize (conservative); with `overlap = 1`
/// they overlap perfectly (classic roofline). Either way, only the compute
/// share responds to the core clock, which is exactly why the paper's
/// memory-bound kernels (`XMass`, `NormalizationGradh`) tolerate 1005 MHz
/// while `MomentumEnergy` slows by >20 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflineModel {
    /// Compute/memory overlap factor in `[0, 1]`.
    pub overlap: f64,
}

impl Default for RooflineModel {
    fn default() -> Self {
        // Calibrated against the paper's per-kernel slowdowns (Fig. 8a):
        // partial overlap keeps compute-bound kernels' slowdown near but
        // below the pure 1/f bound.
        RooflineModel { overlap: 0.3 }
    }
}

impl RooflineModel {
    /// Throughput efficiency at a given occupancy: an under-filled device
    /// wastes issue slots.
    pub fn efficiency(occ: f64) -> f64 {
        0.35 + 0.65 * occ
    }

    /// Fraction of compute time that scales with the core clock. Even tiny
    /// kernels keep some sensitivity (dependent-instruction latency is
    /// measured in cycles), but under-filled devices are mostly
    /// latency/stall-bound and barely notice the clock — the §IV-C
    /// under-utilization effect.
    pub fn clock_sensitivity(occ: f64) -> f64 {
        0.25 + 0.75 * occ
    }
}

impl ExecModel for RooflineModel {
    fn breakdown(&self, w: &KernelWorkload, f: MegaHertz, gpu: &GpuSpec) -> ExecBreakdown {
        let fmax = gpu.clock_table.max();
        let clock_scale = f.ratio(fmax).max(1e-6);
        let occ = gpu.occupancy(w.parallelism);
        let eff = Self::efficiency(occ);
        let sens = Self::clock_sensitivity(occ);
        let t_comp_ref = w.flops / (gpu.peak_flops * eff);
        // Clock-sensitive compute time; the stall remainder behaves like
        // memory time (insensitive to the core clock).
        let t_comp_s = t_comp_ref * sens / clock_scale;
        let t_mem_s = w.bytes / gpu.mem_bandwidth + t_comp_ref * (1.0 - sens);
        let a = self.overlap.clamp(0.0, 1.0);
        let busy_s = a * t_comp_s.max(t_mem_s) + (1.0 - a) * (t_comp_s + t_mem_s);
        let overhead = gpu.launch_overhead * u64::from(w.launches);
        // Attribute the overlapped saving proportionally so the reported
        // compute fraction still reflects clock sensitivity.
        let shrink = if t_comp_s + t_mem_s > 0.0 {
            busy_s / (t_comp_s + t_mem_s)
        } else {
            1.0
        };
        let compute = SimDuration::from_secs_f64(t_comp_s * shrink);
        let memory = SimDuration::from_secs_f64(t_mem_s * shrink);
        ExecBreakdown {
            compute,
            memory,
            overhead,
            total: compute + memory + overhead,
        }
    }
}

/// Ablation model: *everything* scales as `1/f`, as if the whole GPU were a
/// single clock domain. Over-predicts both the slowdown and the energy saving
/// of down-scaling for memory-bound kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NaiveInverseModel;

impl ExecModel for NaiveInverseModel {
    fn breakdown(&self, w: &KernelWorkload, f: MegaHertz, gpu: &GpuSpec) -> ExecBreakdown {
        let fmax = gpu.clock_table.max();
        let clock_scale = f.ratio(fmax).max(1e-6);
        let busy_ref = w.flops / gpu.peak_flops + w.bytes / gpu.mem_bandwidth;
        let compute = SimDuration::from_secs_f64(busy_ref / clock_scale);
        let overhead = gpu.launch_overhead * u64::from(w.launches);
        ExecBreakdown {
            compute,
            memory: SimDuration::ZERO,
            overhead,
            total: compute + overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn a100() -> GpuSpec {
        GpuSpec::a100_sxm4_80gb()
    }

    fn compute_bound() -> KernelWorkload {
        // 100 GFLOP, 1 GB traffic on an A100-like device -> compute dominated.
        KernelWorkload::new("MomentumEnergy", 100e9, 1e9).with_activity(0.95, 0.5)
    }

    fn memory_bound() -> KernelWorkload {
        // 1 GFLOP, 20 GB traffic -> memory dominated.
        KernelWorkload::new("XMass", 1e9, 20e9).with_activity(0.25, 0.9)
    }

    #[test]
    fn compute_bound_kernel_tracks_clock() {
        let gpu = a100();
        let m = RooflineModel::default();
        let w = compute_bound();
        let t_hi = m.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
        let t_lo = m.duration(&w, MegaHertz(1005), &gpu).as_secs_f64();
        let slowdown = t_lo / t_hi;
        assert!(
            slowdown > 1.15,
            "compute-bound slowdown too small: {slowdown}"
        );
        assert!(slowdown < 1.41, "cannot exceed pure 1/f bound: {slowdown}");
    }

    #[test]
    fn memory_bound_kernel_mostly_insensitive() {
        let gpu = a100();
        let m = RooflineModel::default();
        let w = memory_bound();
        let t_hi = m.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
        let t_lo = m.duration(&w, MegaHertz(1005), &gpu).as_secs_f64();
        let slowdown = t_lo / t_hi;
        assert!(
            slowdown < 1.08,
            "memory-bound slowdown too large: {slowdown}"
        );
    }

    #[test]
    fn duration_monotonically_decreases_with_clock() {
        let gpu = a100();
        let m = RooflineModel::default();
        let w = compute_bound();
        let mut prev = 0.0f64;
        for f in gpu
            .clock_table
            .clocks_in_range(MegaHertz(1005), MegaHertz(1410))
        {
            // Clocks enumerate descending, so durations must be non-decreasing.
            let t = m.duration(&w, f, &gpu).as_secs_f64();
            assert!(t >= prev, "duration not monotone at {f}: {t} < {prev}");
            prev = t;
        }
        // Explicit endpoint check.
        assert!(m.duration(&w, MegaHertz(1005), &gpu) > m.duration(&w, MegaHertz(1410), &gpu));
    }

    #[test]
    fn launch_overhead_is_frequency_independent() {
        let gpu = a100();
        let m = RooflineModel::default();
        let w = KernelWorkload::new("DomainDecompAndSync", 1e6, 1e6).with_launches(300);
        let hi = m.breakdown(&w, MegaHertz(1410), &gpu);
        let lo = m.breakdown(&w, MegaHertz(1005), &gpu);
        assert_eq!(hi.overhead, lo.overhead);
        assert_eq!(hi.overhead, gpu.launch_overhead * 300);
        // Overhead dominates this lightweight region.
        assert!(hi.overhead.as_secs_f64() / hi.total.as_secs_f64() > 0.5);
    }

    #[test]
    fn compute_fraction_reflects_boundedness() {
        let gpu = a100();
        let m = RooflineModel::default();
        let bc = m.breakdown(&compute_bound(), MegaHertz(1410), &gpu);
        let bm = m.breakdown(&memory_bound(), MegaHertz(1410), &gpu);
        assert!(bc.compute_fraction() > 0.7);
        assert!(bm.compute_fraction() < 0.2);
    }

    #[test]
    fn naive_model_overpredicts_memory_bound_slowdown() {
        let gpu = a100();
        let w = memory_bound();
        let roof = RooflineModel::default();
        let naive = NaiveInverseModel;
        let s_roof = roof.duration(&w, MegaHertz(1005), &gpu).as_secs_f64()
            / roof.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
        let s_naive = naive.duration(&w, MegaHertz(1005), &gpu).as_secs_f64()
            / naive.duration(&w, MegaHertz(1410), &gpu).as_secs_f64();
        assert!(
            s_naive > s_roof + 0.2,
            "naive {s_naive} vs roofline {s_roof}"
        );
    }

    #[test]
    fn arithmetic_intensity_and_scaling() {
        let w = KernelWorkload::new("k", 10.0, 5.0);
        assert!((w.arithmetic_intensity() - 2.0).abs() < 1e-12);
        let w2 = w.scaled(3.0);
        assert_eq!(w2.flops, 30.0);
        assert_eq!(w2.bytes, 15.0);
        assert!((w2.arithmetic_intensity() - 2.0).abs() < 1e-12);
        let wz = KernelWorkload::new("z", 1.0, 0.0);
        assert!(wz.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn activity_clamped() {
        let w = KernelWorkload::new("k", 1.0, 1.0).with_activity(7.0, -3.0);
        assert_eq!(w.compute_activity, 1.0);
        assert_eq!(w.memory_activity, 0.0);
    }
}
