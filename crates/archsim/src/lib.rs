//! # archsim — CPU+GPU node architecture simulator
//!
//! The hardware substrate for the SC 2024 reproduction *"Increasing Energy
//! Efficiency of Astrophysics Simulations Through GPU Frequency Scaling"*.
//! Everything above this crate (NVML shim, PMT, pm_counters, Slurm
//! accounting, the SPH framework) treats these devices as if they were real
//! silicon: kernels take time that depends on the compute clock, power
//! depends on voltage · frequency · activity, and an autonomous DVFS governor
//! boosts clocks on every kernel launch.
//!
//! ## Model summary
//!
//! * **Execution** — roofline: `t(f) = t_mem + t_comp · f_max/f` plus
//!   frequency-independent launch overhead ([`kernel::RooflineModel`]).
//! * **Power** — `P = P_idle + P_sm · a_c · (V(f)/V_max)² · f/f_max +
//!   P_mem · a_m` ([`spec::GpuSpec::busy_power`]).
//! * **Governor** — boost-on-launch before utilization feedback, slow decay
//!   on idle, per-transition energy cost and an autoboost voltage guard-band
//!   ([`governor::DvfsParams`]) — reproducing the paper's §IV-E trace and the
//!   "DVFS costs more energy than pinned clocks" result.
//! * **Time** — virtual nanoseconds; runs are deterministic and paper-scale
//!   workloads complete in host-milliseconds ([`time`]).

pub mod cpu;
pub mod error;
pub mod export;
pub mod freq;
pub mod governor;
pub mod gpu;
pub mod kernel;
pub mod node;
pub mod spec;
pub mod systems;
pub mod template;
pub mod thermal;
pub mod time;
pub mod timeline;
pub mod units;

pub use cpu::{CpuDevice, MemoryDevice};
pub use error::ArchError;
pub use freq::{ClockTable, VoltageCurve};
pub use governor::{ClockPolicy, DvfsParams};
pub use gpu::{ExecModelKind, GpuDevice, RegionExec};
pub use kernel::{ExecBreakdown, ExecModel, KernelWorkload, NaiveInverseModel, RooflineModel};
pub use node::{Node, NodeSpec};
pub use spec::{CpuSpec, GpuSpec, MemSpec};
pub use systems::{all_systems, cscs_a100, lumi_g, mini_hpc, Cluster, SystemSpec};
pub use template::{Cooling, DeviceTemplate, BUILTIN_DEVICES};
pub use thermal::ThermalSpec;
pub use time::{SimDuration, SimInstant};
pub use timeline::{FreqTimeline, PowerSegment, PowerTimeline};
pub use units::{EnergyDelay, Joules, MegaHertz, Volts, Watts};
