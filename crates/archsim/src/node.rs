//! A compute node: CPU socket(s), DRAM, GPUs and auxiliary components.
//!
//! GPU devices are handed to rank threads behind `Arc<Mutex<..>>` so each MPI
//! rank can drive "its" GPU while measurement tools read power concurrently.
//! Node-level energy (what Cray `pm_counters`' `energy` file reports) is the
//! sum of all device timelines plus a constant auxiliary draw — which is why
//! the paper can only report the auxiliary share as a *calculated* "Other".

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cpu::{CpuDevice, MemoryDevice};
use crate::error::ArchError;
use crate::gpu::GpuDevice;
use crate::spec::{CpuSpec, GpuSpec, MemSpec};
use crate::time::SimInstant;
use crate::units::{Joules, MegaHertz, Watts};

/// Hardware configuration of one node (the "Hardware of each Node" column of
/// Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// System this node belongs to (e.g. `"LUMI-G"`).
    pub system: String,
    pub cpu: CpuSpec,
    /// CPU sockets per node (miniHPC has 2).
    pub sockets: u32,
    pub mem: MemSpec,
    pub gpu: GpuSpec,
    /// Schedulable GPU devices per node — GCDs on LUMI-G (8), full cards
    /// elsewhere.
    pub gpu_devices: u32,
    /// GCDs sharing one physical card (and one `accel*_energy` counter):
    /// 2 on LUMI-G, 1 elsewhere.
    pub gcds_per_card: u32,
    /// Constant draw of everything else: NIC, fans, VRM losses, board.
    pub aux_power: Watts,
    /// Default compute clock the centre pins (Table I "GPU Frequencies").
    pub default_gpu_freq: MegaHertz,
    /// Memory clock (never changed, matching the paper).
    pub gpu_mem_freq: MegaHertz,
    /// Whether the centre allows user-level clock control (only miniHPC).
    pub user_clock_control: bool,
}

impl NodeSpec {
    /// Physical GPU cards per node.
    pub fn cards(&self) -> u32 {
        self.gpu_devices / self.gcds_per_card
    }
}

/// A live node with instantiated devices.
pub struct Node {
    spec: NodeSpec,
    cpu: Arc<Mutex<CpuDevice>>,
    mem: Arc<Mutex<MemoryDevice>>,
    gpus: Vec<Arc<Mutex<GpuDevice>>>,
}

impl Node {
    /// Instantiate all devices of `spec`, applying the centre's clock-control
    /// policy and default clocks.
    pub fn new(spec: NodeSpec) -> Self {
        let gpus = (0..spec.gpu_devices as usize)
            .map(|i| {
                let mut g = GpuDevice::new(i, spec.gpu.clone());
                if spec.user_clock_control {
                    g.unlock_clock_control();
                } else {
                    // Centre pins the default clock, then locks control.
                    g.set_application_clocks(spec.default_gpu_freq)
                        .expect("default clock must be supported");
                    g.lock_clock_control();
                }
                Arc::new(Mutex::new(g))
            })
            .collect();
        Node {
            cpu: Arc::new(Mutex::new(CpuDevice::new(spec.cpu.clone()))),
            mem: Arc::new(Mutex::new(MemoryDevice::new(spec.mem.clone()))),
            gpus,
            spec,
        }
    }

    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    pub fn cpu(&self) -> Arc<Mutex<CpuDevice>> {
        Arc::clone(&self.cpu)
    }

    pub fn mem(&self) -> Arc<Mutex<MemoryDevice>> {
        Arc::clone(&self.mem)
    }

    /// Number of schedulable GPU devices.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Shared handle to GPU `index`.
    pub fn gpu(&self, index: usize) -> Result<Arc<Mutex<GpuDevice>>, ArchError> {
        self.gpus
            .get(index)
            .cloned()
            .ok_or(ArchError::NoSuchDevice {
                index,
                count: self.gpus.len(),
            })
    }

    /// All GPU handles.
    pub fn gpus(&self) -> &[Arc<Mutex<GpuDevice>>] {
        &self.gpus
    }

    /// Privileged (Slurm/centre-side) GPU clock configuration: applies the
    /// requested compute clock to every GPU regardless of the user-level
    /// clock-control policy, preserving the lock state afterwards. This is
    /// the `--gpu-freq` path of §II-B — the only frequency control users get
    /// on systems that lock `SetApplicationsClocks`.
    pub fn privileged_set_gpu_clocks(&self, f: MegaHertz) -> Result<(), ArchError> {
        for g in &self.gpus {
            let mut g = g.lock();
            let was_locked = !g.clock_control_allowed();
            g.unlock_clock_control();
            let result = g.set_application_clocks(f);
            if was_locked {
                g.lock_clock_control();
            }
            result?;
        }
        Ok(())
    }

    /// Latest instant for which *all* device timelines are recorded.
    pub fn recorded_until(&self) -> SimInstant {
        let mut t = self.cpu.lock().now().min(self.mem.lock().now());
        for g in &self.gpus {
            t = t.min(g.lock().now());
        }
        t
    }

    /// Drive CPU and memory at constant activities and idle all GPUs up to
    /// instant `t` — used to close out a job so every timeline covers the
    /// same span.
    pub fn settle_until(&self, t: SimInstant, cpu_activity: f64, mem_activity: f64) {
        self.cpu.lock().busy_until(t, cpu_activity);
        self.mem.lock().busy_until(t, mem_activity);
        for g in &self.gpus {
            g.lock().idle_until(t);
        }
    }

    /// CPU package energy over `[a, b)` (all sockets).
    pub fn cpu_energy(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.cpu.lock().energy_between(a, b) * f64::from(self.spec.sockets)
    }

    /// DRAM energy over `[a, b)`.
    pub fn memory_energy(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.mem.lock().energy_between(a, b)
    }

    /// Energy of one *card* over `[a, b)` — the granularity of the Cray
    /// `accel[0-3]_energy` counters. On LUMI-G a card aggregates two GCDs,
    /// which is the measurement quirk §III-B discusses.
    pub fn accel_card_energy(
        &self,
        card: usize,
        a: SimInstant,
        b: SimInstant,
    ) -> Result<Joules, ArchError> {
        let per_card = self.spec.gcds_per_card as usize;
        let count = self.cards() as usize;
        if card >= count {
            return Err(ArchError::NoSuchDevice { index: card, count });
        }
        let mut e = Joules::ZERO;
        for i in card * per_card..(card + 1) * per_card {
            e += self.gpus[i].lock().energy_between(a, b);
        }
        Ok(e)
    }

    /// Physical cards on this node.
    pub fn cards(&self) -> u32 {
        self.spec.cards()
    }

    /// Energy of all GPU devices over `[a, b)`.
    pub fn gpu_energy(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.gpus
            .iter()
            .map(|g| g.lock().energy_between(a, b))
            .sum()
    }

    /// Auxiliary ("Other") energy over `[a, b)`.
    pub fn aux_energy(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.spec.aux_power.energy_over(b - a)
    }

    /// Whole-node energy over `[a, b)` — what the node-level `energy`
    /// counter integrates.
    pub fn node_energy(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.cpu_energy(a, b)
            + self.memory_energy(a, b)
            + self.gpu_energy(a, b)
            + self.aux_energy(a, b)
    }

    /// Instantaneous whole-node power at `t`.
    pub fn node_power_at(&self, t: SimInstant) -> Watts {
        let mut p = self.cpu.lock().power_timeline().power_at(t) * f64::from(self.spec.sockets);
        p += self.mem.lock().power_timeline().power_at(t);
        for g in &self.gpus {
            p += g.lock().power_timeline().power_at(t);
        }
        p + self.spec.aux_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn lumi_node_has_8_gcds_on_4_cards() {
        let node = Node::new(systems::lumi_g().node);
        assert_eq!(node.gpu_count(), 8);
        assert_eq!(node.cards(), 4);
    }

    #[test]
    fn production_nodes_lock_clock_control() {
        let node = Node::new(systems::cscs_a100().node);
        let gpu = node.gpu(0).unwrap();
        let mut g = gpu.lock();
        assert!(!g.clock_control_allowed());
        assert!(g.set_application_clocks(MegaHertz(1005)).is_err());
        assert_eq!(
            g.current_freq(),
            MegaHertz(1410),
            "pinned to centre default"
        );
    }

    #[test]
    fn minihpc_allows_user_clock_control() {
        let node = Node::new(systems::mini_hpc().node);
        let gpu = node.gpu(0).unwrap();
        assert!(gpu.lock().set_application_clocks(MegaHertz(1005)).is_ok());
    }

    #[test]
    fn card_energy_aggregates_gcd_pairs() {
        let node = Node::new(systems::lumi_g().node);
        let end = t(100);
        node.settle_until(end, 0.2, 0.3);
        let card0 = node.accel_card_energy(0, t(0), end).unwrap();
        let gcd0 = node.gpu(0).unwrap().lock().energy_between(t(0), end);
        let gcd1 = node.gpu(1).unwrap().lock().energy_between(t(0), end);
        assert!((card0.0 - (gcd0.0 + gcd1.0)).abs() < 1e-9);
        assert!(node.accel_card_energy(4, t(0), end).is_err());
    }

    #[test]
    fn node_energy_is_sum_of_parts() {
        let node = Node::new(systems::cscs_a100().node);
        let end = t(250);
        node.settle_until(end, 0.2, 0.3);
        let total = node.node_energy(t(0), end);
        let parts = node.cpu_energy(t(0), end)
            + node.memory_energy(t(0), end)
            + node.gpu_energy(t(0), end)
            + node.aux_energy(t(0), end);
        assert!((total.0 - parts.0).abs() < 1e-9);
        assert!(total.0 > 0.0);
    }

    #[test]
    fn settle_until_advances_all_timelines() {
        let node = Node::new(systems::mini_hpc().node);
        node.settle_until(t(50), 0.1, 0.1);
        assert_eq!(node.recorded_until(), t(50));
    }

    #[test]
    fn node_power_at_includes_aux_and_sockets() {
        let node = Node::new(systems::mini_hpc().node); // 2 sockets
        node.settle_until(t(10), 0.0, 0.0);
        let p = node.node_power_at(t(5));
        let spec = node.spec();
        let floor = spec.cpu.idle_power.0 * 2.0 + spec.mem.idle_power.0 + spec.aux_power.0;
        assert!(p.0 >= floor, "{} < {floor}", p.0);
    }

    #[test]
    fn gpu_index_out_of_range_errors() {
        let node = Node::new(systems::mini_hpc().node);
        assert!(matches!(
            node.gpu(99),
            Err(ArchError::NoSuchDevice {
                index: 99,
                count: 2
            })
        ));
    }

    #[test]
    fn recorded_until_is_minimum_across_devices() {
        let node = Node::new(systems::mini_hpc().node);
        node.cpu().lock().busy_until(t(100), 0.1);
        // GPUs still at zero.
        assert_eq!(node.recorded_until(), SimInstant::ZERO);
        node.settle_until(t(20), 0.0, 0.0);
        assert_eq!(node.recorded_until(), t(20).max(SimInstant::ZERO));
        let _ = SimDuration::ZERO;
    }
}
