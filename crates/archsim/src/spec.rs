//! Hardware specifications: GPU, CPU and memory power/performance envelopes.
//!
//! Numbers are datasheet-level (peak FLOP/s, memory bandwidth, TDP split into
//! idle + SM-dynamic + memory-dynamic shares). They do not need to be exact:
//! every experiment in the paper is reported *normalized* to a baseline; what
//! matters is that the envelopes respond to frequency, voltage and activity
//! the way real parts do.

use serde::{Deserialize, Serialize};

use crate::freq::{ClockTable, VoltageCurve};
use crate::thermal::ThermalSpec;
use crate::time::SimDuration;
use crate::units::{Joules, MegaHertz, Volts, Watts};

/// One GPU device (a full card, or one GCD of a dual-die card).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Nvidia A100-SXM4-80GB"`.
    pub name: String,
    /// Supported graphics/compute clocks.
    pub clock_table: ClockTable,
    /// Voltage/frequency operating curve.
    pub voltage: VoltageCurve,
    /// Default (maximum) memory clock. The paper keeps memory frequency
    /// untouched; [`GpuSpec::mem_clock_table`] lists the other supported
    /// points so the choice can be ablated.
    pub mem_clock: MegaHertz,
    /// Supported memory clocks, descending (first = `mem_clock`). HBM parts
    /// expose only a few P-states.
    pub mem_clock_table: Vec<MegaHertz>,
    /// Peak FP64 throughput at the maximum clock, FLOP/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth, bytes/s (core-clock independent: HBM has its own
    /// clock domain).
    pub mem_bandwidth: f64,
    /// Host-side launch/driver overhead per kernel launch.
    pub launch_overhead: SimDuration,
    /// Power draw with clocks at the floor and no work resident.
    pub idle_power: Watts,
    /// Maximum *dynamic* power of the SM/compute domain (scales with
    /// `V(f)^2 * f` and compute activity).
    pub sm_dynamic_max: Watts,
    /// Maximum dynamic power of the memory subsystem (scales with memory
    /// activity only).
    pub mem_dynamic_max: Watts,
    /// Residual dynamic power burned just by *holding* the core clock high
    /// while idle (clock tree + leakage at elevated voltage), expressed as a
    /// fraction of `sm_dynamic_max` at full scale.
    pub clock_hold_fraction: f64,
    /// Energy dissipated by one DVFS clock/voltage transition.
    pub transition_cost: Joules,
    /// Extra voltage guard-band the autoboost governor applies relative to
    /// the steady-state V/F point (pinned application clocks run without it).
    /// This is why the paper measures *higher* energy under DVFS than under a
    /// pinned 1410 MHz baseline (§IV-D).
    pub boost_voltage_margin: f64,
    /// Work items needed to saturate the device. Kernels offering less
    /// parallelism lose throughput efficiency and clock sensitivity —
    /// under-utilization in the sense of Fig. 6's 200³ case.
    pub saturation_parallelism: f64,
    /// Package thermal envelope (RC response, leakage, slowdown threshold).
    pub thermal: ThermalSpec,
}

impl GpuSpec {
    /// Nvidia A100-SXM4 80 GB (CSCS-A100 system): 9.7 TF FP64, 2.0 TB/s,
    /// 400 W TDP.
    pub fn a100_sxm4_80gb() -> Self {
        GpuSpec {
            name: "Nvidia A100-SXM4-80GB".into(),
            clock_table: ClockTable::a100(),
            voltage: VoltageCurve::a100(),
            mem_clock: MegaHertz(1593),
            mem_clock_table: vec![MegaHertz(1593), MegaHertz(1215), MegaHertz(810)],
            peak_flops: 9.7e12,
            mem_bandwidth: 2.0e12,
            launch_overhead: SimDuration::from_micros(4),
            idle_power: Watts(55.0),
            sm_dynamic_max: Watts(255.0),
            mem_dynamic_max: Watts(90.0),
            clock_hold_fraction: 0.10,
            transition_cost: Joules(0.015),
            boost_voltage_margin: 0.025,
            saturation_parallelism: 30e6,
            thermal: ThermalSpec::sxm(),
        }
    }

    /// Nvidia A100-PCIE 40 GB (miniHPC system): 9.7 TF FP64, 1.56 TB/s,
    /// 250 W TDP.
    pub fn a100_pcie_40gb() -> Self {
        GpuSpec {
            name: "Nvidia A100-PCIE-40GB".into(),
            clock_table: ClockTable::a100(),
            voltage: VoltageCurve::a100(),
            mem_clock: MegaHertz(1593),
            mem_clock_table: vec![MegaHertz(1593), MegaHertz(1215), MegaHertz(810)],
            peak_flops: 9.7e12,
            mem_bandwidth: 1.555e12,
            launch_overhead: SimDuration::from_micros(5),
            idle_power: Watts(40.0),
            sm_dynamic_max: Watts(160.0),
            mem_dynamic_max: Watts(50.0),
            clock_hold_fraction: 0.10,
            transition_cost: Joules(0.012),
            boost_voltage_margin: 0.025,
            saturation_parallelism: 25e6,
            thermal: ThermalSpec::pcie(),
        }
    }

    /// One GCD (half card) of an AMD MI250X (LUMI-G system): ~24 TF FP64,
    /// 1.6 TB/s, 250 W per GCD.
    pub fn mi250x_gcd() -> Self {
        GpuSpec {
            name: "AMD MI250X GCD".into(),
            clock_table: ClockTable::mi250x(),
            voltage: VoltageCurve::mi250x(),
            mem_clock: MegaHertz(1600),
            mem_clock_table: vec![MegaHertz(1600), MegaHertz(1200), MegaHertz(800)],
            peak_flops: 23.9e12,
            mem_bandwidth: 1.6e12,
            launch_overhead: SimDuration::from_micros(6),
            idle_power: Watts(45.0),
            sm_dynamic_max: Watts(150.0),
            mem_dynamic_max: Watts(55.0),
            clock_hold_fraction: 0.12,
            transition_cost: Joules(0.018),
            boost_voltage_margin: 0.03,
            saturation_parallelism: 22e6,
            thermal: ThermalSpec::oam(),
        }
    }

    /// Intel Data Center GPU Max 1550 (Ponte Vecchio) — the Intel target of
    /// the paper's future-work list (§V): ~52 TF FP64, 3.2 TB/s, 600 W OAM.
    pub fn intel_max_1550() -> Self {
        GpuSpec {
            name: "Intel Data Center GPU Max 1550".into(),
            clock_table: ClockTable::new(MegaHertz(600), MegaHertz(1600), 50)
                .expect("valid Max 1550 table"),
            voltage: VoltageCurve {
                v_min: Volts(0.65),
                v_max: Volts(1.00),
                f_min: MegaHertz(600),
                f_max: MegaHertz(1600),
            },
            mem_clock: MegaHertz(3200),
            mem_clock_table: vec![MegaHertz(3200), MegaHertz(2400), MegaHertz(1600)],
            peak_flops: 52.0e12,
            mem_bandwidth: 3.2e12,
            launch_overhead: SimDuration::from_micros(6),
            idle_power: Watts(75.0),
            sm_dynamic_max: Watts(390.0),
            mem_dynamic_max: Watts(135.0),
            clock_hold_fraction: 0.10,
            transition_cost: Joules(0.02),
            boost_voltage_margin: 0.03,
            saturation_parallelism: 45e6,
            thermal: ThermalSpec::oam(),
        }
    }

    /// Instantaneous power while running a kernel region at clock `f` with
    /// the given activity factors. `boosted` applies the autoboost voltage
    /// guard-band (true while the DVFS governor — not pinned application
    /// clocks — owns the V/F point).
    pub fn busy_power(
        &self,
        f: MegaHertz,
        compute_activity: f64,
        memory_activity: f64,
        boosted: bool,
    ) -> Watts {
        let mut scale = self.voltage.dynamic_power_scale(f);
        if boosted {
            let m = 1.0 + self.boost_voltage_margin;
            scale *= m * m;
        }
        self.idle_power
            + self.sm_dynamic_max * (compute_activity.clamp(0.0, 1.0) * scale)
            + self.mem_dynamic_max * memory_activity.clamp(0.0, 1.0)
    }

    /// Instantaneous power while idle but holding clock `f`.
    pub fn idle_power_at(&self, f: MegaHertz, boosted: bool) -> Watts {
        let mut scale = self.voltage.dynamic_power_scale(f);
        if boosted {
            let m = 1.0 + self.boost_voltage_margin;
            scale *= m * m;
        }
        self.idle_power + self.sm_dynamic_max * (self.clock_hold_fraction * scale)
    }

    /// A copy of this spec with the memory subsystem down-clocked to
    /// `mem_mhz`: bandwidth scales linearly with the memory clock, memory
    /// dynamic power slightly super-linearly (I/O voltage tracks weakly).
    pub fn with_memory_clock(&self, mem_mhz: MegaHertz) -> GpuSpec {
        let ratio = f64::from(mem_mhz.0) / f64::from(self.mem_clock.0);
        let mut s = self.clone();
        s.mem_bandwidth *= ratio;
        s.mem_dynamic_max = s.mem_dynamic_max * ratio.powf(1.3);
        s
    }

    /// Occupancy in `[0, 1]` for a kernel offering `parallelism` work
    /// items; `0` parallelism means "assume saturated".
    pub fn occupancy(&self, parallelism: f64) -> f64 {
        if parallelism <= 0.0 || self.saturation_parallelism <= 0.0 {
            1.0
        } else {
            (parallelism / self.saturation_parallelism).min(1.0)
        }
    }

    /// Thermal design power (sanity bound: no model state may exceed it).
    pub fn tdp(&self) -> Watts {
        self.idle_power + self.sm_dynamic_max + self.mem_dynamic_max
    }
}

/// A node's CPU package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    pub name: String,
    pub cores: u32,
    /// Package power with all cores idle.
    pub idle_power: Watts,
    /// Package power at full load (TDP-ish).
    pub max_power: Watts,
    /// CPU frequency range in kHz (the units Slurm's `--cpu-freq` uses).
    pub min_freq_khz: u64,
    pub max_freq_khz: u64,
}

impl CpuSpec {
    /// AMD EPYC 7A53 "Trento", 64 cores (LUMI-G).
    pub fn epyc_7a53() -> Self {
        CpuSpec {
            name: "AMD EPYC 7A53".into(),
            cores: 64,
            idle_power: Watts(95.0),
            max_power: Watts(280.0),
            min_freq_khz: 1_500_000,
            max_freq_khz: 3_500_000,
        }
    }

    /// AMD EPYC 7713, 64 cores (CSCS-A100).
    pub fn epyc_7713() -> Self {
        CpuSpec {
            name: "AMD EPYC 7713".into(),
            cores: 64,
            idle_power: Watts(80.0),
            max_power: Watts(225.0),
            min_freq_khz: 1_500_000,
            max_freq_khz: 3_675_000,
        }
    }

    /// Intel Xeon Gold 6258R, 28 cores (miniHPC, two sockets per node).
    pub fn xeon_6258r() -> Self {
        CpuSpec {
            name: "Intel Xeon Gold 6258R".into(),
            cores: 28,
            idle_power: Watts(60.0),
            max_power: Watts(205.0),
            min_freq_khz: 1_200_000,
            max_freq_khz: 4_000_000,
        }
    }

    /// Package power at a given activity level in `[0, 1]` at the maximum
    /// frequency.
    pub fn power(&self, activity: f64) -> Watts {
        self.power_at(activity, self.max_freq_khz)
    }

    /// Package power at an activity level and a pinned frequency (kHz). The
    /// dynamic share scales quadratically with frequency (voltage tracks
    /// frequency on server parts) — the mechanism behind ARCHER2's default
    /// CPU-frequency reduction (§II-B).
    pub fn power_at(&self, activity: f64, freq_khz: u64) -> Watts {
        let f = (freq_khz.clamp(self.min_freq_khz, self.max_freq_khz) as f64)
            / self.max_freq_khz as f64;
        self.idle_power + (self.max_power - self.idle_power) * activity.clamp(0.0, 1.0) * f * f
    }
}

/// Node DRAM (not GPU HBM — that is inside [`GpuSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Installed capacity in GiB (Table I reports it; the power model uses it
    /// to scale idle draw).
    pub capacity_gib: u64,
    /// Idle (refresh) power.
    pub idle_power: Watts,
    /// Power at full access rate.
    pub max_power: Watts,
}

impl MemSpec {
    /// 512 GiB of DDR4 (LUMI-G node).
    pub fn ddr4_512gib() -> Self {
        MemSpec {
            capacity_gib: 512,
            idle_power: Watts(35.0),
            max_power: Watts(95.0),
        }
    }

    /// 512 GiB (CSCS-A100 node).
    pub fn ddr4_cscs() -> Self {
        MemSpec {
            capacity_gib: 512,
            idle_power: Watts(32.0),
            max_power: Watts(90.0),
        }
    }

    /// 1.5 TiB (miniHPC node).
    pub fn ddr4_1536gib() -> Self {
        MemSpec {
            capacity_gib: 1536,
            idle_power: Watts(70.0),
            max_power: Watts(160.0),
        }
    }

    /// Power at a given access activity in `[0, 1]`.
    pub fn power(&self, activity: f64) -> Watts {
        self.idle_power + (self.max_power - self.idle_power) * activity.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_tdp_matches_datasheet() {
        assert_eq!(GpuSpec::a100_sxm4_80gb().tdp(), Watts(400.0));
        assert_eq!(GpuSpec::a100_pcie_40gb().tdp(), Watts(250.0));
        assert_eq!(GpuSpec::mi250x_gcd().tdp(), Watts(250.0));
    }

    #[test]
    fn intel_max_1550_envelope() {
        let gpu = GpuSpec::intel_max_1550();
        assert_eq!(gpu.tdp(), Watts(600.0));
        assert!(gpu.clock_table.supports(MegaHertz(1600)));
        assert!(gpu.clock_table.supports(MegaHertz(600)));
        assert!(!gpu.clock_table.supports(MegaHertz(1410)));
        assert!(gpu.peak_flops > GpuSpec::mi250x_gcd().peak_flops);
    }

    #[test]
    fn busy_power_never_exceeds_tdp() {
        for gpu in [
            GpuSpec::a100_sxm4_80gb(),
            GpuSpec::a100_pcie_40gb(),
            GpuSpec::mi250x_gcd(),
            GpuSpec::intel_max_1550(),
        ] {
            let p = gpu.busy_power(gpu.clock_table.max(), 1.0, 1.0, false);
            assert!(
                p.0 <= gpu.tdp().0 + 1e-9,
                "{}: {p} > {}",
                gpu.name,
                gpu.tdp()
            );
        }
    }

    #[test]
    fn busy_power_drops_superlinearly_with_clock() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let hi = gpu.busy_power(MegaHertz(1410), 0.9, 0.5, false);
        let lo = gpu.busy_power(MegaHertz(1005), 0.9, 0.5, false);
        let power_ratio = lo.0 / hi.0;
        let clock_ratio = 1005.0 / 1410.0;
        assert!(power_ratio < 1.0);
        // Dynamic share drops faster than the clock ratio.
        let dyn_hi = hi.0 - gpu.idle_power.0;
        let dyn_lo = lo.0 - gpu.idle_power.0;
        // The memory term is clock-independent, so compare the SM share only.
        let sm_hi = dyn_hi - gpu.mem_dynamic_max.0 * 0.5;
        let sm_lo = dyn_lo - gpu.mem_dynamic_max.0 * 0.5;
        assert!(sm_lo / sm_hi < clock_ratio, "V^2 term missing");
    }

    #[test]
    fn boost_margin_increases_power() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let pinned = gpu.busy_power(MegaHertz(1410), 0.9, 0.5, false);
        let boosted = gpu.busy_power(MegaHertz(1410), 0.9, 0.5, true);
        assert!(boosted > pinned);
        let overhead = (boosted.0 - pinned.0) / pinned.0;
        assert!(
            overhead < 0.06,
            "guard-band overhead should be a few percent: {overhead}"
        );
    }

    #[test]
    fn idle_power_depends_on_held_clock() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let floor = gpu.idle_power_at(MegaHertz(210), false);
        let held = gpu.idle_power_at(MegaHertz(1410), false);
        assert!(held > floor);
        assert!(held.0 < gpu.idle_power.0 + gpu.sm_dynamic_max.0 * 0.2);
    }

    #[test]
    fn cpu_and_mem_power_clamped() {
        let cpu = CpuSpec::epyc_7713();
        assert_eq!(cpu.power(-1.0), cpu.idle_power);
        assert_eq!(cpu.power(2.0), cpu.max_power);
        let mem = MemSpec::ddr4_512gib();
        assert_eq!(mem.power(0.0), mem.idle_power);
        assert_eq!(mem.power(1.0), mem.max_power);
    }

    #[test]
    fn activity_factors_clamped_in_busy_power() {
        let gpu = GpuSpec::a100_sxm4_80gb();
        let p = gpu.busy_power(MegaHertz(1410), 5.0, 5.0, false);
        assert_eq!(p, gpu.tdp());
    }
}
