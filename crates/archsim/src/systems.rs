//! The three systems of Table I: LUMI-G, CSCS-A100 and miniHPC.

use serde::{Deserialize, Serialize};

use crate::node::{Node, NodeSpec};
use crate::spec::{CpuSpec, GpuSpec, MemSpec};
use crate::units::{MegaHertz, Watts};

/// A named system: node hardware plus cluster-level policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    pub name: String,
    pub node: NodeSpec,
    /// Free-text provenance note for reports.
    pub notes: String,
}

/// LUMI-G: 1× EPYC 7A53 (512 GB) + 4× MI250X (8 GCDs), per Table I.
pub fn lumi_g() -> SystemSpec {
    SystemSpec {
        name: "LUMI-G".into(),
        node: NodeSpec {
            system: "LUMI-G".into(),
            cpu: CpuSpec::epyc_7a53(),
            sockets: 1,
            mem: MemSpec::ddr4_512gib(),
            gpu: GpuSpec::mi250x_gcd(),
            gpu_devices: 8,
            gcds_per_card: 2,
            aux_power: Watts(220.0),
            default_gpu_freq: MegaHertz(1700),
            gpu_mem_freq: MegaHertz(1600),
            user_clock_control: false,
        },
        notes: "HPE/Cray EX; pm_counters available; AMD GPU compute 1700 MHz, memory 1600 MHz"
            .into(),
    }
}

/// CSCS-A100: 1× EPYC 7713 + 4× A100-SXM4-80GB, per Table I.
pub fn cscs_a100() -> SystemSpec {
    SystemSpec {
        name: "CSCS-A100".into(),
        node: NodeSpec {
            system: "CSCS-A100".into(),
            cpu: CpuSpec::epyc_7713(),
            sockets: 1,
            mem: MemSpec::ddr4_cscs(),
            gpu: GpuSpec::a100_sxm4_80gb(),
            gpu_devices: 4,
            gcds_per_card: 1,
            aux_power: Watts(160.0),
            default_gpu_freq: MegaHertz(1410),
            gpu_mem_freq: MegaHertz(1593),
            user_clock_control: false,
        },
        notes: "HPE/Cray built; no separate memory counter (memory folds into Other); Nvidia GPU compute 1410 MHz, memory 1593 MHz".into(),
    }
}

/// miniHPC: 2× Xeon Gold 6258R (1.5 TB) + 2× A100-PCIE-40GB, per Table I.
/// The only system allowing user-level GPU clock control.
pub fn mini_hpc() -> SystemSpec {
    SystemSpec {
        name: "miniHPC".into(),
        node: NodeSpec {
            system: "miniHPC".into(),
            cpu: CpuSpec::xeon_6258r(),
            sockets: 2,
            mem: MemSpec::ddr4_1536gib(),
            gpu: GpuSpec::a100_pcie_40gb(),
            gpu_devices: 2,
            gcds_per_card: 1,
            aux_power: Watts(130.0),
            default_gpu_freq: MegaHertz(1410),
            gpu_mem_freq: MegaHertz(1593),
            user_clock_control: true,
        },
        notes: "local research cluster; user-level frequency control; smaller GPU memory forces <= 450^3 particles per GPU".into(),
    }
}

/// All three systems, in Table I order.
pub fn all_systems() -> Vec<SystemSpec> {
    vec![lumi_g(), cscs_a100(), mini_hpc()]
}

/// A set of identical nodes with a rank→GPU assignment, enough to place an
/// MPI job ("one rank drives one GPU/GCD" — §III-B).
pub struct Cluster {
    spec: SystemSpec,
    nodes: Vec<Node>,
}

impl Cluster {
    /// Build `node_count` nodes of `spec`.
    pub fn new(spec: SystemSpec, node_count: usize) -> Self {
        let nodes = (0..node_count)
            .map(|_| Node::new(spec.node.clone()))
            .collect();
        Cluster { spec, nodes }
    }

    /// Build the smallest cluster that fits `ranks` ranks at one rank per
    /// GPU device.
    pub fn for_ranks(spec: SystemSpec, ranks: usize) -> Self {
        let per_node = spec.node.gpu_devices as usize;
        let nodes = ranks.div_ceil(per_node);
        Cluster::new(spec, nodes)
    }

    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total schedulable GPU devices.
    pub fn gpu_capacity(&self) -> usize {
        self.nodes.len() * self.spec.node.gpu_devices as usize
    }

    /// Node index and device index for a given rank (block placement, one
    /// rank per device).
    pub fn place_rank(&self, rank: usize) -> (usize, usize) {
        let per_node = self.spec.node.gpu_devices as usize;
        (rank / per_node, rank % per_node)
    }

    /// Node hosting `rank`.
    pub fn node_of_rank(&self, rank: usize) -> &Node {
        &self.nodes[self.place_rank(rank).0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_systems_match_paper() {
        let lumi = lumi_g();
        assert_eq!(lumi.node.gpu_devices, 8);
        assert_eq!(lumi.node.gcds_per_card, 2);
        assert_eq!(lumi.node.default_gpu_freq, MegaHertz(1700));
        assert_eq!(lumi.node.gpu_mem_freq, MegaHertz(1600));
        assert_eq!(lumi.node.cpu.cores, 64);

        let cscs = cscs_a100();
        assert_eq!(cscs.node.gpu_devices, 4);
        assert_eq!(cscs.node.default_gpu_freq, MegaHertz(1410));
        assert_eq!(cscs.node.gpu_mem_freq, MegaHertz(1593));

        let mini = mini_hpc();
        assert_eq!(mini.node.sockets, 2);
        assert_eq!(mini.node.gpu_devices, 2);
        assert!(mini.node.user_clock_control);
        assert_eq!(mini.node.mem.capacity_gib, 1536);
    }

    #[test]
    fn cluster_placement_one_rank_per_device() {
        let c = Cluster::for_ranks(cscs_a100(), 32);
        assert_eq!(c.node_count(), 8);
        assert_eq!(c.gpu_capacity(), 32);
        assert_eq!(c.place_rank(0), (0, 0));
        assert_eq!(c.place_rank(3), (0, 3));
        assert_eq!(c.place_rank(4), (1, 0));
        assert_eq!(c.place_rank(31), (7, 3));
    }

    #[test]
    fn cluster_rounds_up_partial_nodes() {
        let c = Cluster::for_ranks(lumi_g(), 12);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.gpu_capacity(), 16);
    }

    #[test]
    fn lumi_ranks_share_cards_pairwise() {
        let c = Cluster::for_ranks(lumi_g(), 16);
        // Ranks 0 and 1 drive GCDs 0 and 1 = card 0 of node 0.
        let (n0, d0) = c.place_rank(0);
        let (n1, d1) = c.place_rank(1);
        assert_eq!((n0, n1), (0, 0));
        assert_eq!(d0 / 2, d1 / 2, "same card");
        let (_, d2) = c.place_rank(2);
        assert_ne!(d0 / 2, d2 / 2, "different card");
    }
}
