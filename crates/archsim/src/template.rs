//! Loadable JSON device templates — the device half of the scenario & device
//! zoo.
//!
//! A [`DeviceTemplate`] is the on-disk shape of a [`GpuSpec`]: the explicit
//! supported-clock ladder (as `nvidia-smi -q -d SUPPORTED_CLOCKS` would print
//! it), the V-f endpoints, the memory P-state ladder, and the power envelope
//! with the SM dynamic share expressed as an effective switched capacitance
//! (`P_sm = C · V² · f`). The repo ships templates for A100-, H100-, MI250X-
//! and L4-class parts under `devices/`; `freqscale-matrix` expands them
//! against the scenario registry.
//!
//! Parsing rejects unknown fields (the serde error lists every supported
//! field), and [`DeviceTemplate::to_spec`] validates the physics: ladders
//! must be non-empty, strictly descending and uniform, envelopes positive.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::freq::{ClockTable, VoltageCurve};
use crate::spec::GpuSpec;
use crate::thermal::ThermalSpec;
use crate::time::SimDuration;
use crate::units::{Joules, MegaHertz, Volts, Watts};

/// V-f curve endpoints; the frequency endpoints come from the clock ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct VfEndpoints {
    /// Operating voltage at the ladder floor.
    pub v_min_v: f64,
    /// Operating voltage at the ladder ceiling.
    pub v_max_v: f64,
}

/// Package/cooling class, selecting the thermal envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cooling {
    Sxm,
    Pcie,
    Oam,
}

impl Cooling {
    fn thermal(self) -> ThermalSpec {
        match self {
            Cooling::Sxm => ThermalSpec::sxm(),
            Cooling::Pcie => ThermalSpec::pcie(),
            Cooling::Oam => ThermalSpec::oam(),
        }
    }

    fn from_thermal(t: &ThermalSpec) -> Cooling {
        for c in [Cooling::Sxm, Cooling::Oam, Cooling::Pcie] {
            if c.thermal() == *t {
                return c;
            }
        }
        Cooling::Pcie
    }
}

/// One GPU device class as a loadable JSON file. See the module docs for the
/// field semantics; `devices/*.json` are the shipped instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct DeviceTemplate {
    /// Marketing name, e.g. `"Nvidia A100-SXM4-80GB"`.
    pub name: String,
    /// Supported core clocks in MHz, descending (NVML enumeration order).
    /// Must form a uniform ladder: `ClockTable` is (min, max, step).
    pub core_clocks_mhz: Vec<u32>,
    /// V-f endpoints; paired with the ladder ends to form the linear curve.
    pub voltage: VfEndpoints,
    /// Memory P-states in MHz, descending; the first is the default clock.
    pub mem_clocks_mhz: Vec<u32>,
    /// Peak FP64 throughput at the maximum clock, GFLOP/s.
    pub peak_gflops: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Host-side launch/driver overhead per kernel launch, µs.
    pub launch_overhead_us: u64,
    /// Floor power (clocks at minimum, nothing resident), W.
    pub idle_power_w: f64,
    /// Effective switched capacitance of the SM domain, nF. The SM dynamic
    /// ceiling is `C · V_max² · f_max` — the `P = C V² f` model the paper's
    /// energy argument rests on.
    pub core_capacitance_nf: f64,
    /// Memory-subsystem dynamic ceiling, W.
    pub mem_dynamic_max_w: f64,
    /// Idle clock-hold power as a fraction of the SM dynamic ceiling.
    pub clock_hold_fraction: f64,
    /// Energy per DVFS transition, J.
    pub transition_cost_j: f64,
    /// Autoboost voltage guard-band (fraction).
    pub boost_voltage_margin: f64,
    /// Work items needed to saturate the device.
    pub saturation_parallelism: f64,
    /// Package class: `"Sxm"`, `"Pcie"` or `"Oam"`.
    pub cooling: Cooling,
}

/// Every field a template may carry, in schema order — quoted by the
/// unknown-field diagnostic.
const SUPPORTED_FIELDS: [&str; 15] = [
    "name",
    "core_clocks_mhz",
    "voltage",
    "mem_clocks_mhz",
    "peak_gflops",
    "mem_bandwidth_gbs",
    "launch_overhead_us",
    "idle_power_w",
    "core_capacitance_nf",
    "mem_dynamic_max_w",
    "clock_hold_fraction",
    "transition_cost_j",
    "boost_voltage_margin",
    "saturation_parallelism",
    "cooling",
];

/// Top-level object keys of already-validated JSON (depth-1 strings in key
/// position). Used to reject unknown fields with a diagnostic that lists the
/// supported schema.
fn top_level_keys(json: &str) -> Vec<String> {
    let b = json.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut expecting_key = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => {
                let start = i + 1;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if depth == 1 && expecting_key {
                    keys.push(json[start..i].to_string());
                    expecting_key = false;
                }
            }
            b'{' => {
                depth += 1;
                if depth == 1 {
                    expecting_key = true;
                }
            }
            b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b',' if depth == 1 => expecting_key = true,
            _ => {}
        }
        i += 1;
    }
    keys
}

/// Names of the templates compiled into the crate (mirrors `devices/`).
pub const BUILTIN_DEVICES: [&str; 4] = ["a100-sxm4-80gb", "h100-sxm5-80gb", "mi250x-gcd", "l4"];

impl DeviceTemplate {
    /// Parse a template from JSON. Unknown fields are rejected with an error
    /// listing every supported field.
    pub fn from_json(json: &str) -> Result<DeviceTemplate, ArchError> {
        let t: DeviceTemplate = serde_json::from_str(json)
            .map_err(|e| ArchError::InvalidSpec(format!("device template: {e}")))?;
        for key in top_level_keys(json) {
            if !SUPPORTED_FIELDS.contains(&key.as_str()) {
                let supported = SUPPORTED_FIELDS
                    .iter()
                    .map(|f| format!("`{f}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(ArchError::InvalidSpec(format!(
                    "device template: unknown field `{key}`, supported fields: {supported}"
                )));
            }
        }
        Ok(t)
    }

    /// Load a template from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<DeviceTemplate, ArchError> {
        let json = std::fs::read_to_string(path).map_err(|e| {
            ArchError::InvalidSpec(format!("reading device template {}: {e}", path.display()))
        })?;
        Self::from_json(&json)
    }

    /// One of the templates shipped in `devices/` and compiled in (so the
    /// matrix generator works from any working directory).
    pub fn builtin(name: &str) -> Option<DeviceTemplate> {
        let json = match name {
            "a100-sxm4-80gb" => include_str!("../../../devices/a100-sxm4-80gb.json"),
            "h100-sxm5-80gb" => include_str!("../../../devices/h100-sxm5-80gb.json"),
            "mi250x-gcd" => include_str!("../../../devices/mi250x-gcd.json"),
            "l4" => include_str!("../../../devices/l4.json"),
            _ => return None,
        };
        Some(Self::from_json(json).expect("builtin device template is valid"))
    }

    /// Validate the template and build the concrete [`GpuSpec`].
    pub fn to_spec(&self) -> Result<GpuSpec, ArchError> {
        let bad = |msg: String| {
            Err(ArchError::InvalidSpec(format!(
                "device template {:?}: {msg}",
                self.name
            )))
        };
        if self.core_clocks_mhz.len() < 2 {
            return bad(format!(
                "core_clocks_mhz must list at least two clocks (got {})",
                self.core_clocks_mhz.len()
            ));
        }
        for w in self.core_clocks_mhz.windows(2) {
            if w[1] >= w[0] {
                return bad(format!(
                    "core_clocks_mhz must be strictly descending (… {}, {} …)",
                    w[0], w[1]
                ));
            }
        }
        let step = self.core_clocks_mhz[0] - self.core_clocks_mhz[1];
        for w in self.core_clocks_mhz.windows(2) {
            if w[0] - w[1] != step {
                return bad(format!(
                    "core_clocks_mhz must form a uniform ladder (step {} MHz, but … {}, {} …)",
                    step, w[0], w[1]
                ));
            }
        }
        let f_max = MegaHertz(self.core_clocks_mhz[0]);
        let f_min = MegaHertz(*self.core_clocks_mhz.last().unwrap());
        let clock_table = ClockTable::new(f_min, f_max, step)?;

        if self.mem_clocks_mhz.is_empty() {
            return bad("mem_clocks_mhz must list at least one P-state".into());
        }
        for w in self.mem_clocks_mhz.windows(2) {
            if w[1] >= w[0] {
                return bad(format!(
                    "mem_clocks_mhz must be strictly descending (… {}, {} …)",
                    w[0], w[1]
                ));
            }
        }
        if !(self.voltage.v_min_v > 0.0 && self.voltage.v_max_v >= self.voltage.v_min_v) {
            return bad(format!(
                "voltage endpoints must satisfy 0 < v_min_v <= v_max_v (got {} / {})",
                self.voltage.v_min_v, self.voltage.v_max_v
            ));
        }
        for (value, name) in [
            (self.peak_gflops, "peak_gflops"),
            (self.mem_bandwidth_gbs, "mem_bandwidth_gbs"),
            (self.core_capacitance_nf, "core_capacitance_nf"),
            (self.saturation_parallelism, "saturation_parallelism"),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return bad(format!("{name} must be positive (got {value})"));
            }
        }
        for (value, name) in [
            (self.idle_power_w, "idle_power_w"),
            (self.mem_dynamic_max_w, "mem_dynamic_max_w"),
            (self.transition_cost_j, "transition_cost_j"),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return bad(format!("{name} must be non-negative (got {value})"));
            }
        }
        if !(0.0..=1.0).contains(&self.clock_hold_fraction) {
            return bad(format!(
                "clock_hold_fraction must be in [0, 1] (got {})",
                self.clock_hold_fraction
            ));
        }
        if !(0.0..=0.2).contains(&self.boost_voltage_margin) {
            return bad(format!(
                "boost_voltage_margin must be in [0, 0.2] (got {})",
                self.boost_voltage_margin
            ));
        }

        Ok(GpuSpec {
            name: self.name.clone(),
            voltage: VoltageCurve {
                v_min: Volts(self.voltage.v_min_v),
                v_max: Volts(self.voltage.v_max_v),
                f_min,
                f_max,
            },
            clock_table,
            mem_clock: MegaHertz(self.mem_clocks_mhz[0]),
            mem_clock_table: self.mem_clocks_mhz.iter().map(|&m| MegaHertz(m)).collect(),
            peak_flops: self.peak_gflops * 1e9,
            mem_bandwidth: self.mem_bandwidth_gbs * 1e9,
            launch_overhead: SimDuration::from_micros(self.launch_overhead_us),
            idle_power: Watts(self.idle_power_w),
            sm_dynamic_max: Watts(sm_dynamic_from_capacitance(
                self.core_capacitance_nf,
                self.voltage.v_max_v,
                f_max,
            )),
            mem_dynamic_max: Watts(self.mem_dynamic_max_w),
            clock_hold_fraction: self.clock_hold_fraction,
            transition_cost: Joules(self.transition_cost_j),
            boost_voltage_margin: self.boost_voltage_margin,
            saturation_parallelism: self.saturation_parallelism,
            thermal: self.cooling.thermal(),
        })
    }

    /// Re-express a concrete spec as a template (the round-trip direction:
    /// the SM dynamic ceiling becomes an effective capacitance again).
    pub fn from_spec(spec: &GpuSpec) -> DeviceTemplate {
        let f_max = spec.clock_table.max();
        DeviceTemplate {
            name: spec.name.clone(),
            core_clocks_mhz: spec
                .clock_table
                .supported_clocks()
                .into_iter()
                .map(|f| f.0)
                .collect(),
            voltage: VfEndpoints {
                v_min_v: spec.voltage.v_min.0,
                v_max_v: spec.voltage.v_max.0,
            },
            mem_clocks_mhz: spec.mem_clock_table.iter().map(|m| m.0).collect(),
            peak_gflops: spec.peak_flops / 1e9,
            mem_bandwidth_gbs: spec.mem_bandwidth / 1e9,
            launch_overhead_us: spec.launch_overhead.as_nanos() / 1_000,
            idle_power_w: spec.idle_power.0,
            core_capacitance_nf: spec.sm_dynamic_max.0
                / (spec.voltage.v_max.0 * spec.voltage.v_max.0 * f64::from(f_max.0) * 1e-3),
            mem_dynamic_max_w: spec.mem_dynamic_max.0,
            clock_hold_fraction: spec.clock_hold_fraction,
            transition_cost_j: spec.transition_cost.0,
            boost_voltage_margin: spec.boost_voltage_margin,
            saturation_parallelism: spec.saturation_parallelism,
            cooling: Cooling::from_thermal(&spec.thermal),
        }
    }
}

/// `P_sm = C V² f`: capacitance in nF, voltage in V, clock in MHz → watts
/// (the nF·MHz product leaves a clean 1e-3 scale).
fn sm_dynamic_from_capacitance(c_nf: f64, v_max: f64, f_max: MegaHertz) -> f64 {
    c_nf * v_max * v_max * f64::from(f_max.0) * 1e-3
}
