//! First-order (RC) thermal model with temperature-dependent leakage.
//!
//! Real DVFS interacts with two more control loops the paper's §II touches
//! on: the software power cap and thermal slowdown. The junction temperature
//! follows a single-pole RC response toward `ambient + R_th * P`; leakage
//! power grows with temperature, and crossing the slowdown threshold caps
//! the clock — surfaced through the NVML shim as
//! `HW_THERMAL_SLOWDOWN` / `SW_POWER_CAP` clocks-event reasons.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;
use crate::units::Watts;

/// Thermal envelope of a GPU package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Inlet/ambient temperature, °C.
    pub ambient_c: f64,
    /// Junction-to-ambient thermal resistance, °C per watt.
    pub r_th_c_per_w: f64,
    /// RC time constant of the package + heatsink.
    pub tau: SimDuration,
    /// Junction temperature at which the driver starts pulling clocks.
    pub slowdown_c: f64,
    /// Leakage growth per °C above the reference point, as a fraction of
    /// idle power (silicon leakage roughly doubles every ~30 °C; a linear
    /// fit is adequate over the operating range).
    pub leakage_per_c: f64,
    /// Reference temperature for the leakage fit.
    pub leakage_ref_c: f64,
}

impl ThermalSpec {
    /// Air/liquid-cooled SXM-class package.
    pub fn sxm() -> Self {
        ThermalSpec {
            ambient_c: 30.0,
            r_th_c_per_w: 0.11,
            tau: SimDuration::from_secs(9),
            slowdown_c: 88.0,
            leakage_per_c: 0.006,
            leakage_ref_c: 40.0,
        }
    }

    /// PCIE card (weaker cooling: higher resistance, slower time constant).
    pub fn pcie() -> Self {
        ThermalSpec {
            ambient_c: 32.0,
            r_th_c_per_w: 0.18,
            tau: SimDuration::from_secs(12),
            slowdown_c: 85.0,
            leakage_per_c: 0.006,
            leakage_ref_c: 40.0,
        }
    }

    /// OAM module (MI250X-class, liquid cooled).
    pub fn oam() -> Self {
        ThermalSpec {
            ambient_c: 28.0,
            r_th_c_per_w: 0.10,
            tau: SimDuration::from_secs(8),
            slowdown_c: 90.0,
            leakage_per_c: 0.006,
            leakage_ref_c: 40.0,
        }
    }

    /// Steady-state junction temperature at constant power `p`.
    pub fn steady_state_c(&self, p: Watts) -> f64 {
        self.ambient_c + self.r_th_c_per_w * p.0
    }

    /// Advance the junction temperature from `t_c` over `dt` at constant
    /// power `p` (exact single-pole step response).
    pub fn step(&self, t_c: f64, p: Watts, dt: SimDuration) -> f64 {
        let target = self.steady_state_c(p);
        let x = dt.as_secs_f64() / self.tau.as_secs_f64().max(1e-9);
        target + (t_c - target) * (-x).exp()
    }

    /// Multiplicative leakage factor on idle/static power at temperature
    /// `t_c` (never below 1).
    pub fn leakage_factor(&self, t_c: f64) -> f64 {
        (1.0 + self.leakage_per_c * (t_c - self.leakage_ref_c)).max(1.0)
    }

    /// True if the junction is at or past the slowdown threshold.
    pub fn throttling(&self, t_c: f64) -> bool {
        t_c >= self.slowdown_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_ambient_plus_ir_drop() {
        let th = ThermalSpec::sxm();
        assert_eq!(th.steady_state_c(Watts(0.0)), 30.0);
        let t = th.steady_state_c(Watts(400.0));
        assert!((t - 74.0).abs() < 1e-9);
    }

    #[test]
    fn step_response_converges_monotonically() {
        let th = ThermalSpec::sxm();
        let mut t = th.ambient_c;
        let mut last = t;
        for _ in 0..100 {
            t = th.step(t, Watts(300.0), SimDuration::from_secs(1));
            assert!(t >= last, "heating must be monotone");
            last = t;
        }
        let ss = th.steady_state_c(Watts(300.0));
        assert!((t - ss).abs() < 0.1, "converged to {t}, expected {ss}");
        // Cooling back down.
        for _ in 0..100 {
            t = th.step(t, Watts(0.0), SimDuration::from_secs(1));
        }
        assert!((t - th.ambient_c).abs() < 0.1);
    }

    #[test]
    fn one_tau_covers_63_percent() {
        let th = ThermalSpec::sxm();
        let t = th.step(th.ambient_c, Watts(400.0), th.tau);
        let rise = (t - th.ambient_c) / (th.steady_state_c(Watts(400.0)) - th.ambient_c);
        assert!((rise - 0.632).abs() < 0.01, "rise {rise}");
    }

    #[test]
    fn leakage_grows_with_temperature_and_never_shrinks() {
        let th = ThermalSpec::sxm();
        assert_eq!(th.leakage_factor(20.0), 1.0, "clamped below reference");
        let hot = th.leakage_factor(80.0);
        assert!((hot - 1.24).abs() < 1e-9);
        assert!(th.leakage_factor(60.0) < hot);
    }

    #[test]
    fn throttle_threshold() {
        let th = ThermalSpec::pcie();
        assert!(!th.throttling(84.9));
        assert!(th.throttling(85.0));
    }

    #[test]
    fn big_step_equals_two_half_steps() {
        // Exact exponential integration: splitting the interval is lossless.
        let th = ThermalSpec::sxm();
        let p = Watts(250.0);
        let whole = th.step(45.0, p, SimDuration::from_secs(4));
        let half = th.step(
            th.step(45.0, p, SimDuration::from_secs(2)),
            p,
            SimDuration::from_secs(2),
        );
        assert!((whole - half).abs() < 1e-9);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_temperature_bounded_by_endpoints(
                t0 in 20.0f64..100.0,
                p in 0.0f64..600.0,
                dt_ms in 1u64..100_000,
            ) {
                // The RC response never overshoots: the new temperature lies
                // between the start and the steady state.
                let th = ThermalSpec::sxm();
                let ss = th.steady_state_c(Watts(p));
                let t1 = th.step(t0, Watts(p), SimDuration::from_millis(dt_ms));
                let lo = t0.min(ss) - 1e-9;
                let hi = t0.max(ss) + 1e-9;
                prop_assert!(t1 >= lo && t1 <= hi, "{t0} -> {t1} (ss {ss})");
            }

            #[test]
            fn prop_leakage_monotone_in_temperature(a in -20.0f64..120.0, b in -20.0f64..120.0) {
                let th = ThermalSpec::pcie();
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(th.leakage_factor(lo) <= th.leakage_factor(hi));
                prop_assert!(th.leakage_factor(lo) >= 1.0);
            }

            #[test]
            fn prop_hotter_start_stays_hotter(
                t_a in 20.0f64..90.0,
                delta in 0.1f64..30.0,
                p in 0.0f64..500.0,
                dt_ms in 1u64..60_000,
            ) {
                // Single-pole response preserves ordering of initial states.
                let th = ThermalSpec::oam();
                let cold = th.step(t_a, Watts(p), SimDuration::from_millis(dt_ms));
                let hot = th.step(t_a + delta, Watts(p), SimDuration::from_millis(dt_ms));
                prop_assert!(hot > cold);
            }
        }
    }
}
