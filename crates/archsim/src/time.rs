//! Virtual time for the architecture simulator.
//!
//! All devices advance a *virtual* clock measured in nanoseconds. Virtual time
//! is what makes runs deterministic and lets us "execute" paper-scale
//! workloads (billions of particles, hours of GPU time) in milliseconds of
//! host time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the virtual timeline, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimInstant = SimInstant(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration elapsed since `earlier`. Returns `SimDuration::ZERO` if
    /// `earlier` is in the future (saturating, like `std::time::Instant`).
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimInstant) -> SimInstant {
        SimInstant(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs clamp
    /// to zero: durations are non-negative by construction.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// True if this duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative scalar.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 * 1e-6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 * 1e-3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_roundtrips() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.as_nanos(), 5_000_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
        assert_eq!(t0 - t1, SimDuration::ZERO, "saturating in the past");
    }

    #[test]
    fn duration_from_secs_f64_clamps_negative_and_nan() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_secs_f64_roundtrip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn duration_sum_and_scalar_ops() {
        let parts = [SimDuration::from_millis(1), SimDuration::from_millis(2)];
        let total: SimDuration = parts.iter().copied().sum();
        assert_eq!(total, SimDuration::from_millis(3));
        assert_eq!(total * 2, SimDuration::from_millis(6));
        assert_eq!(total / 3, SimDuration::from_millis(1));
        assert_eq!(total.mul_f64(0.5).as_nanos(), 1_500_000);
    }
}
