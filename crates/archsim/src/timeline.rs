//! Piecewise-constant power and frequency timelines.
//!
//! Every simulated device records its power draw as a sequence of contiguous
//! segments `[start, end) -> watts`. Energy over any window is the exact
//! integral of that step function; out-of-band samplers (`pm-counters`) and
//! in-band tools (`pmt`) both read these records, the former at 10 Hz, the
//! latter at a configurable rate — which is precisely what creates the
//! PMT-vs-Slurm discrepancies studied in §IV-A of the paper.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimInstant};
use crate::units::{Joules, MegaHertz, Watts};

/// One contiguous span of constant power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSegment {
    pub start: SimInstant,
    pub end: SimInstant,
    pub power: Watts,
}

impl PowerSegment {
    /// Length of the segment.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Energy of the whole segment.
    pub fn energy(&self) -> Joules {
        self.power.energy_over(self.duration())
    }
}

/// Append-only record of a device's power draw over virtual time.
///
/// Invariants (checked in debug builds and by property tests):
/// * segments are sorted, contiguous and non-overlapping;
/// * `end >= start` for every segment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PowerTimeline {
    segments: Vec<PowerSegment>,
}

impl PowerTimeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the device drew `power` from the current end of the
    /// timeline until `until`. Zero-length pushes are ignored. Panics (debug)
    /// if `until` precedes the current end — devices only move forward.
    pub fn push_until(&mut self, until: SimInstant, power: Watts) {
        let start = self.end_instant();
        debug_assert!(until >= start, "timeline must advance monotonically");
        if until <= start {
            return;
        }
        // Merge with the previous segment when power is unchanged, keeping the
        // record compact for long idle stretches.
        if let Some(last) = self.segments.last_mut() {
            if (last.power.0 - power.0).abs() < 1e-12 {
                last.end = until;
                return;
            }
        }
        self.segments.push(PowerSegment {
            start,
            end: until,
            power,
        });
    }

    /// The instant up to which this timeline has been recorded.
    pub fn end_instant(&self) -> SimInstant {
        self.segments.last().map_or(SimInstant::ZERO, |s| s.end)
    }

    /// Number of stored segments (post-merge).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// All segments, in order.
    pub fn segments(&self) -> &[PowerSegment] {
        &self.segments
    }

    /// Instantaneous power at `t`. Instants beyond the recorded end (or on an
    /// empty timeline) read as zero; `t` exactly at a boundary reads the
    /// segment that *starts* there.
    pub fn power_at(&self, t: SimInstant) -> Watts {
        match self.segments.binary_search_by(|s| {
            if t < s.start {
                std::cmp::Ordering::Greater
            } else if t >= s.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.segments[i].power,
            Err(_) => Watts::ZERO,
        }
    }

    /// Power of the most recent segment — what a live sensor query ("power
    /// right now") returns on a device that has advanced to its end instant.
    pub fn last_power(&self) -> Watts {
        self.segments.last().map_or(Watts::ZERO, |s| s.power)
    }

    /// Exact energy integral over `[a, b)`. Windows extending beyond the
    /// recorded end contribute zero there.
    pub fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        if b <= a || self.segments.is_empty() {
            return Joules::ZERO;
        }
        // Find the first segment that may overlap [a, b).
        let first = self.segments.partition_point(|s| s.end <= a);
        let mut total = Joules::ZERO;
        for s in &self.segments[first..] {
            if s.start >= b {
                break;
            }
            let lo = s.start.max(a);
            let hi = s.end.min(b);
            total += s.power.energy_over(hi - lo);
        }
        total
    }

    /// Total recorded energy.
    pub fn total_energy(&self) -> Joules {
        self.segments.iter().map(PowerSegment::energy).sum()
    }

    /// Average power over `[a, b)`.
    pub fn average_power(&self, a: SimInstant, b: SimInstant) -> Watts {
        self.energy_between(a, b).average_power(b - a)
    }

    /// Sample the timeline at a fixed `period`, starting at `from`, up to and
    /// including the first sample at-or-after `to`. This is how an out-of-band
    /// collector (10 Hz on Cray blades) or a polling tool sees the device.
    pub fn sample(
        &self,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> Vec<(SimInstant, Watts)> {
        assert!(!period.is_zero(), "sampling period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            out.push((t, self.power_at(t)));
            if t >= to {
                break;
            }
            t += period;
        }
        out
    }

    /// Average power per `period`-long bucket over `[from, to)` — what a
    /// collector that differences an energy counter (Cray pm_counters, NVML
    /// total-energy) reports. Unlike [`PowerTimeline::sample`], microsecond
    /// transients (clock-transition energy folded into a short segment) are
    /// smeared over the bucket instead of aliasing into full-height spikes.
    /// Each entry is `(bucket start, average power over the bucket)`.
    pub fn sample_average(
        &self,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> Vec<(SimInstant, Watts)> {
        assert!(!period.is_zero(), "sampling period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            let bucket_end = (t + period).min(to);
            out.push((t, self.average_power(t, bucket_end)));
            t = bucket_end;
        }
        out
    }

    /// Estimate energy over `[a, b)` from discrete samples at `period`, using
    /// left-rectangle integration — the strategy real polling-based tools use.
    /// The difference to [`PowerTimeline::energy_between`] is the sampling
    /// error the paper validates against Slurm in §IV-A.
    pub fn sampled_energy(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules {
        assert!(!period.is_zero(), "sampling period must be positive");
        if b <= a {
            return Joules::ZERO;
        }
        let mut total = Joules::ZERO;
        let mut t = a;
        while t < b {
            let step_end = (t + period).min(b);
            total += self.power_at(t).energy_over(step_end - t);
            t = step_end;
        }
        total
    }
}

/// Append-only record of the clock frequency a device was running at.
///
/// Used to produce Fig. 9 (the DVFS frequency trace) and to audit what the
/// governor actually did.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FreqTimeline {
    points: Vec<(SimInstant, MegaHertz)>,
}

impl FreqTimeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the clock changed to `f` at instant `t`. Consecutive
    /// identical frequencies are merged.
    pub fn record(&mut self, t: SimInstant, f: MegaHertz) {
        if let Some(&(last_t, last_f)) = self.points.last() {
            debug_assert!(t >= last_t, "frequency trace must advance monotonically");
            if last_f == f {
                return;
            }
        }
        self.points.push((t, f));
    }

    /// Frequency in effect at `t` (the last change at or before `t`).
    pub fn freq_at(&self, t: SimInstant) -> Option<MegaHertz> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// All recorded change points.
    pub fn points(&self) -> &[(SimInstant, MegaHertz)] {
        &self.points
    }

    /// Sample the trace at a fixed period over `[from, to]`, as a monitoring
    /// daemon polling `nvmlDeviceGetClockInfo` would.
    pub fn sample(
        &self,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> Vec<(SimInstant, MegaHertz)> {
        assert!(!period.is_zero(), "sampling period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            if let Some(f) = self.freq_at(t) {
                out.push((t, f));
            }
            if t >= to {
                break;
            }
            t += period;
        }
        out
    }

    /// Time-weighted average frequency over `[a, b)`.
    pub fn average_freq(&self, a: SimInstant, b: SimInstant) -> Option<MegaHertz> {
        if b <= a || self.points.is_empty() {
            return None;
        }
        let mut weighted = 0.0f64;
        let span = (b - a).as_secs_f64();
        let mut cursor = a;
        let start_idx = self
            .points
            .partition_point(|&(pt, _)| pt <= a)
            .saturating_sub(1);
        let mut cur = self.freq_at(a)?;
        for &(pt, f) in &self.points[start_idx..] {
            if pt >= b {
                break;
            }
            if pt > cursor {
                weighted += cur.0 as f64 * (pt - cursor).as_secs_f64();
                cursor = pt;
            }
            cur = f;
        }
        weighted += cur.0 as f64 * (b - cursor).as_secs_f64();
        Some(MegaHertz((weighted / span).round() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn push_and_integrate_exact() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0)); // 10ms @ 100W = 1 J
        tl.push_until(t(30), Watts(50.0)); // 20ms @ 50W  = 1 J
        assert_eq!(tl.total_energy(), Joules(2.0));
        assert_eq!(tl.energy_between(t(0), t(30)), Joules(2.0));
        // Partial windows cut segments exactly.
        assert_eq!(tl.energy_between(t(5), t(15)), Joules(0.5 + 0.25));
    }

    #[test]
    fn averaged_sampling_smears_short_transients() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(5), Watts(100.0));
        // A 0.1 ms transition spike at 2400 W carries only 0.24 J …
        tl.push_until(SimInstant::from_nanos(5_100_000), Watts(2400.0));
        tl.push_until(t(10), Watts(100.0));
        // … so a point sampler that lands on it sees the full spike,
        let spiked = tl.power_at(SimInstant::from_nanos(5_050_000));
        assert_eq!(spiked, Watts(2400.0));
        // while the energy-counter view smears it across the bucket.
        let avg = tl.sample_average(t(0), t(10), SimDuration::from_millis(10));
        assert_eq!(avg.len(), 1);
        assert!(
            (avg[0].1 .0 - 123.0).abs() < 1e-9,
            "100 W base + 0.23 J extra over 10 ms: {}",
            avg[0].1
        );
        // Buckets honor the window end: a 4 ms tail bucket averages alone.
        let parts = tl.sample_average(t(0), t(10), SimDuration::from_millis(6));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[1].0, t(6));
    }

    #[test]
    fn sample_average_of_empty_timeline_is_zero_power() {
        let tl = PowerTimeline::new();
        let avg = tl.sample_average(t(0), t(20), SimDuration::from_millis(10));
        assert_eq!(avg.len(), 2, "buckets still cover the window");
        assert!(avg.iter().all(|&(_, w)| w == Watts(0.0)));
        // An empty window produces no buckets at all.
        assert!(tl
            .sample_average(t(5), t(5), SimDuration::from_millis(10))
            .is_empty());
    }

    #[test]
    fn sample_average_single_sample_covers_whole_window() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0));
        let avg = tl.sample_average(t(0), t(10), SimDuration::from_millis(10));
        assert_eq!(avg, vec![(t(0), Watts(100.0))]);
        // A period longer than the window clamps to the window end rather
        // than averaging past it.
        let avg = tl.sample_average(t(0), t(10), SimDuration::from_millis(25));
        assert_eq!(avg, vec![(t(0), Watts(100.0))]);
    }

    #[test]
    fn sample_average_bucket_boundary_exactly_on_a_sample() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0));
        tl.push_until(t(20), Watts(50.0));
        // Bucket edges land exactly on the segment boundary: each bucket
        // must see only its own segment, with no bleed either way.
        let avg = tl.sample_average(t(0), t(20), SimDuration::from_millis(10));
        assert_eq!(avg, vec![(t(0), Watts(100.0)), (t(10), Watts(50.0))]);
    }

    #[test]
    fn equal_power_segments_merge() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0));
        tl.push_until(t(20), Watts(100.0));
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.end_instant(), t(20));
    }

    #[test]
    fn power_at_boundaries() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0));
        tl.push_until(t(20), Watts(50.0));
        assert_eq!(tl.power_at(t(0)), Watts(100.0));
        assert_eq!(
            tl.power_at(t(10)),
            Watts(50.0),
            "boundary reads next segment"
        );
        assert_eq!(tl.power_at(t(20)), Watts::ZERO, "past the end reads zero");
    }

    #[test]
    fn energy_beyond_recorded_end_is_zero() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(10), Watts(100.0));
        assert_eq!(tl.energy_between(t(0), t(100)), Joules(1.0));
        assert_eq!(tl.energy_between(t(50), t(100)), Joules::ZERO);
    }

    #[test]
    fn sampled_energy_underestimates_spike() {
        // A short spike between samples is missed by coarse polling.
        let mut tl = PowerTimeline::new();
        tl.push_until(t(120), Watts(100.0));
        tl.push_until(t(121), Watts(400.0)); // 1ms spike between sample points
        tl.push_until(t(200), Watts(100.0));
        let exact = tl.energy_between(t(0), t(200));
        let coarse = tl.sampled_energy(t(0), t(200), SimDuration::from_millis(50));
        assert!(coarse < exact);
        let fine = tl.sampled_energy(t(0), t(200), SimDuration::from_nanos(100_000));
        assert!((fine.0 - exact.0).abs() / exact.0 < 1e-2);
    }

    #[test]
    fn zero_length_pushes_are_ignored() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(0), Watts(5.0));
        assert!(tl.is_empty());
    }

    #[test]
    fn sample_includes_endpoint() {
        let mut tl = PowerTimeline::new();
        tl.push_until(t(100), Watts(10.0));
        let samples = tl.sample(t(0), t(100), SimDuration::from_millis(50));
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].0, t(100));
    }

    #[test]
    fn freq_trace_records_and_queries() {
        let mut tr = FreqTimeline::new();
        tr.record(t(0), MegaHertz(1410));
        tr.record(t(10), MegaHertz(1005));
        tr.record(t(10), MegaHertz(1005)); // duplicate merged
        assert_eq!(tr.points().len(), 2);
        assert_eq!(tr.freq_at(t(5)), Some(MegaHertz(1410)));
        assert_eq!(tr.freq_at(t(10)), Some(MegaHertz(1005)));
        assert_eq!(tr.freq_at(SimInstant::ZERO), Some(MegaHertz(1410)));
    }

    #[test]
    fn freq_before_first_point_is_none() {
        let mut tr = FreqTimeline::new();
        tr.record(t(10), MegaHertz(900));
        assert_eq!(tr.freq_at(t(5)), None);
    }

    #[test]
    fn average_freq_time_weighted() {
        let mut tr = FreqTimeline::new();
        tr.record(t(0), MegaHertz(1000));
        tr.record(t(10), MegaHertz(2000));
        // 10ms @ 1000 + 10ms @ 2000 -> 1500 average
        assert_eq!(tr.average_freq(t(0), t(20)), Some(MegaHertz(1500)));
        // Window entirely inside the second segment.
        assert_eq!(tr.average_freq(t(12), t(18)), Some(MegaHertz(2000)));
    }
}
