//! Physical unit newtypes used throughout the simulator.
//!
//! Frequencies are integer megahertz (matching NVML's `unsigned int` MHz
//! clocks); power, energy and voltage are `f64` wrappers with just enough
//! arithmetic to keep dimensional mistakes out of the power model.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::time::SimDuration;

/// A clock frequency in megahertz.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MegaHertz(pub u32);

impl MegaHertz {
    /// Frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.0 as f64 * 1e6
    }

    /// Ratio of `self` to `other` as `f64` (used for frequency scaling laws).
    pub fn ratio(self, other: MegaHertz) -> f64 {
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(pub f64);

impl Watts {
    pub const ZERO: Watts = Watts(0.0);

    /// Power in milliwatts, as NVML reports it.
    pub fn as_milliwatts(self) -> u64 {
        (self.0 * 1e3).round().max(0.0) as u64
    }

    /// Energy accumulated by holding this power level for `d`.
    pub fn energy_over(self, d: SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(pub f64);

impl Joules {
    pub const ZERO: Joules = Joules(0.0);

    /// Energy in mega-joules, as reported in the paper's Fig. 4 discussion.
    pub fn as_megajoules(self) -> f64 {
        self.0 * 1e-6
    }

    /// Average power if this energy was spent over `d`. Returns zero power for
    /// a zero-length window.
    pub fn average_power(self, d: SimDuration) -> Watts {
        let s = d.as_secs_f64();
        if s <= 0.0 {
            Watts::ZERO
        } else {
            Watts(self.0 / s)
        }
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} J", self.0)
    }
}

/// Electrical potential in volts (the `V` of DVFS).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Volts(pub f64);

impl Volts {
    /// `(self / other)^2` — the quadratic voltage term of dynamic power.
    pub fn squared_ratio(self, other: Volts) -> f64 {
        let r = self.0 / other.0;
        r * r
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

/// Energy-delay product: `energy [J] * time [s]`. Lower is better; the paper
/// uses it as the combined efficiency metric throughout §IV.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct EnergyDelay(pub f64);

impl EnergyDelay {
    /// Compute EDP from energy and elapsed time.
    pub fn new(energy: Joules, time: SimDuration) -> Self {
        EnergyDelay::of(energy.0, time.as_secs_f64())
    }

    /// Compute EDP from raw joules and seconds. The single shared EDP
    /// formulation: every scoring path (offline tuner, online tuner, report
    /// analytics) goes through here so the objective cannot drift.
    pub fn of(energy_j: f64, time_s: f64) -> Self {
        EnergyDelay(energy_j * time_s)
    }

    /// Ratio to a baseline EDP (normalization used in Figs. 6–8).
    pub fn normalized_to(self, baseline: EnergyDelay) -> f64 {
        self.0 / baseline.0
    }
}

impl fmt::Display for EnergyDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} J*s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_energy_over_duration() {
        let e = Watts(250.0).energy_over(SimDuration::from_secs(4));
        assert_eq!(e, Joules(1000.0));
    }

    #[test]
    fn joules_average_power_zero_window() {
        assert_eq!(Joules(10.0).average_power(SimDuration::ZERO), Watts::ZERO);
        assert_eq!(
            Joules(10.0).average_power(SimDuration::from_secs(5)),
            Watts(2.0)
        );
    }

    #[test]
    fn nvml_style_milliwatts() {
        assert_eq!(Watts(123.456).as_milliwatts(), 123_456);
        assert_eq!(Watts(-1.0).as_milliwatts(), 0, "never negative");
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let edp = EnergyDelay::new(Joules(100.0), SimDuration::from_secs(2));
        assert_eq!(edp.0, 200.0);
        let base = EnergyDelay::new(Joules(100.0), SimDuration::from_secs(4));
        assert!((edp.normalized_to(base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edp_zero_duration_is_zero_not_nan() {
        // A zero-duration measurement must compare as "best possible", not
        // poison downstream min-comparisons with NaN.
        let edp = EnergyDelay::of(123.0, 0.0);
        assert_eq!(edp.0, 0.0);
        assert!(edp.0.is_finite());
        assert_eq!(EnergyDelay::new(Joules(123.0), SimDuration::ZERO).0, 0.0);
        // And zero energy behaves the same way.
        assert_eq!(EnergyDelay::of(0.0, 5.0).0, 0.0);
    }

    #[test]
    fn volts_squared_ratio() {
        let r = Volts(0.9).squared_ratio(Volts(1.0));
        assert!((r - 0.81).abs() < 1e-12);
    }

    #[test]
    fn megahertz_ratio_and_hz() {
        assert!((MegaHertz(1410).ratio(MegaHertz(705)) - 2.0).abs() < 1e-12);
        assert_eq!(MegaHertz(1410).as_hz(), 1.41e9);
    }
}
