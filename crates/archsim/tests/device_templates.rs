//! Device-template loading: the shipped `devices/` zoo must validate, bad
//! templates must fail with actionable diagnostics, and the template ↔
//! `GpuSpec` conversion must round-trip.

use archsim::{ArchError, DeviceTemplate, MegaHertz, BUILTIN_DEVICES};

fn err_of(t: &DeviceTemplate) -> String {
    match t.to_spec() {
        Err(ArchError::InvalidSpec(msg)) => msg,
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
}

#[test]
fn every_builtin_template_builds_a_sane_spec() {
    for name in BUILTIN_DEVICES {
        let t = DeviceTemplate::builtin(name).unwrap_or_else(|| panic!("builtin {name}"));
        let gpu = t.to_spec().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(gpu.name, t.name);
        assert!(gpu.tdp().0 > 0.0);
        assert!(gpu.clock_table.len() >= 2, "{name}");
        assert_eq!(gpu.mem_clock, gpu.mem_clock_table[0], "{name}");
        assert!(
            gpu.busy_power(gpu.clock_table.max(), 1.0, 1.0, false).0 <= gpu.tdp().0 + 1e-9,
            "{name}: busy power exceeds TDP"
        );
    }
    assert!(DeviceTemplate::builtin("rtx-5090").is_none());
}

#[test]
fn builtins_match_their_devices_dir_files() {
    // The compiled-in copies and the files under devices/ are the same bytes
    // (include_str! reads the same files, but this pins the path layout).
    for name in BUILTIN_DEVICES {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../devices")
            .join(format!("{name}.json"));
        let loaded = DeviceTemplate::load(&path).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(Some(loaded), DeviceTemplate::builtin(name), "{name}");
    }
}

#[test]
fn device_classes_have_distinct_ladders() {
    // The zoo must actually span different frequency ranges, otherwise the
    // per-device sweet-spot contrast is vacuous.
    let max_of = |n: &str| {
        DeviceTemplate::builtin(n)
            .unwrap()
            .to_spec()
            .unwrap()
            .clock_table
            .max()
    };
    assert_eq!(max_of("a100-sxm4-80gb"), MegaHertz(1410));
    assert_eq!(max_of("h100-sxm5-80gb"), MegaHertz(1980));
    assert_eq!(max_of("mi250x-gcd"), MegaHertz(1700));
    assert_eq!(max_of("l4"), MegaHertz(2040));
}

#[test]
fn malformed_json_is_rejected() {
    let err = DeviceTemplate::from_json("{not a template").unwrap_err();
    assert!(
        err.to_string().contains("device template"),
        "unhelpful error: {err}"
    );
}

#[test]
fn unknown_field_error_lists_supported_fields() {
    // Splice an extra field into an otherwise-valid template.
    let good = serde_json::to_string(&DeviceTemplate::builtin("a100-sxm4-80gb").unwrap()).unwrap();
    let bad = format!("{{\"tdp_w\": 400.0, {}", &good[1..]);
    let err = DeviceTemplate::from_json(&bad).unwrap_err().to_string();
    assert!(err.contains("unknown field `tdp_w`"), "{err}");
    // The diagnostic enumerates the supported schema.
    for field in [
        "core_clocks_mhz",
        "core_capacitance_nf",
        "mem_clocks_mhz",
        "cooling",
    ] {
        assert!(err.contains(field), "{field} missing from: {err}");
    }
}

#[test]
fn non_monotone_clock_ladder_is_rejected() {
    let mut t = DeviceTemplate::builtin("a100-sxm4-80gb").unwrap();
    t.core_clocks_mhz = vec![1410, 1395, 1400, 1380];
    assert!(err_of(&t).contains("strictly descending"));
    // Ascending order (the "looks sorted" mistake) is equally rejected.
    t.core_clocks_mhz = vec![210, 225, 240];
    assert!(err_of(&t).contains("strictly descending"));
    // Descending but non-uniform is not a ladder either.
    t.core_clocks_mhz = vec![1410, 1395, 1370];
    assert!(err_of(&t).contains("uniform ladder"));
    // A single clock is not a ladder.
    t.core_clocks_mhz = vec![1410];
    assert!(err_of(&t).contains("at least two clocks"));
}

#[test]
fn empty_mem_pstate_table_is_rejected() {
    let mut t = DeviceTemplate::builtin("a100-sxm4-80gb").unwrap();
    t.mem_clocks_mhz = vec![];
    assert!(err_of(&t).contains("at least one P-state"));
    t.mem_clocks_mhz = vec![1593, 1593];
    assert!(err_of(&t).contains("strictly descending"));
}

#[test]
fn envelope_validation_rejects_nonsense() {
    let mut t = DeviceTemplate::builtin("a100-sxm4-80gb").unwrap();
    t.peak_gflops = 0.0;
    assert!(err_of(&t).contains("peak_gflops"));
    let mut t = DeviceTemplate::builtin("a100-sxm4-80gb").unwrap();
    t.voltage.v_min_v = 1.2; // above v_max
    assert!(err_of(&t).contains("v_min_v <= v_max_v"));
    let mut t = DeviceTemplate::builtin("a100-sxm4-80gb").unwrap();
    t.clock_hold_fraction = 1.5;
    assert!(err_of(&t).contains("clock_hold_fraction"));
}

#[test]
fn template_to_spec_round_trips() {
    // template → GpuSpec → template: every field survives. The capacitance
    // crosses `P = C V² f` twice (multiply then divide), so it is compared
    // to float precision; everything else must be bit-exact.
    for name in BUILTIN_DEVICES {
        let t = DeviceTemplate::builtin(name).unwrap();
        let gpu = t.to_spec().unwrap();
        let mut back = DeviceTemplate::from_spec(&gpu);
        let c_rel =
            (back.core_capacitance_nf - t.core_capacitance_nf).abs() / t.core_capacitance_nf;
        assert!(c_rel < 1e-14, "{name}: capacitance drifted by {c_rel}");
        back.core_capacitance_nf = t.core_capacitance_nf;
        assert_eq!(t, back, "{name}: template → spec → template drifted");
        // And the re-derived template builds the identical spec.
        assert_eq!(gpu, back.to_spec().unwrap(), "{name}");
    }
}

#[test]
fn spec_json_round_trips_exactly() {
    for name in BUILTIN_DEVICES {
        let gpu = DeviceTemplate::builtin(name).unwrap().to_spec().unwrap();
        let json = serde_json::to_string(&gpu).unwrap();
        let re: archsim::GpuSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(gpu, re, "{name}: GpuSpec JSON round trip");
    }
}

#[test]
fn missing_template_file_fails_with_path() {
    let err = DeviceTemplate::load(std::path::Path::new("/nonexistent/zoo/gpu.json"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("/nonexistent/zoo/gpu.json"), "{err}");
}
