//! Microbenchmarks for the architecture simulator: kernel-region execution,
//! timeline integration, and clock-table operations. These bound the cost of
//! the virtual-hardware layer relative to the real physics.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use archsim::{ClockTable, GpuDevice, GpuSpec, KernelWorkload, MegaHertz, SimDuration, SimInstant};

fn heavy_workload() -> KernelWorkload {
    KernelWorkload::new("MomentumEnergy", 4.4e11, 7.4e10)
        .with_activity(0.95, 0.55)
        .with_parallelism(91e6)
}

fn stream_workload() -> KernelWorkload {
    KernelWorkload::new("DomainDecompAndSync", 1.1e10, 5.5e10)
        .with_launches(300)
        .with_activity(0.15, 0.40)
        .with_parallelism(91e6)
}

fn bench_run_region(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_run_region");
    g.bench_function("pinned_heavy", |b| {
        b.iter_batched(
            || {
                let mut d = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
                d.set_application_clocks(MegaHertz(1410))
                    .expect("ladder clock");
                d
            },
            |mut d| black_box(d.run_region(&heavy_workload())),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dvfs_heavy", |b| {
        b.iter_batched(
            || GpuDevice::new(0, GpuSpec::a100_pcie_40gb()),
            |mut d| black_box(d.run_region(&heavy_workload())),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("dvfs_launch_stream", |b| {
        b.iter_batched(
            || GpuDevice::new(0, GpuSpec::a100_pcie_40gb()),
            |mut d| black_box(d.run_region(&stream_workload())),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_timeline(c: &mut Criterion) {
    // A device that has run 100 steps' worth of regions.
    let mut dev = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
    for _ in 0..500 {
        dev.run_region(&heavy_workload());
        dev.advance_idle(SimDuration::from_millis(1));
    }
    let end = dev.now();
    let mut g = c.benchmark_group("timeline");
    g.bench_function("energy_between_full_span", |b| {
        b.iter(|| black_box(dev.energy_between(SimInstant::ZERO, end)))
    });
    g.bench_function("sampled_energy_10hz", |b| {
        b.iter(|| {
            black_box(dev.power_timeline().sampled_energy(
                SimInstant::ZERO,
                end,
                SimDuration::from_millis(100),
            ))
        })
    });
    g.bench_function("power_at_point_query", |b| {
        let mid = SimInstant::from_nanos(end.as_nanos() / 2);
        b.iter(|| black_box(dev.power_timeline().power_at(mid)))
    });
    g.finish();
}

fn bench_clock_table(c: &mut Criterion) {
    let table = ClockTable::a100();
    c.bench_function("clock_table_nearest", |b| {
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 37) % 2000;
            black_box(table.nearest(MegaHertz(f)))
        })
    });
}

criterion_group!(benches, bench_run_region, bench_timeline, bench_clock_table);
criterion_main!(benches);
