//! Microbenchmarks for the octree/domain substrate: SFC keys, octree
//! construction, neighbor search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cornerstone::{key_of, Box3, CellList, Octree};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut z = Vec::with_capacity(n);
    for _ in 0..n {
        x.push(rng.random());
        y.push(rng.random());
        z.push(rng.random());
    }
    (x, y, z)
}

fn bench_keys(c: &mut Criterion) {
    let bbox = Box3::unit_periodic();
    let (x, y, z) = cloud(10_000, 1);
    c.bench_function("morton_keys_10k", |b| {
        b.iter(|| {
            let keys: Vec<u64> = (0..x.len())
                .map(|i| key_of(x[i], y[i], z[i], &bbox))
                .collect();
            black_box(keys)
        })
    });
}

fn bench_octree(c: &mut Criterion) {
    let bbox = Box3::unit_periodic();
    let (x, y, z) = cloud(50_000, 2);
    let mut keys: Vec<u64> = (0..x.len())
        .map(|i| key_of(x[i], y[i], z[i], &bbox))
        .collect();
    keys.sort_unstable();
    let mut g = c.benchmark_group("octree");
    g.bench_function("build_50k_bucket64", |b| {
        b.iter(|| black_box(Octree::build(&keys, 64)))
    });
    let tree = Octree::build(&keys, 64);
    g.bench_function("partition_32_ranks", |b| {
        b.iter(|| black_box(tree.partition(32)))
    });
    g.bench_function("leaf_of_key", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % keys.len();
            black_box(tree.leaf_of_key(keys[i]))
        })
    });
    g.finish();
}

fn bench_celllist(c: &mut Criterion) {
    let bbox = Box3::unit_periodic();
    let (x, y, z) = cloud(20_000, 3);
    let r = 0.05;
    let mut g = c.benchmark_group("celllist");
    g.bench_function("build_20k", |b| {
        b.iter(|| black_box(CellList::build(&x, &y, &z, &bbox, r)))
    });
    let cl = CellList::build(&x, &y, &z, &bbox, r);
    g.bench_function("neighbors_of_one", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 101) % x.len();
            black_box(cl.neighbors_of(i, r, &x, &y, &z))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_keys, bench_octree, bench_celllist);
criterion_main!(benches);
