//! Thread-scaling microbenchmarks for the `parallel` feature.
//!
//! Runs the three SPH hot loops and the brute-force tuner sweep at 1, 2, 4
//! and 8 workers via `par::set_max_threads`, so criterion's per-group output
//! directly reads as a scaling curve. The workload is big enough
//! (24³ = 13 824 particles) that the per-chunk scheduling overhead is
//! amortized; at laptop scale the SPH kernels should show ≥2× at 4 threads.
//!
//! `cargo bench -p bench --bench parallel_scaling`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cornerstone::CellList;
use sph::{
    density::density_gradh, iad::iad_divv_curlv, momentum::momentum_energy, subsonic_turbulence,
    Eos, Kernel,
};
use tuner::Objective;

/// Worker counts with fixed labels (`&'static str` keeps the benchmark IDs
/// allocation-free).
const THREADS: &[(usize, &str)] = &[(1, "t1"), (2, "t2"), (4, "t4"), (8, "t8")];

fn prepared() -> (sph::Particles, cornerstone::Box3, CellList) {
    let ic = subsonic_turbulence(24, 0.3, 9);
    let mut parts = ic.parts;
    let bbox = ic.bbox;
    let kernel = Kernel::CubicSpline;
    let h = parts.h[0];
    let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, kernel.support(h) * 1.4);
    density_gradh(&mut parts, &grid, &bbox, kernel);
    Eos::ideal_monatomic().apply(&mut parts);
    (parts, bbox, grid)
}

fn bench_sph_scaling(c: &mut Criterion) {
    let kernel = Kernel::CubicSpline;
    let (parts, bbox, grid) = prepared();
    type KernelFn = fn(&mut sph::Particles, &CellList, &cornerstone::Box3, Kernel);
    let kernels: [(&str, KernelFn); 3] = [
        ("density_gradh", density_gradh),
        ("iad_divv_curlv", iad_divv_curlv),
        ("momentum_energy", momentum_energy),
    ];
    for (name, func) in kernels {
        let mut g = c.benchmark_group(format!("parallel_scaling/{name}").as_str());
        g.sample_size(15);
        for &(t, label) in THREADS {
            g.bench_function(label, |b| {
                par::set_max_threads(t);
                b.iter_batched(
                    || parts.clone(),
                    |mut p| {
                        func(&mut p, &grid, &bbox, kernel);
                        black_box(p.rho[0])
                    },
                    BatchSize::SmallInput,
                );
                par::set_max_threads(0);
            });
        }
        g.finish();
    }
}

fn bench_tuner_scaling(c: &mut Criterion) {
    let gpu = archsim::GpuSpec::a100_pcie_40gb();
    let mut g = c.benchmark_group("parallel_scaling/tune_table");
    g.sample_size(10);
    for &(t, label) in THREADS {
        g.bench_function(label, |b| {
            par::set_max_threads(t);
            b.iter(|| {
                black_box(freqscale::tune_table(
                    &gpu,
                    1e6,
                    archsim::MegaHertz(1005),
                    archsim::MegaHertz(1410),
                    Objective::Edp,
                    true,
                ))
            });
            par::set_max_threads(0);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sph_scaling, bench_tuner_scaling);
criterion_main!(benches);
