//! End-to-end pipeline benchmarks: a full instrumented experiment and one
//! tuner sweep — the units of work every figure regenerator is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use archsim::{GpuSpec, MegaHertz};
use freqscale::{run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use sph::FuncId;
use tuner::{tune_kernel, Objective, ParamSpace, TuneOptions};

fn bench_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.bench_function("minihpc_1rank_2steps", |b| {
        b.iter(|| {
            let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2);
            spec.workload = WorkloadKind::Turbulence {
                n_side: 8,
                mach: 0.3,
                seed: 1,
            };
            spec.target_neighbors = 30;
            black_box(run_experiment(&spec))
        })
    });
    g.bench_function("cscs_8ranks_2steps", |b| {
        b.iter(|| {
            let spec = ExperimentSpec {
                system: archsim::cscs_a100(),
                ranks: 8,
                workload: WorkloadKind::Turbulence {
                    n_side: 10,
                    mach: 0.3,
                    seed: 1,
                },
                steps: 2,
                policy: FreqPolicy::Baseline,
                target_particles_per_rank: 150e6,
                setup: archsim::SimDuration::from_secs(1),
                comm: ranks::CommCost::default(),
                kernel: sph::Kernel::CubicSpline,
                target_neighbors: 30,
                collect_trace: false,
                slurm_gpu_freq: None,
                slurm_cpu_freq_khz: None,
                report_dir: None,
                power_cap_w: None,
                table_store: None,
                memory_clock: None,
                faults: None,
                scenario: None,
                checkpoint_dir: None,
                checkpoint_every: 0,
                restore_from: None,
                repart_skew_threshold: None,
                halo_overlap: true,
            };
            black_box(run_experiment(&spec))
        })
    });
    g.finish();
}

fn bench_tuner(c: &mut Criterion) {
    let gpu = GpuSpec::a100_pcie_40gb();
    let mut space = ParamSpace::new();
    space.add_frequency_range(MegaHertz(1005), MegaHertz(1410), 15);
    c.bench_function("tune_momentum_energy_28freqs", |b| {
        b.iter(|| {
            black_box(tune_kernel(
                "MomentumEnergy",
                |_p, n| FuncId::MomentumEnergy.workload(n),
                450.0f64.powi(3),
                &space,
                &gpu,
                TuneOptions {
                    objective: Objective::Edp,
                    iterations: 3,
                    ..Default::default()
                },
            ))
        })
    });
}

criterion_group!(benches, bench_experiment, bench_tuner);
criterion_main!(benches);
