//! Microbenchmarks for the SPH physics kernels at laptop scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cornerstone::CellList;
use ranks::CommCost;
use sph::{
    density::density_gradh, iad::iad_divv_curlv, momentum::momentum_energy, subsonic_turbulence,
    Eos, Kernel, NullObserver, SimConfig, Simulation,
};

fn prepared() -> (sph::Particles, cornerstone::Box3, CellList) {
    let ic = subsonic_turbulence(12, 0.3, 9);
    let mut parts = ic.parts;
    let bbox = ic.bbox;
    let kernel = Kernel::CubicSpline;
    let h = parts.h[0];
    let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, kernel.support(h) * 1.4);
    density_gradh(&mut parts, &grid, &bbox, kernel);
    Eos::ideal_monatomic().apply(&mut parts);
    (parts, bbox, grid)
}

fn bench_kernels(c: &mut Criterion) {
    let kernel = Kernel::CubicSpline;
    let (parts, bbox, grid) = prepared();
    let mut g = c.benchmark_group("sph_kernels_1728p");
    g.sample_size(20);
    g.bench_function("density_gradh", |b| {
        b.iter_batched(
            || parts.clone(),
            |mut p| {
                density_gradh(&mut p, &grid, &bbox, kernel);
                black_box(p.rho[0])
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("iad_divv_curlv", |b| {
        b.iter_batched(
            || parts.clone(),
            |mut p| {
                iad_divv_curlv(&mut p, &grid, &bbox, kernel);
                black_box(p.divv[0])
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("momentum_energy", |b| {
        b.iter_batched(
            || parts.clone(),
            |mut p| {
                momentum_energy(&mut p, &grid, &bbox, kernel);
                black_box(p.ax[0])
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("sph_step");
    g.sample_size(10);
    g.bench_function("single_rank_10cubed", |b| {
        b.iter(|| {
            let out = ranks::run(1, CommCost::default(), |ctx| {
                let ic = subsonic_turbulence(10, 0.3, 4);
                let mut sim = Simulation::new(
                    ic,
                    SimConfig {
                        target_neighbors: 40,
                        ..Default::default()
                    },
                );
                sim.step(ctx, &mut NullObserver)
            });
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_full_step);
criterion_main!(benches);
