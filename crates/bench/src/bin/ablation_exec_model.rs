//! Ablation — roofline execution model vs naive `1/f` scaling.
//!
//! DESIGN.md calls out the roofline model (`t(f) = t_mem + t_comp·f_max/f`)
//! as the load-bearing modeling choice: only the compute share responds to
//! the core clock. This ablation shows what the naive model (everything
//! scales with `f`) would predict instead — it erases the compute-bound vs
//! memory-bound distinction that Figs. 2 and 8 (and the whole ManDyn idea)
//! rest on.

use archsim::{
    ExecModel, ExecModelKind, GpuDevice, GpuSpec, MegaHertz, NaiveInverseModel, RooflineModel,
};
use bench::{banner, paper_450cubed, print_table, Cli};
use serde::Serialize;
use sph::FuncId;

#[derive(Serialize)]
struct Row {
    function: String,
    roofline_slowdown: f64,
    naive_slowdown: f64,
    roofline_energy: f64,
    naive_energy: f64,
}

fn measure(model: ExecModelKind, func: FuncId, n: f64, f: MegaHertz) -> (f64, f64) {
    let mut dev = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
    dev.set_exec_model(model);
    dev.set_application_clocks(f).expect("supported clock");
    let exec = dev.run_region(&func.workload(n));
    (exec.duration().as_secs_f64(), exec.energy.0)
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ABLATION: execution model",
        "Per-kernel slowdown and energy at 1005 vs 1410 MHz under roofline vs naive 1/f scaling.",
    );
    let n = paper_450cubed();
    let roof = ExecModelKind::Roofline(RooflineModel::default());
    let naive = ExecModelKind::Naive(NaiveInverseModel);

    let mut data = Vec::new();
    for func in FuncId::ALL {
        let (rt_hi, re_hi) = measure(roof, func, n, MegaHertz(1410));
        let (rt_lo, re_lo) = measure(roof, func, n, MegaHertz(1005));
        let (nt_hi, ne_hi) = measure(naive, func, n, MegaHertz(1410));
        let (nt_lo, ne_lo) = measure(naive, func, n, MegaHertz(1005));
        data.push(Row {
            function: func.name().to_string(),
            roofline_slowdown: rt_lo / rt_hi,
            naive_slowdown: nt_lo / nt_hi,
            roofline_energy: re_lo / re_hi,
            naive_energy: ne_lo / ne_hi,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.function.clone(),
                format!("{:.3}", r.roofline_slowdown),
                format!("{:.3}", r.naive_slowdown),
                format!("{:.3}", r.roofline_energy),
                format!("{:.3}", r.naive_energy),
            ]
        })
        .collect();
    print_table(
        &[
            "Function",
            "t@1005 roofline",
            "t@1005 naive",
            "E@1005 roofline",
            "E@1005 naive",
        ],
        &rows,
    );

    let spread = |rows: &[Row], f: fn(&Row) -> f64| {
        let vals: Vec<f64> = rows.iter().map(f).collect();
        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nSlowdown spread across kernels: roofline {:.3} vs naive {:.3} —",
        spread(&data, |r| r.roofline_slowdown),
        spread(&data, |r| r.naive_slowdown)
    );
    println!("the naive model predicts (almost) identical slowdown everywhere, so per-kernel");
    println!("frequency selection (Fig. 2) would find nothing to exploit.");
    // Sanity for the ablation itself.
    let _ = RooflineModel::default().breakdown(
        &FuncId::MomentumEnergy.workload(n),
        MegaHertz(1410),
        &GpuSpec::a100_pcie_40gb(),
    );
    cli.maybe_write_json(&data);
}
