//! Ablation — launch-boost governor vs utilization-only governor.
//!
//! §IV-E blames DVFS's energy anomaly on blind launch boosts: "each kernel
//! launch boosts the GPU frequency since the kernel does not yet have any
//! information on how much utilization is achieved". This ablation runs the
//! same kernel sequence under (a) the default boost-on-launch governor and
//! (b) a governor that targets only the utilization-feedback clock, and
//! under (c) pinned baseline clocks, showing where the extra energy goes.

use archsim::{DvfsParams, GpuDevice, GpuSpec, MegaHertz, SimDuration};
use bench::{banner, paper_450cubed, print_table, Cli};
use serde::Serialize;
use sph::FuncId;

#[derive(Serialize)]
struct Row {
    governor: String,
    time_s: f64,
    energy_j: f64,
    avg_light_kernel_mhz: f64,
    transitions: u64,
}

fn run(label: &str, setup: impl FnOnce(&mut GpuDevice), steps: usize) -> Row {
    let mut dev = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
    setup(&mut dev);
    let n = paper_450cubed();
    let mut light_freq_weight = 0.0;
    let mut light_time = 0.0;
    for _ in 0..steps {
        for func in FuncId::ALL {
            if func == FuncId::Gravity {
                continue;
            }
            dev.advance_idle(func.host_overhead(1));
            let exec = dev.run_region(&func.workload(n));
            if func == FuncId::DomainDecompAndSync {
                let d = exec.duration().as_secs_f64();
                light_freq_weight += f64::from(exec.avg_freq.0) * d;
                light_time += d;
            }
        }
        dev.advance_idle(SimDuration::from_millis(2));
    }
    Row {
        governor: label.to_string(),
        time_s: dev.now().as_secs_f64(),
        energy_j: dev.total_energy().0,
        avg_light_kernel_mhz: light_freq_weight / light_time,
        transitions: dev.transitions(),
    }
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ABLATION: DVFS governor launch boost",
        "Boost-on-launch vs utilization-only governor vs pinned baseline, same kernel sequence.",
    );
    let steps = cli.steps.max(3);

    let boost = run(
        "dvfs boost-on-launch (default)",
        |d| d.set_dvfs_params(DvfsParams::default()),
        steps,
    );
    let util_only = run(
        "dvfs utilization-only",
        |d| {
            d.set_dvfs_params(DvfsParams {
                // No blind boost: launches target the feedback clock only.
                launch_boost_fraction: 0.0,
                ..DvfsParams::default()
            })
        },
        steps,
    );
    let pinned = run(
        "pinned 1410 MHz",
        |d| {
            d.set_application_clocks(MegaHertz(1410))
                .expect("supported")
        },
        steps,
    );

    let data = vec![boost, util_only, pinned];
    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.governor.clone(),
                format!("{:.3}", r.time_s),
                format!("{:.1}", r.energy_j),
                format!("{:.0}", r.avg_light_kernel_mhz),
                r.transitions.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Governor",
            "Time [s]",
            "Energy [J]",
            "DomainDecomp avg MHz",
            "Clock transitions",
        ],
        &rows,
    );

    println!(
        "\nLaunch boost holds the lightweight-kernel stream at {:.0} MHz (paper: ~1200) where",
        data[0].avg_light_kernel_mhz
    );
    println!(
        "utilization feedback alone would settle near {:.0} MHz — costing {:.1} J extra over",
        data[1].avg_light_kernel_mhz,
        data[0].energy_j - data[1].energy_j
    );
    println!(
        "{} steps. This is the §IV-E mechanism behind DVFS losing to pinned clocks on energy.",
        steps
    );
    cli.maybe_write_json(&data);
}
