//! Ablation — why the paper never touches the *memory* frequency.
//!
//! §III-D: the NVML call "enables setting both the GPU compute frequency and
//! memory frequency, though we keep the memory frequency as is for all
//! cases." This ablation quantifies the choice: HBM down-clocking cuts
//! bandwidth one-for-one, so the bandwidth-bound kernels that tolerate core
//! down-scaling are exactly the ones a memory down-clock destroys.

use archsim::{GpuDevice, GpuSpec, MegaHertz};
use bench::{banner, paper_450cubed, print_table, Cli};
use serde::Serialize;
use sph::FuncId;

#[derive(Serialize)]
struct Row {
    function: String,
    kind: &'static str,
    time_ratio: f64,
    energy_ratio: f64,
    edp_ratio: f64,
}

fn measure(func: FuncId, mem_mhz: u32, n: f64) -> (f64, f64) {
    let mut dev = GpuDevice::new(0, GpuSpec::a100_pcie_40gb());
    dev.set_application_clocks(MegaHertz(1410))
        .expect("ladder clock");
    dev.set_memory_clock(MegaHertz(mem_mhz))
        .expect("supported mem P-state");
    let exec = dev.run_region(&func.workload(n));
    (exec.duration().as_secs_f64(), exec.energy.0)
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ABLATION: memory-clock down-scaling",
        "Per-kernel cost of dropping the HBM clock 1593 -> 810 MHz at a fixed 1410 MHz core clock.",
    );
    let n = paper_450cubed();
    let cases = [
        (FuncId::MomentumEnergy, "compute-bound"),
        (FuncId::IADVelocityDivCurl, "compute-bound"),
        (FuncId::NormalizationGradh, "bandwidth-bound"),
        (FuncId::XMass, "bandwidth-bound"),
        (FuncId::UpdateQuantities, "bandwidth-bound"),
    ];
    let mut data = Vec::new();
    for (func, kind) in cases {
        let (t_hi, e_hi) = measure(func, 1593, n);
        let (t_lo, e_lo) = measure(func, 810, n);
        data.push(Row {
            function: func.name().to_string(),
            kind,
            time_ratio: t_lo / t_hi,
            energy_ratio: e_lo / e_hi,
            edp_ratio: (t_lo * e_lo) / (t_hi * e_hi),
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.function.clone(),
                r.kind.to_string(),
                format!("{:.3}", r.time_ratio),
                format!("{:.3}", r.energy_ratio),
                format!("{:.3}", r.edp_ratio),
            ]
        })
        .collect();
    print_table(
        &["Function", "Kind", "Time @810", "Energy @810", "EDP @810"],
        &rows,
    );

    println!("\nA memory down-clock is a pure loss: time stretches with 1/bandwidth while power");
    println!("barely drops (HBM I/O is a small share), so energy *rises* and EDP doubles or");
    println!("triples — worst exactly where core down-scaling is safest (bandwidth-bound");
    println!("kernels). That asymmetry is why §III-D pins only the compute frequency.");
    cli.maybe_write_json(&data);
}
