//! Ablation — energy-measurement error vs sensor sampling period.
//!
//! PMT-style tools estimate energy by polling power counters. The paper's
//! Fig. 3 validation works because both PMT and Slurm sample fast relative
//! to the power dynamics; this ablation sweeps the sampling period on a real
//! kernel sequence and shows where polling starts to miss the spikes.

use archsim::{GpuDevice, GpuSpec, SimDuration, SimInstant};
use bench::{banner, paper_450cubed, print_table, Cli};
use pmt::{backends::NvmlSensor, Pmt};
use serde::Serialize;
use sph::FuncId;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    period_ms: f64,
    sampled_j: f64,
    exact_j: f64,
    error_pct: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ABLATION: sensor sampling period",
        "Loop energy estimated by polling at various periods vs the exact integral.",
    );

    // Run a few DVFS time-steps so the power trace has realistic structure
    // (boost ramps, idle dips, launch-overhead plateaus).
    let gpu = Arc::new(parking_lot::Mutex::new(GpuDevice::new(
        0,
        GpuSpec::a100_pcie_40gb(),
    )));
    {
        let mut dev = gpu.lock();
        let n = paper_450cubed();
        for _ in 0..cli.steps.max(3) {
            for func in FuncId::ALL {
                if func == FuncId::Gravity {
                    continue;
                }
                dev.advance_idle(func.host_overhead(1));
                dev.run_region(&func.workload(n));
            }
            dev.advance_idle(SimDuration::from_millis(2));
        }
    }
    let end = gpu.lock().now();
    let pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&gpu))));
    let exact = pmt.joules_between(SimInstant::ZERO, end).0;

    let mut data = Vec::new();
    for period_ms in [0.1f64, 1.0, 10.0, 100.0, 500.0, 2000.0] {
        let period = SimDuration::from_secs_f64(period_ms * 1e-3);
        let sampled = pmt.sampled_joules_between(SimInstant::ZERO, end, period).0;
        data.push(Row {
            period_ms,
            sampled_j: sampled,
            exact_j: exact,
            error_pct: (sampled - exact) / exact * 100.0,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.period_ms),
                format!("{:.1}", r.sampled_j),
                format!("{:.1}", r.exact_j),
                format!("{:+.2}%", r.error_pct),
            ]
        })
        .collect();
    print_table(&["Period [ms]", "Sampled [J]", "Exact [J]", "Error"], &rows);

    println!("\nAt the 100 ms (10 Hz) period of Cray pm_counters the error stays small for");
    println!("SPH-EXA-like kernels (hundreds of ms each); multi-second polling starts to alias.");
    cli.maybe_write_json(&data);
}
