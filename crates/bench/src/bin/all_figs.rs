//! Regenerate every exhibit in one go, writing each binary's JSON data into
//! `results/`. Convenience wrapper: runs the sibling binaries as child
//! processes so each keeps its own output and CLI.
//!
//! With `--jobs N` up to N exhibits run concurrently; each child's output is
//! captured and replayed in exhibit order, so the log reads the same as a
//! serial run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BINARIES: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation_exec_model",
    "ablation_sampling",
    "ablation_governor",
    "ablation_memclock",
    "archer2_cpu_freq",
    "futurework_arch_sweep",
    "extension_autotune",
    "weak_scaling",
    "projection_scale",
];

fn run_child(bin_dir: &Path, bin: &str, extra: &[String], json: &Path) -> std::io::Result<Output> {
    Command::new(bin_dir.join(bin))
        .args(extra)
        .arg("--json")
        .arg(json)
        .output()
}

fn main() {
    // Pass every unrecognized flag (e.g. --steps) through to the children.
    let mut jobs = 1usize;
    let mut extra: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--jobs needs a value");
                    std::process::exit(2);
                });
                jobs = v.parse().unwrap_or_else(|e| panic!("--jobs {v}: {e}"));
            }
            _ => extra.push(arg),
        }
    }
    let out_dir = PathBuf::from("results");
    std::fs::create_dir_all(&out_dir).expect("create results/");
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin directory").to_path_buf();

    // Each child writes its own results/<bin>.json, so the only shared
    // resource is the terminal — captured output keeps the log ordered.
    let outputs: Vec<(&str, std::io::Result<Output>)> =
        par::par_map_threads(jobs.max(1), BINARIES.len(), |i| {
            let bin = BINARIES[i];
            let json = out_dir.join(format!("{bin}.json"));
            (bin, run_child(&bin_dir, bin, &extra, &json))
        });

    let mut failures = Vec::new();
    for (bin, result) in outputs {
        println!("\n================= {bin} =================");
        match result {
            Ok(out) => {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{}", String::from_utf8_lossy(&out.stderr));
                if !out.status.success() {
                    eprintln!("{bin} exited with {}", out.status);
                    failures.push(bin);
                }
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build with `cargo build --release -p bench` first)");
                failures.push(bin);
            }
        }
    }
    println!("\nJSON data written to {}/", out_dir.display());
    if failures.is_empty() {
        println!("all {} exhibits regenerated.", BINARIES.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
