//! Regenerate every exhibit in one go, writing each binary's JSON data into
//! `results/`. Convenience wrapper: runs the sibling binaries as child
//! processes so each keeps its own output and CLI.

use std::path::PathBuf;
use std::process::Command;

const BINARIES: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablation_exec_model",
    "ablation_sampling",
    "ablation_governor",
    "ablation_memclock",
    "archer2_cpu_freq",
    "futurework_arch_sweep",
    "extension_autotune",
    "weak_scaling",
    "projection_scale",
];

fn main() {
    // Pass through --steps to every child.
    let extra: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = PathBuf::from("results");
    std::fs::create_dir_all(&out_dir).expect("create results/");
    let self_exe = std::env::current_exe().expect("own path");
    let bin_dir = self_exe.parent().expect("bin directory").to_path_buf();

    let mut failures = Vec::new();
    for bin in BINARIES {
        let json = out_dir.join(format!("{bin}.json"));
        println!("\n================= {bin} =================");
        let status = Command::new(bin_dir.join(bin))
            .args(&extra)
            .arg("--json")
            .arg(&json)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build with `cargo build --release -p bench` first)");
                failures.push(*bin);
            }
        }
    }
    println!("\nJSON data written to {}/", out_dir.display());
    if failures.is_empty() {
        println!("all {} exhibits regenerated.", BINARIES.len());
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
