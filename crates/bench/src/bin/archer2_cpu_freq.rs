//! Background experiment (§II-B): the ARCHER2 centre lowered default *CPU*
//! frequencies "to reduce power consumption with limited performance loss
//! for a variety of applications". For a GPU-resident code like SPH-EXA the
//! trade is even better: the host mostly idles, so `--cpu-freq` cuts node
//! energy at essentially zero time cost.

use bench::{banner, print_table, production_spec, Cli, PHYSICS_N_SIDE};
use freqscale::{run_experiment, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    cpu_freq_ghz: f64,
    time_norm: f64,
    cpu_energy_norm: f64,
    node_energy_norm: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "BACKGROUND: ARCHER2-style CPU frequency reduction",
        "Slurm --cpu-freq sweep on a CSCS-A100 node running GPU-resident turbulence (4 ranks).",
    );

    let mk = |khz: Option<u64>| {
        let mut spec = production_spec(
            archsim::cscs_a100(),
            4,
            WorkloadKind::Turbulence {
                n_side: PHYSICS_N_SIDE,
                mach: 0.3,
                seed: 7,
            },
            cli.steps,
            150e6,
        );
        spec.slurm_cpu_freq_khz = khz;
        run_experiment(&spec)
    };
    let base = mk(None); // part maximum (3.675 GHz on the EPYC 7713)

    let mut data = vec![Row {
        cpu_freq_ghz: 3.675,
        time_norm: 1.0,
        cpu_energy_norm: 1.0,
        node_energy_norm: 1.0,
    }];
    for khz in [2_600_000u64, 2_250_000, 2_000_000, 1_500_000] {
        let r = mk(Some(khz));
        let cpu_base: f64 = base.per_node.iter().map(|n| n.cpu_j).sum();
        let cpu_this: f64 = r.per_node.iter().map(|n| n.cpu_j).sum();
        data.push(Row {
            cpu_freq_ghz: khz as f64 / 1e6,
            time_norm: r.time_to_solution_s / base.time_to_solution_s,
            cpu_energy_norm: cpu_this / cpu_base,
            node_energy_norm: r.node_loop_j / base.node_loop_j,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                format!("{:.2} GHz", r.cpu_freq_ghz),
                format!("{:.4}", r.time_norm),
                format!("{:.4}", r.cpu_energy_norm),
                format!("{:.4}", r.node_energy_norm),
            ]
        })
        .collect();
    print_table(
        &["CPU frequency", "Time", "CPU energy", "Node energy"],
        &rows,
    );

    let two = data
        .iter()
        .find(|r| (r.cpu_freq_ghz - 2.0).abs() < 1e-9)
        .expect("2.0 GHz row");
    println!(
        "\nAt ARCHER2's 2.0 GHz-class setting: time x{:.4}, CPU energy x{:.3}, node energy x{:.3} —",
        two.time_norm, two.cpu_energy_norm, two.node_energy_norm
    );
    println!("\"limited performance loss\" is exact here: the loop is GPU-bound, so the CPU");
    println!("down-clock is pure node-energy saving (the §II-B background, quantified).");
    cli.maybe_write_json(&data);
}
