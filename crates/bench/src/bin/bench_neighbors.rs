//! Neighbor-search measurement: the per-sweep grid re-walk (the pre-list
//! baseline, `NeighborPath::CellGrid`) against the shared per-step CSR
//! `NeighborList` — both its scalar per-pair replay (`ScalarReplay`) and
//! the cache-blocked 4-lane sweep engine the list dispatches to by default —
//! written as the `BENCH_neighbors.json` artifact checked into the repo
//! root.
//!
//! Times each of the step's neighbor-bound sweeps (`neighbor_counts`,
//! `density_gradh`, `iad_divv_curlv`, `momentum_energy`) on all three paths,
//! plus the composite five-traversal step with the list build amortized in,
//! median of 7 reps, on Evrard and subsonic-turbulence particle clouds.
//! Regenerate with:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_neighbors
//! # CI smoke (build + one rep, no file rewrite):
//! cargo run --release -p bench --bin bench_neighbors -- --check
//! ```

use std::time::Instant;

use bench::{banner, print_table, Cli};
use cornerstone::{Box3, CellList, NeighborList, NeighborSearch, ScalarReplay};
use serde::Serialize;
use sph::{
    density::{density_gradh, neighbor_counts},
    evrard,
    iad::iad_divv_curlv,
    momentum::momentum_energy,
    subsonic_turbulence, Eos, Kernel, Particles,
};

const REPS: usize = 7;

#[derive(Serialize)]
struct SweepTiming {
    sweep: String,
    grid_seconds: f64,
    /// The list's default path: the cache-blocked 4-lane row engine.
    list_seconds: f64,
    /// The same list forced through the scalar per-pair callback replay
    /// (`ScalarReplay`) — the pre-blocking list path, for attribution.
    scalar_list_seconds: f64,
    /// Grid-path median over (blocked) list-path median (> 1 = list wins).
    speedup: f64,
    /// Scalar-replay median over blocked median — the blocking win alone,
    /// traversal held fixed.
    blocked_vs_scalar: f64,
}

#[derive(Serialize)]
struct WorkloadReport {
    workload: String,
    particles: usize,
    avg_neighbors: f64,
    max_neighbors: usize,
    csr_bytes: usize,
    /// Median seconds to rebuild the shared list in place.
    build_seconds: f64,
    sweeps: Vec<SweepTiming>,
    /// All five traversals back to back; the list column includes the
    /// per-step build, so this is the honest end-to-end comparison.
    full_step: SweepTiming,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    reps: usize,
    results: Vec<WorkloadReport>,
}

/// Median wall time of `work` over `reps` samples.
fn median_secs(reps: usize, mut work: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The four sweep functions run back to back against one neighbor source —
/// the step's five grid traversals (IAD walks its source twice).
fn five_sweeps<N: NeighborSearch + Sync>(
    parts: &mut Particles,
    nb: &N,
    bbox: &Box3,
    kernel: Kernel,
) {
    let _ = neighbor_counts(parts, nb, bbox, kernel);
    density_gradh(parts, nb, bbox, kernel);
    iad_divv_curlv(parts, nb, bbox, kernel);
    momentum_energy(parts, nb, bbox, kernel);
}

fn measure(workload: &str, mut parts: Particles, bbox: Box3, reps: usize) -> WorkloadReport {
    let kernel = Kernel::CubicSpline;
    let n = parts.x.len();
    let h_max = parts.h.iter().cloned().fold(1e-6, f64::max);
    // The step's maximum interaction radius — the grid cell size — and the
    // per-particle h-aware list radii, exactly as `Simulation::step` builds
    // them.
    let radius = kernel.support(h_max) * 1.4;
    let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, radius);
    density_gradh(&mut parts, &grid, &bbox, kernel);
    Eos::ideal_monatomic().apply(&mut parts);

    let radii: Vec<f64> = parts.h.iter().map(|&h| kernel.support(h) * 1.4).collect();
    let mut nlist = NeighborList::new();
    nlist.build_adaptive_into(&grid, &parts.x, &parts.y, &parts.z, n, &radii);
    let build_seconds = median_secs(reps, || {
        nlist.build_adaptive_into(&grid, &parts.x, &parts.y, &parts.z, n, &radii);
    });

    let mut sweeps = Vec::new();
    let mut timed = |sweep: &str, grid_s: f64, list_s: f64, scalar_s: f64| {
        let t = SweepTiming {
            sweep: sweep.to_string(),
            grid_seconds: grid_s,
            list_seconds: list_s,
            scalar_list_seconds: scalar_s,
            speedup: grid_s / list_s,
            blocked_vs_scalar: scalar_s / list_s,
        };
        sweeps.push(t);
    };
    {
        let p = &mut parts;
        let g = median_secs(reps, || {
            let _ = neighbor_counts(p, &grid, &bbox, kernel);
        });
        let l = median_secs(reps, || {
            let _ = neighbor_counts(p, &nlist, &bbox, kernel);
        });
        let s = median_secs(reps, || {
            let _ = neighbor_counts(p, &ScalarReplay(&nlist), &bbox, kernel);
        });
        timed("neighbor_counts", g, l, s);
    }
    {
        let g = median_secs(reps, || density_gradh(&mut parts, &grid, &bbox, kernel));
        let l = median_secs(reps, || density_gradh(&mut parts, &nlist, &bbox, kernel));
        let s = median_secs(reps, || {
            density_gradh(&mut parts, &ScalarReplay(&nlist), &bbox, kernel)
        });
        timed("density_gradh", g, l, s);
    }
    {
        let g = median_secs(reps, || iad_divv_curlv(&mut parts, &grid, &bbox, kernel));
        let l = median_secs(reps, || iad_divv_curlv(&mut parts, &nlist, &bbox, kernel));
        let s = median_secs(reps, || {
            iad_divv_curlv(&mut parts, &ScalarReplay(&nlist), &bbox, kernel)
        });
        timed("iad_divv_curlv", g, l, s);
    }
    {
        let g = median_secs(reps, || momentum_energy(&mut parts, &grid, &bbox, kernel));
        let l = median_secs(reps, || momentum_energy(&mut parts, &nlist, &bbox, kernel));
        let s = median_secs(reps, || {
            momentum_energy(&mut parts, &ScalarReplay(&nlist), &bbox, kernel)
        });
        timed("momentum_energy", g, l, s);
    }

    let full_grid = median_secs(reps, || five_sweeps(&mut parts, &grid, &bbox, kernel));
    let full_list = median_secs(reps, || {
        nlist.build_adaptive_into(&grid, &parts.x, &parts.y, &parts.z, n, &radii);
        five_sweeps(&mut parts, &nlist, &bbox, kernel);
    });
    let full_scalar = median_secs(reps, || {
        nlist.build_adaptive_into(&grid, &parts.x, &parts.y, &parts.z, n, &radii);
        five_sweeps(&mut parts, &ScalarReplay(&nlist), &bbox, kernel);
    });

    WorkloadReport {
        workload: workload.to_string(),
        particles: n,
        avg_neighbors: nlist.avg_neighbors(),
        max_neighbors: nlist.max_neighbors(),
        csr_bytes: nlist.csr_bytes(),
        build_seconds,
        sweeps,
        full_step: SweepTiming {
            sweep: "five_sweep_step".to_string(),
            grid_seconds: full_grid,
            list_seconds: full_list,
            scalar_list_seconds: full_scalar,
            speedup: full_grid / full_list,
            blocked_vs_scalar: full_scalar / full_list,
        },
    }
}

fn main() {
    let cli = Cli::parse();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_neighbors.json".to_string());
    if !cli.check {
        if let Err(msg) = bench::refuse_single_core_overwrite(
            host_threads,
            std::path::Path::new(&out_path).exists(),
            cli.force,
        ) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
    let reps = if cli.check { 1 } else { REPS };
    banner(
        "NEIGHBOR SEARCH (BENCH_neighbors.json)",
        "Grid re-walk vs CSR list (scalar replay and blocked 4-lane engine); median-of-reps speedups.",
    );

    let ev = evrard(18);
    let tb = subsonic_turbulence(20, 0.3, 9);
    let results = vec![
        measure("evrard_cloud", ev.parts, ev.bbox, reps),
        measure("turbulence_cloud", tb.parts, tb.bbox, reps),
    ];

    for r in &results {
        println!(
            "\n{} — {} particles, avg {:.1} / max {} candidates per row, CSR {:.1} KiB, build {:.2} ms",
            r.workload,
            r.particles,
            r.avg_neighbors,
            r.max_neighbors,
            r.csr_bytes as f64 / 1024.0,
            r.build_seconds * 1e3,
        );
        let rows: Vec<Vec<String>> = r
            .sweeps
            .iter()
            .chain(std::iter::once(&r.full_step))
            .map(|s| {
                vec![
                    s.sweep.clone(),
                    format!("{:.3}", s.grid_seconds * 1e3),
                    format!("{:.3}", s.scalar_list_seconds * 1e3),
                    format!("{:.3}", s.list_seconds * 1e3),
                    format!("{:.2}x", s.speedup),
                    format!("{:.2}x", s.blocked_vs_scalar),
                ]
            })
            .collect();
        print_table(
            &[
                "sweep",
                "grid ms",
                "scalar ms",
                "blocked ms",
                "vs grid",
                "vs scalar",
            ],
            &rows,
        );
    }

    if cli.check {
        eprintln!("--check: smoke rep complete, not rewriting {out_path}");
        return;
    }
    let report = Report {
        host_threads,
        reps,
        results,
    };
    let body = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, body).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
