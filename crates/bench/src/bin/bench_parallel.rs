//! Thread-scaling measurement for the `parallel` feature, written as the
//! `BENCH_parallel.json` artifact checked into the repo root.
//!
//! Times the three SPH hot loops, the Barnes-Hut gravity step, and the
//! brute-force tuner sweep at 1/2/4/8 workers (median of several reps each)
//! and reports per-workload speedup over the 1-thread run. Regenerate with:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_parallel
//! # or to another path:
//! cargo run --release -p bench --bin bench_parallel -- --json BENCH_parallel.json
//! ```

use std::time::Instant;

use bench::{banner, print_table, Cli};
use cornerstone::CellList;
use serde::Serialize;
use sph::{
    density::density_gradh, iad::iad_divv_curlv, momentum::momentum_energy, subsonic_turbulence,
    Eos, Kernel, NullObserver, SimConfig, Simulation,
};
use tuner::Objective;

const THREADS: &[usize] = &[1, 2, 4, 8];
const REPS: usize = 7;

#[derive(Serialize)]
struct Scaling {
    workload: String,
    /// Median wall-clock seconds per thread count, keyed "1", "2", "4", "8".
    seconds: Vec<(String, f64)>,
    /// Speedup over the 1-thread median at the same workload.
    speedup: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    /// Worker counts each workload was timed at (the `seconds` keys).
    worker_counts: Vec<usize>,
    reps: usize,
    particles: usize,
    results: Vec<Scaling>,
}

/// Median-of-reps wall time of `work` at `threads` workers.
fn time_at(threads: usize, mut work: impl FnMut()) -> f64 {
    par::set_max_threads(threads);
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    par::set_max_threads(0);
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn scaling(workload: &str, mut work: impl FnMut()) -> Scaling {
    let times: Vec<(String, f64)> = THREADS
        .iter()
        .map(|&t| (t.to_string(), time_at(t, &mut work)))
        .collect();
    let serial = times[0].1;
    let speedup = times.iter().map(|(k, s)| (k.clone(), serial / s)).collect();
    Scaling {
        workload: workload.to_string(),
        seconds: times,
        speedup,
    }
}

fn main() {
    let cli = Cli::parse();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    if let Err(msg) = bench::refuse_single_core_overwrite(
        host_threads,
        std::path::Path::new(&out_path).exists(),
        cli.force,
    ) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
    banner(
        "PARALLEL SCALING (BENCH_parallel.json)",
        "SPH hot loops, gravity step and tuner sweep at 1/2/4/8 workers; speedup over 1 thread.",
    );

    let kernel = Kernel::CubicSpline;
    let ic = subsonic_turbulence(24, 0.3, 9);
    let mut parts = ic.parts;
    let bbox = ic.bbox;
    let n = parts.x.len();
    let h = parts.h[0];
    let grid = CellList::build(&parts.x, &parts.y, &parts.z, &bbox, kernel.support(h) * 1.4);
    density_gradh(&mut parts, &grid, &bbox, kernel);
    Eos::ideal_monatomic().apply(&mut parts);

    let mut results = Vec::new();
    {
        let mut p = parts.clone();
        results.push(scaling("density_gradh", || {
            density_gradh(&mut p, &grid, &bbox, kernel)
        }));
    }
    {
        let mut p = parts.clone();
        results.push(scaling("iad_divv_curlv", || {
            iad_divv_curlv(&mut p, &grid, &bbox, kernel)
        }));
    }
    {
        let mut p = parts.clone();
        results.push(scaling("momentum_energy", || {
            momentum_energy(&mut p, &grid, &bbox, kernel)
        }));
    }
    results.push(scaling("evrard_gravity_step", || {
        ranks::run(1, ranks::CommCost::default(), |ctx| {
            let mut sim = Simulation::new(
                sph::evrard(12),
                SimConfig {
                    target_neighbors: 40,
                    ..Default::default()
                },
            );
            sim.step(ctx, &mut NullObserver);
        });
    }));
    results.push(scaling("tune_table_sweep", || {
        let gpu = archsim::GpuSpec::a100_pcie_40gb();
        freqscale::tune_table(
            &gpu,
            1e6,
            archsim::MegaHertz(1005),
            archsim::MegaHertz(1410),
            Objective::Edp,
            true,
        );
    }));

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|s| {
            let mut row = vec![s.workload.clone()];
            row.extend(s.speedup.iter().map(|(_, v)| format!("{v:.2}x")));
            row
        })
        .collect();
    print_table(&["workload", "1t", "2t", "4t", "8t"], &rows);

    let report = Report {
        host_threads,
        worker_counts: THREADS.to_vec(),
        reps: REPS,
        particles: n,
        results,
    };
    let body = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, body).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
