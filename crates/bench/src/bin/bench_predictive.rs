//! Predictive-tuner launch accounting, written as the
//! `BENCH_predictive.json` artifact checked into the repo root.
//!
//! For every instrumented kernel at the paper's 450³ tuning scale, runs the
//! exhaustive (core, memory)-clock sweep as ground truth and the
//! probe-fit-jump predictive sweep beside it, recording launches to
//! convergence, the launch savings, and the final EDP each path lands on.
//! This is the number the tentpole promises: the analytic model cuts
//! per-kernel exploration from the full product space to a handful of
//! probes plus one verification launch. Regenerate with:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_predictive
//! # or to another path:
//! cargo run --release -p bench --bin bench_predictive -- --json BENCH_predictive.json
//! ```

use archsim::{GpuSpec, MegaHertz};
use bench::{banner, paper_450cubed, print_table, Cli};
use serde::Serialize;
use sph::FuncId;
use tuner::{exhaustive_core_mem_sweep, predictive_core_mem_sweep, Objective, TuneOptions};

/// Probe rungs the predictive sweep samples, matching the acceptance test.
const PROBE_RUNGS: usize = 4;
const ITERATIONS: u32 = 2;

#[derive(Serialize)]
struct Row {
    kernel: String,
    /// Exhaustive (core, mem) product-space size — its launch count.
    exhaustive_launches: usize,
    /// Probes plus the verification launch the predictive path spent.
    predictive_launches: usize,
    /// `exhaustive_launches / predictive_launches`.
    launch_savings: f64,
    /// True EDP optimum from the exhaustive sweep, J·s.
    exhaustive_best_edp: f64,
    /// Measured EDP at the model's predicted (core, mem) point, J·s.
    predictive_edp: f64,
    /// `predictive_edp / exhaustive_best_edp` — 1.0 is a perfect jump.
    edp_ratio: f64,
    /// Predicted vs true clocks, for eyeballing near-misses.
    predicted_core_mhz: u32,
    predicted_mem_mhz: u32,
    true_core_mhz: u32,
    true_mem_mhz: u32,
    /// Time-model fit quality at the probes.
    r2_time: f64,
}

#[derive(Serialize)]
struct Report {
    gpu: String,
    problem_size: f64,
    probe_rungs: usize,
    iterations: u32,
    rows: Vec<Row>,
    /// Mean launch savings across kernels.
    mean_launch_savings: f64,
    /// Worst EDP excess over the true optimum across kernels.
    worst_edp_ratio: f64,
}

fn main() {
    let cli = Cli::parse();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_predictive.json".to_string());
    if !cli.check {
        if let Err(msg) = bench::refuse_single_core_overwrite(
            host_threads,
            std::path::Path::new(&out_path).exists(),
            cli.force,
        ) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
    let iterations = if cli.check { 1 } else { ITERATIONS };
    banner(
        "PREDICTIVE TUNING (BENCH_predictive.json)",
        "Launches to convergence and final EDP: probe-fit-jump vs the exhaustive (core, mem) sweep.",
    );

    let gpu = GpuSpec::a100_sxm4_80gb();
    let n = paper_450cubed();
    let lo = MegaHertz(1005);
    let mut rows = Vec::new();
    for func in FuncId::ALL {
        let truth = exhaustive_core_mem_sweep(
            func.name(),
            |_p, n| func.workload(n),
            n,
            &gpu,
            lo,
            TuneOptions {
                objective: Objective::Edp,
                iterations,
                ..Default::default()
            },
        );
        let pred = predictive_core_mem_sweep(
            func.name(),
            |_p, n| func.workload(n),
            n,
            &gpu,
            lo,
            PROBE_RUNGS,
            iterations,
        )
        .expect("instrumented kernels fit the analytic model");

        let best = truth.best_config();
        let true_core = best.params.frequency().expect("core axis swept").0;
        let true_mem = best
            .params
            .memory_frequency()
            .map_or(gpu.mem_clock.0, |m| m.0);
        rows.push(Row {
            kernel: func.name().to_string(),
            exhaustive_launches: truth.configs.len(),
            predictive_launches: pred.measurements,
            launch_savings: truth.configs.len() as f64 / pred.measurements as f64,
            exhaustive_best_edp: best.edp,
            predictive_edp: pred.verified.edp,
            edp_ratio: pred.verified.edp / best.edp,
            predicted_core_mhz: pred.predicted.f_core_mhz,
            predicted_mem_mhz: pred.predicted.f_mem_mhz,
            true_core_mhz: true_core,
            true_mem_mhz: true_mem,
            r2_time: pred.model.diag.r2_time,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                format!("{}", r.exhaustive_launches),
                format!("{}", r.predictive_launches),
                format!("{:.1}x", r.launch_savings),
                format!("{} @ {}", r.predicted_core_mhz, r.predicted_mem_mhz),
                format!("{} @ {}", r.true_core_mhz, r.true_mem_mhz),
                format!("{:.4}", r.edp_ratio),
            ]
        })
        .collect();
    print_table(
        &[
            "Kernel",
            "Sweep",
            "Pred.",
            "Savings",
            "Predicted MHz",
            "True MHz",
            "EDP ratio",
        ],
        &table,
    );

    let mean_launch_savings =
        rows.iter().map(|r| r.launch_savings).sum::<f64>() / rows.len() as f64;
    let worst_edp_ratio = rows.iter().map(|r| r.edp_ratio).fold(f64::MIN, f64::max);
    println!(
        "\nMean launch savings {mean_launch_savings:.1}x; worst EDP excess {:.2}% over the \
         exhaustive optimum.",
        (worst_edp_ratio - 1.0) * 100.0
    );

    if cli.check {
        eprintln!("--check: smoke rep complete, not rewriting {out_path}");
        return;
    }
    let report = Report {
        gpu: gpu.name.clone(),
        problem_size: n,
        probe_rungs: PROBE_RUNGS,
        iterations,
        rows,
        mean_launch_savings,
        worst_edp_ratio,
    };
    let body = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, body).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
