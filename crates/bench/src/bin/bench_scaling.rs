//! Million-particle weak scaling of the real host-side SPH loop, written as
//! the `BENCH_scaling.json` artifact checked into the repo root.
//!
//! Two measurements:
//!
//! 1. **Weak scaling** — 1/2/4 ranks at 250 k particles per rank (so the
//!    4-rank row is a full million particles), per-rank CPU seconds per
//!    steady step. Weak scaling holds when the normalized CPU time stays
//!    flat (the acceptance bar is ≤ 1.3× from 1 to 4 ranks). Per-thread CPU
//!    time — not wall clock — is measured, so the numbers are meaningful
//!    even on an oversubscribed single-core host.
//! 2. **Incremental vs full repartitioning** — the same 4-rank problem run
//!    with the default skew threshold (repartition only when max/mean load
//!    exceeds 1.15) against a sub-1 threshold that forces a full SFC
//!    rebuild every step. The artifact records how many steps repartitioned
//!    and what fraction of particles changed owner after the initial
//!    partition.
//!
//! Regenerate with:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_scaling
//! ```
//!
//! `--check` runs a miniature version of both measurements and never writes
//! the artifact — the CI smoke mode.

use bench::{banner, host_weak_scaling, print_table, Cli, HostScalingRow};
use serde::Serialize;

#[derive(Serialize)]
struct RepartitionComparison {
    ranks: usize,
    particles: usize,
    steps: usize,
    /// Steps that recomputed the SFC partition under the default (1.15)
    /// skew threshold — the initial partition plus skew-triggered rebuilds.
    incremental_repartitions: u64,
    /// Fraction of (particles × steady steps) that changed owner under the
    /// incremental scheme.
    incremental_moved_frac: f64,
    /// Same, with a sub-1 threshold forcing a full rebuild every step.
    full_repartitions: u64,
    full_moved_frac: f64,
    /// Per-steady-step particle data motion: owner-change migration plus
    /// the full key gather a rebuild pays, as a fraction of the total
    /// particle count. A rebuild-every-step scheme is ≥ 1.0 by
    /// construction; the incremental scheme's whole point is keeping this
    /// under 0.2.
    incremental_sync_frac: f64,
    full_sync_frac: f64,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    steps: usize,
    per_rank_particles: usize,
    weak_scaling: Vec<HostScalingRow>,
    repartition: RepartitionComparison,
}

fn moved_frac(rows: &[HostScalingRow], steps: usize) -> f64 {
    let last = rows.last().expect("rows");
    last.migrated_after_first as f64 / (last.particles as f64 * (steps - 1) as f64)
}

/// Migration plus rebuild key-gathers per steady step, as a fraction of the
/// particle count (a rebuild ships every key to every rank, so each one
/// counts as a full pass over the data).
fn sync_frac(rows: &[HostScalingRow], steps: usize) -> f64 {
    let last = rows.last().expect("rows");
    let gathered = last.particles as f64 * (last.repartitions.saturating_sub(1)) as f64;
    (last.migrated_after_first as f64 + gathered) / (last.particles as f64 * (steps - 1) as f64)
}

fn main() {
    let cli = Cli::parse();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_path = cli
        .json
        .clone()
        .unwrap_or_else(|| "BENCH_scaling.json".to_string());
    if !cli.check {
        if let Err(msg) = bench::refuse_single_core_overwrite(
            host_threads,
            std::path::Path::new(&out_path).exists(),
            cli.force,
        ) {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
    banner(
        "WEAK SCALING, host-side SPH (BENCH_scaling.json)",
        "1/2/4 ranks at fixed particles/rank; per-rank CPU s per steady step, plus incremental vs full repartitioning.",
    );

    // --check shrinks everything to smoke-test scale and writes nothing.
    let (per_rank, steps) = if cli.check { (4_000, 2) } else { (250_000, 3) };
    let rank_counts = [1usize, 2, 4];

    let weak = host_weak_scaling(&rank_counts, per_rank, steps, None);
    let rows: Vec<Vec<String>> = weak
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                r.particles.to_string(),
                format!("{:.3}", r.cpu_s_per_rank_step),
                format!("{:.3}", r.cpu_norm),
                r.repartitions.to_string(),
                r.migrated_after_first.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "ranks",
            "particles",
            "cpu s/step",
            "norm",
            "reparts",
            "migrated",
        ],
        &rows,
    );
    let worst = weak.iter().map(|r| r.cpu_norm).fold(0.0, f64::max);
    println!("\nweak-scaling flatness: worst normalized CPU time {worst:.3} (bar: <= 1.3)");

    // Repartition comparison on the largest rank count at a lighter size.
    let (rep_per_rank, rep_steps) = if cli.check { (2_000, 3) } else { (25_000, 6) };
    let incremental = host_weak_scaling(&[4], rep_per_rank, rep_steps, None);
    let full = host_weak_scaling(&[4], rep_per_rank, rep_steps, Some(0.99));
    let repartition = RepartitionComparison {
        ranks: 4,
        particles: incremental[0].particles,
        steps: rep_steps,
        incremental_repartitions: incremental[0].repartitions,
        incremental_moved_frac: moved_frac(&incremental, rep_steps),
        full_repartitions: full[0].repartitions,
        full_moved_frac: moved_frac(&full, rep_steps),
        incremental_sync_frac: sync_frac(&incremental, rep_steps),
        full_sync_frac: sync_frac(&full, rep_steps),
    };
    println!(
        "repartitioning over {} steps: incremental {} rebuilds, {:.4} of particle data \
         moved/step; full {} rebuilds, {:.4} moved/step",
        rep_steps,
        repartition.incremental_repartitions,
        repartition.incremental_sync_frac,
        repartition.full_repartitions,
        repartition.full_sync_frac,
    );
    assert!(
        repartition.incremental_repartitions < repartition.full_repartitions,
        "incremental scheme must rebuild less often than the forced-full run"
    );
    assert!(
        repartition.incremental_sync_frac < 0.2,
        "incremental repartitioning must move <20% of particle data per steady step"
    );
    assert!(
        repartition.full_sync_frac >= 1.0,
        "a rebuild-every-step scheme re-gathers 100% of the data"
    );

    if cli.check {
        println!("\n--check: smoke only, artifact not written");
        return;
    }
    let report = Report {
        host_threads,
        steps,
        per_rank_particles: per_rank,
        weak_scaling: weak,
        repartition,
    };
    let body = serde_json::to_string_pretty(&report).expect("serializable");
    std::fs::write(&out_path, body).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
