//! Zoo smoke — one short Baseline rep for every scenario × device cell.
//!
//! Cheap insurance that the whole cube actually runs: every registry
//! scenario's IC builds, every device template's system boots it, and the
//! experiment completes with finite, positive time and energy. The CI lint
//! job runs this with `--check` (single step per cell); without flags it
//! runs `DEFAULT_STEPS`-step cells and can write the timing table as JSON.
//!
//! ```sh
//! cargo run --release -p bench --bin bench_zoo -- --check
//! cargo run --release -p bench --bin bench_zoo -- --json zoo_smoke.json
//! ```

use archsim::{DeviceTemplate, BUILTIN_DEVICES};
use bench::{banner, print_table, Cli};
use freqscale::{run_experiment, system_for_device, ExperimentSpec, FreqPolicy, SCENARIOS};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    device: String,
    particles: usize,
    time_s: f64,
    gpu_j: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ZOO SMOKE",
        "One Baseline rep per scenario x device cell: the full cube must run.",
    );
    let steps = if cli.check { 1 } else { cli.steps.max(2) };

    let mut rows = Vec::new();
    for device in BUILTIN_DEVICES {
        let template = DeviceTemplate::builtin(device).expect("builtin device");
        let system = system_for_device(&template).expect("builtin template validates");
        for scenario in SCENARIOS {
            let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, steps);
            spec.system = system.clone();
            spec.scenario = Some(scenario.to_string());
            spec.resolve_scenario().expect("registry scenario");
            let particles = spec.workload.build().parts.len();
            let result = run_experiment(&spec);
            assert!(
                result.time_to_solution_s.is_finite() && result.time_to_solution_s > 0.0,
                "{scenario}/{device}: bad time {}",
                result.time_to_solution_s
            );
            assert!(
                result.pmt_gpu_j.is_finite() && result.pmt_gpu_j > 0.0,
                "{scenario}/{device}: bad energy {}",
                result.pmt_gpu_j
            );
            rows.push(Row {
                scenario: scenario.to_string(),
                device: system.name.clone(),
                particles,
                time_s: result.time_to_solution_s,
                gpu_j: result.pmt_gpu_j,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.device.clone(),
                format!("{}", r.particles),
                format!("{:.3}", r.time_s),
                format!("{:.1}", r.gpu_j),
            ]
        })
        .collect();
    print_table(
        &["Scenario", "Device", "Particles", "Time [s]", "GPU [J]"],
        &table,
    );
    println!(
        "\nAll {} cells ({} scenarios x {} devices) ran to completion.",
        rows.len(),
        SCENARIOS.len(),
        BUILTIN_DEVICES.len()
    );
    if cli.check {
        eprintln!("--check: smoke rep complete");
        return;
    }
    cli.maybe_write_json(&rows);
}
