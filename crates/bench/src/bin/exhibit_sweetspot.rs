//! Zoo exhibit — per-kernel EDP-optimal frequency ("sweet spot") across the
//! device zoo, per scenario.
//!
//! The paper tunes one workload on one device (A100, Fig. 2). The zoo
//! generalizes both axes: every scenario carries its own compute-vs-memory
//! kernel mix ([`sph::WorkloadProfile`]) and every device template its own
//! envelope, so the tuned table — and the normalized sweet spot — must
//! differ per device for the same scenario. This exhibit reproduces the
//! paper's A100-vs-MI250X contrast and hard-fails if the contrast is
//! vacuous (identical sweet spots on ≥2 device classes would mean the zoo
//! axes are not actually exercising the model).
//!
//! ```sh
//! cargo run --release -p bench --bin exhibit_sweetspot -- --json figs/zoo_sweetspots.json
//! cargo run --release -p bench --bin exhibit_sweetspot -- --check   # 1 scenario, 2 devices
//! ```

use archsim::{DeviceTemplate, GpuSpec, MegaHertz, BUILTIN_DEVICES};
use bench::{banner, paper_450cubed, print_table, Cli};
use serde::Serialize;
use sph::{FuncId, WorkloadProfile};
use tuner::{tune_kernel, Objective, ParamSpace, TuneOptions};

#[derive(Serialize)]
struct Cell {
    device: String,
    scenario: String,
    sweep_mhz: (u32, u32),
    /// Per-kernel best-EDP frequency, in `FuncId::ALL` order.
    per_kernel_mhz: Vec<(String, u32)>,
    /// Mean of `best / max` across kernels: the device's normalized sweet
    /// spot for this scenario (1.0 = everything tunes to the ceiling).
    mean_normalized: f64,
}

#[derive(Serialize)]
struct Contrast {
    scenario: String,
    device_a: String,
    device_b: String,
    mean_normalized_a: f64,
    mean_normalized_b: f64,
    /// Kernels whose *normalized* sweet spot differs between the devices.
    kernels_differing: usize,
}

#[derive(Serialize)]
struct Exhibit {
    problem_size: f64,
    cells: Vec<Cell>,
    /// Pairwise same-scenario contrasts against the first device.
    contrasts: Vec<Contrast>,
}

/// The paper sweeps ~71-100 % of the max clock (1005-1410 on the A100);
/// apply the same fraction to any ladder, snapped onto it.
fn sweep_floor(gpu: &GpuSpec) -> MegaHertz {
    let max = gpu.clock_table.max().0;
    let step = gpu.clock_table.step();
    let target = (0.71 * max as f64) as u32;
    let lo = max - (max - target) / step * step;
    MegaHertz(lo.max(gpu.clock_table.min().0))
}

fn tune_cell(
    gpu: &GpuSpec,
    scenario: &str,
    n: f64,
    iterations: u32,
    include_gravity: bool,
) -> Cell {
    let lo = sweep_floor(gpu);
    let hi = gpu.clock_table.max();
    let mut space = ParamSpace::new();
    space.add_frequency_range(lo, hi, gpu.clock_table.step());
    let ic_name = freqscale::workload_for(scenario)
        .expect("registry scenario")
        .name();
    let profile = WorkloadProfile::for_scenario(ic_name);
    let mut per_kernel = Vec::new();
    let mut norm_sum = 0.0;
    for func in FuncId::ALL {
        if func == FuncId::Gravity && !include_gravity {
            continue;
        }
        let result = tune_kernel(
            func.name(),
            |_params, n| profile.workload(func, n),
            n,
            &space,
            gpu,
            TuneOptions {
                objective: Objective::Edp,
                iterations,
                ..Default::default()
            },
        );
        let best = result.best_frequency().expect("frequency axis present");
        norm_sum += best.0 as f64 / hi.0 as f64;
        per_kernel.push((func.name().to_string(), best.0));
    }
    Cell {
        device: gpu.name.clone(),
        scenario: scenario.to_string(),
        sweep_mhz: (lo.0, hi.0),
        mean_normalized: norm_sum / per_kernel.len() as f64,
        per_kernel_mhz: per_kernel,
    }
}

fn main() {
    let cli = Cli::parse();
    banner(
        "ZOO EXHIBIT: sweet spot vs device",
        "Per-kernel best-EDP frequency for every scenario x device cell; the A100-vs-MI250X contrast generalized.",
    );
    let iterations = if cli.check { 1 } else { 2 };
    let devices: Vec<&str> = if cli.check {
        vec!["a100-sxm4-80gb", "mi250x-gcd"]
    } else {
        BUILTIN_DEVICES.to_vec()
    };
    let scenarios: Vec<&str> = if cli.check {
        vec!["sod"]
    } else {
        freqscale::SCENARIOS.to_vec()
    };
    let n = paper_450cubed();

    let mut cells = Vec::new();
    for device in &devices {
        let gpu = DeviceTemplate::builtin(device)
            .expect("builtin device")
            .to_spec()
            .expect("builtin template validates");
        for scenario in &scenarios {
            // Gravity only tunes where the scenario integrates it.
            let include_gravity = freqscale::workload_for(scenario)
                .expect("registry scenario")
                .build()
                .gravity;
            cells.push(tune_cell(&gpu, scenario, n, iterations, include_gravity));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.device.clone(),
                format!("{}-{}", c.sweep_mhz.0, c.sweep_mhz.1),
                format!("{:.3}", c.mean_normalized),
            ]
        })
        .collect();
    print_table(
        &[
            "Scenario",
            "Device",
            "Sweep [MHz]",
            "Mean sweet spot (norm.)",
        ],
        &rows,
    );

    // Same-scenario contrast of every device against the first (the
    // A100-class reference): the normalized per-kernel tables must differ.
    let mut contrasts = Vec::new();
    for scenario in &scenarios {
        let of = |device_idx: usize| {
            cells
                .iter()
                .find(|c| {
                    c.scenario == *scenario
                        && c.device == DeviceTemplate::builtin(devices[device_idx]).unwrap().name
                })
                .expect("cell exists")
        };
        let a = of(0);
        for k in 1..devices.len() {
            let b = of(k);
            let differing = a
                .per_kernel_mhz
                .iter()
                .zip(&b.per_kernel_mhz)
                .filter(|((_, fa), (_, fb))| {
                    (*fa as f64 / a.sweep_mhz.1 as f64 - *fb as f64 / b.sweep_mhz.1 as f64).abs()
                        > 1e-9
                })
                .count();
            contrasts.push(Contrast {
                scenario: scenario.to_string(),
                device_a: a.device.clone(),
                device_b: b.device.clone(),
                mean_normalized_a: a.mean_normalized,
                mean_normalized_b: b.mean_normalized,
                kernels_differing: differing,
            });
        }
    }
    println!();
    for c in &contrasts {
        println!(
            "{}: {} tunes to {:.3} of max vs {} at {:.3} ({} kernel(s) differ)",
            c.scenario,
            c.device_a,
            c.mean_normalized_a,
            c.device_b,
            c.mean_normalized_b,
            c.kernels_differing
        );
    }
    // The acceptance bar: at least two device classes disagree on the
    // EDP-optimal frequency for the same scenario.
    let distinct = contrasts.iter().any(|c| {
        c.kernels_differing > 0 || (c.mean_normalized_a - c.mean_normalized_b).abs() > 1e-9
    });
    if !distinct {
        eprintln!("error: every device class produced the identical normalized sweet spot");
        std::process::exit(1);
    }

    if cli.check {
        eprintln!("--check: contrast holds on the smoke cell, skipping JSON");
        return;
    }
    cli.maybe_write_json(&Exhibit {
        problem_size: n,
        cells,
        contrasts,
    });
}
