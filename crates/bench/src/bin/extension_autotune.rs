//! Extension — online per-kernel frequency tuning.
//!
//! The paper's ManDyn needs an offline KernelTuner pass (§III-C) before the
//! production run. Two policies fold that pass into the run itself: the
//! simple `AutoTune` rotation (fixed candidates, fixed rounds) and the
//! `ManDynOnline` search (coarse-then-refine over the whole ladder with
//! convergence pinning). This bench shows the convergence: warm-up costs a
//! little, the steady state matches offline ManDyn.

use archsim::GpuSpec;
use bench::{banner, minihpc_spec, paper_450cubed, print_table, Cli};
use freqscale::{policy::paper_mandyn_table, run_experiment, FreqPolicy};
use online::OnlineTunerConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    steps: usize,
    time_norm: f64,
    energy_norm: f64,
    edp_norm: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "EXTENSION: online auto-tuning",
        "AutoTune / ManDynOnline (no offline pass) vs offline-tuned ManDyn vs baseline, by run length.",
    );
    let gpu = GpuSpec::a100_pcie_40gb();
    let mandyn_table = paper_mandyn_table(&gpu);
    let n = paper_450cubed();

    let mut data = Vec::new();
    // Short runs amortize the warm-up poorly; long runs converge to ManDyn.
    for steps in [6usize, 12, 24, 48] {
        if cli.steps != bench::DEFAULT_STEPS && steps > cli.steps * 6 {
            continue; // allow --steps to cap the sweep cost
        }
        let base = run_experiment(&minihpc_spec(FreqPolicy::Baseline, steps, n));
        for policy in [
            FreqPolicy::ManDyn(mandyn_table.clone()),
            FreqPolicy::auto_tune_default(&gpu),
            FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        ] {
            let r = run_experiment(&minihpc_spec(policy, steps, n));
            let (t, e, edp) = r.normalized_to(&base);
            data.push(Row {
                policy: r.policy.clone(),
                steps,
                time_norm: t,
                energy_norm: e,
                edp_norm: edp,
            });
        }
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.steps.to_string(),
                r.policy.clone(),
                format!("{:.4}", r.time_norm),
                format!("{:.4}", r.energy_norm),
                format!("{:.4}", r.edp_norm),
            ]
        })
        .collect();
    print_table(&["Steps", "Policy", "Time", "GPU energy", "EDP"], &rows);

    if let (Some(m), Some(a), Some(o)) = (
        data.iter().rev().find(|r| r.policy == "mandyn"),
        data.iter().rev().find(|r| r.policy == "autotune"),
        data.iter().rev().find(|r| r.policy == "mandyn-online"),
    ) {
        println!(
            "\nAt {} steps: AutoTune EDP {:.4}, ManDynOnline EDP {:.4} vs offline ManDyn {:.4}",
            a.steps, a.edp_norm, o.edp_norm, m.edp_norm
        );
        println!("— the warm-up cost amortizes away, removing the paper's offline KernelTuner");
        println!("prerequisite; ManDynOnline additionally pins each kernel once converged.");
    }
    cli.maybe_write_json(&data);
}
