//! Fig. 1 — programming-language efficiency as a function of time-to-solution
//! (background figure, reproduced in the paper from Portegies Zwart,
//! *Nature Astronomy* 2020).
//!
//! The original measures N-body production codes across languages; the key
//! shape is that energy scales with runtime times sustained node power, so
//! interpreted languages sit an order of magnitude or more above compiled
//! ones, and CUDA implementations beat C++/Fortran by another order of
//! magnitude thanks to the GPU's performance-per-watt. We regenerate that
//! shape from the same first-order model: `E = P_node * t`, with per-language
//! relative runtimes from the reference's reported ranges.

use bench::{banner, print_table, Cli};
use serde::Serialize;

#[derive(Serialize)]
struct LangPoint {
    language: &'static str,
    rel_time_to_solution: f64,
    rel_energy: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 1 (background)",
        "Language efficiency vs time-to-solution for N-body codes (shape per Portegies Zwart 2020).",
    );

    // (language, relative runtime vs C++, relative sustained node power).
    // GPU runs shift power up ~1.6x but runtime down ~20x.
    let langs = [
        ("CUDA (GPU)", 0.05, 1.6),
        ("C++", 1.0, 1.0),
        ("Fortran", 1.1, 1.0),
        ("Java", 2.5, 1.05),
        ("Python (NumPy)", 10.0, 0.95),
        ("Python (pure)", 60.0, 0.9),
    ];
    let points: Vec<LangPoint> = langs
        .iter()
        .map(|&(language, t, p)| LangPoint {
            language,
            rel_time_to_solution: t,
            rel_energy: t * p,
        })
        .collect();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.language.to_string(),
                format!("{:.2}", p.rel_time_to_solution),
                format!("{:.2}", p.rel_energy),
            ]
        })
        .collect();
    print_table(&["Language", "Rel. time-to-solution", "Rel. energy"], &rows);

    // The figure's headline: CUDA ~an order of magnitude more efficient.
    let cuda = &points[0];
    let cpp = &points[1];
    println!(
        "\nCUDA vs C++: {:.0}x faster, {:.0}x less energy (paper: ~order of magnitude).",
        cpp.rel_time_to_solution / cuda.rel_time_to_solution,
        cpp.rel_energy / cuda.rel_energy
    );
    cli.maybe_write_json(&points);
}
