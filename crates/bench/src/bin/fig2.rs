//! Fig. 2 — GPU frequencies per function optimized for the best EDP outcome
//! (Subsonic Turbulence, 450³ particles, KernelTuner sweep 1005–1410 MHz).

use archsim::{GpuSpec, MegaHertz};
use bench::{banner, paper_450cubed, print_table, Cli};
use freqscale::policy::tune_table;
use serde::Serialize;
use tuner::Objective;

#[derive(Serialize)]
struct Row {
    function: String,
    best_mhz: u32,
    edp_vs_1410: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 2",
        "Per-function best-EDP GPU compute frequency (KernelTuner-style sweep, 1005-1410 MHz, 450^3 particles).",
    );
    let gpu = GpuSpec::a100_pcie_40gb();
    let (table, detail) = tune_table(
        &gpu,
        paper_450cubed(),
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        false, // turbulence: no gravity
    );

    let mut rows = Vec::new();
    let mut data = Vec::new();
    for (func, result) in &detail {
        let best = result.best_config();
        let at_max = result
            .configs
            .iter()
            .find(|c| c.params.frequency() == Some(MegaHertz(1410)))
            .expect("1410 in sweep");
        let rel = best.edp / at_max.edp;
        rows.push(vec![
            func.name().to_string(),
            table[func].to_string(),
            format!("{:.3}", rel),
        ]);
        data.push(Row {
            function: func.name().to_string(),
            best_mhz: table[func].0,
            edp_vs_1410: rel,
        });
    }
    print_table(&["Function", "Best frequency", "EDP vs 1410 MHz"], &rows);

    println!(
        "\nShape check: compute-bound kernels (MomentumEnergy {}, IADVelocityDivCurl {}) tune high;",
        table[&sph::FuncId::MomentumEnergy], table[&sph::FuncId::IADVelocityDivCurl]
    );
    println!(
        "bandwidth-bound kernels (XMass {}, NormalizationGradh {}) tune to the sweep floor — Fig. 2's pattern.",
        table[&sph::FuncId::XMass], table[&sph::FuncId::NormalizationGradh]
    );
    cli.maybe_write_json(&data);
}
