//! Fig. 3 — validation of PMT-measured energy against Slurm-reported energy,
//! Subsonic Turbulence at 150 M particles per GPU, 8–48 GPU cards
//! (CSCS-A100) and 16–96 GCDs (LUMI-G), normalized to the largest run.

use bench::{banner, n_side_for_ranks, print_table, production_spec, Cli};
use freqscale::{run_experiment, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    gpus: usize,
    pmt_j: f64,
    slurm_j: f64,
    pmt_norm: f64,
    slurm_norm: f64,
}

fn sweep(system: archsim::SystemSpec, counts: &[usize], steps: usize) -> Vec<Row> {
    let mut raw = Vec::new();
    for &ranks in counts {
        let spec = production_spec(
            system.clone(),
            ranks,
            WorkloadKind::Turbulence {
                n_side: n_side_for_ranks(ranks),
                mach: 0.3,
                seed: 7,
            },
            steps,
            150e6,
        );
        let r = run_experiment(&spec);
        raw.push((ranks, r.pmt_total_j, r.slurm_consumed_j));
    }
    let (_, pmt_ref, slurm_ref) = *raw.last().expect("non-empty sweep");
    raw.into_iter()
        .map(|(gpus, pmt_j, slurm_j)| Row {
            system: system.name.clone(),
            gpus,
            pmt_j,
            slurm_j,
            pmt_norm: pmt_j / pmt_ref,
            slurm_norm: slurm_j / slurm_ref,
        })
        .collect()
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 3",
        "PMT vs Slurm energy, normalized to 48 GPUs (CSCS-A100) / 96 GCDs (LUMI-G). \
         PMT excludes setup + auxiliary; Slurm accounts the whole job.",
    );

    let mut all = Vec::new();
    all.extend(sweep(
        archsim::cscs_a100(),
        &[8, 16, 24, 32, 40, 48],
        cli.steps,
    ));
    all.extend(sweep(archsim::lumi_g(), &[16, 32, 48, 64, 96], cli.steps));

    let rows: Vec<Vec<String>> = all
        .iter()
        .map(|r| {
            vec![
                r.system.clone(),
                r.gpus.to_string(),
                format!("{:.0}", r.pmt_j),
                format!("{:.0}", r.slurm_j),
                format!("{:.3}", r.pmt_norm),
                format!("{:.3}", r.slurm_norm),
                format!("{:.1}%", (1.0 - r.pmt_j / r.slurm_j) * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "System",
            "GPUs",
            "PMT [J]",
            "Slurm [J]",
            "PMT norm",
            "Slurm norm",
            "Slurm-PMT gap",
        ],
        &rows,
    );
    println!(
        "\nShape check: normalized PMT and Slurm curves track each other per system; the absolute"
    );
    println!(
        "gap is the job-setup + auxiliary energy PMT's loop-scoped window does not see (§IV-A)."
    );
    cli.maybe_write_json(&all);
}
