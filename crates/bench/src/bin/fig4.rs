//! Fig. 4 — breakdown of energy consumption by device, Subsonic Turbulence
//! (150 M/GPU) and Evrard Collapse (80 M/GPU) on LUMI-G and CSCS-A100,
//! 32 MPI ranks each.

use bench::{banner, n_side_for_ranks, print_table, production_spec, Cli};
use freqscale::{run_experiment, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    case: String,
    gpu_pct: f64,
    cpu_pct: f64,
    mem_pct: Option<f64>,
    other_pct: f64,
    total_j: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 4",
        "Device-level energy shares over the time-stepping loop, 32 ranks. \
         CSCS-A100 folds memory into Other (no separate blade counter).",
    );

    let ranks = 32;
    let n_side = n_side_for_ranks(ranks);
    let cases = [
        (
            "LUMI-Turb",
            archsim::lumi_g(),
            WorkloadKind::Turbulence {
                n_side,
                mach: 0.3,
                seed: 7,
            },
            150e6,
        ),
        (
            "LUMI-Evr",
            archsim::lumi_g(),
            WorkloadKind::Evrard { n_side },
            80e6,
        ),
        (
            "CSCS-A100-Turb",
            archsim::cscs_a100(),
            WorkloadKind::Turbulence {
                n_side,
                mach: 0.3,
                seed: 7,
            },
            150e6,
        ),
        (
            "CSCS-A100-Evr",
            archsim::cscs_a100(),
            WorkloadKind::Evrard { n_side },
            80e6,
        ),
    ];

    let mut data = Vec::new();
    for (name, system, workload, target) in cases {
        let lumi = system.name == "LUMI-G";
        let spec = production_spec(system, ranks, workload, cli.steps, target);
        let r = run_experiment(&spec);
        let totals = r.device_totals();
        if lumi {
            let (g, c, m, o) = totals.shares();
            data.push(Row {
                case: name.to_string(),
                gpu_pct: g * 100.0,
                cpu_pct: c * 100.0,
                mem_pct: Some(m * 100.0),
                other_pct: o * 100.0,
                total_j: totals.total_j(),
            });
        } else {
            let (g, c, o) = totals.shares_mem_in_other();
            data.push(Row {
                case: name.to_string(),
                gpu_pct: g * 100.0,
                cpu_pct: c * 100.0,
                mem_pct: None,
                other_pct: o * 100.0,
                total_j: totals.total_j(),
            });
        }
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.case.clone(),
                format!("{:.1}%", r.gpu_pct),
                format!("{:.1}%", r.cpu_pct),
                r.mem_pct
                    .map_or("(in Other)".into(), |m| format!("{:.1}%", m)),
                format!("{:.1}%", r.other_pct),
                format!("{:.0}", r.total_j),
            ]
        })
        .collect();
    print_table(
        &["Case", "GPU", "CPU", "Memory", "Other", "Total [J]"],
        &rows,
    );

    println!("\nShape check (paper): GPU share ~74.3% on LUMI-G, ~76.4% on CSCS-A100;");
    println!("Other is the second-largest consumer; totals 24.4/15.2/12.5/10.7 MJ at full scale.");
    cli.maybe_write_json(&data);
}
