//! Fig. 5 — breakdown of energy consumption by SPH-EXA function, per device,
//! for the same four cases as Fig. 4.

use bench::{banner, n_side_for_ranks, print_table, production_spec, Cli};
use freqscale::{run_experiment, WorkloadKind};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct CaseData {
    case: String,
    /// Function -> share of GPU energy (percent).
    gpu_shares_pct: BTreeMap<String, f64>,
    /// Function -> share of measured CPU energy (percent) — the CPU panel of
    /// Fig. 5: proportional to duration because the host idles at constant
    /// power while the GPU computes.
    cpu_shares_pct: BTreeMap<String, f64>,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 5",
        "Per-function energy shares over the loop (GPU energy and CPU-proportional time), 32 ranks.",
    );

    let ranks = 32;
    let n_side = n_side_for_ranks(ranks);
    let cases = [
        (
            "LUMI-Turb",
            archsim::lumi_g(),
            WorkloadKind::Turbulence {
                n_side,
                mach: 0.3,
                seed: 7,
            },
            150e6,
        ),
        (
            "LUMI-Evr",
            archsim::lumi_g(),
            WorkloadKind::Evrard { n_side },
            80e6,
        ),
        (
            "CSCS-A100-Turb",
            archsim::cscs_a100(),
            WorkloadKind::Turbulence {
                n_side,
                mach: 0.3,
                seed: 7,
            },
            150e6,
        ),
        (
            "CSCS-A100-Evr",
            archsim::cscs_a100(),
            WorkloadKind::Evrard { n_side },
            80e6,
        ),
    ];

    let mut data = Vec::new();
    for (name, system, workload, target) in cases {
        let spec = production_spec(system, ranks, workload, cli.steps, target);
        let r = run_experiment(&spec);
        let agg = r.functions_all_ranks();
        let gpu_total: f64 = agg.values().map(|f| f.gpu_j).sum();
        let cpu_total: f64 = agg.values().map(|f| f.cpu_j).sum();
        let gpu_shares_pct: BTreeMap<String, f64> = agg
            .iter()
            .map(|(k, f)| (k.clone(), 100.0 * f.gpu_j / gpu_total))
            .collect();
        let cpu_shares_pct: BTreeMap<String, f64> = agg
            .iter()
            .map(|(k, f)| (k.clone(), 100.0 * f.cpu_j / cpu_total))
            .collect();
        data.push(CaseData {
            case: name.to_string(),
            gpu_shares_pct,
            cpu_shares_pct,
        });
    }

    // One table per case: function, GPU-energy share, time (CPU) share.
    for case in &data {
        println!("\n--- {} ---", case.case);
        let mut functions: Vec<&String> = case.gpu_shares_pct.keys().collect();
        functions.sort_by(|a, b| {
            case.gpu_shares_pct[*b]
                .partial_cmp(&case.gpu_shares_pct[*a])
                .expect("finite shares")
        });
        let rows: Vec<Vec<String>> = functions
            .iter()
            .map(|f| {
                vec![
                    (*f).clone(),
                    format!("{:.1}%", case.gpu_shares_pct[*f]),
                    format!("{:.1}%", case.cpu_shares_pct[*f]),
                ]
            })
            .collect();
        print_table(&["Function", "GPU energy", "CPU energy"], &rows);
    }

    // The paper's cross-system comparison for MomentumEnergy.
    let me = "MomentumEnergy";
    let lumi = data
        .iter()
        .find(|c| c.case == "LUMI-Turb")
        .expect("case present");
    let cscs = data
        .iter()
        .find(|c| c.case == "CSCS-A100-Turb")
        .expect("case present");
    println!(
        "\nShape check: MomentumEnergy = {:.1}% of GPU energy on CSCS-A100-Turb vs {:.1}% on LUMI-Turb",
        cscs.gpu_shares_pct[me], lumi.gpu_shares_pct[me]
    );
    println!(
        "(paper: 25.29% vs 45.80% — the kernel is relatively more expensive on the AMD GCDs)."
    );
    cli.maybe_write_json(&data);
}
