//! Fig. 6 — effect of statically down-scaling the GPU frequency on the EDP
//! of the Subsonic Turbulence simulation at different per-GPU particle
//! counts, single A100 (miniHPC), normalized to the 1410 MHz baseline.

use archsim::MegaHertz;
use bench::{banner, minihpc_spec, print_table, sparkline, Cli};
use freqscale::{run_experiment, FreqPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    particles_label: String,
    particles: f64,
    /// `(mhz, normalized_edp)` pairs.
    edp_vs_freq: Vec<(u32, f64)>,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 6",
        "Normalized EDP vs static GPU frequency for 450^3 .. 200^3 particles per GPU (1 x A100).",
    );

    let freqs = [1410u32, 1350, 1305, 1245, 1200, 1155, 1110, 1050, 1005];
    let sizes = [
        ("450^3", 450u32),
        ("350^3", 350),
        ("250^3", 250),
        ("200^3", 200),
    ];

    let mut data = Vec::new();
    for (label, side) in sizes {
        let n = f64::from(side).powi(3);
        let base = run_experiment(&minihpc_spec(FreqPolicy::Baseline, cli.steps, n));
        let mut series = Vec::new();
        for f in freqs {
            let r = run_experiment(&minihpc_spec(
                FreqPolicy::Static(MegaHertz(f)),
                cli.steps,
                n,
            ));
            let (_t, _e, edp) = r.normalized_to(&base);
            series.push((f, edp));
        }
        data.push(Series {
            particles_label: label.to_string(),
            particles: n,
            edp_vs_freq: series,
        });
    }

    let mut rows = Vec::new();
    for (i, &f) in freqs.iter().enumerate() {
        let mut row = vec![format!("{f} MHz")];
        for s in &data {
            row.push(format!("{:.4}", s.edp_vs_freq[i].1));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("Frequency")
        .chain(data.iter().map(|s| s.particles_label.as_str()))
        .collect();
    print_table(&headers, &rows);

    println!("\nEDP vs decreasing frequency (left = 1410 MHz):");
    for srs in &data {
        let vals: Vec<f64> = srs.edp_vs_freq.iter().map(|(_, e)| *e).collect();
        println!("  {:>6}  {}", srs.particles_label, sparkline(&vals));
    }

    // The paper's observation: the smallest (under-utilized) problem gains
    // the most from down-scaling.
    let best_of = |s: &Series| {
        s.edp_vs_freq
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
            .copied()
            .expect("non-empty series")
    };
    let (f_big, e_big) = best_of(&data[0]);
    let (f_small, e_small) = best_of(&data[3]);
    println!(
        "\nShape check: 450^3 best = {:.3} at {f_big} MHz; 200^3 best = {:.3} at {f_small} MHz —",
        e_big, e_small
    );
    println!("the under-utilized problem drops significantly further (paper: best near 1110 MHz).");
    cli.maybe_write_json(&data);
}
