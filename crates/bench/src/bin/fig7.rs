//! Fig. 7 — time-to-solution, energy and EDP of static frequencies, the DVFS
//! governor, and ManDyn (dynamic per-function frequencies), Subsonic
//! Turbulence at 450³ on one A100, normalized to the 1410 MHz baseline.

use archsim::{GpuSpec, MegaHertz};
use bench::{banner, minihpc_spec, paper_450cubed, print_table, Cli};
use freqscale::{
    best_edp, pareto_front, policy::paper_mandyn_table, run_experiment, FreqPolicy, PolicyPoint,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    time_norm: f64,
    energy_norm: f64,
    edp_norm: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 7",
        "Normalized time / GPU energy / EDP: static 1005-1410 MHz vs DVFS vs ManDyn (450^3, 1 x A100).",
    );
    let n = paper_450cubed();
    let base = run_experiment(&minihpc_spec(FreqPolicy::Baseline, cli.steps, n));

    let table = paper_mandyn_table(&GpuSpec::a100_pcie_40gb());
    let mut policies: Vec<FreqPolicy> = [1350u32, 1305, 1245, 1200, 1155, 1110, 1050, 1005]
        .into_iter()
        .map(|f| FreqPolicy::Static(MegaHertz(f)))
        .collect();
    policies.push(FreqPolicy::Dvfs);
    policies.push(FreqPolicy::ManDyn(table));

    let mut data = vec![Row {
        policy: "baseline-1410".into(),
        time_norm: 1.0,
        energy_norm: 1.0,
        edp_norm: 1.0,
    }];
    let mut points = vec![PolicyPoint::from_result(&base)];
    for policy in policies {
        let r = run_experiment(&minihpc_spec(policy, cli.steps, n));
        let (t, e, edp) = r.normalized_to(&base);
        points.push(PolicyPoint::from_result(&r));
        data.push(Row {
            policy: r.policy.clone(),
            time_norm: t,
            energy_norm: e,
            edp_norm: edp,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.4}", r.time_norm),
                format!("{:.4}", r.energy_norm),
                format!("{:.4}", r.edp_norm),
            ]
        })
        .collect();
    print_table(&["Policy", "Time", "GPU energy", "EDP"], &rows);

    // §IV-D frames this as a Pareto question: report the front.
    let front = pareto_front(&points);
    let front_labels: Vec<&str> = front.iter().map(|&i| points[i].label.as_str()).collect();
    println!("\nPareto-optimal (time, energy) policies: {front_labels:?}");
    if let Some(best) = best_edp(&points) {
        println!("lowest EDP: {}", points[best].label);
    }

    let mandyn = data.last().expect("mandyn last");
    let dvfs = data
        .iter()
        .find(|r| r.policy == "dvfs")
        .expect("dvfs present");
    let s1005 = data
        .iter()
        .find(|r| r.policy == "static-1005")
        .expect("static-1005 present");
    println!("\nShape check (paper §IV-D):");
    println!(
        "  ManDyn: +{:.2}% time (paper +2.95%), {:.2}% energy saving (paper up to 7.82%), EDP {:.3}",
        (mandyn.time_norm - 1.0) * 100.0,
        (1.0 - mandyn.energy_norm) * 100.0,
        mandyn.edp_norm
    );
    println!(
        "  DVFS: ~baseline time ({:.3}) but *higher* energy ({:.3}) — the §IV-D anomaly",
        dvfs.time_norm, dvfs.energy_norm
    );
    println!(
        "  ManDyn is {:.1}% faster than static-1005 ({:.3} vs {:.3}) with better EDP ({:.3} vs {:.3})",
        (1.0 - mandyn.time_norm / s1005.time_norm) * 100.0,
        mandyn.time_norm,
        s1005.time_norm,
        mandyn.edp_norm,
        s1005.edp_norm
    );
    cli.maybe_write_json(&data);
}
