//! Fig. 8 — effect of static frequency down-scaling on (a) execution time,
//! (b) energy and (c) EDP of each SPH-EXA function, Subsonic Turbulence at
//! 450³ on one A100, normalized to 1410 MHz.

use archsim::MegaHertz;
use bench::{banner, minihpc_spec, paper_450cubed, print_table, Cli};
use freqscale::{run_experiment, ExperimentResult, FreqPolicy};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct FuncSeries {
    function: String,
    /// frequency -> (time_norm, energy_norm, edp_norm)
    by_freq: BTreeMap<u32, (f64, f64, f64)>,
}

fn per_function(r: &ExperimentResult) -> BTreeMap<String, (f64, f64)> {
    r.functions_all_ranks()
        .into_iter()
        .map(|(name, f)| (name, (f.time_s, f.gpu_j)))
        .collect()
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FIG. 8 (a, b, c)",
        "Per-function normalized time / energy / EDP at static frequencies (450^3, 1 x A100).",
    );
    let n = paper_450cubed();
    let freqs = [1320u32, 1230, 1110, 1005];

    let base = run_experiment(&minihpc_spec(FreqPolicy::Baseline, cli.steps, n));
    let base_funcs = per_function(&base);

    let mut series: BTreeMap<String, FuncSeries> = base_funcs
        .keys()
        .map(|name| {
            (
                name.clone(),
                FuncSeries {
                    function: name.clone(),
                    by_freq: BTreeMap::new(),
                },
            )
        })
        .collect();

    for f in freqs {
        let r = run_experiment(&minihpc_spec(
            FreqPolicy::Static(MegaHertz(f)),
            cli.steps,
            n,
        ));
        for (name, (t, e)) in per_function(&r) {
            let (bt, be) = base_funcs[&name];
            let entry = series.get_mut(&name).expect("same function set");
            entry
                .by_freq
                .insert(f, (t / bt, e / be, (t * e) / (bt * be)));
        }
    }

    for (panel, idx, label) in [
        ("(a) execution time", 0usize, "time"),
        ("(b) energy", 1, "energy"),
        ("(c) EDP", 2, "EDP"),
    ] {
        println!("\n--- Fig. 8{panel}: normalized {label} ---");
        let mut rows = Vec::new();
        for s in series.values() {
            let mut row = vec![s.function.clone()];
            for f in freqs {
                let v = s.by_freq[&f];
                let val = [v.0, v.1, v.2][idx];
                row.push(format!("{:.3}", val));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("Function".to_string())
            .chain(freqs.iter().map(|f| format!("{f} MHz")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&header_refs, &rows);
    }

    let me = &series["MomentumEnergy"].by_freq[&1005];
    let xm = &series["XMass"].by_freq[&1005];
    println!("\nShape check at 1005 MHz (paper):");
    println!(
        "  MomentumEnergy: time x{:.3} (paper >1.20), energy x{:.3} (paper ~0.87), EDP x{:.3} (limited benefit)",
        me.0, me.1, me.2
    );
    println!(
        "  XMass:          time x{:.3} (nearly flat), energy x{:.3}, EDP x{:.3} (paper: >=10% reduction)",
        xm.0, xm.1, xm.2
    );
    let data: Vec<&FuncSeries> = series.values().collect();
    cli.maybe_write_json(&data);
}
