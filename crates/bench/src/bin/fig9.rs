//! Fig. 9 — device frequencies set by DVFS on a single A100 during Subsonic
//! Turbulence execution (450³ particles) for 10 time-steps.

use bench::{banner, minihpc_spec, paper_450cubed, print_table, Cli};
use freqscale::{run_experiment, FreqPolicy};
use serde::Serialize;

#[derive(Serialize)]
struct TraceData {
    /// `(seconds, MHz)` samples at 10 ms.
    trace: Vec<(f64, u32)>,
    /// Per-function average clock under the governor.
    per_function_mhz: Vec<(String, f64)>,
}

fn main() {
    let mut cli = Cli::parse();
    // Fig. 9 is defined as a 10-step trace.
    if cli.steps == bench::DEFAULT_STEPS {
        cli.steps = 10;
    }
    banner(
        "FIG. 9",
        "DVFS-chosen device clock during 10 time-steps (450^3, 1 x A100), sampled at 10 ms.",
    );

    let mut spec = minihpc_spec(FreqPolicy::Dvfs, cli.steps, paper_450cubed());
    spec.collect_trace = true;
    let r = run_experiment(&spec);
    let rank = &r.per_rank[0];

    // Print the series, decimated to keep the console readable.
    let trace = &rank.freq_trace;
    let stride = (trace.len() / 120).max(1);
    println!("\n  t [s]    clock [MHz]");
    for (t, f) in trace.iter().step_by(stride) {
        let bar_len = ((f64::from(*f) - 600.0) / 10.0).max(0.0) as usize;
        println!("{t:8.3}  {f:>5}  {}", "#".repeat(bar_len.min(85)));
    }

    let agg = r.functions_all_ranks();
    let mut rows: Vec<Vec<String>> = agg
        .iter()
        .map(|(name, f)| vec![name.clone(), format!("{:.0} MHz", f.avg_freq_mhz)])
        .collect();
    rows.sort_by(|a, b| b[1].cmp(&a[1]));
    println!("\nAverage governor clock per function:");
    print_table(&["Function", "Avg clock"], &rows);

    let max_seen = trace.iter().map(|(_, f)| *f).max().unwrap_or(0);
    let min_seen = trace.iter().map(|(_, f)| *f).min().unwrap_or(0);
    let me = agg["MomentumEnergy"].avg_freq_mhz;
    let dd = agg["DomainDecompAndSync"].avg_freq_mhz;
    println!("\nShape check (paper §IV-E):");
    println!("  peak clock {max_seen} MHz (paper: climbs to 1410 for MomentumEnergy),");
    println!("  MomentumEnergy avg {me:.0} MHz vs DomainDecompAndSync avg {dd:.0} MHz (paper: ~1200 there),");
    println!(
        "  end-of-step communication dips to {min_seen} MHz (paper: below 1000 in some cases)."
    );

    let data = TraceData {
        trace: trace.clone(),
        per_function_mhz: agg
            .iter()
            .map(|(k, f)| (k.clone(), f.avg_freq_mhz))
            .collect(),
    };
    cli.maybe_write_json(&data);
}
