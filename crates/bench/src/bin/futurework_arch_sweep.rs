//! Future work (§V): "adaptation of the proposed method on AMD and Intel
//! GPUs, and studying the effect of different architectures and
//! frequencies". This sweep tunes and runs ManDyn on all three architecture
//! classes — Nvidia A100, AMD MI250X GCD, Intel Max 1550 — and compares the
//! achievable energy/EDP gains.

use archsim::{CpuSpec, GpuSpec, MegaHertz, MemSpec, NodeSpec, SystemSpec, Watts};
use bench::{banner, paper_450cubed, print_table, Cli, PHYSICS_N_SIDE};
use freqscale::{policy::tune_table, run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind};
use ranks::CommCost;
use serde::Serialize;
use sph::Kernel;
use tuner::Objective;

#[derive(Serialize)]
struct Row {
    arch: String,
    sweep_mhz: (u32, u32),
    mandyn_time: f64,
    mandyn_energy: f64,
    mandyn_edp: f64,
    static_floor_edp: f64,
}

/// A single-GPU development node around an arbitrary GPU (miniHPC-style:
/// user clock control allowed).
fn dev_system(name: &str, gpu: GpuSpec) -> SystemSpec {
    let default = gpu.clock_table.max();
    let mem_clock = gpu.mem_clock;
    SystemSpec {
        name: name.to_string(),
        node: NodeSpec {
            system: name.to_string(),
            cpu: CpuSpec::epyc_7713(),
            sockets: 1,
            mem: MemSpec::ddr4_512gib(),
            gpu,
            gpu_devices: 1,
            gcds_per_card: 1,
            aux_power: Watts(140.0),
            default_gpu_freq: default,
            gpu_mem_freq: mem_clock,
            user_clock_control: true,
        },
        notes: "virtual single-GPU dev node (future-work sweep)".into(),
    }
}

fn main() {
    let cli = Cli::parse();
    banner(
        "FUTURE WORK: architecture sweep",
        "ManDyn tuned and evaluated per architecture (A100 / MI250X GCD / Intel Max 1550).",
    );

    // Per-architecture sweep ranges (~70-100 % of max clock, as the paper
    // chose 1005-1410 for the A100).
    let archs: Vec<(&str, GpuSpec, MegaHertz, MegaHertz)> = vec![
        (
            "Nvidia A100",
            GpuSpec::a100_pcie_40gb(),
            MegaHertz(1005),
            MegaHertz(1410),
        ),
        (
            "AMD MI250X GCD",
            GpuSpec::mi250x_gcd(),
            MegaHertz(1200),
            MegaHertz(1700),
        ),
        (
            "Intel Max 1550",
            GpuSpec::intel_max_1550(),
            MegaHertz(1150),
            MegaHertz(1600),
        ),
    ];

    let mut data = Vec::new();
    for (name, gpu, lo, hi) in archs {
        let (table, _) = tune_table(&gpu, paper_450cubed(), lo, hi, Objective::Edp, false);
        let system = dev_system(name, gpu);
        let mk = |policy: FreqPolicy| ExperimentSpec {
            system: system.clone(),
            ranks: 1,
            workload: WorkloadKind::Turbulence {
                n_side: PHYSICS_N_SIDE,
                mach: 0.3,
                seed: 42,
            },
            steps: cli.steps,
            policy,
            target_particles_per_rank: paper_450cubed(),
            setup: archsim::SimDuration::from_secs(1),
            comm: CommCost::default(),
            kernel: Kernel::CubicSpline,
            target_neighbors: 40,
            collect_trace: false,
            slurm_gpu_freq: None,
            slurm_cpu_freq_khz: None,
            report_dir: None,
            power_cap_w: None,
            table_store: None,
            memory_clock: None,
            faults: None,
            scenario: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restore_from: None,
            repart_skew_threshold: None,
            halo_overlap: true,
        };
        let base = run_experiment(&mk(FreqPolicy::Baseline));
        let mandyn = run_experiment(&mk(FreqPolicy::ManDyn(table)));
        let floor = run_experiment(&mk(FreqPolicy::Static(lo)));
        let (t, e, edp) = mandyn.normalized_to(&base);
        let (_, _, edp_floor) = floor.normalized_to(&base);
        data.push(Row {
            arch: name.to_string(),
            sweep_mhz: (lo.0, hi.0),
            mandyn_time: t,
            mandyn_energy: e,
            mandyn_edp: edp,
            static_floor_edp: edp_floor,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.arch.clone(),
                format!("{}-{}", r.sweep_mhz.0, r.sweep_mhz.1),
                format!("{:+.2}%", (r.mandyn_time - 1.0) * 100.0),
                format!("{:+.2}%", (r.mandyn_energy - 1.0) * 100.0),
                format!("{:.3}", r.mandyn_edp),
                format!("{:.3}", r.static_floor_edp),
            ]
        })
        .collect();
    print_table(
        &[
            "Architecture",
            "Sweep [MHz]",
            "ManDyn time",
            "ManDyn energy",
            "ManDyn EDP",
            "Static-floor EDP",
        ],
        &rows,
    );
    println!("\nThe per-kernel frequency split generalizes: every architecture shows a ManDyn");
    println!("EDP gain. The magnitude tracks the roofline ridge: on the Intel part (highest");
    println!("bandwidth) most kernels are memory-bound and tolerate deep down-scaling, while");
    println!("the MI250X GCD's high FLOP/byte ridge leaves little frequency slack per kernel.");
    cli.maybe_write_json(&data);
}
