//! Projection — ManDyn at production scale.
//!
//! The paper demonstrates ManDyn on one A100 (the only system allowing user
//! clock control) and argues the savings carry to "large-scale scientific
//! simulations running mainly on GPUs". This exhibit runs the projection:
//! a CSCS-A100-class cluster whose centre *permits* user clock control
//! (or, equivalently, applies the tuned table itself), 8–64 ranks, ManDyn vs
//! baseline — per-GPU percentages hold, so the absolute saving scales with
//! the machine.

use archsim::{GpuSpec, SystemSpec};
use bench::{banner, n_side_for_ranks, paper_450cubed, print_table, Cli};
use freqscale::{
    policy::paper_mandyn_table, run_experiment, ExperimentSpec, FreqPolicy, WorkloadKind,
};
use ranks::CommCost;
use serde::Serialize;
use sph::Kernel;

#[derive(Serialize)]
struct Row {
    ranks: usize,
    time_norm: f64,
    energy_norm: f64,
    gpu_j_saved: f64,
    node_j_saved: f64,
}

/// CSCS-A100 hardware with centre policy flipped to allow clock control.
fn unlocked_cscs() -> SystemSpec {
    let mut sys = archsim::cscs_a100();
    sys.name = "CSCS-A100 (unlocked)".into();
    sys.node.user_clock_control = true;
    sys
}

fn main() {
    let cli = Cli::parse();
    banner(
        "PROJECTION: ManDyn at scale",
        "Per-GPU ManDyn savings projected onto a multi-node A100 partition (centre permits clock control).",
    );
    let table = paper_mandyn_table(&GpuSpec::a100_sxm4_80gb());

    let mut data = Vec::new();
    for ranks in [8usize, 16, 32, 64] {
        let mk = |policy: FreqPolicy| ExperimentSpec {
            system: unlocked_cscs(),
            ranks,
            workload: WorkloadKind::Turbulence {
                n_side: n_side_for_ranks(ranks),
                mach: 0.3,
                seed: 7,
            },
            steps: cli.steps,
            policy,
            target_particles_per_rank: paper_450cubed(),
            setup: archsim::SimDuration::from_secs(2),
            comm: CommCost::default(),
            kernel: Kernel::CubicSpline,
            target_neighbors: 40,
            collect_trace: false,
            slurm_gpu_freq: None,
            slurm_cpu_freq_khz: None,
            report_dir: None,
            power_cap_w: None,
            table_store: None,
            memory_clock: None,
            faults: None,
            scenario: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restore_from: None,
            repart_skew_threshold: None,
            halo_overlap: true,
        };
        let base = run_experiment(&mk(FreqPolicy::Baseline));
        let mandyn = run_experiment(&mk(FreqPolicy::ManDyn(table.clone())));
        assert!(
            mandyn.per_rank.iter().all(|r| !r.clock_control_denied),
            "unlocked centre must allow the instrumentation's clock calls"
        );
        let (t, e, _) = mandyn.normalized_to(&base);
        data.push(Row {
            ranks,
            time_norm: t,
            energy_norm: e,
            gpu_j_saved: base.pmt_gpu_j - mandyn.pmt_gpu_j,
            node_j_saved: base.node_loop_j - mandyn.node_loop_j,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                format!("{:.4}", r.time_norm),
                format!("{:.4}", r.energy_norm),
                format!("{:.1}", r.gpu_j_saved),
                format!("{:.1}", r.node_j_saved),
            ]
        })
        .collect();
    print_table(
        &[
            "GPUs",
            "ManDyn time",
            "ManDyn GPU energy",
            "GPU J saved",
            "Node J saved",
        ],
        &rows,
    );

    let first = data.first().expect("rows");
    let last = data.last().expect("rows");
    println!(
        "\nPer-GPU percentages stay flat from {} to {} GPUs ({:.2}% vs {:.2}% energy saving),",
        first.ranks,
        last.ranks,
        (1.0 - first.energy_norm) * 100.0,
        (1.0 - last.energy_norm) * 100.0
    );
    println!(
        "so the absolute saving scales ~linearly: {:.0} J -> {:.0} J over this sweep. At the",
        first.gpu_j_saved, last.gpu_j_saved
    );
    println!("paper's 14.7 B-particle runs this is the 'more sustainable large-scale simulations'");
    println!("claim of §I, made concrete.");

    // --- host-side section: real SPH per-rank cost at projection scale ----
    // The projection argument leans on per-GPU work staying constant; the
    // real host loop at fixed particles/rank shows exactly that (per-rank
    // CPU time per steady step flat as ranks grow).
    let per_rank = if cli.check { 2_000 } else { 25_000 };
    let host = bench::host_weak_scaling(&[1, 2, 4], per_rank, if cli.check { 2 } else { 3 }, None);
    println!("\nHost-side SPH per-rank cost ({per_rank} particles/rank, CPU s per steady step):");
    let host_rows: Vec<Vec<String>> = host
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                r.particles.to_string(),
                format!("{:.3}", r.cpu_s_per_rank_step),
                format!("{:.3}", r.cpu_norm),
            ]
        })
        .collect();
    print_table(&["ranks", "particles", "cpu s/step", "norm"], &host_rows);

    cli.maybe_write_json(&data);
}
