//! Table I — simulation and computing system parameters.

use bench::{banner, print_table, Cli};

fn main() {
    let cli = Cli::parse();
    banner(
        "TABLE I",
        "Simulation and computing system parameters (paper Table I).",
    );

    println!("\nSimulations:");
    let sim_rows = vec![
        vec![
            "Subsonic Turbulence".to_string(),
            "-n 0.6|1.2|2.4|4.9|7.4|9.2|14.7e9 -s 100".to_string(),
            "150 M particles/GPU, 100 time-steps".to_string(),
        ],
        vec![
            "Evrard Collapse".to_string(),
            "-n 0.6|1.2|2.4|3.2|4.8|7.7e9 -s 100".to_string(),
            "80 M particles/GPU, 100 time-steps".to_string(),
        ],
    ];
    print_table(&["Simulation", "Parameters", "Info"], &sim_rows);

    println!("\nSystems:");
    let mut rows = Vec::new();
    for sys in archsim::all_systems() {
        let node = &sys.node;
        rows.push(vec![
            sys.name.clone(),
            format!(
                "{}x {} ({} cores) + {} GiB",
                node.sockets, node.cpu.name, node.cpu.cores, node.mem.capacity_gib
            ),
            format!(
                "{}x {} ({} visible devices)",
                node.cards(),
                node.gpu.name,
                node.gpu_devices
            ),
            format!(
                "compute {} / memory {}",
                node.default_gpu_freq, node.gpu_mem_freq
            ),
            if node.user_clock_control {
                "user".into()
            } else {
                "locked".into()
            },
        ]);
    }
    print_table(
        &[
            "System",
            "CPU + memory",
            "GPUs",
            "GPU frequencies",
            "Clock control",
        ],
        &rows,
    );

    let systems = archsim::all_systems();
    cli.maybe_write_json(&systems);
}
