//! Table I's particle sweeps, realized as a weak-scaling run: the paper's
//! Subsonic Turbulence entries go from 0.6 to 14.7 billion particles at a
//! fixed 150 M particles per GPU — i.e. 4 to 98 GPUs doing the same per-GPU
//! work. Weak scaling holds when time-to-solution stays flat (up to the
//! log-P collective term) and energy grows linearly with GPUs.

use bench::{banner, n_side_for_ranks, print_table, production_spec, Cli};
use freqscale::{run_experiment, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    total_particles_billion: f64,
    gpus: usize,
    time_s: f64,
    time_norm: f64,
    energy_per_gpu_j: f64,
    slurm_j: f64,
}

fn main() {
    let cli = Cli::parse();
    banner(
        "WEAK SCALING (Table I parameters)",
        "Subsonic Turbulence at 150 M particles/GPU on CSCS-A100, 4-96 GPUs (paper: 0.6-14.7 B total).",
    );

    // The paper's -n list maps to these GPU counts at 150 M/GPU.
    let gpu_counts = [4usize, 8, 16, 32, 64, 96];
    let mut data: Vec<Row> = Vec::new();
    for &gpus in &gpu_counts {
        let spec = production_spec(
            archsim::cscs_a100(),
            gpus,
            WorkloadKind::Turbulence {
                n_side: n_side_for_ranks(gpus),
                mach: 0.3,
                seed: 7,
            },
            cli.steps,
            150e6,
        );
        let r = run_experiment(&spec);
        let base_time = data
            .first()
            .map_or(r.time_to_solution_s, |f: &Row| f.time_s);
        data.push(Row {
            total_particles_billion: gpus as f64 * 150e6 / 1e9,
            gpus,
            time_s: r.time_to_solution_s,
            time_norm: r.time_to_solution_s / base_time,
            energy_per_gpu_j: r.pmt_gpu_j / gpus as f64,
            slurm_j: r.slurm_consumed_j,
        });
    }

    let rows: Vec<Vec<String>> = data
        .iter()
        .map(|r| {
            vec![
                format!("{:.1} B", r.total_particles_billion),
                r.gpus.to_string(),
                format!("{:.3}", r.time_s),
                format!("{:.4}", r.time_norm),
                format!("{:.1}", r.energy_per_gpu_j),
                format!("{:.0}", r.slurm_j),
            ]
        })
        .collect();
    print_table(
        &[
            "Particles",
            "GPUs",
            "Time [s]",
            "Time (norm)",
            "GPU J / GPU",
            "Slurm [J]",
        ],
        &rows,
    );

    let worst = data
        .iter()
        .map(|r| r.time_norm)
        .fold(f64::NEG_INFINITY, f64::max);
    let e_first = data.first().expect("rows").energy_per_gpu_j;
    let e_last = data.last().expect("rows").energy_per_gpu_j;
    println!(
        "\nWeak-scaling check: worst time inflation x{:.3} (log-P collectives only);",
        worst
    );
    println!(
        "per-GPU energy stays flat ({:.1} J -> {:.1} J), so total energy scales with the machine —",
        e_first, e_last
    );
    println!("the regime in which the paper's per-GPU percentage savings translate directly");
    println!("to megajoules at the 14.7 B-particle scale of Table I.");

    // --- host-side section: the *real* SPH loop, not the execution model --
    // Per-rank CPU time per steady step at a fixed particles/rank — the
    // laptop-scale analogue of the table above (10⁵ particles at 4 ranks;
    // `bench_scaling` covers the 10⁶ row and the checked-in artifact).
    let per_rank = if cli.check { 2_000 } else { 25_000 };
    let host = bench::host_weak_scaling(&[1, 2, 4], per_rank, if cli.check { 2 } else { 3 }, None);
    println!("\nHost-side SPH weak scaling ({per_rank} particles/rank, CPU s per steady step):");
    let host_rows: Vec<Vec<String>> = host
        .iter()
        .map(|r| {
            vec![
                r.ranks.to_string(),
                r.particles.to_string(),
                format!("{:.3}", r.cpu_s_per_rank_step),
                format!("{:.3}", r.cpu_norm),
            ]
        })
        .collect();
    print_table(&["ranks", "particles", "cpu s/step", "norm"], &host_rows);

    cli.maybe_write_json(&data);
}
