//! # bench — regenerators for every table and figure of the paper
//!
//! One binary per exhibit (run with `cargo run --release -p bench --bin
//! <name>`):
//!
//! | binary    | paper exhibit |
//! |-----------|---------------|
//! | `table1`  | Table I — simulation and computing system parameters |
//! | `fig1`    | Fig. 1 — language efficiency vs time-to-solution (background, from ref. \[9\]) |
//! | `fig2`    | Fig. 2 — tuned best-EDP frequency per SPH-EXA function |
//! | `fig3`    | Fig. 3 — PMT vs Slurm energy validation, 8–48 GPUs / 16–96 GCDs |
//! | `fig4`    | Fig. 4 — energy breakdown by device |
//! | `fig5`    | Fig. 5 — energy breakdown by SPH-EXA function |
//! | `fig6`    | Fig. 6 — EDP vs static frequency across particle counts |
//! | `fig7`    | Fig. 7 — time / energy / EDP: static vs DVFS vs ManDyn |
//! | `fig8`    | Fig. 8 — per-function time / energy / EDP vs static frequency |
//! | `fig9`    | Fig. 9 — DVFS clock trace over 10 time-steps |
//! | `ablation_exec_model` | design ablation: roofline vs naive 1/f execution model |
//! | `ablation_sampling`   | design ablation: energy error vs sensor sampling period |
//! | `ablation_governor`   | design ablation: launch-boost governor vs utilization-only |
//!
//! Each binary prints the figure's rows/series as text and, when `--json
//! <path>` is passed, also writes the underlying data as JSON.

use freqscale::{ExperimentSpec, FreqPolicy, WorkloadKind};
use ranks::CommCost;
use sph::Kernel;

/// Laptop-scale lattice size used by the figure regenerators: large enough
/// for healthy neighbor statistics on every rank, small enough to keep every
/// figure under a minute.
pub const PHYSICS_N_SIDE: usize = 10;
/// Physics steps per experiment (the paper runs 100; 8 keeps shapes stable
/// at a fraction of the cost — pass `--steps N` to any binary to override).
pub const DEFAULT_STEPS: usize = 8;

/// The paper's §IV-C/D problem size: 450³ particles per GPU.
pub fn paper_450cubed() -> f64 {
    450.0f64.powi(3)
}

/// Standard miniHPC single-GPU turbulence spec (Figs. 2, 6–9).
pub fn minihpc_spec(policy: FreqPolicy, steps: usize, target: f64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(policy, steps);
    spec.workload = WorkloadKind::Turbulence {
        n_side: PHYSICS_N_SIDE,
        mach: 0.3,
        seed: 42,
    };
    spec.target_particles_per_rank = target;
    spec.kernel = Kernel::CubicSpline;
    spec.comm = CommCost::default();
    spec
}

/// Production-system spec for the validation/breakdown figures (Figs. 3–5).
pub fn production_spec(
    system: archsim::SystemSpec,
    ranks: usize,
    workload: WorkloadKind,
    steps: usize,
    target: f64,
) -> ExperimentSpec {
    ExperimentSpec {
        system,
        ranks,
        workload,
        steps,
        policy: FreqPolicy::Baseline,
        target_particles_per_rank: target,
        setup: archsim::SimDuration::from_secs(2),
        comm: CommCost::default(),
        kernel: Kernel::CubicSpline,
        target_neighbors: 40,
        collect_trace: false,
        slurm_gpu_freq: None,
        slurm_cpu_freq_khz: None,
        report_dir: None,
        power_cap_w: None,
        table_store: None,
        memory_clock: None,
        faults: None,
        scenario: None,
        checkpoint_dir: None,
        checkpoint_every: 0,
        restore_from: None,
        repart_skew_threshold: None,
        halo_overlap: true,
    }
}

/// A lattice side that gives every rank a workable particle count.
pub fn n_side_for_ranks(ranks: usize) -> usize {
    // >= ~120 particles per rank.
    let total_needed = (ranks * 120) as f64;
    (total_needed.cbrt().ceil() as usize).max(PHYSICS_N_SIDE)
}

/// Tiny CLI: `--steps N`, `--json PATH`, `--force` and `--check` are
/// understood by every binary. `--check` is the CI smoke mode: run a single
/// rep and never (re)write a checked-in artifact.
pub struct Cli {
    pub steps: usize,
    pub json: Option<String>,
    pub force: bool,
    pub check: bool,
}

impl Cli {
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().collect();
        let mut steps = DEFAULT_STEPS;
        let mut json = None;
        let mut force = false;
        let mut check = false;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--steps" => {
                    steps = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--steps needs a number"));
                    i += 2;
                }
                "--json" => {
                    json = Some(
                        args.get(i + 1)
                            .unwrap_or_else(|| panic!("--json needs a path"))
                            .clone(),
                    );
                    i += 2;
                }
                "--force" => {
                    force = true;
                    i += 1;
                }
                "--check" => {
                    check = true;
                    i += 1;
                }
                other => panic!(
                    "unknown argument {other:?} (expected --steps N / --json PATH / --force / --check)"
                ),
            }
        }
        Cli {
            steps,
            json,
            force,
            check,
        }
    }

    /// Write `data` as pretty JSON when `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, data: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(data).expect("serializable");
            std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// Guard for checked-in scaling artifacts: multi-worker timings measured on
/// a single-core host are oversubscription noise, so an existing report is
/// only replaced when the caller insists with `--force`. Returns the refusal
/// message to print.
pub fn refuse_single_core_overwrite(
    host_threads: usize,
    report_exists: bool,
    force: bool,
) -> Result<(), String> {
    if host_threads <= 1 && report_exists && !force {
        Err(format!(
            "refusing to overwrite an existing scaling report from a \
             {host_threads}-core host (multi-worker timings would be \
             oversubscription noise); pass --force to override"
        ))
    } else {
        Ok(())
    }
}

/// CPU time (user + system) consumed by the *calling thread*, in seconds,
/// from `/proc/thread-self/stat`. Unlike wall clock, per-thread CPU time is
/// insensitive to oversubscription, so weak-scaling flatness measured with
/// it is meaningful even when all rank threads share one core. Returns 0.0
/// where procfs is unavailable.
pub fn thread_cpu_time_s() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0.0;
    };
    // Skip past the parenthesised comm field (it may contain spaces).
    let Some(rest) = stat.rfind(')').map(|i| &stat[i + 1..]) else {
        return 0.0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // stat fields are 1-based with comm = 2; after ')' the state (field 3)
    // is index 0, so utime (14) and stime (15) are indices 11 and 12.
    let utime: f64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    let stime: f64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0.0);
    // USER_HZ is 100 on every mainstream Linux.
    (utime + stime) / 100.0
}

/// One rank-count row of a host-side weak-scaling measurement.
#[derive(Debug, serde::Serialize)]
pub struct HostScalingRow {
    pub ranks: usize,
    /// Total particles across all ranks (≈ `ranks × per_rank`).
    pub particles: usize,
    /// Slowest rank's CPU seconds per steady step (step 0 — initial
    /// partition, first neighbor build — excluded).
    pub cpu_s_per_rank_step: f64,
    /// `cpu_s_per_rank_step` normalized to the first row: weak scaling
    /// holds when this stays near 1.
    pub cpu_norm: f64,
    /// Steps that recomputed the SFC partition (including step 0).
    pub repartitions: u64,
    /// Particles that changed owner *after* the initial partition.
    pub migrated_after_first: u64,
}

/// Run the real host-side SPH step loop (no instrumentation) at a fixed
/// per-rank particle count for each entry of `rank_counts`, and report
/// per-rank CPU time per steady step. `repart_skew_threshold: None` keeps
/// the incremental default; `Some(x)` overrides it (a sub-1 threshold
/// forces a full repartition every step).
pub fn host_weak_scaling(
    rank_counts: &[usize],
    per_rank: usize,
    steps: usize,
    repart_skew_threshold: Option<f64>,
) -> Vec<HostScalingRow> {
    assert!(steps >= 2, "need at least one steady step after step 0");
    let mut rows: Vec<HostScalingRow> = Vec::new();
    for &ranks in rank_counts {
        let n_side = ((ranks * per_rank) as f64).cbrt().round().max(4.0) as usize;
        let ic = sph::subsonic_turbulence(n_side, 0.3, 11);
        let particles = ic.parts.x.len();
        let cfg = sph::SimConfig {
            target_neighbors: 40,
            repart_skew_threshold: repart_skew_threshold
                .unwrap_or_else(|| sph::SimConfig::default().repart_skew_threshold),
            ..sph::SimConfig::default()
        };
        let outs = ranks::run(ranks, CommCost::default(), |ctx| {
            let mut sim = sph::Simulation::distribute_ref(&ic, cfg, ctx.rank(), ctx.size());
            let first = sim.step(ctx, &mut sph::NullObserver);
            let mut reparts = u64::from(first.repartitioned);
            let mut migrated = 0u64;
            let t0 = thread_cpu_time_s();
            for _ in 1..steps {
                let s = sim.step(ctx, &mut sph::NullObserver);
                reparts += u64::from(s.repartitioned);
                migrated += s.migrated;
            }
            (thread_cpu_time_s() - t0, reparts, migrated)
        });
        let cpu = outs
            .iter()
            .map(|(t, _, _)| t / (steps - 1) as f64)
            .fold(0.0, f64::max);
        // Repartition decisions are collective and migration counts are
        // allreduced, so rank 0 speaks for the job.
        let (_, repartitions, migrated_after_first) = outs[0];
        let base = rows
            .first()
            .map_or(cpu, |r: &HostScalingRow| r.cpu_s_per_rank_step);
        rows.push(HostScalingRow {
            ranks,
            particles,
            cpu_s_per_rank_step: cpu,
            cpu_norm: if base > 0.0 { cpu / base } else { 1.0 },
            repartitions,
            migrated_after_first,
        });
    }
    rows
}

/// Print a header band for a figure/table.
pub fn banner(title: &str, caption: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{caption}");
    println!("{}", "=".repeat(78));
}

/// Render a normalized series as a unicode sparkline (lowest value = deepest
/// dip). Used by the figure binaries to echo the paper's plot shapes in the
/// terminal.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() || !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let x = ((v - lo) / span * 7.0).round() as usize;
            BARS[x.min(7)]
        })
        .collect()
}

/// Render a right-aligned numeric table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_guard_blocks_only_unforced_overwrites() {
        // Single core + existing report + no --force: refuse.
        assert!(refuse_single_core_overwrite(1, true, false).is_err());
        // --force overrides.
        assert!(refuse_single_core_overwrite(1, true, true).is_ok());
        // Fresh report or a real multi-core host: always fine.
        assert!(refuse_single_core_overwrite(1, false, false).is_ok());
        assert!(refuse_single_core_overwrite(8, true, false).is_ok());
        let msg = refuse_single_core_overwrite(1, true, false).unwrap_err();
        assert!(msg.contains("--force"), "message must name the override");
    }

    #[test]
    fn n_side_scales_with_ranks() {
        assert_eq!(n_side_for_ranks(1), PHYSICS_N_SIDE);
        let n96 = n_side_for_ranks(96);
        assert!(n96.pow(3) >= 96 * 120);
    }

    #[test]
    fn sparkline_maps_extremes_to_extreme_bars() {
        let s = sparkline(&[1.0, 0.5, 0.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '\u{2588}');
        assert_eq!(chars[2], '\u{2581}');
        assert!(sparkline(&[]).is_empty());
        // Flat series renders but does not panic on zero span.
        assert_eq!(sparkline(&[2.0, 2.0]).chars().count(), 2);
    }

    #[test]
    fn thread_cpu_time_advances_under_load() {
        let t0 = thread_cpu_time_s();
        // Burn enough CPU to tick the 10 ms USER_HZ counter at least once.
        let mut acc = 0u64;
        while thread_cpu_time_s() - t0 < 0.03 {
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        assert!(thread_cpu_time_s() >= t0 + 0.03, "CPU time is monotonic");
    }

    #[test]
    fn host_weak_scaling_reports_sane_rows() {
        let rows = host_weak_scaling(&[1, 2], 1_000, 2, None);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ranks, 1);
        assert!(rows[0].particles >= 900, "~per_rank particles at 1 rank");
        assert!(rows[1].particles >= 1_800, "weak scaling doubles the total");
        assert!(
            (rows[0].cpu_norm - 1.0).abs() < 1e-12,
            "first row is the base"
        );
        assert!(
            rows.iter().all(|r| r.repartitions >= 1),
            "step 0 partitions"
        );
        // Balanced turbulence at default threshold: no re-partitions after
        // the first, and migration stays a small fraction of the total.
        assert!(
            rows[1].migrated_after_first < rows[1].particles as u64 / 5,
            "incremental repartitioning moves <20%: {} of {}",
            rows[1].migrated_after_first,
            rows[1].particles
        );
    }

    #[test]
    fn specs_use_requested_targets() {
        let s = minihpc_spec(FreqPolicy::Baseline, 5, paper_450cubed());
        assert_eq!(s.steps, 5);
        assert_eq!(s.target_particles_per_rank, paper_450cubed());
        let p = production_spec(
            archsim::cscs_a100(),
            8,
            WorkloadKind::Turbulence {
                n_side: 12,
                mach: 0.3,
                seed: 1,
            },
            3,
            150e6,
        );
        assert_eq!(p.ranks, 8);
        assert_eq!(p.target_particles_per_rank, 150e6);
    }
}
