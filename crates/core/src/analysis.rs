//! Energy/performance trade-off analytics: Pareto fronts, EDP series, and
//! online-vs-offline frequency-table convergence.
//!
//! §IV-D frames the policy comparison as "identifying Pareto-optimal
//! solutions that provide acceptable performance and lower energy
//! consumption" — this module computes exactly that over measured policy
//! points. The table-comparison half answers the online-extension question:
//! did the in-run search land on the same per-kernel clocks the offline
//! KernelTuner sweep found?

use archsim::{EnergyDelay, MegaHertz};
use serde::{Deserialize, Serialize};
use sph::FuncId;

use crate::policy::FreqTable;
use crate::report::ExperimentResult;

/// One measured (time, energy) point on the trade-off plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    pub label: String,
    pub time_s: f64,
    pub energy_j: f64,
}

impl PolicyPoint {
    /// Build from an experiment's loop time and GPU energy.
    pub fn from_result(r: &ExperimentResult) -> Self {
        PolicyPoint {
            label: r.policy.clone(),
            time_s: r.time_to_solution_s,
            energy_j: r.pmt_gpu_j,
        }
    }

    /// Energy-delay product of this point.
    pub fn edp(&self) -> f64 {
        EnergyDelay::of(self.energy_j, self.time_s).0
    }

    /// True if `other` is at least as good on both axes and strictly better
    /// on one (standard Pareto dominance, minimizing both).
    pub fn dominated_by(&self, other: &PolicyPoint) -> bool {
        other.time_s <= self.time_s
            && other.energy_j <= self.energy_j
            && (other.time_s < self.time_s || other.energy_j < self.energy_j)
    }
}

/// Indices of the non-dominated points, ordered by increasing time. Points
/// duplicating an earlier point exactly are kept (they are not *strictly*
/// worse).
pub fn pareto_front(points: &[PolicyPoint]) -> Vec<usize> {
    let mut front: Vec<usize> = (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && points[i].dominated_by(p))
        })
        .collect();
    front.sort_by(|&a, &b| {
        points[a]
            .time_s
            .partial_cmp(&points[b].time_s)
            .expect("finite times")
    });
    front
}

/// The point with the lowest EDP.
pub fn best_edp(points: &[PolicyPoint]) -> Option<usize> {
    (0..points.len()).min_by(|&a, &b| {
        points[a]
            .edp()
            .partial_cmp(&points[b].edp())
            .expect("finite EDP")
    })
}

/// Hypervolume-style scalar for a front (area dominated up to a reference
/// point) — a compact way to compare whole policy sets. Points beyond the
/// reference contribute nothing.
pub fn dominated_area(points: &[PolicyPoint], ref_time_s: f64, ref_energy_j: f64) -> f64 {
    let front = pareto_front(points);
    let mut area = 0.0;
    let mut prev_energy = ref_energy_j;
    for &i in &front {
        let p = &points[i];
        if p.time_s >= ref_time_s || p.energy_j >= prev_energy {
            continue;
        }
        area += (ref_time_s - p.time_s) * (prev_energy - p.energy_j);
        prev_energy = p.energy_j;
    }
    area
}

/// One kernel's entry in a learned-vs-reference table comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDeviation {
    pub func: FuncId,
    /// The clock the online run converged to (or its Baseline fallback).
    pub learned_mhz: u32,
    /// The offline-tuned reference clock.
    pub reference_mhz: u32,
}

impl TableDeviation {
    /// Absolute clock disagreement for this kernel.
    pub fn deviation_mhz(&self) -> u32 {
        self.learned_mhz.abs_diff(self.reference_mhz)
    }
}

/// The learned table carried in a run's rank-0 report, as a typed
/// [`FreqTable`] (kernels the tuner never pinned are absent).
pub fn learned_table_of(r: &ExperimentResult) -> FreqTable {
    r.per_rank
        .first()
        .map(|rank| {
            rank.learned_table
                .iter()
                .filter_map(|(name, mhz)| FuncId::from_name(name).map(|f| (f, MegaHertz(*mhz))))
                .collect()
        })
        .unwrap_or_default()
}

/// Compare `learned` against `reference` over the reference's kernels.
/// Kernels missing from `learned` are scored at `fallback` — the clock an
/// online policy actually runs unpinned kernels at (the ladder maximum).
pub fn compare_tables(
    learned: &FreqTable,
    reference: &FreqTable,
    fallback: MegaHertz,
) -> Vec<TableDeviation> {
    reference
        .iter()
        .map(|(func, ref_f)| TableDeviation {
            func: *func,
            learned_mhz: learned.get(func).copied().unwrap_or(fallback).0,
            reference_mhz: ref_f.0,
        })
        .collect()
}

/// Largest per-kernel clock disagreement in a comparison.
pub fn max_deviation_mhz(deviations: &[TableDeviation]) -> u32 {
    deviations
        .iter()
        .map(TableDeviation::deviation_mhz)
        .max()
        .unwrap_or(0)
}

/// True when every kernel agrees within `bin_mhz` — one ladder step
/// (15 MHz on the A100) is the paper-relevant convergence criterion.
pub fn tables_within_bin(deviations: &[TableDeviation], bin_mhz: u32) -> bool {
    max_deviation_mhz(deviations) <= bin_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(label: &str, t: f64, e: f64) -> PolicyPoint {
        PolicyPoint {
            label: label.into(),
            time_s: t,
            energy_j: e,
        }
    }

    #[test]
    fn dominance_rules() {
        let a = p("a", 1.0, 1.0);
        let faster = p("f", 0.9, 1.0);
        let cheaper = p("c", 1.0, 0.9);
        let worse = p("w", 1.1, 1.1);
        let equal = p("e", 1.0, 1.0);
        assert!(a.dominated_by(&faster));
        assert!(a.dominated_by(&cheaper));
        assert!(!a.dominated_by(&worse));
        assert!(!a.dominated_by(&equal), "ties do not dominate");
        assert!(worse.dominated_by(&a));
    }

    #[test]
    fn front_of_policy_shaped_points() {
        // baseline: fast & hungry; static-low: slow & frugal; mandyn: near
        // baseline time, much lower energy; dvfs: dominated (slower AND
        // hungrier than baseline).
        let points = vec![
            p("baseline", 1.00, 1.00),
            p("static-1005", 1.12, 0.86),
            p("mandyn", 1.03, 0.91),
            p("dvfs", 1.02, 1.02),
        ];
        let front = pareto_front(&points);
        let labels: Vec<&str> = front.iter().map(|&i| points[i].label.as_str()).collect();
        assert_eq!(labels, vec!["baseline", "mandyn", "static-1005"]);
        assert!(!labels.contains(&"dvfs"), "DVFS must be dominated");
        // ManDyn wins EDP.
        assert_eq!(best_edp(&points), Some(2));
    }

    #[test]
    fn front_is_time_sorted_and_monotone_in_energy() {
        let points = vec![
            p("a", 3.0, 1.0),
            p("b", 1.0, 3.0),
            p("c", 2.0, 2.0),
            p("d", 2.5, 2.5), // dominated by c
        ];
        let front = pareto_front(&points);
        let ts: Vec<f64> = front.iter().map(|&i| points[i].time_s).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let es: Vec<f64> = front.iter().map(|&i| points[i].energy_j).collect();
        assert!(
            es.windows(2).all(|w| w[0] >= w[1]),
            "energy decreases along the front"
        );
        assert_eq!(front.len(), 3);
    }

    #[test]
    fn dominated_area_prefers_better_fronts() {
        let good = vec![p("g1", 0.8, 0.8), p("g2", 0.9, 0.7)];
        let bad = vec![p("b1", 0.95, 0.95)];
        let a_good = dominated_area(&good, 1.0, 1.0);
        let a_bad = dominated_area(&bad, 1.0, 1.0);
        assert!(a_good > a_bad);
        // Points beyond the reference contribute nothing.
        let none = dominated_area(&[p("x", 1.5, 1.5)], 1.0, 1.0);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(best_edp(&[]), None);
        assert_eq!(dominated_area(&[], 1.0, 1.0), 0.0);
    }

    #[test]
    fn table_comparison_scores_missing_kernels_at_fallback() {
        let mut reference = FreqTable::new();
        reference.insert(FuncId::XMass, MegaHertz(1050));
        reference.insert(FuncId::MomentumEnergy, MegaHertz(1410));
        reference.insert(FuncId::Gravity, MegaHertz(1320));
        let mut learned = FreqTable::new();
        learned.insert(FuncId::XMass, MegaHertz(1065)); // one bin off
        learned.insert(FuncId::MomentumEnergy, MegaHertz(1410)); // exact
                                                                 // Gravity never pinned -> runs at the 1410 fallback, 90 MHz off.

        let devs = compare_tables(&learned, &reference, MegaHertz(1410));
        assert_eq!(devs.len(), 3);
        assert_eq!(max_deviation_mhz(&devs), 90);
        assert!(!tables_within_bin(&devs, 15));

        learned.insert(FuncId::Gravity, MegaHertz(1320));
        let devs = compare_tables(&learned, &reference, MegaHertz(1410));
        assert_eq!(max_deviation_mhz(&devs), 15);
        assert!(tables_within_bin(&devs, 15));
        assert!(!tables_within_bin(&devs, 14));
    }
}
