//! `freqscale-matrix` — expand the scenario × device × policy cube into
//! spec files `freqscale-run` (and `freqscale-submit`) can consume.
//!
//! Each cell is a single-node run of one zoo scenario on one zoo device
//! under one policy; the generator writes `<out-dir>/<scenario>--<device
//! slug>--<policy>.json` and prints the paths to stdout, one per line, so
//! the whole matrix pipes straight into the runner:
//!
//! ```sh
//! freqscale-matrix --out-dir matrix-specs | freqscale-run --jobs 4 - --out matrix-report.json
//! freqscale-matrix --list                       # cell names only, no files
//! freqscale-matrix --devices devices/l4.json    # a template file instead of a builtin
//! ```

use archsim::DeviceTemplate;
use freqscale::scenario::{slug, system_for_device, SCENARIOS};
use freqscale::{ExperimentSpec, FreqPolicy};
use online::{OnlineTunerConfig, PredictiveConfig};

/// Policies the matrix knows by name. The default pair is the two
/// self-tuning policies — the ones whose learned tables the sweep compares
/// across devices.
const POLICIES: [&str; 4] = ["online", "predictive", "baseline", "dvfs"];
const DEFAULT_POLICIES: [&str; 2] = ["online", "predictive"];

fn usage() -> ! {
    eprintln!(
        "usage: freqscale-matrix [--out-dir DIR] [--scenarios a,b,..] [--devices d,..]\n\
         \x20                    [--policies p,..] [--steps N] [--table-store DIR] [--list]\n\
         \n\
         \x20 --out-dir     where spec files go (default: matrix-specs)\n\
         \x20 --scenarios   comma-separated registry names (default: all {n_sc})\n\
         \x20 --devices     builtin template names or paths to template JSON\n\
         \x20                (default: all {n_dev} builtins)\n\
         \x20 --policies    any of {policies} (default: online,predictive)\n\
         \x20 --steps       steps per cell (default: 80 — above the online\n\
         \x20                tuner's 64-launch exploration budget, so every\n\
         \x20                kernel pins even on the longest device ladder)\n\
         \x20 --table-store per-cell learned-table directory (default: none)\n\
         \x20 --list        print `scenario/device/policy` cell names; write nothing",
        n_sc = SCENARIOS.len(),
        n_dev = archsim::BUILTIN_DEVICES.len(),
        policies = POLICIES.join(","),
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn split_csv(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

/// A device argument is a template file when it looks like a path;
/// otherwise it names a builtin.
fn load_device(arg: &str) -> DeviceTemplate {
    if arg.contains('/') || arg.ends_with(".json") {
        DeviceTemplate::load(std::path::Path::new(arg)).unwrap_or_else(|e| fail(e.to_string()))
    } else {
        DeviceTemplate::builtin(arg).unwrap_or_else(|| {
            fail(format!(
                "unknown device {arg:?} (builtins: {}; or pass a template JSON path)",
                archsim::BUILTIN_DEVICES.join(", ")
            ))
        })
    }
}

fn policy_for(name: &str) -> FreqPolicy {
    match name {
        "online" => FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        "predictive" => FreqPolicy::ManDynPredictive(PredictiveConfig::default()),
        "baseline" => FreqPolicy::Baseline,
        "dvfs" => FreqPolicy::Dvfs,
        _ => fail(format!(
            "unknown policy {name:?} (valid policies: {})",
            POLICIES.join(", ")
        )),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = String::from("matrix-specs");
    let mut scenarios: Vec<String> = SCENARIOS.iter().map(|s| s.to_string()).collect();
    let mut devices: Vec<String> = archsim::BUILTIN_DEVICES
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut policies: Vec<String> = DEFAULT_POLICIES.iter().map(|s| s.to_string()).collect();
    // Above OnlineTunerConfig's default 64-launch exploration budget: on the
    // longest ladders (H100/L4) the search does not converge naturally in a
    // short run, and an unpinned kernel publishes no learned-table entry.
    let mut steps = 80usize;
    let mut table_store: Option<String> = None;
    let mut list_only = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out-dir" => out_dir = it.next().unwrap_or_else(|| usage()),
            "--scenarios" => scenarios = split_csv(&it.next().unwrap_or_else(|| usage())),
            "--devices" => devices = split_csv(&it.next().unwrap_or_else(|| usage())),
            "--policies" => policies = split_csv(&it.next().unwrap_or_else(|| usage())),
            "--steps" => {
                let v = it.next().unwrap_or_else(|| usage());
                steps = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--steps {v}: {e}")));
            }
            "--table-store" => table_store = Some(it.next().unwrap_or_else(|| usage())),
            "--list" => list_only = true,
            "--help" | "-h" => usage(),
            other => fail(format!("unexpected argument {other:?} (see --help)")),
        }
    }
    if scenarios.is_empty() || devices.is_empty() || policies.is_empty() {
        fail("the matrix has an empty axis".to_string());
    }
    for s in &scenarios {
        if !SCENARIOS.contains(&s.as_str()) {
            fail(format!(
                "unknown scenario {s:?} (valid scenarios: {})",
                SCENARIOS.join(", ")
            ));
        }
    }
    let templates: Vec<DeviceTemplate> = devices.iter().map(|d| load_device(d)).collect();

    if !list_only {
        std::fs::create_dir_all(&out_dir)
            .unwrap_or_else(|e| fail(format!("creating {out_dir}: {e}")));
    }
    for template in &templates {
        let system = system_for_device(template).unwrap_or_else(|e| fail(e));
        let device_slug = slug(&template.name);
        for scenario in &scenarios {
            for policy in &policies {
                if list_only {
                    println!("{scenario}/{device_slug}/{policy}");
                    continue;
                }
                let mut spec = ExperimentSpec::minihpc_turbulence(policy_for(policy), steps);
                spec.system = system.clone();
                spec.scenario = Some(scenario.clone());
                spec.resolve_scenario()
                    .unwrap_or_else(|e| fail(format!("cell {scenario}/{device_slug}: {e}")));
                spec.table_store = table_store.as_ref().map(std::path::PathBuf::from);
                let path = format!("{out_dir}/{scenario}--{device_slug}--{policy}.json");
                let body = serde_json::to_string_pretty(&spec).expect("matrix spec serializes");
                std::fs::write(&path, body)
                    .unwrap_or_else(|e| fail(format!("writing {path}: {e}")));
                println!("{path}");
            }
        }
    }
}
