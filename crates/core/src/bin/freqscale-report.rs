//! `freqscale-report` — pretty-print an experiment report file.
//!
//! The instrumentation stores per-rank measurements "into a file for
//! post-hoc analysis" (§III-B); this is the analysis tool. It reads the JSON
//! an experiment (or the `--json` flag of any bench binary) wrote and prints
//! the device breakdown, the per-function table, and the PMT/Slurm summary.
//!
//! ```sh
//! cargo run -p freqscale --bin freqscale-report -- report.json
//! # or generate a demo report first:
//! cargo run -p freqscale --bin freqscale-report -- --demo
//! ```

use freqscale::{run_experiment, ExperimentResult, ExperimentSpec, FreqPolicy};

fn print_report(r: &ExperimentResult) {
    println!(
        "experiment: {} / {} / policy={}",
        r.system, r.workload, r.policy
    );
    println!("ranks: {}   steps: {}", r.ranks, r.steps);
    println!();
    println!("time-to-solution : {:>12.4} s", r.time_to_solution_s);
    println!("job elapsed      : {:>12.4} s", r.job_elapsed_s);
    println!("PMT GPU energy   : {:>12.2} J", r.pmt_gpu_j);
    println!("PMT devices      : {:>12.2} J", r.pmt_total_j);
    println!("Slurm consumed   : {:>12.2} J", r.slurm_consumed_j);
    println!("loop node energy : {:>12.2} J", r.node_loop_j);
    println!("loop EDP         : {:>12.2} J*s", r.edp());

    let t = r.device_totals();
    let (g, c, m, o) = t.shares();
    println!();
    println!(
        "device shares    : GPU {:.1}%  CPU {:.1}%  Mem {:.1}%  Other {:.1}%",
        g * 100.0,
        c * 100.0,
        m * 100.0,
        o * 100.0
    );

    println!();
    println!(
        "{:>22}  {:>7}  {:>10}  {:>10}  {:>9}  {:>9}",
        "function", "calls", "time [s]", "GPU [J]", "GPU share", "avg MHz"
    );
    let agg = r.functions_all_ranks();
    let gpu_total: f64 = agg.values().map(|f| f.gpu_j).sum();
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1.gpu_j.partial_cmp(&a.1.gpu_j).expect("finite energy"));
    for (name, f) in rows {
        println!(
            "{name:>22}  {:>7}  {:>10.4}  {:>10.2}  {:>8.1}%  {:>9.0}",
            f.calls,
            f.time_s,
            f.gpu_j,
            100.0 * f.gpu_j / gpu_total.max(1e-300),
            f.avg_freq_mhz
        );
    }

    if r.per_rank.iter().any(|rr| rr.clock_control_denied) {
        println!("\nnote: user-level clock control was DENIED on this system (production lock).");
    }
    if !r.per_rank.is_empty() && !r.per_rank[0].freq_trace.is_empty() {
        println!(
            "note: rank 0 carries a {}-sample clock trace (Fig. 9 data).",
            r.per_rank[0].freq_trace.len()
        );
    }
}

fn load(path: &str) -> ExperimentResult {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    ExperimentResult::from_json(&body).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

/// Print `b` normalized against `a` (baseline): the paper's Fig. 7-style
/// comparison between two report files.
fn print_comparison(a: &ExperimentResult, b: &ExperimentResult) {
    println!(
        "baseline: {} / {} / {}   vs   candidate: {} / {} / {}",
        a.system, a.workload, a.policy, b.system, b.workload, b.policy
    );
    let (t, e, edp) = b.normalized_to(a);
    println!("\ntime-to-solution : x{t:.4} ({:+.2}%)", (t - 1.0) * 100.0);
    println!("GPU energy       : x{e:.4} ({:+.2}%)", (e - 1.0) * 100.0);
    println!(
        "GPU EDP          : x{edp:.4} ({:+.2}%)",
        (edp - 1.0) * 100.0
    );
    println!(
        "node energy      : x{:.4}",
        b.node_loop_j / a.node_loop_j.max(1e-300)
    );

    println!("\nper-function deltas (time x, energy x):");
    let fa = a.functions_all_ranks();
    let fb = b.functions_all_ranks();
    for (name, fa_rep) in &fa {
        if let Some(fb_rep) = fb.get(name) {
            println!(
                "{name:>22}: time x{:.3}  energy x{:.3}  ({:.0} -> {:.0} MHz)",
                fb_rep.time_s / fa_rep.time_s.max(1e-300),
                fb_rep.gpu_j / fa_rep.gpu_j.max(1e-300),
                fa_rep.avg_freq_mhz,
                fb_rep.avg_freq_mhz,
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--demo") => {
            let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 4);
            let r = run_experiment(&spec);
            print_report(&r);
        }
        Some("--compare") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: freqscale-report --compare <baseline.json> <candidate.json>");
                std::process::exit(2);
            };
            print_comparison(&load(a), &load(b));
        }
        Some(path) => print_report(&load(path)),
        None => {
            eprintln!(
                "usage: freqscale-report <report.json> | --compare <a.json> <b.json> | --demo"
            );
            std::process::exit(2);
        }
    }
}
