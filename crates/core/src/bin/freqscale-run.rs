//! `freqscale-run` — run an experiment described by a JSON spec file.
//!
//! Makes the whole pipeline config-driven: describe the system, workload,
//! policy and scale in a spec file, get the full measurement report back.
//!
//! ```sh
//! cargo run --release -p freqscale --bin freqscale-run -- --print-template > spec.json
//! # edit spec.json ...
//! cargo run --release -p freqscale --bin freqscale-run -- spec.json report.json
//! cargo run --release -p freqscale --bin freqscale-report -- report.json
//! ```

use freqscale::{run_experiment, ExperimentSpec, FreqPolicy};
use online::OnlineTunerConfig;

fn template() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
    spec.collect_trace = true;
    spec
}

/// Online-ManDyn starter spec: the in-run tuner with default search
/// parameters, a power trace for cap auditing, and a table store so repeat
/// runs warm-start.
fn online_template() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        40,
    );
    spec.collect_trace = true;
    spec.table_store = Some(std::path::PathBuf::from("freqscale-tables"));
    spec
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--print-template") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&template()).expect("template serializes")
            );
        }
        Some("--print-online-template") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&online_template()).expect("template serializes")
            );
        }
        Some(spec_path) => {
            let body = std::fs::read_to_string(spec_path)
                .unwrap_or_else(|e| panic!("reading {spec_path}: {e}"));
            let spec: ExperimentSpec =
                serde_json::from_str(&body).unwrap_or_else(|e| panic!("parsing {spec_path}: {e}"));
            eprintln!(
                "running {} / {} / {} on {} ranks, {} steps...",
                spec.system.name,
                spec.workload.name(),
                spec.policy.label(),
                spec.ranks,
                spec.steps
            );
            let result = run_experiment(&spec);
            let json = result.to_json();
            match args.get(1) {
                Some(out) => {
                    std::fs::write(out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
                    eprintln!(
                        "t = {:.3}s, GPU = {:.1} J, Slurm = {:.1} J -> {out}",
                        result.time_to_solution_s, result.pmt_gpu_j, result.slurm_consumed_j
                    );
                }
                None => println!("{json}"),
            }
        }
        None => {
            eprintln!(
                "usage: freqscale-run <spec.json> [report.json] | --print-template | --print-online-template"
            );
            std::process::exit(2);
        }
    }
}
