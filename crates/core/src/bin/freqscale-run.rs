//! `freqscale-run` — run experiments described by JSON spec files.
//!
//! Makes the whole pipeline config-driven: describe the system, workload,
//! policy and scale in a spec file, get the full measurement report back.
//! Several spec files run concurrently (`--jobs N` bounds how many at a
//! time); the merged report is a JSON array in spec order.
//!
//! ```sh
//! cargo run --release -p freqscale --bin freqscale-run -- --print-template > spec.json
//! # edit spec.json ...
//! cargo run --release -p freqscale --bin freqscale-run -- spec.json report.json
//! cargo run --release -p freqscale --bin freqscale-run -- --jobs 4 a.json b.json c.json --out all.json
//! cargo run --release -p freqscale --bin freqscale-report -- report.json
//! ```

use freqscale::{run_experiments, ExperimentSpec, FreqPolicy};
use online::{OnlineTunerConfig, PredictiveConfig};

fn template() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
    spec.collect_trace = true;
    spec
}

/// Online-ManDyn starter spec: the in-run tuner with default search
/// parameters, a power trace for cap auditing, and a table store so repeat
/// runs warm-start.
fn online_template() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        40,
    );
    spec.collect_trace = true;
    spec.table_store = Some(std::path::PathBuf::from("freqscale-tables"));
    spec
}

/// Predictive-ManDyn starter spec: probe-fit-jump tuning with the memory
/// P-state axis open, plus a table store so fitted coefficients persist and
/// repeat runs skip even the probe phase.
fn predictive_template() -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynPredictive(PredictiveConfig {
            tune_memory: true,
            ..PredictiveConfig::default()
        }),
        40,
    );
    spec.collect_trace = true;
    spec.table_store = Some(std::path::PathBuf::from("freqscale-tables"));
    spec
}

fn usage() -> ! {
    eprintln!(
        "usage: freqscale-run [--jobs N] [--out merged.json] [--trace-out trace.json]\n\
         \x20                 [--metrics-out metrics.txt] [--timeline-csv timeline.csv]\n\
         \x20                 [--fault-profile default|profile.json] [--print-model]\n\
         \x20                 [--checkpoint-dir DIR] [--checkpoint-every N] [--restore DIR]\n\
         \x20                 <spec.json>... | -\n\
         \x20      freqscale-run <spec.json> [report.json]\n\
         \x20      freqscale-run --print-template | --print-online-template\n\
         \x20                    | --print-predictive-template | --print-fault-template\n\
         \n\
         \x20 --trace-out      Chrome-trace/Perfetto JSON of the run (open at\n\
         \x20                  https://ui.perfetto.dev)\n\
         \x20 --metrics-out    Prometheus-style text dump of counters/histograms\n\
         \x20 --timeline-csv   CSV merging span boundaries with GPU power samples\n\
         \x20 --fault-profile  chaos run: inject the given fault profile into\n\
         \x20                  every spec (`default` = the standard chaos mix)\n\
         \x20 --checkpoint-dir write periodic checkpoints under DIR (see\n\
         \x20                  --checkpoint-every; default every 5 steps)\n\
         \x20 --restore        resume from the newest committed checkpoint\n\
         \x20                  under DIR; the continuation is bit-identical\n\
         \x20 --print-model    dump the fitted per-kernel model coefficients\n\
         \x20                  (predictive policy) as JSON to stdout; the\n\
         \x20                  report then only goes to --out\n\
         \x20 -                read newline-separated spec paths from stdin\n\
         \x20                  (pipe from freqscale-matrix)"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 0usize; // 0 -> the par layer's default worker count
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut timeline_csv: Option<String> = None;
    let mut fault_profile: Option<faults::FaultProfile> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut checkpoint_every: usize = 0;
    let mut restore_from: Option<std::path::PathBuf> = None;
    let mut print_model = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--print-fault-template" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&faults::FaultProfile::chaos())
                        .expect("profile serializes")
                );
                return;
            }
            "--fault-profile" => {
                let v = it.next().unwrap_or_else(|| usage());
                let profile = if v == "default" {
                    faults::FaultProfile::chaos()
                } else {
                    let body = std::fs::read_to_string(&v)
                        .unwrap_or_else(|e| fail(format!("reading fault profile {v}: {e}")));
                    serde_json::from_str(&body)
                        .unwrap_or_else(|e| fail(format!("parsing fault profile {v}: {e}")))
                };
                if let Err(e) = profile.validate() {
                    fail(format!("invalid fault profile {v}: {e}"));
                }
                fault_profile = Some(profile);
            }
            "--print-template" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&template()).expect("template serializes")
                );
                return;
            }
            "--print-online-template" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&online_template()).expect("template serializes")
                );
                return;
            }
            "--print-predictive-template" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&predictive_template())
                        .expect("template serializes")
                );
                return;
            }
            "--print-model" => print_model = true,
            "--jobs" | "-j" => {
                let v = it.next().unwrap_or_else(|| usage());
                jobs = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--jobs {v}: {e}")));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ));
            }
            "--checkpoint-every" => {
                let v = it.next().unwrap_or_else(|| usage());
                checkpoint_every = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--checkpoint-every {v}: {e}")));
            }
            "--restore" => {
                restore_from = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| usage()),
                ));
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage())),
            "--timeline-csv" => timeline_csv = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => positional.push(arg),
        }
    }

    // A positional `-` expands to spec paths read from stdin, one per line
    // — the shape `freqscale-matrix | freqscale-run --jobs 4 -` produces.
    let mut used_stdin = false;
    if positional.iter().any(|p| p == "-") {
        used_stdin = true;
        let mut body = String::new();
        use std::io::Read as _;
        std::io::stdin()
            .read_to_string(&mut body)
            .unwrap_or_else(|e| fail(format!("reading spec list from stdin: {e}")));
        let from_stdin: Vec<String> = body
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(String::from)
            .collect();
        if from_stdin.is_empty() {
            fail("stdin (`-`) supplied no spec paths".to_string());
        }
        positional = positional
            .into_iter()
            .filter(|p| p != "-")
            .chain(from_stdin)
            .collect();
    }

    // Legacy form: exactly two positionals with no --out means
    // `<spec.json> <report.json>` — but not when the list came from stdin.
    if out.is_none() && !used_stdin && positional.len() == 2 {
        out = positional.pop();
    }
    if positional.is_empty() {
        usage();
    }

    let specs: Vec<ExperimentSpec> = positional
        .iter()
        .map(|path| {
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("reading spec {path}: {e}")));
            let mut spec: ExperimentSpec = serde_json::from_str(&body)
                .unwrap_or_else(|e| fail(format!("parsing spec {path}: {e}")));
            // Resolve a symbolic `"scenario"` name into its registry
            // workload before anything else — an unknown name must not get
            // as far as the cluster.
            spec.resolve_scenario()
                .unwrap_or_else(|e| fail(format!("spec {path}: {e}")));
            // A requested memory clock must be one of the device's P-states
            // — catch it here, before any work, the way NVML rejects an
            // unsupported memory clock at the SetApplicationsClocks call.
            if let Some(m) = spec.memory_clock {
                let gpu = &spec.system.node.gpu;
                if !gpu.mem_clock_table.iter().any(|p| p.0 == m) {
                    let supported: Vec<String> = gpu
                        .mem_clock_table
                        .iter()
                        .map(|p| p.0.to_string())
                        .collect();
                    fail(format!(
                        "spec {path}: memory clock {m} MHz is not a supported P-state \
                         on {} (supported: {} MHz)",
                        gpu.name,
                        supported.join(", ")
                    ));
                }
            }
            if let Some(profile) = &fault_profile {
                spec.faults = Some(profile.clone());
            }
            if let Some(dir) = &checkpoint_dir {
                spec.checkpoint_dir = Some(dir.clone());
            }
            if checkpoint_every > 0 {
                spec.checkpoint_every = checkpoint_every;
            }
            if let Some(dir) = &restore_from {
                spec.restore_from = Some(dir.clone());
            }
            spec
        })
        .collect();
    // Checkpoint/restore failure modes surface here, before any simulation
    // work: an unwritable checkpoint directory or a missing / mismatched
    // restore point is a clean CLI error, not a mid-run panic.
    for spec in &specs {
        if let Some(dir) = &spec.checkpoint_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail(format!(
                    "checkpoint dir {} is not writable: {e}",
                    dir.display()
                ));
            }
            let probe = dir.join(format!(".probe.{}", std::process::id()));
            match std::fs::write(&probe, b"probe") {
                Ok(()) => {
                    let _ = std::fs::remove_file(&probe);
                }
                Err(e) => fail(format!(
                    "checkpoint dir {} is not writable: {e}",
                    dir.display()
                )),
            }
        }
        if let Some(dir) = &spec.restore_from {
            if let Err(e) = freqscale::RestorePoint::discover(dir, spec) {
                fail(format!("--restore {}: {e}", dir.display()));
            }
        }
    }
    if fault_profile.is_some() && !faults::ENABLED {
        eprintln!("warning: built without the `faults` feature; the fault profile is a no-op");
    }
    for spec in &specs {
        eprintln!(
            "running {} / {} / {} on {} ranks, {} steps...",
            spec.system.name,
            spec.workload.name(),
            spec.policy.label(),
            spec.ranks,
            spec.steps
        );
    }

    let tracing = trace_out.is_some() || metrics_out.is_some() || timeline_csv.is_some();
    if tracing {
        if !telemetry::ENABLED {
            eprintln!(
                "warning: built without the `telemetry` feature; trace outputs will be empty"
            );
        }
        telemetry::start();
        telemetry::set_track("driver");
    }

    let results = run_experiments(&specs, jobs);

    if tracing {
        let data = telemetry::stop();
        eprintln!("{}", data.overhead_summary());
        if let Some(path) = &trace_out {
            std::fs::write(path, telemetry::chrome_trace(&data))
                .unwrap_or_else(|e| fail(format!("writing trace {path}: {e}")));
            eprintln!("wrote {path} (open at https://ui.perfetto.dev)");
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, telemetry::metrics_text(&data))
                .unwrap_or_else(|e| fail(format!("writing metrics {path}: {e}")));
            eprintln!("wrote {path}");
        }
        if let Some(path) = &timeline_csv {
            // Merge with the first traced rank's power samples (specs with
            // collect_trace populate them); spans still export without power.
            let power: Vec<(f64, f64)> = results
                .iter()
                .flat_map(|r| r.per_rank.iter())
                .find(|r| !r.power_trace.is_empty())
                .map(|r| r.power_trace.clone())
                .unwrap_or_default();
            std::fs::write(path, telemetry::csv_timeline(&data, &power))
                .unwrap_or_else(|e| fail(format!("writing timeline {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }

    // One spec keeps the original single-object report shape; several
    // merge into a JSON array in spec order. `to_json` emits complete
    // objects, so the merge is textual — no round-trip needed.
    let json = if results.len() == 1 {
        results[0].to_json()
    } else {
        let mut merged = String::from("[\n");
        for (k, result) in results.iter().enumerate() {
            if k > 0 {
                merged.push_str(",\n");
            }
            merged.push_str(&result.to_json());
        }
        merged.push_str("\n]");
        merged
    };
    for result in &results {
        eprintln!(
            "{} / {}: t = {:.3}s, GPU = {:.1} J, Slurm = {:.1} J",
            result.workload,
            result.policy,
            result.time_to_solution_s,
            result.pmt_gpu_j,
            result.slurm_consumed_j
        );
        if result.fault_stats.injected() > 0 {
            eprintln!("  faults: {}", result.fault_stats.summary());
            if result.fault_stats.all_recovered() {
                eprintln!("  faults: every injected fault was recovered");
            } else {
                eprintln!(
                    "  faults: {} injected fault(s) NOT recovered",
                    result.fault_stats.injected() - result.fault_stats.recovered()
                );
            }
        }
    }
    if print_model {
        // One object per spec, keyed "<workload>/<policy>", each holding
        // rank 0's fitted per-kernel coefficients (empty for non-predictive
        // policies or kernels that fell back to the search).
        let models: std::collections::BTreeMap<String, online::StoredModels> = results
            .iter()
            .map(|r| {
                (
                    format!("{}/{}", r.workload, r.policy),
                    r.per_rank[0].models.clone(),
                )
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&models).expect("models serialize")
        );
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| fail(format!("writing {path}: {e}")));
            eprintln!("wrote {path}");
        }
        // --print-model owns stdout; without --out the report is dropped.
        None if print_model => {}
        None => println!("{json}"),
    }
}
