//! `freqscale-serve` — the long-running experiment daemon.
//!
//! Listens on a Unix-domain socket for line-JSON experiment submissions
//! (see `freqscale-submit`), runs them on a bounded queue + worker pool,
//! and shares one in-process table server across all jobs, so repeat
//! submissions of a (GPU, workload) pair warm-start from what earlier jobs
//! learned — including K concurrent submissions, of which exactly one
//! explores.
//!
//! ```sh
//! freqscale-serve --socket /tmp/freqscale.sock --table-store tables/ &
//! freqscale-submit --socket /tmp/freqscale.sock spec.json
//! freqscale-submit --socket /tmp/freqscale.sock --shutdown
//! ```

use freqscale::ExperimentExecutor;
use serve::daemon::{Daemon, ServeConfig};
use serve::tables::TableServerConfig;

fn usage() -> ! {
    eprintln!(
        "usage: freqscale-serve --socket PATH [--queue N] [--workers N]\n\
         \x20                   [--table-store DIR] [--table-capacity N]\n\
         \x20                   [--trace-out trace.json] [--metrics-out metrics.txt]\n\
         \n\
         \x20 --socket          Unix-domain socket to listen on (required)\n\
         \x20 --queue           job queue capacity; overflow is rejected\n\
         \x20                   `queue_full` (default 16)\n\
         \x20 --workers         concurrent jobs; 0 = machine default (default 0)\n\
         \x20 --table-store     directory for learned-table persistence; shared\n\
         \x20                   with batch freqscale-run table stores\n\
         \x20 --table-capacity  resident table entries before LRU eviction;\n\
         \x20                   0 = unbounded (default 64)\n\
         \x20 --trace-out       write a Chrome-trace/Perfetto JSON of the whole\n\
         \x20                   serving session at shutdown\n\
         \x20 --metrics-out     write Prometheus-style counters at shutdown"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut queue = 16usize;
    let mut workers = 0usize;
    let mut table_store: Option<String> = None;
    let mut table_capacity = 64usize;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(it.next().unwrap_or_else(|| usage())),
            "--queue" => {
                let v = it.next().unwrap_or_else(|| usage());
                queue = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--queue {v}: {e}")));
                if queue == 0 {
                    fail("--queue must be at least 1".to_string());
                }
            }
            "--workers" => {
                let v = it.next().unwrap_or_else(|| usage());
                workers = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--workers {v}: {e}")));
            }
            "--table-store" => table_store = Some(it.next().unwrap_or_else(|| usage())),
            "--table-capacity" => {
                let v = it.next().unwrap_or_else(|| usage());
                table_capacity = v
                    .parse()
                    .unwrap_or_else(|e| fail(format!("--table-capacity {v}: {e}")));
            }
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => fail(format!("unknown argument {other:?} (see --help)")),
        }
    }
    let socket = socket.unwrap_or_else(|| usage());

    let tracing = trace_out.is_some() || metrics_out.is_some();
    if tracing {
        if !telemetry::ENABLED {
            eprintln!(
                "warning: built without the `telemetry` feature; trace outputs will be empty"
            );
        }
        telemetry::start();
        telemetry::set_track("serve-daemon");
    }

    let cfg = ServeConfig {
        socket: socket.clone().into(),
        queue_capacity: queue,
        workers,
        tables: TableServerConfig {
            dir: table_store.map(Into::into),
            capacity: table_capacity,
        },
    };
    let handle = Daemon::start(cfg, ExperimentExecutor)
        .unwrap_or_else(|e| fail(format!("starting daemon on {socket}: {e}")));
    eprintln!(
        "freqscale-serve: listening on {socket} (queue {queue}, workers {})",
        if workers == 0 {
            "auto".to_string()
        } else {
            workers.to_string()
        }
    );

    // Serve until a client sends Shutdown; queued jobs drain first.
    handle.join();
    eprintln!("freqscale-serve: drained and stopped");

    if tracing {
        let data = telemetry::stop();
        if let Some(path) = &trace_out {
            std::fs::write(path, telemetry::chrome_trace(&data))
                .unwrap_or_else(|e| fail(format!("writing trace {path}: {e}")));
            eprintln!("wrote {path} (open at https://ui.perfetto.dev)");
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, telemetry::metrics_text(&data))
                .unwrap_or_else(|e| fail(format!("writing metrics {path}: {e}")));
            eprintln!("wrote {path}");
        }
    }
}
