//! `freqscale-submit` — submit experiment specs to a running
//! `freqscale-serve` daemon and await the streamed results.
//!
//! Exits 0 only when every submitted job queued, ran and finished ok;
//! any rejection (`queue_full`, invalid spec) or failed/killed job makes
//! the exit code 1 — which is what lets CI gate on a served batch.
//!
//! ```sh
//! freqscale-submit --socket /tmp/freqscale.sock a.json b.json
//! freqscale-submit --socket /tmp/freqscale.sock --report-dir reports/ spec.json
//! freqscale-submit --socket /tmp/freqscale.sock --stats
//! freqscale-submit --socket /tmp/freqscale.sock --shutdown
//! ```

use serve::client;

fn usage() -> ! {
    eprintln!(
        "usage: freqscale-submit --socket PATH [--report-dir DIR] <spec.json>...\n\
         \x20      freqscale-submit --socket PATH --ping | --stats | --shutdown\n\
         \n\
         \x20 --report-dir  write each finished job's full experiment report to\n\
         \x20               DIR/job-<id>.json\n\
         \x20 --ping        liveness probe (exit 0 iff the daemon answers)\n\
         \x20 --stats       print the daemon's queue/table-server/sacct snapshot\n\
         \x20 --shutdown    ask the daemon to drain queued jobs and exit"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut report_dir: Option<String> = None;
    let mut mode_ping = false;
    let mut mode_stats = false;
    let mut mode_shutdown = false;
    let mut specs: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(it.next().unwrap_or_else(|| usage())),
            "--report-dir" => report_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--ping" => mode_ping = true,
            "--stats" => mode_stats = true,
            "--shutdown" => mode_shutdown = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                fail(format!("unknown argument {other:?} (see --help)"))
            }
            _ => specs.push(arg),
        }
    }
    let socket = std::path::PathBuf::from(socket.unwrap_or_else(|| usage()));

    if mode_ping {
        match client::ping(&socket) {
            Ok(true) => return,
            Ok(false) => fail("daemon answered, but not with Pong".to_string()),
            Err(e) => fail(format!("pinging {}: {e}", socket.display())),
        }
    }
    if mode_stats {
        let stats = client::stats(&socket)
            .unwrap_or_else(|e| fail(format!("fetching stats from {}: {e}", socket.display())));
        println!(
            "jobs: {} submitted, {} rejected, {} completed, {} failed, {} queued",
            stats.jobs_submitted,
            stats.jobs_rejected,
            stats.jobs_completed,
            stats.jobs_failed,
            stats.queue_depth
        );
        let t = &stats.tables;
        println!(
            "tables: {} entries, {} hits, {} misses, {} disk loads, {} evictions, \
             {} warm starts, {} explorations, {} publishes, {} aborts, {} waits",
            t.entries,
            t.hits,
            t.misses,
            t.disk_loads,
            t.evictions,
            t.warm_starts,
            t.explorations,
            t.publishes,
            t.aborts,
            t.waits
        );
        print!("{}", stats.sacct);
        return;
    }
    if mode_shutdown {
        client::shutdown(&socket)
            .unwrap_or_else(|e| fail(format!("shutting down {}: {e}", socket.display())));
        eprintln!("daemon acknowledged shutdown");
        return;
    }

    if specs.is_empty() {
        usage();
    }
    let submissions: Vec<(String, String)> = specs
        .iter()
        .map(|path| {
            let body = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("reading spec {path}: {e}")));
            (path.clone(), body)
        })
        .collect();

    let results = client::submit_all(&socket, &submissions)
        .unwrap_or_else(|e| fail(format!("submitting to {}: {e}", socket.display())));

    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(format!("creating report dir {dir}: {e}")));
    }
    let mut failures = 0usize;
    for r in &results {
        if let Some(reason) = &r.rejected {
            println!("{}: rejected: {reason}", r.name);
            failures += 1;
            continue;
        }
        let id = r.job.unwrap_or(0);
        if r.ok {
            println!(
                "{} (job {id}): ok, warm_start={} table_version={} exploration_launches={} \
                 queue_wait={:.3}s elapsed={:.2}s energy={:.1}J setup_energy={:.1}J edp={:.1}",
                r.name,
                r.warm_start,
                r.table_version.map_or("-".into(), |v| v.to_string()),
                r.exploration_launches,
                r.queue_wait_s,
                r.elapsed_s,
                r.energy_j,
                r.setup_energy_j,
                r.edp
            );
            if let Some(recovery) = &r.recovery {
                println!("{} (job {id}): recovery: {recovery}", r.name);
            }
            if !r.sacct.is_empty() {
                print!("{} (job {id}): sacct: {}", r.name, r.sacct);
            }
            if let (Some(dir), Some(report)) = (&report_dir, &r.report) {
                let path = format!("{dir}/job-{id}.json");
                std::fs::write(&path, report)
                    .unwrap_or_else(|e| fail(format!("writing report {path}: {e}")));
                eprintln!("wrote {path}");
            }
        } else {
            println!(
                "{} (job {id}): FAILED: {}",
                r.name,
                r.error.as_deref().unwrap_or("unknown error")
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} of {} job(s) did not finish ok", results.len());
        std::process::exit(1);
    }
}
