//! Checkpoint/restart for long experiments.
//!
//! A checkpoint is a directory `step-NNNNNN/` under the spec's
//! `checkpoint_dir`, holding one `rank-NNNN.bin` particle snapshot per rank
//! (the versioned `sph::snapshot` codec) plus a `manifest.json` with the
//! integrator clocks, the SFC splits in force, the tuner's learned state,
//! and a hash of the spec's physics identity. Restoring from it continues
//! the run **bit-identically**: every field a step reads before writing is
//! in the snapshot, the splits make migration and halo traffic replay
//! exactly, and the warm tuner state reproduces the frequency schedule.
//!
//! Crash safety follows the `TableStore` discipline: every file is written
//! to a `*.tmp.<pid>` sibling and renamed into place, and the manifest is
//! written **last** — a directory without a manifest is an aborted write
//! and is ignored by [`latest_checkpoint`]. The `LATEST` pointer file is a
//! convenience for log-watchers and CI polling; discovery never trusts it
//! over the manifest scan.
//!
//! A corrupt or truncated rank snapshot is never fatal: the loader moves it
//! aside to `rank-NNNN.bin.corrupt`, warns, and the run cold-starts from
//! step 0 on every rank (the decision is made collectively so no rank
//! resumes alone).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use sph::Particles;

use crate::runner::ExperimentSpec;

/// Manifest format version this build writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Everything needed to continue a run besides the per-rank particle blobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub version: u32,
    /// Steps completed when the checkpoint was taken; the restored run
    /// resumes at this step index.
    pub step: u64,
    /// Simulation time and last dt as exact f64 bit patterns.
    pub time_bits: u64,
    pub dt_bits: u64,
    pub ranks: usize,
    /// Hash of the spec's physics identity ([`spec_hash`]); restoring under
    /// a spec with a different hash is refused.
    pub spec_hash: u64,
    pub workload: String,
    /// SFC splits in force at checkpoint time (absent for never-partitioned
    /// runs; restoring without them forces a full repartition).
    #[serde(default)]
    pub splits: Option<Vec<u64>>,
    /// Rank 0's learned per-kernel table at checkpoint time (the same
    /// payload the table store persists at end of run).
    #[serde(default)]
    pub learned_table: BTreeMap<String, u32>,
    /// Fitted predictive-model coefficients at checkpoint time.
    #[serde(default)]
    pub models: online::StoredModels,
}

/// Hash of the spec fields that define the *physics identity* of a run:
/// restoring is legal exactly when these match. `steps` is deliberately
/// excluded — running to step 30, being killed at 10, and restoring with
/// `steps: 30` is the whole point — and so are measurement-side knobs
/// (traces, report dirs, table stores, power caps).
pub fn spec_hash(spec: &ExperimentSpec) -> u64 {
    #[derive(Serialize)]
    struct Identity {
        ranks: usize,
        workload: crate::runner::WorkloadKind,
        kernel: sph::Kernel,
        target_neighbors: usize,
        policy: String,
        faults: Option<faults::FaultProfile>,
        halo_overlap: bool,
        repart_skew_threshold: Option<u64>,
    }
    let identity = Identity {
        ranks: spec.ranks,
        workload: spec.workload,
        kernel: spec.kernel,
        target_neighbors: spec.target_neighbors,
        policy: spec.policy.label(),
        faults: spec.faults.clone(),
        halo_overlap: spec.halo_overlap,
        repart_skew_threshold: spec.repart_skew_threshold.map(f64::to_bits),
    };
    let body = serde_json::to_string(&identity).expect("spec identity serializes");
    sph::fnv1a(body.as_bytes())
}

/// Write `bytes` to `dest` atomically (tmp sibling + rename).
fn write_atomic(dest: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dest.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    if let Err(e) = fs::rename(&tmp, dest) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

fn step_dir_name(step: u64) -> String {
    format!("step-{step:06}")
}

fn rank_file_name(rank: usize) -> String {
    format!("rank-{rank:04}.bin")
}

/// Periodic checkpoint writer. All methods are called from inside rank
/// closures; the caller provides the barrier sequencing (rank 0 creates the
/// directory before anyone writes; the manifest is written after every rank
/// file is in place).
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
    every: u64,
    spec_hash: u64,
}

impl Checkpointer {
    pub fn new(dir: &Path, every: u64, spec_hash: u64) -> Self {
        Checkpointer {
            dir: dir.to_path_buf(),
            every: every.max(1),
            spec_hash,
        }
    }

    /// Whether a checkpoint is due after `completed_steps` steps.
    pub fn due(&self, completed_steps: u64) -> bool {
        completed_steps > 0 && completed_steps.is_multiple_of(self.every)
    }

    /// The physics-identity hash this checkpointer stamps into manifests.
    pub fn spec_hash(&self) -> u64 {
        self.spec_hash
    }

    pub fn step_dir(&self, step: u64) -> PathBuf {
        self.dir.join(step_dir_name(step))
    }

    /// Phase 1 (rank 0 only, before the first barrier): create the step
    /// directory.
    pub fn prepare(&self, step: u64) {
        fs::create_dir_all(self.step_dir(step)).expect("create checkpoint step directory");
    }

    /// Phase 2 (every rank, between barriers): write this rank's snapshot.
    pub fn write_rank(&self, step: u64, rank: usize, snapshot: &[u8]) {
        let dest = self.step_dir(step).join(rank_file_name(rank));
        write_atomic(&dest, snapshot).expect("write rank snapshot");
    }

    /// Phase 3 (rank 0 only, after the second barrier): commit by writing
    /// the manifest, then repoint `LATEST`.
    pub fn commit(&self, manifest: &Manifest) {
        let body = serde_json::to_string_pretty(manifest).expect("manifest serializes");
        write_atomic(
            &self.step_dir(manifest.step).join("manifest.json"),
            body.as_bytes(),
        )
        .expect("write checkpoint manifest");
        write_atomic(
            &self.dir.join("LATEST"),
            step_dir_name(manifest.step).as_bytes(),
        )
        .expect("write LATEST pointer");
    }
}

/// Find the newest *committed* checkpoint (highest step with a readable
/// manifest) under `dir`. Directories without a manifest — aborted writes —
/// are skipped; the `LATEST` pointer is not trusted.
pub fn latest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let entries = fs::read_dir(dir).ok()?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let Some(step_str) = name.to_str().and_then(|n| n.strip_prefix("step-")) else {
            continue;
        };
        let Ok(step) = step_str.parse::<u64>() else {
            continue;
        };
        if !path.join("manifest.json").is_file() {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| step > *b) {
            best = Some((step, path));
        }
    }
    best.map(|(_, p)| p)
}

/// Load and validate a checkpoint's manifest.
pub fn load_manifest(checkpoint: &Path) -> Result<Manifest, String> {
    let path = checkpoint.join("manifest.json");
    let body =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let manifest: Manifest = serde_json::from_str(&body)
        .map_err(|e| format!("manifest {} is invalid: {e}", path.display()))?;
    if manifest.version == 0 || manifest.version > MANIFEST_VERSION {
        return Err(format!(
            "manifest version {} unsupported (this build reads 1..={MANIFEST_VERSION})",
            manifest.version
        ));
    }
    Ok(manifest)
}

/// A validated restore point: the manifest plus the directory the rank
/// blobs live in. Each rank loads its own blob from inside its closure.
#[derive(Debug, Clone)]
pub struct RestorePoint {
    pub dir: PathBuf,
    pub manifest: Manifest,
}

impl RestorePoint {
    /// Locate the newest committed checkpoint under `dir` and validate its
    /// manifest against the spec (physics-identity hash and rank count).
    pub fn discover(dir: &Path, spec: &ExperimentSpec) -> Result<Self, String> {
        let checkpoint = latest_checkpoint(dir)
            .ok_or_else(|| format!("no committed checkpoint found under {}", dir.display()))?;
        let manifest = load_manifest(&checkpoint)?;
        if manifest.ranks != spec.ranks {
            return Err(format!(
                "checkpoint {} was taken with {} ranks, spec has {}",
                checkpoint.display(),
                manifest.ranks,
                spec.ranks
            ));
        }
        let expect = spec_hash(spec);
        if manifest.spec_hash != expect {
            return Err(format!(
                "checkpoint {} belongs to a different experiment \
                 (spec hash {:#018x}, expected {:#018x}); refusing to mix physics",
                checkpoint.display(),
                manifest.spec_hash,
                expect
            ));
        }
        Ok(RestorePoint {
            dir: checkpoint,
            manifest,
        })
    }

    /// Decode this rank's particle snapshot. On a corrupt or truncated
    /// blob the file is moved aside to `*.corrupt` and an error describing
    /// the damage is returned — the caller cold-starts, never panics.
    pub fn rank_particles(&self, rank: usize) -> Result<Particles, String> {
        let path = self.dir.join(rank_file_name(rank));
        let bytes =
            fs::read(&path).map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
        match sph::decode_particles(&bytes) {
            Ok(parts) => Ok(parts),
            Err(detail) => {
                let aside = path.with_extension("bin.corrupt");
                let moved = fs::rename(&path, &aside).is_ok();
                Err(format!(
                    "snapshot {} is damaged ({detail}){}",
                    path.display(),
                    if moved {
                        format!("; moved aside to {}", aside.display())
                    } else {
                        String::new()
                    }
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FreqPolicy;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("freqscale-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn manifest(step: u64, spec: &ExperimentSpec) -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            step,
            time_bits: 0.5f64.to_bits(),
            dt_bits: 0.01f64.to_bits(),
            ranks: spec.ranks,
            spec_hash: spec_hash(spec),
            workload: spec.workload.name().to_string(),
            splits: Some(vec![0, u64::MAX]),
            learned_table: BTreeMap::new(),
            models: Default::default(),
        }
    }

    #[test]
    fn discovery_skips_uncommitted_directories() {
        let dir = tmpdir("discovery");
        let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
        let ck = Checkpointer::new(&dir, 5, spec_hash(&spec));

        assert!(latest_checkpoint(&dir).is_none(), "empty dir: nothing");

        // An aborted write: directory + rank file, no manifest.
        ck.prepare(10);
        ck.write_rank(10, 0, b"partial");
        assert!(latest_checkpoint(&dir).is_none(), "no manifest, no commit");

        // A committed earlier checkpoint wins over the aborted later one.
        ck.prepare(5);
        ck.write_rank(5, 0, b"whole");
        ck.commit(&manifest(5, &spec));
        assert_eq!(latest_checkpoint(&dir), Some(dir.join("step-000005")));

        // Committing the later one shifts discovery to it.
        ck.commit(&manifest(10, &spec));
        assert_eq!(latest_checkpoint(&dir), Some(dir.join("step-000010")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_hash_ignores_steps_but_not_physics() {
        let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
        let mut longer = spec.clone();
        longer.steps = 500;
        longer.collect_trace = true;
        longer.report_dir = Some(PathBuf::from("/tmp/elsewhere"));
        assert_eq!(
            spec_hash(&spec),
            spec_hash(&longer),
            "steps and measurement knobs are not physics"
        );

        let mut other = spec.clone();
        other.target_neighbors += 1;
        assert_ne!(spec_hash(&spec), spec_hash(&other));

        let mut reranked = spec.clone();
        reranked.ranks = 4;
        assert_ne!(spec_hash(&spec), spec_hash(&reranked));
    }

    #[test]
    fn mismatched_spec_is_refused_with_context() {
        let dir = tmpdir("mismatch");
        let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
        let ck = Checkpointer::new(&dir, 5, spec_hash(&spec));
        ck.prepare(5);
        ck.write_rank(5, 0, b"x");
        ck.commit(&manifest(5, &spec));

        let mut other = spec.clone();
        other.workload = crate::runner::WorkloadKind::Evrard { n_side: 8 };
        let err = RestorePoint::discover(&dir, &other).expect_err("must refuse");
        assert!(err.contains("different experiment"), "{err}");

        let mut reranked = spec.clone();
        reranked.ranks = 2;
        let err = RestorePoint::discover(&dir, &reranked).expect_err("must refuse");
        assert!(err.contains("ranks"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_rank_blob_is_moved_aside_not_fatal() {
        let dir = tmpdir("corrupt");
        let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10);
        let ck = Checkpointer::new(&dir, 5, spec_hash(&spec));
        ck.prepare(5);
        ck.write_rank(5, 0, b"this is not a snapshot");
        ck.commit(&manifest(5, &spec));

        let rp = RestorePoint::discover(&dir, &spec).expect("manifest fine");
        let err = rp.rank_particles(0).expect_err("blob is garbage");
        assert!(err.contains("damaged"), "{err}");
        assert!(
            dir.join("step-000005")
                .join("rank-0000.bin.corrupt")
                .is_file(),
            "damaged blob moved aside"
        );
        assert!(
            !dir.join("step-000005").join("rank-0000.bin").is_file(),
            "original gone"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn due_respects_interval() {
        let ck = Checkpointer::new(Path::new("/tmp/x"), 5, 0);
        assert!(!ck.due(0));
        assert!(!ck.due(4));
        assert!(ck.due(5));
        assert!(!ck.due(6));
        assert!(ck.due(10));
        // every = 0 is clamped to 1 (checkpoint after every step).
        let every_step = Checkpointer::new(Path::new("/tmp/x"), 0, 0);
        assert!(every_step.due(1));
    }
}
