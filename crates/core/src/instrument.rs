//! The instrumentation layer: SPH-EXA hooks → energy measurement + dynamic
//! GPU frequency control.
//!
//! `EnergyInstrument` implements [`sph::StepObserver`]. Around every
//! instrumented function it
//!
//! 1. applies the frequency policy **before** the function (the paper's
//!    `getNvmlDevice` + `nvmlDeviceSetApplicationsClocks` snippet, §III-D);
//! 2. reads a PMT state, lets the physics run, advances the simulated GPU
//!    through the host gap and the paper-scale kernel workload, reads PMT
//!    again **after**;
//! 3. accumulates per-function time, energy and average clock (§III-B).
//!
//! Frequency-control denials (production systems lock
//! `SetApplicationsClocks`) are recorded, not fatal — the measurement story
//! still works there, which is exactly the paper's situation on LUMI-G and
//! CSCS-A100.

use std::collections::BTreeMap;
use std::sync::Arc;

use archsim::{ArchError, EnergyDelay, GpuDevice, MegaHertz, SimDuration, SimInstant, Watts};
use nvml_shim::{Nvml, NvmlDevice, NvmlError};
use online::{ModelTable, OnlineTuner, PredictiveTuner, RecordOutcome};
use parking_lot::Mutex;
use pmt::{backends::NvmlSensor, joules, Pmt, State};
use ranks::RankCtx;
use sph::{FuncId, StepObserver};

use crate::policy::FreqPolicy;
use crate::report::{FunctionReport, RankReport};

/// Sampling period used when exporting the Fig. 9 clock trace.
const TRACE_PERIOD: SimDuration = SimDuration::from_millis(10);

/// Retries of a transiently failed `SetApplicationsClocks` before giving up
/// on the request (each retry backs the rank clock off exponentially).
const MAX_CLOCK_SET_RETRIES: u32 = 4;
/// Base backoff before the first clock-set retry; doubles per attempt. Real
/// NVML round-trips are tens of microseconds, so even the full ladder
/// (~50·(2⁵−1) µs) is invisible next to a millisecond-scale kernel.
const CLOCK_RETRY_BACKOFF: SimDuration = SimDuration::from_micros(50);
/// Consecutive clock requests that exhausted their retries before the
/// instrument stops pinning and falls back to default application clocks.
const CLOCK_FALLBACK_AFTER: u32 = 3;

/// Fraction of a power-cap budget held back as regulation headroom
/// (see [`EnergyInstrument::with_power_cap`]).
const CAP_RIPPLE_GUARD: f64 = 0.02;

/// Per-rank instrumentation: one GPU, one PMT sensor, one policy.
pub struct EnergyInstrument {
    rank: usize,
    gpu: Arc<Mutex<GpuDevice>>,
    nvml_dev: NvmlDevice,
    /// Memory clock the next `try_set_clocks` requests. Stays at the
    /// device's current P-state for every policy except `ManDynPredictive`,
    /// whose tuner retargets it per kernel when the memory axis is open.
    mem_target_mhz: u32,
    policy: FreqPolicy,
    pmt: Pmt,
    functions: BTreeMap<FuncId, FunctionAccum>,
    auto_tune: BTreeMap<FuncId, AutoTuneState>,
    /// Live search state under `ManDynOnline`; `None` for other policies.
    online: Option<OnlineTuner>,
    /// Live model state under `ManDynPredictive`; `None` for other policies.
    predictive: Option<PredictiveTuner>,
    pending: Option<Pending>,
    loop_start: Option<SimInstant>,
    clock_control_denied: bool,
    policy_applied_once: bool,
    collect_trace: bool,
    /// Fault handle of the rank's device (inert when no profile is active);
    /// the resilience paths below report their recoveries through it.
    faults: faults::DeviceFaults,
    /// Clock requests that exhausted their retries back-to-back; reaching
    /// [`CLOCK_FALLBACK_AFTER`] trips the default-clocks fallback.
    clock_failures: u32,
    /// True once the fallback tripped: the instrument stops pinning clocks
    /// for the rest of the run and lets the device govern itself.
    clock_fallback: bool,
}

#[derive(Default)]
struct FunctionAccum {
    calls: u64,
    time_s: f64,
    gpu_j: f64,
    /// Energy-weighted clock accumulator (MHz·J).
    freq_weight: f64,
}

/// Per-function online-tuning state (the AutoTune policy).
struct AutoTuneState {
    /// Calls taken so far during warm-up.
    calls: u64,
    /// Accumulated `(time_s, energy_j, samples)` per candidate.
    samples: Vec<(f64, f64, u64)>,
    /// Committed clock once warm-up finishes.
    chosen: Option<MegaHertz>,
}

impl AutoTuneState {
    fn new(n_candidates: usize) -> Self {
        AutoTuneState {
            calls: 0,
            samples: vec![(0.0, 0.0, 0); n_candidates],
            chosen: None,
        }
    }

    /// Candidate index for the next call (round-robin through candidates).
    fn next_candidate(&self, n: usize) -> usize {
        (self.calls as usize) % n
    }

    /// Record one call's measurement; commit when every candidate has
    /// `rounds` samples. Returns the committed clock if one was just chosen.
    fn record(
        &mut self,
        idx: usize,
        time_s: f64,
        energy_j: f64,
        rounds: u32,
        candidates: &[MegaHertz],
    ) -> Option<MegaHertz> {
        let (t, e, c) = &mut self.samples[idx];
        *t += time_s;
        *e += energy_j;
        *c += 1;
        self.calls += 1;
        if self.samples.iter().all(|(_, _, c)| *c >= u64::from(rounds)) {
            // Per-call EDP decides.
            let best = self
                .samples
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let edp_a = EnergyDelay::of(a.1 / a.2 as f64, a.0 / a.2 as f64).0;
                    let edp_b = EnergyDelay::of(b.1 / b.2 as f64, b.0 / b.2 as f64).0;
                    edp_a.partial_cmp(&edp_b).expect("finite EDP")
                })
                .map(|(i, _)| i)
                .expect("non-empty candidates");
            self.chosen = Some(candidates[best]);
        }
        self.chosen
    }
}

struct Pending {
    func: FuncId,
    state: State,
    rank_clock: SimInstant,
    /// Candidate index being sampled (AutoTune warm-up only).
    tuning_candidate: Option<usize>,
    /// True when the online tuner proposed this call's clock and wants the
    /// region measurement fed back.
    online_tuned: bool,
    /// True when the predictive tuner proposed this call's (core, mem)
    /// clocks and wants the region measurement fed back.
    predictive_tuned: bool,
}

impl EnergyInstrument {
    /// Attach to `rank`'s GPU. `nvml` must be the rank's node-local library
    /// handle; the device is resolved with the paper's rank→device binding.
    pub fn new(nvml: &Nvml, rank: usize, policy: FreqPolicy) -> Result<Self, NvmlError> {
        let dev = nvml_shim::get_nvml_device(nvml, rank)?;
        let gpu = dev.raw();
        let mem_clock_mhz = dev.clock_info(nvml_shim::ClockType::Mem)?;
        // Inherit the device's fault handle (installed by the runner when the
        // spec carries a profile; inert otherwise) and give the PMT sensor
        // the same handle so its sample stream is perturbed consistently.
        let fault_handle = gpu.lock().fault_handle().clone();
        let pmt = Pmt::new(Box::new(NvmlSensor::new(&dev))).with_faults(fault_handle.clone());
        let online = match &policy {
            FreqPolicy::ManDynOnline(cfg) => Some(
                OnlineTuner::new(gpu.lock().spec(), cfg.clone())
                    .expect("valid online tuner config"),
            ),
            _ => None,
        };
        let predictive = match &policy {
            FreqPolicy::ManDynPredictive(cfg) => Some(
                PredictiveTuner::new(gpu.lock().spec(), cfg.clone())
                    .expect("valid predictive tuner config"),
            ),
            _ => None,
        };
        Ok(EnergyInstrument {
            rank,
            gpu,
            nvml_dev: dev,
            mem_target_mhz: mem_clock_mhz,
            policy,
            pmt,
            functions: BTreeMap::new(),
            auto_tune: BTreeMap::new(),
            online,
            predictive,
            pending: None,
            loop_start: None,
            clock_control_denied: false,
            policy_applied_once: false,
            collect_trace: false,
            faults: fault_handle,
            clock_failures: 0,
            clock_fallback: false,
        })
    }

    /// Also export the sampled clock trace in the final report (Fig. 9).
    pub fn with_freq_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }

    pub fn policy(&self) -> &FreqPolicy {
        &self.policy
    }

    /// Warm-start the online tuner from a previously learned table: every
    /// listed kernel is pinned up front and no exploration happens for it.
    /// Under `ManDynPredictive`, kernels without a stored model pin through
    /// the inner search. No-op for other policies.
    pub fn with_warm_table(mut self, table: &crate::policy::FreqTable) -> Self {
        if let Some(tuner) = &mut self.online {
            tuner.warm_start(table);
        }
        if let Some(tuner) = &mut self.predictive {
            tuner.warm_start_table(table);
        }
        self
    }

    /// Warm-start the predictive tuner from persisted fitted models: each
    /// listed kernel jumps straight to its model's predicted optimum — no
    /// probe phase. No-op for policies other than `ManDynPredictive`.
    pub fn with_warm_models(mut self, models: &ModelTable) -> Self {
        if let Some(tuner) = &mut self.predictive {
            tuner.warm_start_models(models);
        }
        self
    }

    /// Enforce a per-rank watt budget: the device power limit is set just
    /// below `budget` (the hard guarantee — the device walks its clock down
    /// whenever busy power would exceed it) and, under `ManDynOnline`,
    /// the search window is capped at `ceiling` so exploration never
    /// proposes a rung the limit would immediately throttle. A denied
    /// `SetPowerManagementLimit` is recorded like a denied clock change.
    ///
    /// The setpoint sits `CAP_RIPPLE_GUARD` below the budget because the
    /// clock-walkdown loop regulates *projected busy* power: leakage drift
    /// as the junction heats and clock-transition energy both land on top
    /// of the regulated level, and the guard keeps that ripple inside the
    /// budget the caller promised to the facility.
    pub fn with_power_cap(mut self, budget: Watts, ceiling: MegaHertz) -> Self {
        let setpoint = Watts(budget.0 * (1.0 - CAP_RIPPLE_GUARD));
        match self.gpu.lock().set_power_limit(setpoint) {
            Ok(()) => {}
            Err(ArchError::NoPermission(_)) => self.clock_control_denied = true,
            Err(e) => panic!("rank {}: power cap rejected: {e}", self.rank),
        }
        if let Some(tuner) = &mut self.online {
            tuner.set_ceiling(ceiling);
        }
        if let Some(tuner) = &mut self.predictive {
            tuner.set_ceiling(ceiling);
        }
        self
    }

    /// The per-kernel clocks the run's learning policy has committed so
    /// far: AutoTune's post-warm-up choices or the online tuner's pinned
    /// kernels. Empty for non-learning policies.
    pub fn learned_table(&self) -> crate::policy::FreqTable {
        let mut table: crate::policy::FreqTable = self
            .auto_tune
            .iter()
            .filter_map(|(f, st)| st.chosen.map(|mhz| (*f, mhz)))
            .collect();
        if let Some(tuner) = &self.online {
            table.extend(tuner.table());
        }
        if let Some(tuner) = &self.predictive {
            table.extend(tuner.table());
        }
        table
    }

    /// The predictive tuner's fitted models by kernel name, as persisted in
    /// checkpoint manifests. Empty for every other policy.
    pub fn models_snapshot(&self) -> online::StoredModels {
        self.predictive
            .as_ref()
            .map_or_else(Default::default, |t| online::models_by_name(t.models()))
    }

    /// Apply a clock request, tolerating `NO_PERMISSION` like the paper's
    /// production systems require and riding out transient driver errors.
    ///
    /// Resilience ladder:
    /// 1. `NVML_ERROR_UNKNOWN` → retry with exponential backoff (the backoff
    ///    advances the rank's simulated clock, so retries cost time like the
    ///    real call would). A success after `n` failures recovers all `n`.
    /// 2. Retries exhausted [`CLOCK_FALLBACK_AFTER`] requests in a row →
    ///    reset to default application clocks and stop pinning: a run with a
    ///    wedged clock API keeps measuring at the device's own governor.
    /// 3. On success, read the applications clock back: a mismatch means the
    ///    driver clamped the request silently; the clamp is recorded as
    ///    recovered because measurements attribute to the *actual* clock
    ///    (the GPU timeline, not the request, feeds every energy integral).
    fn try_set_clocks(&mut self, ctx: &mut RankCtx, mhz: u32) {
        if self.clock_fallback {
            return;
        }
        let mut failed = 0u32;
        loop {
            match self
                .nvml_dev
                .set_applications_clocks(self.mem_target_mhz, mhz)
            {
                Ok(()) => {
                    if failed > 0 {
                        self.faults
                            .note_recovered_n(faults::Channel::ClockSet, u64::from(failed));
                    }
                    self.clock_failures = 0;
                    if let Ok(actual) = self.nvml_dev.applications_clock(nvml_shim::ClockType::Sm) {
                        if actual != mhz {
                            self.faults.note_recovered(faults::Channel::ClockClamp);
                        }
                    }
                    // The memory axis only moves under the predictive
                    // policy; elsewhere the request re-pins the default
                    // P-state and the readback is trivially clean.
                    if self.predictive.is_some() {
                        if let Ok(actual) =
                            self.nvml_dev.applications_clock(nvml_shim::ClockType::Mem)
                        {
                            if actual != self.mem_target_mhz {
                                self.faults.note_recovered(faults::Channel::ClockClamp);
                            }
                        }
                    }
                    return;
                }
                Err(NvmlError::NoPermission(_)) => {
                    self.clock_control_denied = true;
                    return;
                }
                Err(NvmlError::Unknown(_)) if failed < MAX_CLOCK_SET_RETRIES => {
                    failed += 1;
                    ctx.advance(CLOCK_RETRY_BACKOFF * (1u64 << failed));
                }
                Err(NvmlError::Unknown(_)) => {
                    failed += 1;
                    self.clock_failures += 1;
                    // Abandoning the request is itself the recovery: the run
                    // keeps measuring at the previous clock and the next
                    // region re-pins (or the fallback below takes over).
                    self.faults
                        .note_recovered_n(faults::Channel::ClockSet, u64::from(failed));
                    if self.clock_failures >= CLOCK_FALLBACK_AFTER {
                        self.clock_fallback = true;
                        // The reset path carries no injection, so the run
                        // reliably lands on default application clocks.
                        match self.nvml_dev.reset_applications_clocks() {
                            Ok(()) => {}
                            Err(NvmlError::NoPermission(_)) => self.clock_control_denied = true,
                            Err(e) => {
                                panic!("rank {}: clock fallback failed: {e}", self.rank)
                            }
                        }
                    }
                    return;
                }
                Err(e) => panic!("rank {}: unexpected NVML failure: {e}", self.rank),
            }
        }
    }

    /// Poison one exploration measurement if the glitch channel fires.
    /// Injection targets tuner *feedback* only — the accounting ledgers and
    /// telemetry keep the true timeline integrals — and the tuner's
    /// measurement-validity guard is the recovery layer: a poisoned sample
    /// must come back rejected or quarantined, never accepted into a fit.
    fn glitch_measurement(
        faults: &faults::DeviceFaults,
        energy_j: f64,
        time_s: f64,
    ) -> (f64, f64, bool) {
        if faults.measurement_glitch() {
            faults.note_injected(faults::Channel::MeasurementGlitch);
            (f64::NAN, f64::NAN, true)
        } else {
            (energy_j, time_s, false)
        }
    }

    fn try_reset_clocks(&mut self) {
        match self.nvml_dev.reset_applications_clocks() {
            Ok(()) => {}
            Err(NvmlError::NoPermission(_)) => self.clock_control_denied = true,
            Err(e) => panic!("rank {}: unexpected NVML failure: {e}", self.rank),
        }
    }

    /// Build the final per-rank report. Call after the last step; `ctx` is
    /// only used for the final loop timestamp.
    pub fn finish(mut self, ctx: &RankCtx) -> RankReport {
        // Close out the device timeline at the rank's final clock so loop
        // totals cover the whole window.
        let end = ctx.now();
        self.gpu.lock().idle_until(end);
        // The closing read bypasses sample-fault injection: it settles any
        // stale reads still pending so the loop totals are exact.
        let final_state = self.pmt.read_exact();
        let loop_start = self.loop_start.unwrap_or(end);
        let loop_time_s = (end - loop_start).as_secs_f64();
        let gpu_loop_j = self.pmt.joules_between(loop_start, end).0;

        let mut functions = BTreeMap::new();
        for (func, acc) in &self.functions {
            functions.insert(
                func.name().to_string(),
                FunctionReport {
                    calls: acc.calls,
                    time_s: acc.time_s,
                    gpu_j: acc.gpu_j,
                    // CPU attribution is filled post-hoc by the runner once
                    // the node's host timeline is complete.
                    cpu_j: 0.0,
                    avg_freq_mhz: if acc.gpu_j > 0.0 {
                        acc.freq_weight / acc.gpu_j
                    } else {
                        0.0
                    },
                },
            );
        }

        let (freq_trace, power_trace) = if self.collect_trace {
            let gpu = self.gpu.lock();
            let freq = gpu
                .freq_timeline()
                .sample(loop_start, end, TRACE_PERIOD)
                .into_iter()
                .map(|(t, f)| (t.as_secs_f64(), f.0))
                .collect();
            // Power is reported as per-bucket averages (an energy-counter
            // difference, like pm_counters) so sub-millisecond transition
            // transients don't alias into full-height spikes.
            let power = gpu
                .power_timeline()
                .sample_average(loop_start, end, TRACE_PERIOD)
                .into_iter()
                .map(|(t, w)| (t.as_secs_f64(), w.0))
                .collect();
            (freq, power)
        } else {
            (Vec::new(), Vec::new())
        };

        let learned_table = self
            .learned_table()
            .into_iter()
            .map(|(f, mhz)| (f.name().to_string(), mhz.0))
            .collect();
        let exploration_launches = self
            .online
            .as_ref()
            .map_or(0, OnlineTuner::exploration_launches)
            + self
                .predictive
                .as_ref()
                .map_or(0, PredictiveTuner::exploration_launches);
        let mem_table = self.predictive.as_ref().map_or_else(BTreeMap::new, |t| {
            t.mem_table()
                .into_iter()
                .map(|(f, mhz)| (f.name().to_string(), mhz.0))
                .collect()
        });
        let models = self
            .predictive
            .as_ref()
            .map_or_else(Default::default, |t| online::models_by_name(t.models()));
        let search_fallbacks = self
            .predictive
            .as_ref()
            .map_or(0, PredictiveTuner::search_fallbacks);

        let _ = final_state;
        RankReport {
            rank: self.rank,
            functions,
            loop_time_s,
            gpu_loop_j,
            clock_control_denied: self.clock_control_denied,
            freq_trace,
            power_trace,
            learned_table,
            exploration_launches,
            mem_table,
            models,
            search_fallbacks,
        }
    }
}

impl StepObserver for EnergyInstrument {
    fn before(&mut self, func: FuncId, ctx: &mut RankCtx) {
        if self.loop_start.is_none() {
            // PMT starts measuring at the time-stepping loop (§IV-A) — not
            // at job submission, which is Slurm's window.
            self.loop_start = Some(ctx.now());
            self.gpu.lock().idle_until(ctx.now());
        }
        // Apply the frequency policy *before* the function runs.
        match &self.policy {
            FreqPolicy::ManDyn(_) => {
                let mhz = self
                    .policy
                    .frequency_for(func, self.gpu.lock().spec())
                    .expect("mandyn always pins")
                    .0;
                self.try_set_clocks(ctx, mhz);
            }
            FreqPolicy::Baseline | FreqPolicy::Static(_) => {
                if !self.policy_applied_once {
                    let mhz = self
                        .policy
                        .frequency_for(func, self.gpu.lock().spec())
                        .expect("pinning policy")
                        .0;
                    self.try_set_clocks(ctx, mhz);
                    self.policy_applied_once = true;
                }
            }
            FreqPolicy::Dvfs => {
                if !self.policy_applied_once {
                    self.try_reset_clocks();
                    self.policy_applied_once = true;
                }
            }
            FreqPolicy::AutoTune { candidates, .. } => {
                let n = candidates.len().max(1);
                let st = self
                    .auto_tune
                    .entry(func)
                    .or_insert_with(|| AutoTuneState::new(n));
                let (mhz, candidate) = match st.chosen {
                    Some(f) => (f, None),
                    None => {
                        let idx = st.next_candidate(n);
                        (candidates[idx], Some(idx))
                    }
                };
                self.try_set_clocks(ctx, mhz.0);
                let state = self.pmt.read();
                self.pending = Some(Pending {
                    func,
                    state,
                    rank_clock: ctx.now(),
                    tuning_candidate: candidate,
                    online_tuned: false,
                    predictive_tuned: false,
                });
                return;
            }
            FreqPolicy::ManDynOnline(_) => {
                let mhz = self
                    .online
                    .as_mut()
                    .expect("online tuner built with the policy")
                    .propose(func);
                self.try_set_clocks(ctx, mhz.0);
                let state = self.pmt.read();
                self.pending = Some(Pending {
                    func,
                    state,
                    rank_clock: ctx.now(),
                    tuning_candidate: None,
                    online_tuned: true,
                    predictive_tuned: false,
                });
                return;
            }
            FreqPolicy::ManDynPredictive(_) => {
                let (core, mem) = self
                    .predictive
                    .as_mut()
                    .expect("predictive tuner built with the policy")
                    .propose(func);
                self.mem_target_mhz = mem.0;
                self.try_set_clocks(ctx, core.0);
                let state = self.pmt.read();
                self.pending = Some(Pending {
                    func,
                    state,
                    rank_clock: ctx.now(),
                    tuning_candidate: None,
                    online_tuned: false,
                    predictive_tuned: true,
                });
                return;
            }
        }
        let state = self.pmt.read();
        self.pending = Some(Pending {
            func,
            state,
            rank_clock: ctx.now(),
            tuning_candidate: None,
            online_tuned: false,
            predictive_tuned: false,
        });
    }

    fn after(
        &mut self,
        func: FuncId,
        workload: &archsim::KernelWorkload,
        host_pre: SimDuration,
        ctx: &mut RankCtx,
    ) {
        let pending = self
            .pending
            .take()
            .unwrap_or_else(|| panic!("after({func}) without before"));
        assert_eq!(pending.func, func, "mismatched before/after pair");

        // Host/communication gap: the GPU idles while the rank clock moves.
        ctx.advance(host_pre);
        let exec = {
            let mut gpu = self.gpu.lock();
            gpu.idle_until(ctx.now());
            // The AMD (HIP) port of the heavy kernels is less optimized —
            // the Fig. 5 LUMI-G observation.
            let derate = func.arch_flops_derate(&gpu.spec().name);
            if derate != 1.0 {
                let mut w = workload.clone();
                w.flops *= derate;
                gpu.run_region(&w)
            } else {
                gpu.run_region(workload)
            }
        };
        ctx.advance_to(exec.end);

        let state = self.pmt.read();
        let call_time = (ctx.now() - pending.rank_clock).as_secs_f64();
        let mut call_j = joules(&pending.state, &state).0;
        if call_j <= 0.0 && exec.energy.0 > 0.0 {
            // Both PMT reads of this call came back stale (dropped samples):
            // fall back to the region's exact timeline integral rather than
            // booking zero energy for work that demonstrably ran.
            call_j = exec.energy.0;
        }
        let acc = self.functions.entry(func).or_default();
        acc.calls += 1;
        acc.time_s += call_time;
        acc.gpu_j += call_j;
        acc.freq_weight += f64::from(exec.avg_freq.0) * call_j;

        if telemetry::active() {
            telemetry::counter_add("instrument.calls", 1);
            telemetry::histogram_record("call_energy_j", call_j);
            telemetry::histogram_record("call_time_s", call_time);
        }

        if pending.online_tuned {
            if let Some(tuner) = self.online.as_mut() {
                // Region-only time/energy — the same quantity the offline
                // KernelTuner harness scores, so learned tables are directly
                // comparable to `tune_table`'s.
                let region_t = exec.duration().as_secs_f64();
                let (e_j, t_s, glitched) = if tuner.is_pinned(func) {
                    (exec.energy.0, region_t, false)
                } else {
                    Self::glitch_measurement(&self.faults, exec.energy.0, region_t)
                };
                let outcome = tuner.record(func, exec.avg_freq, e_j, t_s);
                if glitched && outcome != RecordOutcome::Accepted {
                    // The validity guard caught the garbled sample — that
                    // rejection *is* the recovery for this channel.
                    self.faults
                        .note_recovered(faults::Channel::MeasurementGlitch);
                }
                if telemetry::active() {
                    // Each online rung measurement *is* a tuner evaluation —
                    // the in-run counterpart of an offline sweep point.
                    telemetry::span_complete(
                        "tuner",
                        "eval",
                        exec.start.as_nanos(),
                        exec.end.as_nanos(),
                        vec![
                            ("func", func.name().into()),
                            ("freq_mhz", exec.avg_freq.0.into()),
                            ("energy_j", exec.energy.0.into()),
                            ("edp", EnergyDelay::of(exec.energy.0, region_t).0.into()),
                            ("pinned", tuner.is_pinned(func).into()),
                        ],
                    );
                    if let Some(edp) = tuner.windowed_edp(func) {
                        telemetry::gauge_set(&format!("online.windowed_edp.{}", func.name()), edp);
                    }
                }
            }
        }

        if pending.predictive_tuned {
            if let Some(tuner) = self.predictive.as_mut() {
                // Feed back the clocks the region *actually* ran at: the
                // core clock from the execution's energy-weighted average,
                // the memory clock from the device readback (a clamped
                // request must anchor the model at the real P-state).
                let region_t = exec.duration().as_secs_f64();
                let mem_mhz = self
                    .nvml_dev
                    .clock_info(nvml_shim::ClockType::Mem)
                    .unwrap_or(self.mem_target_mhz);
                let (e_j, t_s, glitched) = if tuner.is_pinned(func) {
                    (exec.energy.0, region_t, false)
                } else {
                    Self::glitch_measurement(&self.faults, exec.energy.0, region_t)
                };
                let outcome = tuner.record(func, exec.avg_freq, MegaHertz(mem_mhz), e_j, t_s);
                if glitched && outcome != RecordOutcome::Accepted {
                    // Caught by the probe guard (or quarantined outright):
                    // the rejection is the recovery.
                    self.faults
                        .note_recovered(faults::Channel::MeasurementGlitch);
                }
                if telemetry::active() {
                    telemetry::span_complete(
                        "tuner",
                        "eval",
                        exec.start.as_nanos(),
                        exec.end.as_nanos(),
                        vec![
                            ("func", func.name().into()),
                            ("freq_mhz", exec.avg_freq.0.into()),
                            ("mem_mhz", mem_mhz.into()),
                            ("energy_j", exec.energy.0.into()),
                            ("edp", EnergyDelay::of(exec.energy.0, region_t).0.into()),
                            ("pinned", tuner.is_pinned(func).into()),
                        ],
                    );
                }
            }
        }

        if let Some(idx) = pending.tuning_candidate {
            if let FreqPolicy::AutoTune { candidates, rounds } = &self.policy {
                let rounds = *rounds;
                let candidates = candidates.clone();
                if let Some(st) = self.auto_tune.get_mut(&func) {
                    st.record(idx, call_time, call_j, rounds, &candidates);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{GpuSpec, MegaHertz};
    use ranks::CommCost;
    use sph::{subsonic_turbulence, Kernel, SimConfig, Simulation};

    fn nvml_one() -> Nvml {
        let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
        Nvml::init(vec![gpu])
    }

    fn run_policy(policy: FreqPolicy, steps: usize) -> RankReport {
        ranks::run(1, CommCost::default(), move |ctx| {
            let nvml = nvml_one();
            let ic = subsonic_turbulence(6, 0.3, 3);
            let cfg = SimConfig {
                kernel: Kernel::CubicSpline,
                target_particles_per_rank: 450.0f64.powi(3),
                target_neighbors: 30,
                bucket_size: 32,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(ic, cfg);
            let mut inst = EnergyInstrument::new(&nvml, ctx.rank(), policy.clone())
                .unwrap()
                .with_freq_trace();
            for _ in 0..steps {
                sim.step(ctx, &mut inst);
            }
            inst.finish(ctx)
        })
        .remove(0)
    }

    #[test]
    fn per_function_accounting_covers_the_loop() {
        let report = run_policy(FreqPolicy::Baseline, 3);
        assert_eq!(report.rank, 0);
        assert!(!report.clock_control_denied);
        // All 11 turbulence functions recorded, 3 calls each.
        assert_eq!(report.functions.len(), 11);
        for (name, f) in &report.functions {
            assert_eq!(f.calls, 3, "{name}");
            assert!(f.time_s > 0.0, "{name}");
            assert!(f.gpu_j > 0.0, "{name}");
        }
        // Function sums must account for (almost) the whole loop.
        assert!(report.functions_time_s() <= report.loop_time_s + 1e-9);
        assert!(report.functions_time_s() > 0.95 * report.loop_time_s);
        assert!(report.functions_gpu_j() <= report.gpu_loop_j + 1e-6);
        assert!(report.functions_gpu_j() > 0.95 * report.gpu_loop_j);
    }

    #[test]
    fn momentum_energy_dominates_gpu_energy() {
        let report = run_policy(FreqPolicy::Baseline, 2);
        let shares = report.gpu_energy_shares();
        let me = shares["MomentumEnergy"];
        for (name, share) in &shares {
            assert!(
                *share <= me + 1e-12,
                "{name} ({share}) exceeds MomentumEnergy ({me})"
            );
        }
    }

    #[test]
    fn baseline_pins_max_clock_for_every_function() {
        let report = run_policy(FreqPolicy::Baseline, 2);
        for (name, f) in &report.functions {
            assert!(
                (f.avg_freq_mhz - 1410.0).abs() < 1.0,
                "{name} ran at {} MHz under baseline",
                f.avg_freq_mhz
            );
        }
    }

    #[test]
    fn static_policy_runs_everything_at_requested_clock() {
        let report = run_policy(FreqPolicy::Static(MegaHertz(1005)), 2);
        for (name, f) in &report.functions {
            assert!(
                (f.avg_freq_mhz - 1005.0).abs() < 1.0,
                "{name} ran at {} MHz under static-1005",
                f.avg_freq_mhz
            );
        }
    }

    #[test]
    fn mandyn_runs_functions_at_their_table_clocks() {
        let mut table = crate::policy::FreqTable::new();
        table.insert(FuncId::MomentumEnergy, MegaHertz(1410));
        table.insert(FuncId::XMass, MegaHertz(1005));
        let report = run_policy(FreqPolicy::ManDyn(table), 2);
        let me = report.function(FuncId::MomentumEnergy).unwrap();
        let xm = report.function(FuncId::XMass).unwrap();
        assert!(
            (me.avg_freq_mhz - 1410.0).abs() < 1.0,
            "MomentumEnergy at {}",
            me.avg_freq_mhz
        );
        assert!(
            (xm.avg_freq_mhz - 1005.0).abs() < 1.0,
            "XMass at {}",
            xm.avg_freq_mhz
        );
        // Unlisted functions fall back to max.
        let eos = report.function(FuncId::EquationOfState).unwrap();
        assert!((eos.avg_freq_mhz - 1410.0).abs() < 1.0);
    }

    #[test]
    fn dvfs_policy_lets_clock_vary_per_function() {
        let report = run_policy(FreqPolicy::Dvfs, 2);
        let me = report
            .function(FuncId::MomentumEnergy)
            .unwrap()
            .avg_freq_mhz;
        let dd = report
            .function(FuncId::DomainDecompAndSync)
            .unwrap()
            .avg_freq_mhz;
        assert!(
            me > dd,
            "governor should boost MomentumEnergy ({me}) above DomainDecomp ({dd})"
        );
        assert!(!report.freq_trace.is_empty(), "trace requested");
    }

    #[test]
    fn autotune_learns_the_fig2_split_online() {
        // After warm-up (5 candidates x 2 rounds = 10 calls each = 10 steps),
        // the online policy must have committed per-function clocks with the
        // compute-bound-high / memory-bound-low split of Fig. 2.
        let policy = FreqPolicy::auto_tune_default(&GpuSpec::a100_pcie_40gb());
        let (report, table) = ranks::run(1, CommCost::default(), move |ctx| {
            let nvml = nvml_one();
            let ic = subsonic_turbulence(6, 0.3, 3);
            let cfg = SimConfig {
                kernel: Kernel::CubicSpline,
                target_particles_per_rank: 450.0f64.powi(3),
                target_neighbors: 30,
                bucket_size: 32,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(ic, cfg);
            let mut inst = EnergyInstrument::new(&nvml, ctx.rank(), policy.clone()).unwrap();
            for _ in 0..14 {
                sim.step(ctx, &mut inst);
            }
            let table = inst.learned_table();
            (inst.finish(ctx), table)
        })
        .remove(0);
        // All 11 turbulence functions committed a clock.
        assert_eq!(table.len(), 11, "warm-up must complete: {table:?}");
        let me = table[&FuncId::MomentumEnergy];
        let xm = table[&FuncId::XMass];
        assert!(
            me > xm,
            "MomentumEnergy ({me}) must tune above XMass ({xm})"
        );
        assert!(me >= MegaHertz(1300), "MomentumEnergy at {me}");
        assert!(xm <= MegaHertz(1110), "XMass at {xm}");
        // Post-warm-up calls run at the committed clocks, so the overall
        // average frequency for MomentumEnergy sits near its choice.
        let f = report.function(FuncId::MomentumEnergy).unwrap();
        assert!(
            (f.avg_freq_mhz - f64::from(me.0)).abs() < 120.0,
            "avg {} vs chosen {me}",
            f.avg_freq_mhz
        );
    }

    #[test]
    fn autotune_converges_to_mandyn_class_efficiency() {
        // Once warmed up, the online policy should land in ManDyn's
        // energy/EDP neighbourhood without any offline tuning pass.
        let run20 = |policy: FreqPolicy| run_policy(policy, 20);
        let base = run20(FreqPolicy::Baseline);
        let auto = run20(FreqPolicy::auto_tune_default(&GpuSpec::a100_pcie_40gb()));
        let e = auto.gpu_loop_j / base.gpu_loop_j;
        let t = auto.loop_time_s / base.loop_time_s;
        assert!(e < 0.97, "autotune must save energy: {e}");
        assert!(t < 1.08, "autotune time loss bounded: {t}");
        assert!(t * e < 0.99, "autotune must improve EDP: {}", t * e);
    }

    #[test]
    fn predictive_policy_pins_kernels_and_reports_models() {
        let policy = FreqPolicy::ManDynPredictive(online::PredictiveConfig::default());
        let report = run_policy(policy, 16);
        // Probing (4 rungs × 2 samples) plus verification fits inside the
        // 16-step window, so kernels are pinned with fitted coefficients.
        assert!(!report.learned_table.is_empty(), "kernels must pin");
        assert!(!report.models.is_empty(), "fitted models must be reported");
        assert!(report.exploration_launches > 0, "cold start probes");
        // Fig. 2 split: memory-bound XMass pins low.
        if let Some(xm) = report.learned_table.get("XMass") {
            assert!(*xm <= 1110, "XMass pinned at {xm}");
        }
        // Every model-pinned kernel reports a memory P-state (the default,
        // since the memory axis is closed here).
        for (name, mem) in &report.mem_table {
            assert_eq!(*mem, 1593, "{name} memory clock");
        }
    }

    #[test]
    fn predictive_spends_far_fewer_launches_than_the_search() {
        let online = run_policy(FreqPolicy::ManDynOnline(Default::default()), 20);
        let predictive = run_policy(
            FreqPolicy::ManDynPredictive(online::PredictiveConfig::default()),
            20,
        );
        assert!(
            online.exploration_launches > 0 && predictive.exploration_launches > 0,
            "both cold starts explore"
        );
        assert!(
            predictive.exploration_launches * 2 <= online.exploration_launches,
            "predictive ({}) must explore far less than the search ({})",
            predictive.exploration_launches,
            online.exploration_launches
        );
        // And it still lands in the efficient neighbourhood.
        let base = run_policy(FreqPolicy::Baseline, 20);
        let e = predictive.gpu_loop_j / base.gpu_loop_j;
        let t = predictive.loop_time_s / base.loop_time_s;
        assert!(t * e < 1.0, "predictive must improve EDP: {}", t * e);
    }

    #[test]
    fn locked_device_reports_denied_control_but_still_measures() {
        let report = ranks::run(1, CommCost::default(), |ctx| {
            let mut dev = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
            dev.set_application_clocks(MegaHertz(1410)).unwrap();
            dev.lock_clock_control();
            let nvml = Nvml::init(vec![Arc::new(Mutex::new(dev))]);
            let ic = subsonic_turbulence(6, 0.3, 3);
            let mut sim = Simulation::new(
                ic,
                SimConfig {
                    target_particles_per_rank: 1e6,
                    target_neighbors: 30,
                    ..Default::default()
                },
            );
            let mut inst =
                EnergyInstrument::new(&nvml, ctx.rank(), FreqPolicy::Static(MegaHertz(1005)))
                    .unwrap();
            sim.step(ctx, &mut inst);
            inst.finish(ctx)
        })
        .remove(0);
        assert!(report.clock_control_denied);
        assert!(report.gpu_loop_j > 0.0, "measurement still works");
    }
}
