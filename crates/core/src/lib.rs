//! # freqscale — instrumented energy measurement and dynamic GPU frequency
//! scaling for SPH simulations
//!
//! The primary contribution of *"Increasing Energy Efficiency of
//! Astrophysics Simulations Through GPU Frequency Scaling"* (SC 2024),
//! reproduced over simulated hardware:
//!
//! * [`EnergyInstrument`] — hooks into the SPH-EXA-style propagator,
//!   measuring per-function time and energy through PMT and applying a
//!   [`FreqPolicy`] before each kernel via the NVML shim;
//! * [`FreqPolicy`] — `Baseline` (pinned max), `Static(f)`, `Dvfs`
//!   (governor), `ManDyn` (the paper's per-function dynamic scaling), and
//!   `ManDynOnline` (the `online` crate's in-run search: no offline pass,
//!   learned-table persistence, power-cap composition);
//! * [`policy::tune_table`] — the KernelTuner-based sweet-spot search that
//!   produces the ManDyn table (Fig. 2);
//! * [`run_experiment`] — full experiment orchestration (cluster, setup
//!   phase, instrumented ranks, pm_counters, Slurm accounting), with
//!   [`run_experiments`] running independent scenarios concurrently;
//! * [`ExperimentResult`] — every measurement view the paper reports,
//!   JSON-serializable;
//! * [`ExperimentExecutor`] — the bridge into the `serve` crate's
//!   long-running daemon: spec submissions over a Unix socket, a shared
//!   in-process table server for single-flight warm starts (see the
//!   `freqscale-serve` / `freqscale-submit` binaries).
//!
//! ```no_run
//! use freqscale::{run_experiment, ExperimentSpec, FreqPolicy};
//!
//! // The §IV-D comparison on miniHPC: baseline vs ManDyn.
//! let base = run_experiment(&ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 10));
//! let table = freqscale::policy::paper_mandyn_table(&archsim::GpuSpec::a100_pcie_40gb());
//! let mandyn = run_experiment(&ExperimentSpec::minihpc_turbulence(FreqPolicy::ManDyn(table), 10));
//! let (time, energy, edp) = mandyn.normalized_to(&base);
//! println!("ManDyn: {:.2}% slower, {:.2}% less GPU energy, EDP x{edp:.3}",
//!     (time - 1.0) * 100.0, (1.0 - energy) * 100.0);
//! ```

pub mod analysis;
pub mod checkpoint;
pub mod instrument;
pub mod policy;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod serving;

pub use analysis::{
    best_edp, compare_tables, dominated_area, learned_table_of, max_deviation_mhz, pareto_front,
    tables_within_bin, PolicyPoint, TableDeviation,
};
pub use checkpoint::{
    latest_checkpoint, load_manifest, spec_hash, Checkpointer, Manifest, RestorePoint,
};
pub use instrument::EnergyInstrument;
pub use policy::{paper_mandyn_table, tune_table, FreqPolicy, FreqTable};
pub use report::{ExperimentResult, FunctionReport, NodeBreakdown, RankReport};
pub use runner::{
    learned_freq_table, run_experiment, run_experiment_with_table, run_experiment_with_warm_start,
    run_experiments, ExperimentSpec, WorkloadKind,
};
pub use scenario::{system_for_device, workload_for, SCENARIOS};
pub use serving::ExperimentExecutor;
