//! GPU frequency policies: the baseline, static down-scaling, the hardware
//! DVFS governor, and the paper's contribution — ManDyn, per-function
//! dynamic frequency selection.

use std::collections::BTreeMap;

use archsim::{GpuSpec, MegaHertz};
use online::{OnlineTunerConfig, PredictiveConfig};
use serde::{Deserialize, Serialize};
use sph::FuncId;
use tuner::{tune_kernel, Objective, ParamSpace, TuneOptions, TuneResult};

/// Per-function frequency table (the outcome of the §III-C tuning step,
/// Fig. 2).
pub type FreqTable = BTreeMap<FuncId, MegaHertz>;

/// How the GPU compute clock is managed during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FreqPolicy {
    /// Centre default: application clocks pinned at the maximum
    /// (1410 MHz on the A100 systems of Table I).
    Baseline,
    /// Application clocks pinned at one lower value for the entire run
    /// (§IV-C).
    Static(MegaHertz),
    /// Hand the clock to the hardware/driver DVFS governor (§IV-D/E).
    Dvfs,
    /// "ManDyn": before each instrumented function, pin the clock to that
    /// function's tuned best frequency (§III-D, Fig. 7).
    ManDyn(FreqTable),
    /// Extension beyond the paper: learn the per-function table *online*.
    /// During warm-up, each function's calls rotate through the candidate
    /// clocks while the instrumentation measures them; once every candidate
    /// has `rounds` samples, the best-EDP clock wins and the policy behaves
    /// like ManDyn — no offline KernelTuner pass needed.
    AutoTune {
        candidates: Vec<MegaHertz>,
        /// Samples per candidate before committing.
        rounds: u32,
    },
    /// Online ManDyn (the `online` crate): per-kernel coarse-then-refine
    /// search over the full clock ladder with windowed EDP estimates,
    /// convergence pinning, learned-table persistence and power-cap
    /// composition. `{"ManDynOnline": {}}` in a spec file selects the
    /// paper-equivalent defaults.
    ManDynOnline(OnlineTunerConfig),
    /// Predictive ManDyn (the `online` crate's model path): probe a handful
    /// of rungs per kernel, fit the analytic roofline/CV²f model, jump
    /// straight to the predicted (core, memory) EDP optimum and verify it in
    /// one measurement — falling back to the `ManDynOnline` search whenever
    /// the fit is rejected, probes are quarantined, or verification fails.
    /// `{"ManDynPredictive": {}}` in a spec file selects the defaults;
    /// `"tune_memory": true` opens the memory P-state axis.
    ManDynPredictive(PredictiveConfig),
}

impl FreqPolicy {
    /// Short label used in reports and figure legends.
    pub fn label(&self) -> String {
        match self {
            FreqPolicy::Baseline => "baseline".into(),
            FreqPolicy::Static(f) => format!("static-{}", f.0),
            FreqPolicy::Dvfs => "dvfs".into(),
            FreqPolicy::ManDyn(_) => "mandyn".into(),
            FreqPolicy::AutoTune { .. } => "autotune".into(),
            FreqPolicy::ManDynOnline(_) => "mandyn-online".into(),
            FreqPolicy::ManDynPredictive(_) => "mandyn-predictive".into(),
        }
    }

    /// A default online-tuning policy over the paper's sweep range, snapped
    /// to the device ladder: five candidates from 1005-class to max.
    pub fn auto_tune_default(gpu: &GpuSpec) -> FreqPolicy {
        let max = gpu.clock_table.max().0;
        let lo = (max as f64 * 0.71) as u32;
        let candidates = (0..5)
            .map(|i| gpu.clock_table.nearest(MegaHertz(lo + (max - lo) * i / 4)))
            .collect();
        FreqPolicy::AutoTune {
            candidates,
            rounds: 2,
        }
    }

    /// The clock this policy wants before `func` runs, or `None` for
    /// governor control.
    pub fn frequency_for(&self, func: FuncId, gpu: &GpuSpec) -> Option<MegaHertz> {
        match self {
            FreqPolicy::Baseline => Some(gpu.clock_table.max()),
            FreqPolicy::Static(f) => Some(*f),
            FreqPolicy::Dvfs => None,
            FreqPolicy::ManDyn(table) => {
                Some(table.get(&func).copied().unwrap_or(gpu.clock_table.max()))
            }
            // AutoTune's and the online/predictive tuners' clocks depend on
            // runtime state; the instrumentation layer resolves them per call.
            FreqPolicy::AutoTune { .. } => None,
            FreqPolicy::ManDynOnline(_) => None,
            FreqPolicy::ManDynPredictive(_) => None,
        }
    }
}

/// Sweep every instrumented function over `[lo, hi]` (the paper uses
/// 1005–1410 MHz) and return the per-function best frequency under
/// `objective`, plus the full per-function tuning data (Fig. 2's source).
pub fn tune_table(
    gpu: &GpuSpec,
    problem_size: f64,
    lo: MegaHertz,
    hi: MegaHertz,
    objective: Objective,
    include_gravity: bool,
) -> (FreqTable, Vec<(FuncId, TuneResult)>) {
    let mut space = ParamSpace::new();
    space.add_frequency_range(lo, hi, gpu.clock_table.step());
    // Functions tune independently (each sweep benchmarks fresh simulated
    // devices), so the per-function sweeps run concurrently. Results are
    // collected in `FuncId::ALL` order, so `detail` and the table are
    // identical to the serial sweep's.
    let funcs: Vec<FuncId> = FuncId::ALL
        .into_iter()
        .filter(|&f| f != FuncId::Gravity || include_gravity)
        .collect();
    let detail: Vec<(FuncId, TuneResult)> = par::par_map(funcs.len(), |k| {
        let func = funcs[k];
        let result = tune_kernel(
            func.name(),
            |_params, n| func.workload(n),
            problem_size,
            &space,
            gpu,
            TuneOptions {
                objective,
                iterations: 3,
                ..Default::default()
            },
        );
        (func, result)
    });
    let table: FreqTable = detail
        .iter()
        .map(|(func, result)| {
            (
                *func,
                result.best_frequency().expect("frequency axis present"),
            )
        })
        .collect();
    (table, detail)
}

/// The paper's §III-C configuration: 450³ particles, best-EDP frequency per
/// kernel, swept over 1005–1410 MHz on an A100.
pub fn paper_mandyn_table(gpu: &GpuSpec) -> FreqTable {
    let n = 450.0f64.powi(3);
    tune_table(
        gpu,
        n,
        MegaHertz(1005),
        MegaHertz(1410),
        Objective::Edp,
        true,
    )
    .0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::a100_pcie_40gb()
    }

    #[test]
    fn labels() {
        assert_eq!(FreqPolicy::Baseline.label(), "baseline");
        assert_eq!(FreqPolicy::Static(MegaHertz(1005)).label(), "static-1005");
        assert_eq!(FreqPolicy::Dvfs.label(), "dvfs");
        assert_eq!(FreqPolicy::ManDyn(FreqTable::new()).label(), "mandyn");
        assert_eq!(FreqPolicy::auto_tune_default(&gpu()).label(), "autotune");
        assert_eq!(
            FreqPolicy::ManDynOnline(OnlineTunerConfig::default()).label(),
            "mandyn-online"
        );
        assert_eq!(
            FreqPolicy::ManDynPredictive(PredictiveConfig::default()).label(),
            "mandyn-predictive"
        );
    }

    #[test]
    fn auto_tune_default_candidates_on_ladder() {
        let g = gpu();
        let FreqPolicy::AutoTune { candidates, rounds } = FreqPolicy::auto_tune_default(&g) else {
            panic!("expected AutoTune");
        };
        assert_eq!(candidates.len(), 5);
        assert_eq!(rounds, 2);
        assert!(candidates.iter().all(|f| g.clock_table.supports(*f)));
        assert_eq!(*candidates.last().unwrap(), MegaHertz(1410));
        assert!(candidates[0] <= MegaHertz(1005));
        // Per-call resolution is deferred to the instrumentation layer.
        assert_eq!(
            FreqPolicy::auto_tune_default(&g).frequency_for(FuncId::XMass, &g),
            None
        );
    }

    #[test]
    fn frequency_for_resolves_policy() {
        let g = gpu();
        assert_eq!(
            FreqPolicy::Baseline.frequency_for(FuncId::XMass, &g),
            Some(MegaHertz(1410))
        );
        assert_eq!(
            FreqPolicy::Static(MegaHertz(1050)).frequency_for(FuncId::XMass, &g),
            Some(MegaHertz(1050))
        );
        assert_eq!(FreqPolicy::Dvfs.frequency_for(FuncId::XMass, &g), None);
        let mut table = FreqTable::new();
        table.insert(FuncId::XMass, MegaHertz(1020));
        let mandyn = FreqPolicy::ManDyn(table);
        assert_eq!(
            mandyn.frequency_for(FuncId::XMass, &g),
            Some(MegaHertz(1020))
        );
        // Functions missing from the table fall back to the max clock.
        assert_eq!(
            mandyn.frequency_for(FuncId::MomentumEnergy, &g),
            Some(MegaHertz(1410))
        );
    }

    #[test]
    fn tuned_table_reproduces_fig2_ordering() {
        let (table, detail) = tune_table(
            &gpu(),
            450.0f64.powi(3),
            MegaHertz(1005),
            MegaHertz(1410),
            Objective::Edp,
            true,
        );
        assert_eq!(table.len(), 12);
        assert_eq!(detail.len(), 12);
        let me = table[&FuncId::MomentumEnergy];
        let iad = table[&FuncId::IADVelocityDivCurl];
        let xmass = table[&FuncId::XMass];
        let gradh = table[&FuncId::NormalizationGradh];
        // Fig. 2: compute-bound kernels tune high, bandwidth-bound tune low.
        assert!(me >= MegaHertz(1300), "MomentumEnergy tuned to {me}");
        assert!(iad >= MegaHertz(1200), "IAD tuned to {iad}");
        assert!(xmass <= MegaHertz(1110), "XMass tuned to {xmass}");
        assert!(
            gradh < me,
            "NormalizationGradh {gradh} below MomentumEnergy {me}"
        );
        // All chosen clocks stay inside the sweep.
        for (&f, &mhz) in &table {
            assert!(
                mhz >= MegaHertz(1005) && mhz <= MegaHertz(1410),
                "{f}: {mhz}"
            );
        }
    }

    #[test]
    fn turbulence_table_skips_gravity() {
        let (table, _) = tune_table(
            &gpu(),
            1e6,
            MegaHertz(1005),
            MegaHertz(1410),
            Objective::Edp,
            false,
        );
        assert_eq!(table.len(), 11);
        assert!(!table.contains_key(&FuncId::Gravity));
    }
}
