//! Measurement reports: per-function, per-rank, per-node and per-experiment.
//!
//! These are the "reports that users can analyze to develop energy-efficient
//! code" of §I — JSON-serializable so the analysis scripts (and the bench
//! harness regenerating the paper's figures) consume them directly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sph::FuncId;

/// Accumulated measurements for one instrumented function on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionReport {
    pub calls: u64,
    /// Wall (virtual) time attributed to the function, seconds.
    pub time_s: f64,
    /// GPU energy attributed to the function, joules.
    pub gpu_j: f64,
    /// CPU-package energy attributed to the function (this rank's share),
    /// joules. Filled post-hoc by the runner: the host draws near-constant
    /// power while the GPU computes, so per-function CPU energy is
    /// proportional to duration — the paper's Fig. 5 observation.
    #[serde(default)]
    pub cpu_j: f64,
    /// Time-weighted average GPU clock during the function, MHz.
    pub avg_freq_mhz: f64,
}

/// One rank's measurement report (gathered at the end of the run, §III-B:
/// "measured per each MPI rank throughout the simulation ... stored into a
/// file for post-hoc analysis").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankReport {
    pub rank: usize,
    /// Per-function accumulation. Keys are function names to keep the JSON
    /// self-describing.
    pub functions: BTreeMap<String, FunctionReport>,
    /// Time-stepping-loop wall time, seconds (PMT's measurement window).
    pub loop_time_s: f64,
    /// GPU energy over the loop, joules.
    pub gpu_loop_j: f64,
    /// True if a frequency-control call was denied (production systems that
    /// lock user-level clock changes).
    pub clock_control_denied: bool,
    /// GPU clock trace sampled over the loop: `(seconds, MHz)` (Fig. 9).
    pub freq_trace: Vec<(f64, u32)>,
    /// GPU power trace sampled over the loop: `(seconds, watts)`. Filled
    /// alongside `freq_trace`; the power-cap acceptance check reads it.
    #[serde(default)]
    pub power_trace: Vec<(f64, f64)>,
    /// Per-kernel clocks a learning policy (AutoTune / ManDynOnline)
    /// committed by the end of the run. Keys are function names, values MHz.
    #[serde(default)]
    pub learned_table: BTreeMap<String, u32>,
    /// Launches spent exploring (before kernels were pinned) under
    /// ManDynOnline; `0` for other policies and for warm-started runs.
    #[serde(default)]
    pub exploration_launches: u64,
    /// Per-kernel memory P-state (MHz) the predictive policy committed.
    /// Empty unless `ManDynPredictive` ran with the memory axis open.
    #[serde(default)]
    pub mem_table: BTreeMap<String, u32>,
    /// Fitted analytic models (predictive policy), keyed by function name —
    /// the coefficients a table store persists for model warm starts.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub models: online::StoredModels,
    /// Kernels that abandoned the predictive model path for the search
    /// (quarantined probes, rejected fits or failed verification).
    #[serde(default)]
    pub search_fallbacks: u64,
}

impl RankReport {
    /// Function report by id.
    pub fn function(&self, func: FuncId) -> Option<&FunctionReport> {
        self.functions.get(func.name())
    }

    /// Sum of per-function GPU energy (should closely match `gpu_loop_j`).
    pub fn functions_gpu_j(&self) -> f64 {
        self.functions.values().map(|f| f.gpu_j).sum()
    }

    /// Sum of per-function time.
    pub fn functions_time_s(&self) -> f64 {
        self.functions.values().map(|f| f.time_s).sum()
    }

    /// Function energy shares of the rank's GPU energy, by name.
    pub fn gpu_energy_shares(&self) -> BTreeMap<String, f64> {
        let total = self.functions_gpu_j().max(1e-300);
        self.functions
            .iter()
            .map(|(name, f)| (name.clone(), f.gpu_j / total))
            .collect()
    }
}

/// Device-level energy breakdown of one node over a time window (what Fig. 4
/// shows as percentages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeBreakdown {
    pub node: usize,
    pub gpu_j: f64,
    pub cpu_j: f64,
    pub mem_j: f64,
    /// Auxiliary/uninstrumented draw — the paper's calculated "Other".
    pub other_j: f64,
}

impl NodeBreakdown {
    pub fn total_j(&self) -> f64 {
        self.gpu_j + self.cpu_j + self.mem_j + self.other_j
    }

    /// `(gpu, cpu, mem, other)` shares of the node total.
    pub fn shares(&self) -> (f64, f64, f64, f64) {
        let t = self.total_j().max(1e-300);
        (
            self.gpu_j / t,
            self.cpu_j / t,
            self.mem_j / t,
            self.other_j / t,
        )
    }

    /// Shares with memory folded into "Other" — the CSCS-A100 presentation
    /// (its blades expose no separate memory counter).
    pub fn shares_mem_in_other(&self) -> (f64, f64, f64) {
        let t = self.total_j().max(1e-300);
        (
            self.gpu_j / t,
            self.cpu_j / t,
            (self.mem_j + self.other_j) / t,
        )
    }
}

/// Everything measured in one experiment run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    pub system: String,
    pub workload: String,
    pub policy: String,
    pub ranks: usize,
    pub steps: usize,
    /// Time-stepping-loop wall time (time-to-solution), seconds.
    pub time_to_solution_s: f64,
    /// Whole-job elapsed (submit to end), seconds.
    pub job_elapsed_s: f64,
    pub per_rank: Vec<RankReport>,
    /// Per-node device breakdown over the *loop* window.
    pub per_node: Vec<NodeBreakdown>,
    /// PMT's view: GPU energy summed over ranks, loop window only.
    pub pmt_gpu_j: f64,
    /// PMT's per-device total (GPU + CPU + memory), loop window only.
    pub pmt_total_j: f64,
    /// Slurm's `ConsumedEnergy`: all nodes, whole job including setup.
    pub slurm_consumed_j: f64,
    /// Node energy over the loop window (devices + aux).
    pub node_loop_j: f64,
    /// Injected/recovered fault counts when the run carried a fault profile
    /// (all zero otherwise, and in builds without the `faults` feature).
    #[serde(default)]
    pub fault_stats: faults::FaultStats,
    /// Rank-ordered FNV-1a digest of every rank's final carried state —
    /// equal digests between two runs mean bit-identical trajectories
    /// (the kill→restore acceptance check compares exactly this).
    #[serde(default)]
    pub state_digest: u64,
    /// How many steps recomputed the SFC partition (the incremental
    /// repartitioner's whole point is keeping this far below `steps`).
    #[serde(default)]
    pub repartitions: u64,
    /// Total particles that changed owner across the run (allreduced).
    #[serde(default)]
    pub migrated_particles: u64,
}

impl ExperimentResult {
    /// Energy-delay product over the loop: node energy × time-to-solution.
    pub fn edp(&self) -> f64 {
        self.node_loop_j * self.time_to_solution_s
    }

    /// GPU-only EDP (per-GPU optimization view used in Figs. 6–8).
    pub fn gpu_edp(&self) -> f64 {
        self.pmt_gpu_j * self.time_to_solution_s
    }

    /// `(time, gpu_energy, gpu_edp)` of `self` normalized to `baseline`.
    pub fn normalized_to(&self, baseline: &ExperimentResult) -> (f64, f64, f64) {
        (
            self.time_to_solution_s / baseline.time_to_solution_s,
            self.pmt_gpu_j / baseline.pmt_gpu_j,
            self.gpu_edp() / baseline.gpu_edp(),
        )
    }

    /// Aggregate per-function report over all ranks.
    pub fn functions_all_ranks(&self) -> BTreeMap<String, FunctionReport> {
        let mut out: BTreeMap<String, FunctionReport> = BTreeMap::new();
        for rank in &self.per_rank {
            for (name, f) in &rank.functions {
                let e = out.entry(name.clone()).or_default();
                e.calls += f.calls;
                e.time_s += f.time_s;
                e.gpu_j += f.gpu_j;
                e.cpu_j += f.cpu_j;
                // Energy-weighted average frequency across ranks.
                e.avg_freq_mhz += f.avg_freq_mhz * f.gpu_j;
            }
        }
        for f in out.values_mut() {
            if f.gpu_j > 0.0 {
                f.avg_freq_mhz /= f.gpu_j;
            }
        }
        out
    }

    /// Whole-experiment device breakdown (sums node breakdowns).
    pub fn device_totals(&self) -> NodeBreakdown {
        let mut total = NodeBreakdown::default();
        for n in &self.per_node {
            total.gpu_j += n.gpu_j;
            total.cpu_j += n.cpu_j;
            total.mem_j += n.mem_j;
            total.other_j += n.other_j;
        }
        total
    }

    /// Export the aggregated per-function table as CSV (the hand-off format
    /// for external plotting/analysis scripts).
    pub fn functions_csv(&self) -> String {
        let mut out = String::from("function,calls,time_s,gpu_j,cpu_j,avg_freq_mhz,gpu_share\n");
        let agg = self.functions_all_ranks();
        let total: f64 = agg.values().map(|f| f.gpu_j).sum();
        for (name, f) in agg {
            out.push_str(&format!(
                "{},{},{:.6},{:.4},{:.4},{:.1},{:.5}\n",
                name,
                f.calls,
                f.time_s,
                f.gpu_j,
                f.cpu_j,
                f.avg_freq_mhz,
                f.gpu_j / total.max(1e-300)
            ));
        }
        out
    }

    /// Serialize to pretty JSON (the post-hoc analysis file of §III-B).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report file.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func_report(time_s: f64, gpu_j: f64) -> FunctionReport {
        FunctionReport {
            calls: 10,
            time_s,
            gpu_j,
            cpu_j: gpu_j * 0.1,
            avg_freq_mhz: 1400.0,
        }
    }

    #[test]
    fn rank_report_shares_sum_to_one() {
        let mut r = RankReport {
            rank: 0,
            ..Default::default()
        };
        r.functions
            .insert("MomentumEnergy".into(), func_report(2.0, 200.0));
        r.functions.insert("XMass".into(), func_report(0.5, 50.0));
        let shares = r.gpu_energy_shares();
        let sum: f64 = shares.values().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((shares["MomentumEnergy"] - 0.8).abs() < 1e-12);
        assert_eq!(r.function(FuncId::XMass).unwrap().gpu_j, 50.0);
        assert!(r.function(FuncId::Gravity).is_none());
    }

    #[test]
    fn node_breakdown_shares() {
        let n = NodeBreakdown {
            node: 0,
            gpu_j: 750.0,
            cpu_j: 100.0,
            mem_j: 50.0,
            other_j: 100.0,
        };
        let (g, c, m, o) = n.shares();
        assert!((g - 0.75).abs() < 1e-12);
        assert!((g + c + m + o - 1.0).abs() < 1e-12);
        let (g2, _c2, o2) = n.shares_mem_in_other();
        assert_eq!(g2, g);
        assert!((o2 - 0.15).abs() < 1e-12);
    }

    #[test]
    fn experiment_normalization_and_edp() {
        let base = ExperimentResult {
            time_to_solution_s: 10.0,
            pmt_gpu_j: 1000.0,
            node_loop_j: 2000.0,
            ..Default::default()
        };
        let other = ExperimentResult {
            time_to_solution_s: 11.0,
            pmt_gpu_j: 900.0,
            node_loop_j: 1900.0,
            ..Default::default()
        };
        assert_eq!(base.edp(), 20000.0);
        let (t, e, edp) = other.normalized_to(&base);
        assert!((t - 1.1).abs() < 1e-12);
        assert!((e - 0.9).abs() < 1e-12);
        assert!((edp - 0.99).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let mut r = ExperimentResult {
            system: "miniHPC".into(),
            workload: "SubsonicTurbulence".into(),
            policy: "mandyn".into(),
            ranks: 1,
            steps: 10,
            time_to_solution_s: 5.0,
            ..Default::default()
        };
        r.per_rank.push(RankReport {
            rank: 0,
            ..Default::default()
        });
        let json = r.to_json();
        let back = ExperimentResult::from_json(&json).unwrap();
        assert_eq!(back.system, "miniHPC");
        assert_eq!(back.per_rank.len(), 1);
    }

    #[test]
    fn functions_csv_has_header_and_rows() {
        let mut r0 = RankReport {
            rank: 0,
            ..Default::default()
        };
        r0.functions.insert("XMass".into(), func_report(1.0, 100.0));
        r0.functions
            .insert("MomentumEnergy".into(), func_report(2.0, 300.0));
        let result = ExperimentResult {
            per_rank: vec![r0],
            ..Default::default()
        };
        let csv = result.functions_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("function,calls,time_s,gpu_j,cpu_j"));
        assert!(csv.contains("MomentumEnergy,10,"));
        // Shares sum to 1 across rows.
        let share_sum: f64 = lines[1..]
            .iter()
            .map(|l| {
                l.rsplit(',')
                    .next()
                    .expect("share column")
                    .parse::<f64>()
                    .expect("float")
            })
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn functions_all_ranks_aggregates() {
        let mut r0 = RankReport {
            rank: 0,
            ..Default::default()
        };
        r0.functions.insert("XMass".into(), func_report(1.0, 100.0));
        let mut r1 = RankReport {
            rank: 1,
            ..Default::default()
        };
        r1.functions.insert("XMass".into(), func_report(2.0, 300.0));
        let result = ExperimentResult {
            per_rank: vec![r0, r1],
            ..Default::default()
        };
        let agg = result.functions_all_ranks();
        let x = &agg["XMass"];
        assert_eq!(x.calls, 20);
        assert_eq!(x.time_s, 3.0);
        assert_eq!(x.gpu_j, 400.0);
        assert!((x.avg_freq_mhz - 1400.0).abs() < 1e-9);
    }
}
