//! Experiment orchestration: cluster + job lifecycle + instrumented ranks.
//!
//! `run_experiment` reproduces the paper's measurement setup end to end:
//! a Slurm-style job is "submitted" at t = 0, spends a setup phase
//! (allocation, IC construction, host→device copy) with idle GPUs, then runs
//! the instrumented time-stepping loop with one MPI rank per GPU/GCD. Slurm
//! accounts the whole job through pm_counters; PMT measures the loop only —
//! the §IV-A validation gap.

use archsim::{Cluster, MegaHertz, SimDuration, SimInstant, SystemSpec, Watts};
use nvml_shim::Nvml;
use online::{ModelTable, PowerCapCoordinator, TableStore};
use pm_counters::PmCounters;
use ranks::CommCost;
use serde::{Deserialize, Serialize};
use slurm_sim::{AccountingConfig, JobTimes, Slurm};
use sph::{
    evrard, kelvin_helmholtz, rotating_disk, sedov, sod, subsonic_turbulence, FuncId,
    InitialConditions, Kernel, SimConfig, Simulation,
};

use crate::instrument::EnergyInstrument;
use crate::policy::{FreqPolicy, FreqTable};
use crate::report::{ExperimentResult, NodeBreakdown, RankReport};

/// CPU/DRAM activity during the setup phase (IC generation, H2D staging).
const SETUP_CPU_ACTIVITY: f64 = 0.50;
const SETUP_MEM_ACTIVITY: f64 = 0.40;
/// CPU/DRAM activity while the GPU-resident loop runs — the host mostly
/// idles, which is why Fig. 5's CPU energy is proportional to function time.
const LOOP_CPU_ACTIVITY: f64 = 0.22;
const LOOP_MEM_ACTIVITY: f64 = 0.30;

/// Which scenario-zoo workload to run (Table I pair + validation problems).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Subsonic turbulence (no gravity).
    Turbulence { n_side: usize, mach: f64, seed: u64 },
    /// Evrard collapse (with gravity).
    Evrard { n_side: usize },
    /// Sedov-Taylor blast (no gravity) — the strong-shock validation
    /// problem, usable as a third instrumented workload.
    Sedov { n_side: usize, e0: f64 },
    /// Kelvin–Helmholtz shear layer (no gravity, compute-heavy kernel mix).
    KelvinHelmholtz { n_side: usize, seed: u64 },
    /// Rotating self-gravitating disk (gravity-dominated kernel mix).
    RotatingDisk { n_side: usize },
    /// Sod shock tube (no gravity, memory-bound kernel mix).
    Sod { n_side: usize },
}

impl WorkloadKind {
    /// Construct the (global) initial model.
    pub fn build(&self) -> InitialConditions {
        match *self {
            WorkloadKind::Turbulence { n_side, mach, seed } => {
                subsonic_turbulence(n_side, mach, seed)
            }
            WorkloadKind::Evrard { n_side } => evrard(n_side),
            WorkloadKind::Sedov { n_side, e0 } => sedov(n_side, e0),
            WorkloadKind::KelvinHelmholtz { n_side, seed } => kelvin_helmholtz(n_side, seed),
            WorkloadKind::RotatingDisk { n_side } => rotating_disk(n_side),
            WorkloadKind::Sod { n_side } => sod(n_side),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Turbulence { .. } => "SubsonicTurbulence",
            WorkloadKind::Evrard { .. } => "EvrardCollapse",
            WorkloadKind::Sedov { .. } => "SedovBlast",
            WorkloadKind::KelvinHelmholtz { .. } => "KelvinHelmholtz",
            WorkloadKind::RotatingDisk { .. } => "RotatingDisk",
            WorkloadKind::Sod { .. } => "SodShockTube",
        }
    }
}

/// Everything one experiment needs. Serializable, so experiments can be
/// described as JSON spec files and run with the `freqscale-run` CLI.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    pub system: SystemSpec,
    pub ranks: usize,
    pub workload: WorkloadKind,
    pub steps: usize,
    pub policy: FreqPolicy,
    /// Paper-scale particles per GPU assumed by the workload model
    /// (e.g. 150e6, 80e6, or 450³).
    pub target_particles_per_rank: f64,
    /// Job setup time before the loop starts.
    pub setup: SimDuration,
    pub comm: CommCost,
    pub kernel: Kernel,
    /// Laptop-scale neighbor target for the physics.
    pub target_neighbors: usize,
    /// Record rank 0's clock trace (Fig. 9).
    pub collect_trace: bool,
    /// Slurm-side `--gpu-freq` request, applied with scheduler privilege at
    /// allocation (the only frequency control on locked production systems,
    /// §II-B).
    pub slurm_gpu_freq: Option<archsim::MegaHertz>,
    /// Slurm-side `--cpu-freq` request in kHz (§II-B; ARCHER2-style centre
    /// defaults also come through this path).
    pub slurm_cpu_freq_khz: Option<u64>,
    /// When set, per-rank reports and the aggregate report are written here
    /// as JSON — §III-B's "gathered at the end of the execution and stored
    /// into a file for post-hoc analysis".
    pub report_dir: Option<std::path::PathBuf>,
    /// Total watt budget across all ranks' GPUs. When set, a
    /// [`PowerCapCoordinator`] splits it per rank, the per-rank device power
    /// limit is enforced on the hardware, and a `ManDynOnline` search is
    /// capped so it never explores rungs the limit would throttle.
    #[serde(default)]
    pub power_cap_w: Option<f64>,
    /// Directory of learned-table JSON files. `ManDynOnline` warm-starts
    /// from the table stored for this (GPU, workload) — skipping
    /// exploration entirely — and persists whatever it learns at the end.
    /// `ManDynPredictive` additionally loads/saves fitted model
    /// coefficients, so a warm start skips even the probe phase.
    #[serde(default)]
    pub table_store: Option<std::path::PathBuf>,
    /// Pin every GPU's memory clock to this P-state (MHz) for the whole
    /// run. Must be one of the device's supported memory clocks
    /// (`mem_clock_table`); the `freqscale-run` CLI validates this before
    /// the run starts. `None` keeps the device default.
    #[serde(default)]
    pub memory_clock: Option<u32>,
    /// Deterministic fault-injection profile for chaos runs (see DESIGN.md
    /// "Fault model & resilience"). `None` or an all-zero profile runs
    /// fault-free; [`faults::FaultProfile::chaos`] is the standard mix. The
    /// schedule depends only on `(seed, channel, device)`, so a profile
    /// reproduces exactly across runs and worker counts.
    #[serde(default)]
    pub faults: Option<faults::FaultProfile>,
    /// Scenario-registry name (e.g. `"kelvin-helmholtz"`). When set, the
    /// concrete `workload` is replaced by the registry's default-parameter
    /// IC for that scenario via [`ExperimentSpec::resolve_scenario`]; an
    /// unknown name is a hard error listing the valid scenarios — never a
    /// silent fall-through to a default IC.
    #[serde(default)]
    pub scenario: Option<String>,
    /// When set, periodic checkpoints (particle snapshots + tuner state +
    /// SFC splits) are written here every `checkpoint_every` steps; see
    /// [`crate::checkpoint`].
    #[serde(default)]
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Steps between checkpoints. `0` (the default) means every 5 steps
    /// when `checkpoint_dir` is set.
    #[serde(default)]
    pub checkpoint_every: usize,
    /// Restore from the newest committed checkpoint under this directory
    /// and continue to `steps`. The checkpoint's spec hash and rank count
    /// must match; a damaged rank snapshot cold-starts instead.
    #[serde(default)]
    pub restore_from: Option<std::path::PathBuf>,
    /// Override the incremental-repartition skew threshold
    /// ([`SimConfig::repart_skew_threshold`], default 1.15). Values below
    /// 1.0 rebuild the partition every step (the pre-incremental behavior).
    #[serde(default)]
    pub repart_skew_threshold: Option<f64>,
    /// Overlap deferred halo-field communication with interior compute
    /// ([`SimConfig::halo_overlap`]); bit-identical on or off.
    #[serde(default = "default_halo_overlap")]
    pub halo_overlap: bool,
}

fn default_halo_overlap() -> bool {
    true
}

impl ExperimentSpec {
    /// A miniHPC single-GPU turbulence experiment at 450³ paper scale — the
    /// configuration of §IV-C/D/E.
    pub fn minihpc_turbulence(policy: FreqPolicy, steps: usize) -> Self {
        ExperimentSpec {
            system: archsim::mini_hpc(),
            ranks: 1,
            workload: WorkloadKind::Turbulence {
                n_side: 8,
                mach: 0.3,
                seed: 42,
            },
            steps,
            policy,
            target_particles_per_rank: 450.0f64.powi(3),
            setup: SimDuration::from_secs(2),
            comm: CommCost::default(),
            kernel: Kernel::CubicSpline,
            target_neighbors: 40,
            collect_trace: false,
            slurm_gpu_freq: None,
            slurm_cpu_freq_khz: None,
            report_dir: None,
            power_cap_w: None,
            table_store: None,
            memory_clock: None,
            faults: None,
            scenario: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restore_from: None,
            repart_skew_threshold: None,
            halo_overlap: true,
        }
    }

    /// Resolve the optional `scenario` registry name into the concrete
    /// `workload`. A no-op when `scenario` is `None`; an error (listing the
    /// valid names) when the name is not in the registry. Every spec entry
    /// point — `freqscale-run`, the serving executor, the matrix generator —
    /// calls this before running.
    pub fn resolve_scenario(&mut self) -> Result<(), String> {
        let Some(name) = self.scenario.as_deref() else {
            return Ok(());
        };
        match crate::scenario::workload_for(name) {
            Some(w) => {
                self.workload = w;
                Ok(())
            }
            None => Err(format!(
                "unknown scenario {name:?} (valid scenarios: {})",
                crate::scenario::SCENARIOS.join(", ")
            )),
        }
    }

    /// The key a run's learned table is stored under: the workload plus the
    /// paper-scale problem size (which determines every kernel's roofline
    /// position and therefore its sweet-spot clock).
    pub fn table_store_key(&self) -> String {
        format!(
            "{}-{:.0}",
            self.workload.name(),
            self.target_particles_per_rank
        )
    }
}

/// The per-kernel table rank 0's online tuner converged on, as a
/// [`FreqTable`]. Empty when the run was not an online policy (or pinned
/// nothing). This is the payload a table store or in-process table server
/// persists for later warm-starts.
pub fn learned_freq_table(report: &RankReport) -> FreqTable {
    report
        .learned_table
        .iter()
        .filter_map(|(name, mhz)| FuncId::from_name(name).map(|f| (f, MegaHertz(*mhz))))
        .collect()
}

/// Run the experiment and gather every measurement view.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    run_experiment_with_table(spec, None)
}

/// Like [`run_experiment`], but with an externally supplied warm-start table
/// taking precedence over the spec's own `table_store` directory.
///
/// This is the entry point the experiment service uses: its in-process table
/// server owns warm-start state (versioned, LRU-cached, single-flight), so a
/// served job receives the table directly instead of re-reading JSON from
/// disk. With `external == None` this is exactly `run_experiment`.
pub fn run_experiment_with_table(
    spec: &ExperimentSpec,
    external_warm: Option<&FreqTable>,
) -> ExperimentResult {
    run_experiment_with_warm_start(spec, external_warm, None)
}

/// Like [`run_experiment_with_table`], but also accepting externally served
/// fitted model coefficients: under the predictive policy, kernels covered
/// by `external_models` pin straight from the analytic model — zero
/// exploration launches, not even a probe phase. The table server hands
/// both pieces to served jobs; batch runs get the same effect through the
/// spec's own `table_store`.
pub fn run_experiment_with_warm_start(
    spec: &ExperimentSpec,
    external_warm: Option<&FreqTable>,
    external_models: Option<&ModelTable>,
) -> ExperimentResult {
    let cluster = Cluster::for_ranks(spec.system.clone(), spec.ranks);
    let setup_end = SimInstant::ZERO + spec.setup;

    // Slurm applies a requested --gpu-freq with scheduler privilege before
    // the job starts, regardless of user-level clock-control policy.
    if let Some(f) = spec.slurm_gpu_freq {
        for node in cluster.nodes() {
            node.privileged_set_gpu_clocks(f)
                .expect("requested --gpu-freq must be on the device ladder");
        }
    }
    if let Some(khz) = spec.slurm_cpu_freq_khz {
        for node in cluster.nodes() {
            node.cpu().lock().set_frequency_khz(khz);
        }
    }
    // A requested memory P-state applies before the injector is installed,
    // like --gpu-freq: scheduler-side setup is never perturbed. The CLI
    // validates the value against the device table up front, so a failure
    // here means a programmatic spec skipped validation.
    if let Some(mem) = spec.memory_clock {
        for node in cluster.nodes() {
            for gpu in node.gpus() {
                gpu.lock()
                    .set_memory_clock(MegaHertz(mem))
                    .expect("requested memory clock must be a supported P-state");
            }
        }
    }

    // Chaos harness: one injector for the whole run, installed after the
    // privileged --gpu-freq so scheduler-side setup is never perturbed.
    // Device ids are global GPU indices; rank-side channels use rank ids.
    let injector = {
        let profile = spec.faults.clone().unwrap_or_default();
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid fault profile: {e}"));
        faults::FaultInjector::new(profile)
    };
    if injector.is_active() {
        let mut global_dev = 0u64;
        for node in cluster.nodes() {
            for gpu in node.gpus() {
                gpu.lock().set_fault_handle(injector.device(global_dev));
                global_dev += 1;
            }
        }
    }

    // --- setup phase: GPUs idle, host busy staging -----------------------
    for node in cluster.nodes() {
        node.settle_until(setup_end, SETUP_CPU_ACTIVITY, SETUP_MEM_ACTIVITY);
    }

    // --- online ManDyn: warm table + power-cap allocation ----------------
    let store = spec
        .table_store
        .as_ref()
        .map(|dir| TableStore::open(dir).expect("table store directory is usable"));
    let gpu_name = spec.system.node.gpu.name.clone();
    let store_key = spec.table_store_key();
    let (warm_table, warm_models): (Option<FreqTable>, Option<ModelTable>) =
        match (external_warm, &store, &spec.policy) {
            (Some(t), _, FreqPolicy::ManDynOnline(_) | FreqPolicy::ManDynPredictive(_)) => (
                Some(t.clone()),
                external_models.filter(|m| !m.is_empty()).cloned(),
            ),
            // A corrupt or truncated store entry must cost one cold-start
            // exploration, never a crash: `load_or_rebuild` warns, moves the
            // bad file aside and returns `None`.
            (None, Some(s), FreqPolicy::ManDynOnline(_)) => {
                (s.load_or_rebuild(&gpu_name, &store_key), None)
            }
            // The predictive policy also loads fitted coefficients: kernels
            // with a stored model skip even the probe phase; the rest pin
            // from the plain table through the search.
            (None, Some(s), FreqPolicy::ManDynPredictive(_)) => {
                match s.load_or_rebuild_stored(&gpu_name, &store_key) {
                    Some(stored) => {
                        let models = stored.model_table();
                        (Some(stored.table), Some(models))
                    }
                    None => (None, None),
                }
            }
            _ => (None, None),
        };

    // --- checkpoint/restart plumbing -------------------------------------
    let spec_hash = crate::checkpoint::spec_hash(spec);
    let checkpointer = spec.checkpoint_dir.as_ref().map(|dir| {
        let every = if spec.checkpoint_every == 0 {
            5
        } else {
            spec.checkpoint_every as u64
        };
        crate::checkpoint::Checkpointer::new(dir, every, spec_hash)
    });
    // The manifest is validated once, up front (the CLI has already turned
    // a mismatch into a clean error; a programmatic caller gets the panic).
    let restore = spec.restore_from.as_ref().map(|dir| {
        crate::checkpoint::RestorePoint::discover(dir, spec)
            .unwrap_or_else(|e| panic!("cannot restore: {e}"))
    });
    // A checkpoint's tuner state warm-starts the restored run exactly like
    // a table-store entry would, overriding store/external warm state.
    let (warm_table, warm_models) = match &restore {
        Some(rp) => {
            let table: FreqTable = rp
                .manifest
                .learned_table
                .iter()
                .filter_map(|(name, mhz)| FuncId::from_name(name).map(|f| (f, MegaHertz(*mhz))))
                .collect();
            let models: ModelTable = rp
                .manifest
                .models
                .iter()
                .filter_map(|(name, m)| FuncId::from_name(name).map(|f| (f, m.clone())))
                .collect();
            (
                (!table.is_empty()).then_some(table).or(warm_table),
                (!models.is_empty()).then_some(models).or(warm_models),
            )
        }
        None => (warm_table, warm_models),
    };

    // One (device budget, clock ceiling) per rank. The budget is enforced on
    // the device; the ceiling keeps an online search out of throttled rungs.
    let power_allocs: Option<Vec<(Watts, MegaHertz)>> = spec.power_cap_w.map(|w| {
        let coord = PowerCapCoordinator::new(spec.system.node.gpu.clone(), Watts(w));
        let demand: FreqTable = match &spec.policy {
            FreqPolicy::ManDyn(table) => table.clone(),
            _ => warm_table.clone().unwrap_or_default(),
        };
        let demands = vec![demand; spec.ranks];
        coord
            .allocate(&demands)
            .expect("power budget feasible at the ladder floor")
            .into_iter()
            .map(|a| (a.budget, coord.freq_ceiling(a.budget, &a.table)))
            .collect()
    });

    // --- instrumented loop, one rank per GPU -----------------------------
    let sim_cfg = SimConfig {
        kernel: spec.kernel,
        target_particles_per_rank: spec.target_particles_per_rank,
        target_neighbors: spec.target_neighbors,
        bucket_size: 32,
        repart_skew_threshold: spec
            .repart_skew_threshold
            .unwrap_or_else(|| SimConfig::default().repart_skew_threshold),
        halo_overlap: spec.halo_overlap,
    };
    let outputs: Vec<(RankReport, u64, u64, u64, u64)> = ranks::run(spec.ranks, spec.comm, |ctx| {
        if injector.is_active() {
            // Straggler stalls key on the rank id, not the GPU id, so the
            // schedule survives re-binding ranks to different devices.
            ctx.install_faults(injector.device(ctx.rank() as u64));
        }
        ctx.advance_to(setup_end);
        let ic = spec.workload.build();
        let mut sim = if ctx.size() == 1 {
            Simulation::new(ic, sim_cfg)
        } else {
            Simulation::distribute(ic, sim_cfg, ctx.rank(), ctx.size())
        };
        // Restore is collective: every rank loads its own blob, then the
        // ranks agree (allreduce Min over ok flags) — one damaged blob makes
        // the whole job cold-start, never a half-restored mix.
        if let Some(rp) = &restore {
            let loaded = match rp.rank_particles(ctx.rank()) {
                Ok(parts) => Some(parts),
                Err(e) => {
                    eprintln!("warning: rank {}: {e}; cold-starting", ctx.rank());
                    None
                }
            };
            let everywhere = ctx.allreduce_u64(loaded.is_some() as u64, ranks::Op::Min);
            if everywhere == 1 {
                if let Some(splits) = &rp.manifest.splits {
                    sim.set_assignment_splits(splits.clone());
                }
                sim.restore_snapshot(
                    loaded.expect("all ranks loaded"),
                    rp.manifest.step,
                    rp.manifest.time_bits,
                    rp.manifest.dt_bits,
                );
            }
        }
        let (node_idx, _dev_idx) = cluster.place_rank(ctx.rank());
        let nvml = Nvml::init_for_node(&cluster.nodes()[node_idx]);
        let mut inst = EnergyInstrument::new(&nvml, ctx.rank(), spec.policy.clone())
            .expect("rank binds to a device");
        if spec.collect_trace && ctx.rank() == 0 {
            inst = inst.with_freq_trace();
        }
        if let Some(models) = &warm_models {
            // Models first: a kernel with stored coefficients pins at its
            // predicted optimum; `with_warm_table` then only covers the rest.
            inst = inst.with_warm_models(models);
        }
        if let Some(warm) = &warm_table {
            inst = inst.with_warm_table(warm);
        }
        if let Some(allocs) = &power_allocs {
            let (budget, ceiling) = allocs[ctx.rank()];
            inst = inst.with_power_cap(budget, ceiling);
        }
        let mut repartitions = 0u64;
        let mut migrated = 0u64;
        while sim.step_index() < spec.steps as u64 {
            let stats = sim.step(ctx, &mut inst);
            repartitions += stats.repartitioned as u64;
            migrated += stats.migrated;
            if let Some(ck) = &checkpointer {
                if ck.due(sim.step_index()) {
                    // Barrier sequencing makes the manifest a commit marker:
                    // rank 0 creates the directory before anyone writes, and
                    // writes the manifest only after every rank file landed.
                    let step = sim.step_index();
                    if ctx.rank() == 0 {
                        ck.prepare(step);
                    }
                    ctx.barrier();
                    ck.write_rank(step, ctx.rank(), &sim.capture_snapshot());
                    ctx.barrier();
                    if ctx.rank() == 0 {
                        ck.commit(&crate::checkpoint::Manifest {
                            version: crate::checkpoint::MANIFEST_VERSION,
                            step,
                            time_bits: sim.time().to_bits(),
                            dt_bits: sim.dt().to_bits(),
                            ranks: ctx.size(),
                            spec_hash: ck.spec_hash(),
                            workload: format!("{:?}", spec.workload),
                            splits: sim.assignment_splits().map(<[u64]>::to_vec),
                            learned_table: inst
                                .learned_table()
                                .into_iter()
                                .map(|(f, mhz)| (f.name().to_string(), mhz.0))
                                .collect(),
                            models: inst.models_snapshot(),
                        });
                    }
                }
            }
        }
        let end = ctx.now();
        let digest = sim.state_digest();
        (
            inst.finish(ctx),
            end.as_nanos(),
            digest,
            repartitions,
            migrated,
        )
    });

    let global_end = SimInstant::from_nanos(
        outputs
            .iter()
            .map(|(_, end, ..)| *end)
            .max()
            .expect("at least one rank"),
    )
    .max(setup_end);

    // --- close every node's timeline at the common end -------------------
    for node in cluster.nodes() {
        node.settle_until(global_end, LOOP_CPU_ACTIVITY, LOOP_MEM_ACTIVITY);
    }

    // --- node breakdowns over the loop window (exact integrals) ----------
    let per_node: Vec<NodeBreakdown> = cluster
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| NodeBreakdown {
            node: i,
            gpu_j: node.gpu_energy(setup_end, global_end).0,
            cpu_j: node.cpu_energy(setup_end, global_end).0,
            mem_j: node.memory_energy(setup_end, global_end).0,
            other_j: node.aux_energy(setup_end, global_end).0,
        })
        .collect();

    // --- Slurm view: whole job, 10 Hz counters ---------------------------
    let counters: Vec<PmCounters> = cluster.nodes().iter().map(PmCounters::attach).collect();
    let mut slurm = Slurm::new(AccountingConfig::default());
    let job_id = slurm.record(
        format!("{}-{}", spec.workload.name(), spec.policy.label()),
        JobTimes {
            submit: SimInstant::ZERO,
            loop_start: setup_end,
            end: global_end,
        },
        counters,
    );
    let slurm_consumed_j = slurm
        .sacct()
        .iter()
        .find(|r| r.job_id == job_id)
        .and_then(|r| r.consumed_energy_j)
        .expect("energy TRES enabled");

    // Rank-order digest-of-digests: equal values on two runs mean every
    // rank's carried state (and the clocks) matched bit for bit.
    let state_digest = {
        let mut bytes = Vec::with_capacity(outputs.len() * 8);
        for (_, _, digest, _, _) in &outputs {
            bytes.extend_from_slice(&digest.to_le_bytes());
        }
        sph::fnv1a(&bytes)
    };
    // Repartition count is a collective decision (every rank agrees), and
    // migration counts are already allreduced inside the step — rank 0's
    // totals are the job's totals.
    let repartitions = outputs.first().map_or(0, |(_, _, _, r, _)| *r);
    let migrated_particles = outputs.first().map_or(0, |(_, _, _, _, m)| *m);
    let mut per_rank: Vec<RankReport> = outputs.into_iter().map(|(r, ..)| r).collect();

    // Post-hoc CPU attribution: the host package draws near-constant power
    // during the GPU-resident loop, so each function's CPU energy is its
    // duration times the rank's share of the node's average CPU power.
    let loop_s = (global_end - setup_end).as_secs_f64();
    if loop_s > 0.0 {
        let ranks_per_node = spec.system.node.gpu_devices as usize;
        for report in &mut per_rank {
            let (node_idx, _) = cluster.place_rank(report.rank);
            let node_cpu_w = per_node[node_idx].cpu_j / loop_s;
            let ranks_on_node =
                ((spec.ranks - node_idx * ranks_per_node).min(ranks_per_node)).max(1) as f64;
            for f in report.functions.values_mut() {
                f.cpu_j = f.time_s * node_cpu_w / ranks_on_node;
            }
        }
    }
    // Persist what the online tuner learned, so the next run of the same
    // (GPU, workload) warm-starts with zero exploration launches. The
    // predictive policy saves its fitted coefficients alongside the table,
    // so the *next* warm start skips even the probe phase.
    match (&store, &spec.policy) {
        (Some(s), FreqPolicy::ManDynOnline(_)) => {
            let learned: FreqTable = learned_freq_table(&per_rank[0]);
            if !learned.is_empty() {
                s.save(&gpu_name, &store_key, &learned)
                    .expect("persist learned table");
            }
        }
        (Some(s), FreqPolicy::ManDynPredictive(_)) => {
            let learned: FreqTable = learned_freq_table(&per_rank[0]);
            let models: ModelTable = per_rank[0]
                .models
                .iter()
                .filter_map(|(name, m)| FuncId::from_name(name).map(|f| (f, m.clone())))
                .collect();
            if !learned.is_empty() || !models.is_empty() {
                s.save_with_models(&gpu_name, &store_key, &learned, &models)
                    .expect("persist learned table and models");
            }
        }
        _ => {}
    }

    let pmt_gpu_j: f64 = per_rank.iter().map(|r| r.gpu_loop_j).sum();
    let pmt_total_j: f64 = pmt_gpu_j + per_node.iter().map(|n| n.cpu_j + n.mem_j).sum::<f64>();
    let node_loop_j: f64 = per_node.iter().map(NodeBreakdown::total_j).sum();

    let result = ExperimentResult {
        system: spec.system.name.clone(),
        workload: spec.workload.name().to_string(),
        policy: spec.policy.label(),
        ranks: spec.ranks,
        steps: spec.steps,
        time_to_solution_s: (global_end - setup_end).as_secs_f64(),
        job_elapsed_s: (global_end - SimInstant::ZERO).as_secs_f64(),
        per_rank,
        per_node,
        pmt_gpu_j,
        pmt_total_j,
        slurm_consumed_j,
        node_loop_j,
        fault_stats: injector.stats(),
        state_digest,
        repartitions,
        migrated_particles,
    };

    if let Some(dir) = &spec.report_dir {
        std::fs::create_dir_all(dir).expect("create report directory");
        for rank in &result.per_rank {
            let body = serde_json::to_string_pretty(rank).expect("rank report serializes");
            std::fs::write(dir.join(format!("rank-{:04}.json", rank.rank)), body)
                .expect("write rank report");
        }
        std::fs::write(dir.join("experiment.json"), result.to_json())
            .expect("write experiment report");
        std::fs::write(dir.join("functions.csv"), result.functions_csv())
            .expect("write function CSV");
    }

    result
}

/// Run several experiments concurrently, at most `jobs` at a time (`0`
/// means the `par` layer's default worker count), and return the results
/// in spec order.
///
/// Each experiment builds its own simulated cluster, spawns its own rank
/// threads and (optionally) writes its own `report_dir`, so scenarios are
/// fully independent; every result is identical to what [`run_experiment`]
/// returns for that spec alone. Specs sharing a `report_dir` or
/// `table_store` path should be run with `jobs = 1`.
pub fn run_experiments(specs: &[ExperimentSpec], jobs: usize) -> Vec<ExperimentResult> {
    let threads = if jobs == 0 { par::max_threads() } else { jobs };
    par::par_map_threads(threads, specs.len(), |i| run_experiment(&specs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;

    fn quick(policy: FreqPolicy) -> ExperimentResult {
        let mut spec = ExperimentSpec::minihpc_turbulence(policy, 2);
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        run_experiment(&spec)
    }

    #[test]
    fn baseline_experiment_produces_consistent_views() {
        let r = quick(FreqPolicy::Baseline);
        assert_eq!(r.ranks, 1);
        assert_eq!(r.per_rank.len(), 1);
        assert_eq!(r.per_node.len(), 1);
        assert!(r.time_to_solution_s > 0.0);
        assert!(r.job_elapsed_s > r.time_to_solution_s, "job includes setup");
        // Slurm sees the whole job (setup + aux), PMT only loop devices.
        assert!(r.slurm_consumed_j > r.pmt_total_j);
        // GPU energy measured by PMT matches the node-breakdown GPU energy
        // (same window, same device, modulo the idle remainder of the node's
        // second GPU on miniHPC).
        let node_gpu = r.per_node[0].gpu_j;
        assert!(r.pmt_gpu_j <= node_gpu + 1e-9);
        assert!(r.pmt_gpu_j > 0.3 * node_gpu, "instrumented GPU dominates");
        // EDP is positive and consistent.
        assert!((r.edp() - r.node_loop_j * r.time_to_solution_s).abs() < 1e-9);
    }

    #[test]
    fn static_downscaling_trades_time_for_gpu_energy() {
        let base = quick(FreqPolicy::Baseline);
        let low = quick(FreqPolicy::Static(MegaHertz(1005)));
        let (t, e, _) = low.normalized_to(&base);
        assert!(t > 1.02, "static-1005 must be slower: {t}");
        assert!(t < 1.45, "slowdown bounded by 1/f: {t}");
        assert!(e < 0.95, "static-1005 must save GPU energy: {e}");
    }

    #[test]
    fn multirank_experiment_on_production_system_denies_clock_control() {
        let spec = ExperimentSpec {
            system: archsim::cscs_a100(),
            ranks: 8,
            workload: WorkloadKind::Turbulence {
                n_side: 8,
                mach: 0.3,
                seed: 2,
            },
            steps: 2,
            policy: FreqPolicy::Static(MegaHertz(1005)),
            target_particles_per_rank: 150e6,
            setup: SimDuration::from_secs(1),
            comm: CommCost::default(),
            kernel: Kernel::CubicSpline,
            target_neighbors: 30,
            collect_trace: false,
            slurm_gpu_freq: None,
            slurm_cpu_freq_khz: None,
            report_dir: None,
            power_cap_w: None,
            table_store: None,
            memory_clock: None,
            faults: None,
            scenario: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restore_from: None,
            repart_skew_threshold: None,
            halo_overlap: true,
        };
        let r = run_experiment(&spec);
        assert_eq!(r.per_rank.len(), 8);
        assert_eq!(r.per_node.len(), 2, "8 ranks on 4-GPU nodes");
        assert!(
            r.per_rank.iter().all(|rr| rr.clock_control_denied),
            "production systems lock SetApplicationsClocks"
        );
        // Baseline behaviour: pinned at the centre default anyway.
        assert!(r.pmt_gpu_j > 0.0);
    }

    #[test]
    fn evrard_workload_reports_gravity() {
        let spec = ExperimentSpec {
            workload: WorkloadKind::Evrard { n_side: 8 },
            target_particles_per_rank: 80e6,
            ..ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2)
        };
        let r = run_experiment(&spec);
        assert_eq!(r.workload, "EvrardCollapse");
        assert!(r.per_rank[0].functions.contains_key("Gravity"));
        assert_eq!(r.per_rank[0].functions.len(), 12);
    }

    #[test]
    fn slurm_gpu_freq_overrides_locked_production_clocks() {
        // §II-B: --gpu-freq is applied with scheduler privilege, so it works
        // even where user-level SetApplicationsClocks is denied.
        let mut spec = ExperimentSpec {
            system: archsim::cscs_a100(),
            ranks: 4,
            workload: WorkloadKind::Turbulence {
                n_side: 8,
                mach: 0.3,
                seed: 3,
            },
            steps: 2,
            policy: FreqPolicy::Baseline,
            target_particles_per_rank: 150e6,
            setup: SimDuration::from_secs(1),
            comm: CommCost::default(),
            kernel: Kernel::CubicSpline,
            target_neighbors: 30,
            collect_trace: false,
            slurm_gpu_freq: Some(MegaHertz(1005)),
            slurm_cpu_freq_khz: None,
            report_dir: None,
            power_cap_w: None,
            table_store: None,
            memory_clock: None,
            faults: None,
            scenario: None,
            checkpoint_dir: None,
            checkpoint_every: 0,
            restore_from: None,
            repart_skew_threshold: None,
            halo_overlap: true,
        };
        let low = run_experiment(&spec);
        // User-level control is still denied (Baseline tries to pin 1410 and
        // fails), but the Slurm-applied 1005 MHz governs every function.
        assert!(low.per_rank.iter().all(|r| r.clock_control_denied));
        for rank in &low.per_rank {
            for (name, f) in &rank.functions {
                assert!(
                    (f.avg_freq_mhz - 1005.0).abs() < 1.0,
                    "{name} ran at {} despite --gpu-freq=1005",
                    f.avg_freq_mhz
                );
            }
        }
        // And it actually saves energy vs the default clocks.
        spec.slurm_gpu_freq = None;
        let default = run_experiment(&spec);
        assert!(low.pmt_gpu_j < default.pmt_gpu_j);
        assert!(low.time_to_solution_s > default.time_to_solution_s);
    }

    #[test]
    fn cpu_energy_attribution_is_time_proportional() {
        let r = quick(FreqPolicy::Baseline);
        let rank = &r.per_rank[0];
        let cpu_sum: f64 = rank.functions.values().map(|f| f.cpu_j).sum();
        assert!(cpu_sum > 0.0, "cpu_j must be filled post-hoc");
        // Proportionality: cpu_j / time_s is the same constant everywhere.
        let rates: Vec<f64> = rank
            .functions
            .values()
            .map(|f| f.cpu_j / f.time_s)
            .collect();
        let first = rates[0];
        assert!(
            rates.iter().all(|r| (r - first).abs() / first < 1e-9),
            "CPU power attribution must be constant: {rates:?}"
        );
        // And the per-function CPU energy sums to (about) the rank's share
        // of the node CPU energy.
        let node_cpu: f64 = r.per_node.iter().map(|n| n.cpu_j).sum();
        assert!(cpu_sum <= node_cpu + 1e-9);
        assert!(
            cpu_sum > 0.9 * node_cpu,
            "rank share {cpu_sum} vs node {node_cpu}"
        );
    }

    #[test]
    fn slurm_cpu_freq_reduces_cpu_energy_without_time_cost() {
        let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2);
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        let base = run_experiment(&spec);
        spec.slurm_cpu_freq_khz = Some(2_000_000);
        let slow = run_experiment(&spec);
        assert_eq!(
            slow.time_to_solution_s, base.time_to_solution_s,
            "GPU-bound: no time cost"
        );
        let cpu_base: f64 = base.per_node.iter().map(|n| n.cpu_j).sum();
        let cpu_slow: f64 = slow.per_node.iter().map(|n| n.cpu_j).sum();
        assert!(
            cpu_slow < cpu_base * 0.95,
            "CPU energy must drop: {cpu_slow} vs {cpu_base}"
        );
    }

    #[test]
    fn report_dir_writes_per_rank_files() {
        let dir = std::env::temp_dir().join("freqscale_report_dir_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 1);
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        spec.ranks = 2;
        spec.report_dir = Some(dir.clone());
        let r = run_experiment(&spec);
        // Per-rank files + aggregate + CSV.
        assert!(dir.join("rank-0000.json").exists());
        assert!(dir.join("rank-0001.json").exists());
        let exp = std::fs::read_to_string(dir.join("experiment.json")).expect("file written");
        let parsed = crate::report::ExperimentResult::from_json(&exp).expect("valid JSON");
        assert_eq!(parsed.ranks, r.ranks);
        let csv = std::fs::read_to_string(dir.join("functions.csv")).expect("csv written");
        assert!(csv.starts_with("function,calls"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn sedov_workload_runs_instrumented() {
        let spec = ExperimentSpec {
            workload: WorkloadKind::Sedov { n_side: 8, e0: 1.0 },
            target_particles_per_rank: 125e6,
            ..ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2)
        };
        let r = run_experiment(&spec);
        assert_eq!(r.workload, "SedovBlast");
        assert_eq!(r.per_rank[0].functions.len(), 11, "hydro set, no gravity");
        assert!(r.pmt_gpu_j > 0.0);
    }

    #[test]
    fn predictive_run_persists_models_and_warm_starts_probe_free() {
        let dir =
            std::env::temp_dir().join(format!("freqscale_predictive_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = ExperimentSpec::minihpc_turbulence(
            FreqPolicy::ManDynPredictive(online::PredictiveConfig::default()),
            16,
        );
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        spec.table_store = Some(dir.clone());

        let cold = run_experiment(&spec);
        let rank = &cold.per_rank[0];
        assert!(rank.exploration_launches > 0, "cold start probes");
        assert!(!rank.models.is_empty(), "models reported");
        assert!(!rank.learned_table.is_empty(), "kernels pinned");

        // The store now holds both the table and the fitted coefficients…
        let store = online::TableStore::open(&dir).unwrap();
        let stored = store
            .load_stored(&spec.system.node.gpu.name, &spec.table_store_key())
            .unwrap()
            .expect("entry persisted");
        assert!(!stored.models.is_empty(), "coefficients persisted");
        assert_eq!(
            stored.table.len(),
            rank.learned_table.len(),
            "table persisted"
        );

        // …so the second run skips probing entirely for model-backed
        // kernels and pins table-backed ones through the search warm start.
        let warm = run_experiment(&spec);
        assert_eq!(
            warm.per_rank[0].exploration_launches, 0,
            "warm start must skip the probe phase"
        );
        assert_eq!(
            warm.per_rank[0].learned_table, cold.per_rank[0].learned_table,
            "warm run pins the same clocks"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn pinned_memory_clock_slows_memory_bound_work() {
        let base = quick(FreqPolicy::Baseline);
        let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2);
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        spec.memory_clock = Some(810);
        let slow = run_experiment(&spec);
        assert!(
            slow.time_to_solution_s > base.time_to_solution_s,
            "halving memory bandwidth must cost time: {} vs {}",
            slow.time_to_solution_s,
            base.time_to_solution_s
        );
    }

    #[test]
    fn trace_collection_is_opt_in() {
        let mut spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Dvfs, 1);
        spec.workload = WorkloadKind::Turbulence {
            n_side: 6,
            mach: 0.3,
            seed: 1,
        };
        spec.target_neighbors = 30;
        let without = run_experiment(&spec);
        assert!(without.per_rank[0].freq_trace.is_empty());
        spec.collect_trace = true;
        let with = run_experiment(&spec);
        assert!(!with.per_rank[0].freq_trace.is_empty());
    }
}
