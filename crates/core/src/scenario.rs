//! The scenario registry: one canonical name per zoo workload.
//!
//! Spec files (and `freqscale-matrix`) refer to scenarios by these
//! kebab-case names; [`workload_for`] maps a name to the registry's
//! default-parameter [`WorkloadKind`] (laptop-scale ICs sized for CI). The
//! registry is the single source of truth for what `"scenario"` strings a
//! spec may carry — `ExperimentSpec::resolve_scenario` rejects anything
//! else, listing this set.

use archsim::{DeviceTemplate, SystemSpec, Watts};

use crate::runner::WorkloadKind;

/// Every scenario the zoo ships, in registry order.
pub const SCENARIOS: [&str; 6] = [
    "turbulence",
    "evrard",
    "sedov",
    "kelvin-helmholtz",
    "rotating-disk",
    "sod",
];

/// The registry's default-parameter workload for a scenario name, or `None`
/// if the name is unknown. Parameters are laptop-scale (CI-sized): the
/// paper-scale behaviour comes from `target_particles_per_rank`, not from
/// the physics lattice.
pub fn workload_for(name: &str) -> Option<WorkloadKind> {
    match name {
        "turbulence" => Some(WorkloadKind::Turbulence {
            n_side: 8,
            mach: 0.3,
            seed: 42,
        }),
        "evrard" => Some(WorkloadKind::Evrard { n_side: 10 }),
        "sedov" => Some(WorkloadKind::Sedov { n_side: 8, e0: 1.0 }),
        "kelvin-helmholtz" => Some(WorkloadKind::KelvinHelmholtz {
            n_side: 8,
            seed: 42,
        }),
        "rotating-disk" => Some(WorkloadKind::RotatingDisk { n_side: 10 }),
        "sod" => Some(WorkloadKind::Sod { n_side: 8 }),
        _ => None,
    }
}

/// A single-node, single-GPU system wrapped around a zoo device: the miniHPC
/// chassis (CPU/DRAM/aux envelope) with the template's GPU dropped in,
/// clocks unlocked and defaults at the device maximum. This is the system
/// every matrix cell and `bench_zoo` rep runs on, so cells differ only in
/// the device (and scenario/policy) axes.
pub fn system_for_device(template: &DeviceTemplate) -> Result<SystemSpec, String> {
    let gpu = template.to_spec().map_err(|e| e.to_string())?;
    let name = format!("zoo-{}", slug(&template.name));
    Ok(SystemSpec {
        name: name.clone(),
        node: archsim::NodeSpec {
            system: name,
            cpu: archsim::CpuSpec::xeon_6258r(),
            sockets: 2,
            mem: archsim::MemSpec::ddr4_1536gib(),
            default_gpu_freq: gpu.clock_table.max(),
            gpu_mem_freq: gpu.mem_clock,
            gpu,
            gpu_devices: 1,
            gcds_per_card: 1,
            aux_power: Watts(130.0),
            user_clock_control: true,
        },
        notes: "scenario & device zoo cell (miniHPC chassis, swapped GPU)".into(),
    })
}

/// Lowercase-kebab slug of a device marketing name (`"AMD MI250X GCD"` →
/// `"amd-mi250x-gcd"`): filesystem- and job-name-safe.
pub fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_name_resolves() {
        for name in SCENARIOS {
            let w = workload_for(name).unwrap_or_else(|| panic!("{name} missing"));
            // The IC must actually build (asserts inside the constructors).
            let ic = w.build();
            assert!(!ic.name.is_empty());
        }
        assert!(workload_for("kevin-helmholtz").is_none());
        assert!(workload_for("Turbulence").is_none(), "names are kebab-case");
    }

    #[test]
    fn registry_covers_all_workload_kinds() {
        // Compile-time-ish guard: adding a WorkloadKind variant without a
        // registry entry should fail here.
        let names: Vec<&str> = SCENARIOS
            .iter()
            .map(|s| workload_for(s).unwrap().name())
            .collect();
        for expect in [
            "SubsonicTurbulence",
            "EvrardCollapse",
            "SedovBlast",
            "KelvinHelmholtz",
            "RotatingDisk",
            "SodShockTube",
        ] {
            assert!(names.contains(&expect), "{expect} not reachable");
        }
    }

    #[test]
    fn zoo_system_swaps_the_gpu_and_unlocks_clocks() {
        let t = DeviceTemplate::builtin("mi250x-gcd").unwrap();
        let sys = system_for_device(&t).unwrap();
        assert_eq!(sys.name, "zoo-amd-mi250x-gcd");
        assert_eq!(sys.node.gpu.name, "AMD MI250X GCD");
        assert!(sys.node.user_clock_control);
        assert_eq!(sys.node.default_gpu_freq, sys.node.gpu.clock_table.max());
        assert_eq!(sys.node.gpu_mem_freq, sys.node.gpu.mem_clock);
    }

    #[test]
    fn slugs_are_path_safe() {
        assert_eq!(slug("Nvidia A100-SXM4-80GB"), "nvidia-a100-sxm4-80gb");
        assert_eq!(slug("AMD MI250X GCD"), "amd-mi250x-gcd");
        assert_eq!(slug("  weird__name  "), "weird-name");
    }
}
