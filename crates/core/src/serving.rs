//! Glue between the generic `serve` daemon and the experiment runner.
//!
//! [`ExperimentExecutor`] is the production [`serve::Executor`]: it parses
//! submitted spec files into [`ExperimentSpec`]s, derives the table-server
//! key (the same `(GPU name, table_store_key)` pair the on-disk
//! `TableStore` uses, so served and batch runs share warm-start state), and
//! routes execution through [`crate::runner::run_experiment_with_table`] so a served warm
//! table takes precedence over any spec-level store directory.
//!
//! The `freqscale-serve` and `freqscale-submit` binaries are thin wrappers
//! around this module plus `serve::daemon`/`serve::client`.

use online::{LearnedTable, ModelTable, StoredModels};
use serve::daemon::{Executor, JobMeta, JobOutcome};
use sph::FuncId;

use crate::policy::FreqPolicy;
use crate::runner::{learned_freq_table, run_experiment_with_warm_start, ExperimentSpec};

/// The daemon's executor for real experiment specs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExperimentExecutor;

impl ExperimentExecutor {
    fn parse(spec_json: &str) -> Result<ExperimentSpec, String> {
        let mut spec: ExperimentSpec =
            serde_json::from_str(spec_json).map_err(|e| e.to_string())?;
        // Symbolic scenario names resolve (or are refused) at submission,
        // exactly like the batch CLI does before any work starts.
        spec.resolve_scenario()?;
        Ok(spec)
    }
}

impl Executor for ExperimentExecutor {
    fn validate(&self, spec_json: &str) -> Result<JobMeta, String> {
        let spec = Self::parse(spec_json)?;
        // Refuse obviously broken submissions before they occupy a queue
        // slot. Runtime chaos (off-ladder privileged clocks, faults firing
        // mid-run) is the worker's problem and is contained there.
        if spec.ranks == 0 {
            return Err("spec.ranks must be at least 1".to_string());
        }
        if spec.steps == 0 {
            return Err("spec.steps must be at least 1".to_string());
        }
        if let Some(profile) = &spec.faults {
            profile
                .validate()
                .map_err(|e| format!("fault profile: {e}"))?;
        }
        let devices = spec.system.node.gpu_devices as usize;
        Ok(JobMeta {
            name: format!("{}-{}", spec.workload.name(), spec.policy.label()),
            gpu: spec.system.node.gpu.name.clone(),
            workload: spec.table_store_key(),
            uses_tables: matches!(
                spec.policy,
                FreqPolicy::ManDynOnline(_) | FreqPolicy::ManDynPredictive(_)
            ),
            nodes: spec.ranks.div_ceil(devices.max(1)),
        })
    }

    fn execute(
        &self,
        spec_json: &str,
        warm: Option<&LearnedTable>,
        warm_models: &StoredModels,
    ) -> Result<JobOutcome, String> {
        let spec = Self::parse(spec_json)?;
        // The served warm table is keyed by FuncId already; the instrument
        // side wants the same shape (LearnedTable == FreqTable). Served
        // model coefficients (stored by kernel name) convert to the typed
        // table the predictive tuner warm-starts from.
        let model_table: ModelTable = warm_models
            .iter()
            .filter_map(|(name, m)| FuncId::from_name(name).map(|f| (f, m.clone())))
            .collect();
        let result = run_experiment_with_warm_start(&spec, warm, Some(&model_table));
        let (learned, models) = match spec.policy {
            FreqPolicy::ManDynOnline(_) => {
                let t = learned_freq_table(&result.per_rank[0]);
                ((!t.is_empty()).then_some(t), StoredModels::new())
            }
            // Predictive jobs also publish their fitted coefficients, so the
            // next lease of this key skips even the probe phase.
            FreqPolicy::ManDynPredictive(_) => {
                let t = learned_freq_table(&result.per_rank[0]);
                (
                    (!t.is_empty()).then_some(t),
                    result.per_rank[0].models.clone(),
                )
            }
            _ => (None, StoredModels::new()),
        };
        let recovery = (result.fault_stats.injected() > 0).then(|| {
            format!(
                "{} faults injected, {} recovered",
                result.fault_stats.injected(),
                result.fault_stats.recovered()
            )
        });
        Ok(JobOutcome {
            learned,
            models,
            exploration_launches: result.per_rank[0].exploration_launches,
            elapsed_s: result.job_elapsed_s,
            energy_j: result.slurm_consumed_j,
            // Whole-job accounting minus the loop window: the setup-phase
            // share (allocation, IC construction, H2D staging).
            setup_energy_j: (result.slurm_consumed_j - result.node_loop_j).max(0.0),
            edp: result.edp(),
            recovery,
            report: Some(result.to_json()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FreqPolicy;

    fn online_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::minihpc_turbulence(
            FreqPolicy::ManDynOnline(online::OnlineTunerConfig::default()),
            3,
        );
        spec.workload = crate::runner::WorkloadKind::Turbulence {
            n_side: 4,
            mach: 0.3,
            seed: 7,
        };
        spec
    }

    #[test]
    fn validate_derives_table_identity() {
        let spec = online_spec();
        let meta = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap();
        assert_eq!(meta.gpu, spec.system.node.gpu.name);
        assert_eq!(meta.workload, spec.table_store_key());
        assert!(meta.uses_tables, "online policy participates in serving");
        assert_eq!(meta.nodes, 1);
    }

    #[test]
    fn validate_rejects_garbage_and_bad_profiles() {
        assert!(ExperimentExecutor.validate("{oops").is_err());
        let mut spec = online_spec();
        spec.ranks = 0;
        let err = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap_err();
        assert!(err.contains("ranks"), "{err}");
        // A profile that parses but fails semantic validation is refused at
        // submission, before it can occupy a queue slot.
        let mut spec = online_spec();
        spec.faults = Some(faults::FaultProfile {
            straggler_stall: 0.5,
            straggler_factor: 0.5,
            ..Default::default()
        });
        let err = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap_err();
        assert!(err.starts_with("fault profile:"), "{err}");
    }

    #[test]
    fn scenario_names_resolve_at_submission() {
        // A known name swaps the workload in; an unknown one is refused
        // before the job can occupy a queue slot.
        let mut spec = online_spec();
        spec.scenario = Some("sod".to_string());
        let meta = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap();
        assert!(meta.name.starts_with("SodShockTube-"), "{}", meta.name);
        spec.scenario = Some("sodd".to_string());
        let err = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap_err();
        assert!(err.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn baseline_policy_does_not_use_tables() {
        let spec = ExperimentSpec::minihpc_turbulence(FreqPolicy::Baseline, 2);
        let meta = ExperimentExecutor
            .validate(&serde_json::to_string(&spec).unwrap())
            .unwrap();
        assert!(!meta.uses_tables);
    }
}
