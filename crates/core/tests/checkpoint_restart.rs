//! Checkpoint/restart end-to-end: a run killed mid-way and restored from
//! its last checkpoint must continue **bit-identically** — same final
//! particle state (rank-ordered digest) and same learned tuner table — even
//! under a chaos fault profile. Also pins the on-disk format: a v1 fixture
//! checked into the repo must stay loadable, and a corrupt rank blob must
//! cold-start cleanly (`.corrupt` sidecar, no panic).

use freqscale::{
    load_manifest, run_experiment, ExperimentSpec, FreqPolicy, RestorePoint, WorkloadKind,
};
use online::OnlineTunerConfig;
use std::path::PathBuf;

/// The shared experiment identity: 2 ranks, online tuning that pins every
/// kernel within two launches (so the table is converged well before the
/// checkpoint), and the standard chaos fault mix.
fn physics_spec(steps: usize) -> ExperimentSpec {
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig {
            max_explore_launches: 2,
            ..OnlineTunerConfig::default()
        }),
        steps,
    );
    spec.workload = WorkloadKind::Turbulence {
        n_side: 8,
        mach: 0.3,
        seed: 7,
    };
    spec.target_neighbors = 30;
    spec.ranks = 2;
    spec.faults = Some(faults::FaultProfile::chaos());
    spec
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("freqscale-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_restore_continues_bit_identically_under_chaos() {
    let ckpt = tmp_dir("ckpt-chaos");

    // Ground truth: six uninterrupted steps.
    let full = run_experiment(&physics_spec(6));

    // The "killed" run: stops after step 3, having committed a checkpoint.
    let mut killed = physics_spec(3);
    killed.checkpoint_dir = Some(ckpt.clone());
    killed.checkpoint_every = 3;
    let at_kill = run_experiment(&killed);
    assert!(
        ckpt.join("step-000003").join("manifest.json").exists(),
        "checkpoint committed at the kill point"
    );

    // Restore and run the remaining three steps.
    let mut resumed = physics_spec(6);
    resumed.restore_from = Some(ckpt.clone());
    let restored = run_experiment(&resumed);

    assert_eq!(
        restored.state_digest, full.state_digest,
        "restored continuation must be bit-identical to the uninterrupted run"
    );
    assert_ne!(
        at_kill.state_digest, full.state_digest,
        "sanity: the digest distinguishes step 3 from step 6"
    );
    // The tuner pinned every kernel before the checkpoint, the manifest
    // carried the table, and the warm start re-pins it with zero
    // exploration — so the learned tables match entry for entry.
    assert_eq!(
        restored.per_rank[0].learned_table, full.per_rank[0].learned_table,
        "learned tuner table must survive kill→restore"
    );
    assert_eq!(
        restored.per_rank[0].exploration_launches, 0,
        "warm-started restore must not re-explore"
    );

    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn restore_resumes_at_the_checkpoint_step_not_step_zero() {
    let ckpt = tmp_dir("ckpt-resume-step");

    let mut killed = physics_spec(4);
    killed.checkpoint_dir = Some(ckpt.clone());
    killed.checkpoint_every = 2;
    run_experiment(&killed);
    // Checkpoints at steps 2 and 4; discovery must pick the newest.
    assert!(ckpt.join("step-000004").join("manifest.json").exists());

    let mut resumed = physics_spec(6);
    resumed.restore_from = Some(ckpt.clone());
    let rp = RestorePoint::discover(&ckpt, &resumed).expect("committed checkpoint found");
    assert_eq!(rp.manifest.step, 4, "newest checkpoint wins");
    assert_eq!(rp.manifest.ranks, 2);
    assert!(
        rp.manifest.splits.is_some(),
        "multirank checkpoints carry the SFC splits"
    );

    let full = run_experiment(&physics_spec(6));
    let restored = run_experiment(&resumed);
    assert_eq!(restored.state_digest, full.state_digest);

    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn v1_fixture_checkpoint_still_loads() {
    // The fixture was written by the v1 codec (no checksum trailer) and is
    // checked into the repo: format evolution must never orphan it.
    let dir =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/checkpoint-v1/step-000002");
    let manifest = load_manifest(&dir).expect("v1 manifest parses");
    assert_eq!(manifest.version, 1);
    assert_eq!(manifest.step, 2);
    assert_eq!(manifest.ranks, 1);
    assert!(
        manifest.splits.is_none(),
        "v1 manifests without splits default to None"
    );
    assert!(manifest.learned_table.is_empty());
    assert_eq!(f64::from_bits(manifest.time_bits), 0.001);
    assert_eq!(f64::from_bits(manifest.dt_bits), 1e-5);

    let rp = RestorePoint { dir, manifest };
    let parts = rp.rank_particles(0).expect("v1 blob decodes");
    assert_eq!(parts.n_local, 2);
    assert_eq!(parts.x[0], 0.125);
    assert_eq!(parts.vy[0], -1.0);
    assert_eq!(parts.alpha[1], 0.4);
    assert_eq!(parts.m[1], 3.0);
}

#[test]
fn corrupt_rank_blob_cold_starts_with_sidecar_not_panic() {
    let ckpt = tmp_dir("ckpt-corrupt");

    let mut killed = physics_spec(3);
    killed.checkpoint_dir = Some(ckpt.clone());
    killed.checkpoint_every = 3;
    run_experiment(&killed);

    // Flip a byte in the middle of rank 1's blob: the v2 checksum catches
    // it at load and the whole job cold-starts from the initial conditions.
    let blob_path = ckpt.join("step-000003").join("rank-0001.bin");
    let mut blob = std::fs::read(&blob_path).expect("blob written");
    let mid = blob.len() / 2;
    blob[mid] ^= 0x40;
    std::fs::write(&blob_path, &blob).unwrap();

    let mut resumed = physics_spec(6);
    resumed.restore_from = Some(ckpt.clone());
    let restored = run_experiment(&resumed);

    // Cold start == a plain six-step run from scratch.
    let fresh = run_experiment(&physics_spec(6));
    assert_eq!(
        restored.state_digest, fresh.state_digest,
        "a damaged checkpoint must cold-start, not half-restore"
    );
    assert!(
        ckpt.join("step-000003")
            .join("rank-0001.bin.corrupt")
            .exists(),
        "damaged blob moved aside for post-mortem"
    );
    assert!(!blob_path.exists(), "damaged blob no longer in place");

    let _ = std::fs::remove_dir_all(&ckpt);
}
