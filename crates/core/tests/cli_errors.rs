//! `freqscale-run` must fail *cleanly* on malformed input: exit code 1 and
//! a one-line `error: …` diagnostic, never a panic backtrace. One test per
//! bad-flag/bad-input case.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_freqscale-run"))
        .args(args)
        .output()
        .expect("spawn freqscale-run")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Every clean failure: exit 1, an `error:` line, and no panic noise.
fn assert_clean_failure(out: &Output, needle: &str) {
    let err = stderr(out);
    assert_eq!(out.status.code(), Some(1), "exit code; stderr:\n{err}");
    assert!(err.contains("error:"), "diagnostic line missing:\n{err}");
    assert!(err.contains(needle), "expected {needle:?} in:\n{err}");
    assert!(
        !err.contains("panicked"),
        "must not panic on bad input:\n{err}"
    );
    assert!(!err.contains("RUST_BACKTRACE"), "no backtrace hint:\n{err}");
}

#[test]
fn non_numeric_jobs_value_fails_cleanly() {
    let out = run(&["--jobs", "abc", "spec.json"]);
    assert_clean_failure(&out, "--jobs abc");
}

#[test]
fn negative_jobs_value_fails_cleanly() {
    let out = run(&["--jobs", "-3", "spec.json"]);
    assert_clean_failure(&out, "--jobs -3");
}

#[test]
fn missing_spec_file_fails_cleanly() {
    let out = run(&["/nonexistent/freqscale-spec.json"]);
    assert_clean_failure(&out, "reading spec");
}

#[test]
fn malformed_spec_json_fails_cleanly() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("freqscale-bad-spec-{}.json", std::process::id()));
    std::fs::write(&path, "{this is not a spec").unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_clean_failure(&out, "parsing spec");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_fault_profile_file_fails_cleanly() {
    let out = run(&["--fault-profile", "/nonexistent/profile.json", "spec.json"]);
    assert_clean_failure(&out, "reading fault profile");
}

#[test]
fn invalid_fault_profile_fails_cleanly() {
    // Parses, but fails semantic validation (straggler stall with a
    // non-inflating factor).
    let dir = std::env::temp_dir();
    let path = dir.join(format!("freqscale-bad-profile-{}.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{"seed": 1, "straggler_stall": 0.5, "straggler_factor": 0.5}"#,
    )
    .unwrap();
    let out = run(&["--fault-profile", path.to_str().unwrap(), "spec.json"]);
    assert_clean_failure(&out, "invalid fault profile");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unwritable_out_path_fails_cleanly() {
    // A valid run whose --out points into a nonexistent directory must
    // still exit 1 with a diagnostic, not panic after doing the work.
    let spec = freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("freqscale-out-spec-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = run(&[
        path.to_str().unwrap(),
        "--out",
        "/nonexistent/dir/report.json",
    ]);
    assert_clean_failure(&out, "writing /nonexistent/dir/report.json");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unsupported_memory_clock_fails_listing_pstates() {
    // A spec requesting a memory clock absent from the device's P-state
    // table must fail up front with the supported list, not panic mid-run.
    let mut spec =
        freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    spec.memory_clock = Some(1234);
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "freqscale-memclock-spec-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_clean_failure(&out, "memory clock 1234 MHz is not a supported P-state");
    // The diagnostic lists the A100's supported memory P-states.
    let err = stderr(&out);
    for pstate in ["1593", "1215", "810"] {
        assert!(
            err.contains(pstate),
            "P-state {pstate} missing from:\n{err}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn supported_memory_clock_is_accepted() {
    // The same spec with an on-table P-state runs to completion.
    let mut spec =
        freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    spec.memory_clock = Some(1215);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("freqscale-memclock-ok-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_scenario_fails_listing_valid_names() {
    // A near-miss scenario name must be rejected up front, with the full
    // registry in the diagnostic so the typo is obvious.
    let mut spec =
        freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    spec.scenario = Some("kelvin-helmoltz".to_string());
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "freqscale-scenario-bad-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_clean_failure(&out, "unknown scenario \"kelvin-helmoltz\"");
    let err = stderr(&out);
    for name in freqscale::SCENARIOS {
        assert!(err.contains(name), "valid name {name} missing from:\n{err}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn known_scenario_swaps_the_workload_in() {
    // `"scenario": "sod"` overrides whatever workload the spec carried; the
    // run completes and reports the registry workload's name.
    let mut spec =
        freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    spec.scenario = Some("sod".to_string());
    let dir = std::env::temp_dir();
    let path = dir.join(format!("freqscale-scenario-ok-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string(&spec).unwrap()).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    let err = stderr(&out);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{err}");
    assert!(err.contains("SodShockTube"), "workload not swapped:\n{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_stdin_spec_list_fails_cleanly() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_freqscale-run"))
        .arg("-")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn freqscale-run");
    child.stdin.take().unwrap().write_all(b"\n  \n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert_clean_failure(&out, "stdin (`-`) supplied no spec paths");
}

fn write_spec(tag: &str, spec: &freqscale::ExperimentSpec) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("freqscale-{tag}-{}.json", std::process::id()));
    std::fs::write(&path, serde_json::to_string(spec).unwrap()).unwrap();
    path
}

#[test]
fn unwritable_checkpoint_dir_fails_cleanly() {
    // /dev/null is a file, so a directory can't be created beneath it; the
    // failure must surface before any simulation work, as a clean error.
    let spec = freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    let path = write_spec("ckpt-unwritable", &spec);
    let out = run(&[
        path.to_str().unwrap(),
        "--checkpoint-dir",
        "/dev/null/checkpoints",
    ]);
    assert_clean_failure(&out, "not writable");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restore_from_missing_dir_fails_cleanly() {
    let spec = freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    let path = write_spec("restore-missing", &spec);
    let out = run(&[
        path.to_str().unwrap(),
        "--restore",
        "/nonexistent/checkpoints",
    ]);
    assert_clean_failure(&out, "no committed checkpoint");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restore_from_dir_without_committed_checkpoint_fails_cleanly() {
    // An existing but empty directory (or one holding only an uncommitted
    // step dir with no manifest) has nothing to restore from.
    let dir = std::env::temp_dir().join(format!("freqscale-ckpt-empty-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("step-000005")).unwrap();
    let spec = freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 1);
    let path = write_spec("restore-empty", &spec);
    let out = run(&[path.to_str().unwrap(), "--restore", dir.to_str().unwrap()]);
    assert_clean_failure(&out, "no committed checkpoint");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_under_a_different_spec_is_refused() {
    // Checkpoint a 2-step turbulence run, then try to restore it under a
    // different workload: the physics-identity hash must refuse the mix
    // with a clean error naming the problem.
    let tmp = std::env::temp_dir().join(format!("freqscale-ckpt-mix-{}", std::process::id()));
    let ckpt = tmp.join("checkpoints");
    std::fs::create_dir_all(&tmp).unwrap();

    let mut spec =
        freqscale::ExperimentSpec::minihpc_turbulence(freqscale::FreqPolicy::Baseline, 2);
    spec.checkpoint_every = 1;
    let path = write_spec("ckpt-mix-a", &spec);
    let out = run(&[
        path.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr:\n{}", stderr(&out));

    let mut other = spec.clone();
    other.workload = freqscale::WorkloadKind::Sod { n_side: 8 };
    let other_path = write_spec("ckpt-mix-b", &other);
    let out = run(&[
        other_path.to_str().unwrap(),
        "--restore",
        ckpt.to_str().unwrap(),
    ]);
    assert_clean_failure(&out, "different experiment");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&other_path);
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn no_arguments_prints_usage_exit_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn jobs_flag_without_value_prints_usage_exit_2() {
    let out = run(&["--jobs"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}
