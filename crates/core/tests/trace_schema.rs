//! End-to-end schema validation of `freqscale-run --trace-out`: a full
//! Evrard run under the online policy must emit well-formed Chrome-trace
//! JSON with matched B/E pairs and spans for SPH functions, GPU kernels,
//! tuner evaluations, online decisions and comm ops — plus the Prometheus
//! metrics dump and the merged power/span CSV timeline.
//!
//! The spec-error paths (unreadable / invalid spec files) are covered here
//! too, since they share the spawned-binary harness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

use freqscale::{ExperimentSpec, FreqPolicy, WorkloadKind};
use online::OnlineTunerConfig;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_freqscale-run")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("freqscale-trace-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Minimal JSON well-formedness checker (objects/arrays/strings/numbers/
/// literals). Returns the rest of the input after one value, or panics with
/// a position; independent of any JSON library so the check is identical
/// whatever serde implementation the workspace builds against.
fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while i < s.len() && matches!(s[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(s: &[u8], i: usize) -> usize {
    let i = skip_ws(s, i);
    assert!(i < s.len(), "unexpected end of JSON at byte {i}");
    match s[i] {
        b'{' => {
            let mut i = skip_ws(s, i + 1);
            if s[i] == b'}' {
                return i + 1;
            }
            loop {
                i = parse_string(s, skip_ws(s, i));
                i = skip_ws(s, i);
                assert_eq!(s[i], b':', "expected ':' at byte {i}");
                i = parse_value(s, i + 1);
                i = skip_ws(s, i);
                match s[i] {
                    b',' => i += 1,
                    b'}' => return i + 1,
                    c => panic!("expected ',' or '}}' at byte {i}, got {}", c as char),
                }
            }
        }
        b'[' => {
            let mut i = skip_ws(s, i + 1);
            if s[i] == b']' {
                return i + 1;
            }
            loop {
                i = parse_value(s, i);
                i = skip_ws(s, i);
                match s[i] {
                    b',' => i += 1,
                    b']' => return i + 1,
                    c => panic!("expected ',' or ']' at byte {i}, got {}", c as char),
                }
            }
        }
        b'"' => parse_string(s, i),
        b't' => expect_lit(s, i, b"true"),
        b'f' => expect_lit(s, i, b"false"),
        b'n' => expect_lit(s, i, b"null"),
        _ => parse_number(s, i),
    }
}

fn parse_string(s: &[u8], i: usize) -> usize {
    assert_eq!(s[i], b'"', "expected string at byte {i}");
    let mut i = i + 1;
    while i < s.len() {
        match s[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    panic!("unterminated string");
}

fn expect_lit(s: &[u8], i: usize, lit: &[u8]) -> usize {
    assert_eq!(&s[i..i + lit.len()], lit, "bad literal at byte {i}");
    i + lit.len()
}

fn parse_number(s: &[u8], i: usize) -> usize {
    let start = i;
    let mut i = i;
    while i < s.len() && matches!(s[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        i += 1;
    }
    assert!(i > start, "expected a JSON value at byte {start}");
    i
}

fn assert_well_formed_json(text: &str) {
    let bytes = text.as_bytes();
    let end = parse_value(bytes, 0);
    assert_eq!(skip_ws(bytes, end), bytes.len(), "trailing garbage");
}

/// Pull `"key":"val"` or `"key":123` out of one event line (the exporter
/// writes one event object per line, which this test relies on).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(if let Some(stripped) = rest.strip_prefix('"') {
        &stripped[..stripped.find('"')?]
    } else {
        &rest[..rest.find([',', '}'])?]
    })
}

fn evrard_online_spec() -> ExperimentSpec {
    // 40 steps so the online tuner's coarse phase (~8 probes x 2 samples per
    // function) completes and emits `online`/`decide` instants.
    let mut spec = ExperimentSpec::minihpc_turbulence(
        FreqPolicy::ManDynOnline(OnlineTunerConfig::default()),
        40,
    );
    spec.ranks = 2;
    spec.workload = WorkloadKind::Evrard { n_side: 6 };
    spec.collect_trace = true;
    spec
}

#[test]
fn evrard_online_run_emits_valid_chrome_trace() {
    let dir = scratch("evrard");
    let spec_path = dir.join("spec.json");
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.txt");
    let csv_path = dir.join("timeline.csv");
    let report_path = dir.join("report.json");
    std::fs::write(
        &spec_path,
        serde_json::to_string(&evrard_online_spec()).expect("spec serializes"),
    )
    .expect("write spec");

    let out = Command::new(bin())
        .arg("--trace-out")
        .arg(&trace_path)
        .arg("--metrics-out")
        .arg(&metrics_path)
        .arg("--timeline-csv")
        .arg(&csv_path)
        .arg("--out")
        .arg(&report_path)
        .arg(&spec_path)
        .output()
        .expect("spawn freqscale-run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed:\n{stderr}");

    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    assert_well_formed_json(&trace);
    assert!(
        trace.starts_with("{\"traceEvents\":["),
        "envelope: {}",
        &trace[..40]
    );

    // Structural checks over the one-event-per-line body.
    let mut depth: HashMap<(String, String), i64> = HashMap::new();
    let mut spans = 0u64;
    let mut cats: HashMap<String, u64> = HashMap::new();
    for line in trace
        .lines()
        .filter(|l| l.trim_start().starts_with('{') && l.contains("\"ph\":"))
    {
        let ph = field(line, "ph").expect("event has ph");
        if ph == "M" {
            continue;
        }
        let key = (
            field(line, "pid").expect("event has pid").to_string(),
            field(line, "tid").expect("event has tid").to_string(),
        );
        let cat = field(line, "cat").expect("event has cat").to_string();
        match ph {
            "B" => {
                spans += 1;
                *cats.entry(cat).or_insert(0) += 1;
                *depth.entry(key).or_insert(0) += 1;
            }
            "E" => {
                let d = depth.entry(key.clone()).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without B on track {key:?}");
            }
            "i" => {
                *cats.entry(cat).or_insert(0) += 1;
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(
        depth.values().all(|d| *d == 0),
        "unmatched B/E pairs: {depth:?}"
    );

    if telemetry::ENABLED {
        assert!(spans > 0, "enabled build must record spans");
        for want in ["sph", "gpu", "tuner", "online", "comm"] {
            assert!(
                cats.get(want).copied().unwrap_or(0) > 0,
                "no '{want}' events recorded; got {cats:?}"
            );
        }
        // SPH kernel spans carry the function names; both ranks get tracks.
        assert!(
            trace.contains("\"name\":\"MomentumEnergy\""),
            "SPH function spans"
        );
        assert!(
            trace.contains("\"name\":\"kernel\",\"cat\":\"gpu\""),
            "GPU kernel spans"
        );
        assert!(trace.contains("\"name\":\"rank-0\""), "rank 0 track");
        assert!(trace.contains("\"name\":\"rank-1\""), "rank 1 track");
        assert!(
            stderr.contains("recorder self-cost"),
            "overhead summary on stderr: {stderr}"
        );

        let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
        assert!(metrics.contains("# TYPE freqscale_instrument_calls counter"));
        assert!(metrics.contains("freqscale_call_energy_j_count"));
        assert!(metrics.contains("freqscale_telemetry_overhead_ns"));
        // The shared CSR neighbor-list build publishes its shape each step.
        for g in [
            "freqscale_neighbors_avg",
            "freqscale_neighbors_max",
            "freqscale_neighbors_csr_bytes",
            "freqscale_neighbors_build_ms",
        ] {
            assert!(
                metrics.contains(&format!("# TYPE {g} gauge")),
                "missing neighbor gauge {g} in metrics:\n{metrics}"
            );
        }

        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t_s,kind,track,cat,name,value"));
        assert!(
            csv.lines().any(|l| l.contains(",power,")),
            "power rows merged"
        );
        assert!(csv.lines().any(|l| l.contains(",span_begin,")), "span rows");
        // Rows are time-sorted.
        let ts: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "CSV not time-sorted");
    } else {
        // Telemetry compiled out: outputs exist and are valid, but empty.
        assert_eq!(spans, 0, "disabled build must record nothing");
        assert!(stderr.contains("without the `telemetry` feature"));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_spec_file_exits_nonzero_with_path() {
    let out = Command::new(bin())
        .arg("/nonexistent/definitely-missing-spec.json")
        .output()
        .expect("spawn freqscale-run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean error exit, not a panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: reading spec /nonexistent/definitely-missing-spec.json"),
        "stderr names the spec and cause: {stderr}"
    );
}

#[test]
fn invalid_spec_file_exits_nonzero_with_path() {
    let dir = scratch("badspec");
    let spec_path = dir.join("broken.json");
    std::fs::write(&spec_path, "{ this is not json").expect("write bad spec");
    let out = Command::new(bin())
        .arg(&spec_path)
        .output()
        .expect("spawn freqscale-run");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(1), "clean error exit, not a panic");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: parsing spec") && stderr.contains("broken.json"),
        "stderr names the spec and cause: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
