//! Global simulation bounding box with optional periodicity.

use serde::{Deserialize, Serialize};

/// Axis-aligned simulation volume. Subsonic-turbulence runs use a periodic
/// unit box; Evrard collapse uses an open box around the gas sphere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Box3 {
    pub xmin: f64,
    pub xmax: f64,
    pub ymin: f64,
    pub ymax: f64,
    pub zmin: f64,
    pub zmax: f64,
    pub periodic: bool,
}

impl Box3 {
    /// A cube `[lo, hi]^3`.
    pub fn cube(lo: f64, hi: f64, periodic: bool) -> Self {
        assert!(hi > lo, "degenerate box");
        Box3 {
            xmin: lo,
            xmax: hi,
            ymin: lo,
            ymax: hi,
            zmin: lo,
            zmax: hi,
            periodic,
        }
    }

    /// The periodic unit box used by the turbulence workload.
    pub fn unit_periodic() -> Self {
        Box3::cube(0.0, 1.0, true)
    }

    pub fn lx(&self) -> f64 {
        self.xmax - self.xmin
    }

    pub fn ly(&self) -> f64 {
        self.ymax - self.ymin
    }

    pub fn lz(&self) -> f64 {
        self.zmax - self.zmin
    }

    /// Longest edge.
    pub fn max_extent(&self) -> f64 {
        self.lx().max(self.ly()).max(self.lz())
    }

    /// True if `(x, y, z)` lies inside (closed) bounds.
    pub fn contains(&self, x: f64, y: f64, z: f64) -> bool {
        x >= self.xmin
            && x <= self.xmax
            && y >= self.ymin
            && y <= self.ymax
            && z >= self.zmin
            && z <= self.zmax
    }

    /// Normalize a position into `[0, 1)^3` box coordinates (clamped for
    /// non-periodic boxes, wrapped for periodic ones).
    pub fn normalize(&self, x: f64, y: f64, z: f64) -> (f64, f64, f64) {
        let nx = (x - self.xmin) / self.lx();
        let ny = (y - self.ymin) / self.ly();
        let nz = (z - self.zmin) / self.lz();
        if self.periodic {
            (nx.rem_euclid(1.0), ny.rem_euclid(1.0), nz.rem_euclid(1.0))
        } else {
            (
                nx.clamp(0.0, 1.0 - f64::EPSILON),
                ny.clamp(0.0, 1.0 - f64::EPSILON),
                nz.clamp(0.0, 1.0 - f64::EPSILON),
            )
        }
    }

    /// Wrap a position back into the box (periodic) or leave it (open).
    pub fn wrap(&self, x: f64, y: f64, z: f64) -> (f64, f64, f64) {
        if !self.periodic {
            return (x, y, z);
        }
        (
            self.xmin + (x - self.xmin).rem_euclid(self.lx()),
            self.ymin + (y - self.ymin).rem_euclid(self.ly()),
            self.zmin + (z - self.zmin).rem_euclid(self.lz()),
        )
    }

    /// Minimum-image displacement `a - b` honoring periodicity.
    pub fn delta(&self, ax: f64, ay: f64, az: f64, bx: f64, by: f64, bz: f64) -> (f64, f64, f64) {
        let mut dx = ax - bx;
        let mut dy = ay - by;
        let mut dz = az - bz;
        if self.periodic {
            let (lx, ly, lz) = (self.lx(), self.ly(), self.lz());
            if dx > 0.5 * lx {
                dx -= lx;
            } else if dx < -0.5 * lx {
                dx += lx;
            }
            if dy > 0.5 * ly {
                dy -= ly;
            } else if dy < -0.5 * ly {
                dy += ly;
            }
            if dz > 0.5 * lz {
                dz -= lz;
            } else if dz < -0.5 * lz {
                dz += lz;
            }
        }
        (dx, dy, dz)
    }

    /// Squared minimum-image distance.
    pub fn dist2(&self, ax: f64, ay: f64, az: f64, bx: f64, by: f64, bz: f64) -> f64 {
        let (dx, dy, dz) = self.delta(ax, ay, az, bx, by, bz);
        dx * dx + dy * dy + dz * dz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_box_basics() {
        let b = Box3::unit_periodic();
        assert_eq!(b.lx(), 1.0);
        assert!(b.contains(0.5, 0.5, 0.5));
        assert!(!b.contains(1.5, 0.5, 0.5));
        assert_eq!(b.max_extent(), 1.0);
    }

    #[test]
    fn periodic_wrap_and_normalize() {
        let b = Box3::unit_periodic();
        let (x, y, z) = b.wrap(1.25, -0.25, 3.5);
        assert!((x - 0.25).abs() < 1e-12);
        assert!((y - 0.75).abs() < 1e-12);
        assert!((z - 0.5).abs() < 1e-12);
        let (nx, ..) = b.normalize(1.25, 0.0, 0.0);
        assert!((nx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn open_box_clamps_normalization() {
        let b = Box3::cube(-1.0, 1.0, false);
        let (nx, ny, nz) = b.normalize(5.0, -5.0, 0.0);
        assert!(nx < 1.0 && nx > 0.99);
        assert_eq!(ny, 0.0);
        assert!((nz - 0.5).abs() < 1e-12);
    }

    #[test]
    fn minimum_image_distance() {
        let b = Box3::unit_periodic();
        // Points at 0.05 and 0.95 are 0.1 apart through the boundary.
        let d2 = b.dist2(0.05, 0.0, 0.0, 0.95, 0.0, 0.0);
        assert!((d2 - 0.01).abs() < 1e-12);
        let open = Box3::cube(0.0, 1.0, false);
        let d2o = open.dist2(0.05, 0.0, 0.0, 0.95, 0.0, 0.0);
        assert!((d2o - 0.81).abs() < 1e-12);
    }
}
