//! Uniform-grid neighbor search (cell lists) with periodic support.
//!
//! SPH needs all neighbors within the interaction radius `r = 2h`. A cell
//! list with cell edge `>= r` finds them by scanning the 27 surrounding
//! cells. Correctness is property-tested against the brute-force reference
//! ([`brute_force_neighbors`]).

use serde::{Deserialize, Serialize};

use crate::box3::Box3;

/// CSR-layout uniform grid over particle positions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellList {
    bbox: Box3,
    nx: usize,
    ny: usize,
    nz: usize,
    /// CSR offsets per cell (length `nx*ny*nz + 1`).
    cell_start: Vec<u32>,
    /// Particle indices grouped by cell.
    order: Vec<u32>,
}

impl CellList {
    /// Build over positions with cells at least `cell_size` wide. The number
    /// of cells per axis is clamped to at least 1.
    pub fn build(x: &[f64], y: &[f64], z: &[f64], bbox: &Box3, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), z.len());
        let nx = ((bbox.lx() / cell_size).floor() as usize).max(1);
        let ny = ((bbox.ly() / cell_size).floor() as usize).max(1);
        let nz = ((bbox.lz() / cell_size).floor() as usize).max(1);
        let ncells = nx * ny * nz;
        assert!(
            ncells <= u32::MAX as usize && x.len() <= u32::MAX as usize,
            "cell/particle indices must fit u32"
        );

        // Cell assignment is the expensive per-particle part (normalize +
        // float-to-index); compute it in parallel once (as u32 to halve the
        // scratch footprint), then run the histogram / prefix-sum / fill
        // passes serially so `order` keeps the exact serial-insertion layout.
        let cells: Vec<u32> = par::par_map(x.len(), |i| {
            let (ux, uy, uz) = bbox.normalize(x[i], y[i], z[i]);
            let cx = ((ux * nx as f64) as usize).min(nx - 1);
            let cy = ((uy * ny as f64) as usize).min(ny - 1);
            let cz = ((uz * nz as f64) as usize).min(nz - 1);
            ((cx * ny + cy) * nz + cz) as u32
        });
        // Single prefix-sum pass, no scratch clone: histogram shifted by one
        // slot, prefix-sum in place (cell_start[c] = first slot of cell c),
        // then fill using cell_start[c] itself as the insertion cursor. The
        // fill leaves each entry holding the *end* of its cell — one
        // right-shift restores the CSR start offsets.
        let mut cell_start = vec![0u32; ncells + 1];
        for &c in &cells {
            cell_start[c as usize + 1] += 1;
        }
        for c in 1..=ncells {
            cell_start[c] += cell_start[c - 1];
        }
        let mut order = vec![0u32; x.len()];
        for (i, &c) in cells.iter().enumerate() {
            let cursor = &mut cell_start[c as usize];
            order[*cursor as usize] = i as u32;
            *cursor += 1;
        }
        cell_start.copy_within(0..ncells, 1);
        cell_start[0] = 0;
        CellList {
            bbox: *bbox,
            nx,
            ny,
            nz,
            cell_start,
            order,
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Particles stored.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Distinct wrapped indices of `{c-1, c, c+1}` along an axis of `n`
    /// cells, as a fixed stencil (`array, count`) — neighbor queries run per
    /// particle per sweep, so this must not heap-allocate.
    fn axis_candidates(&self, c: isize, n: usize) -> ([usize; 3], usize) {
        let mut out = [0usize; 3];
        let mut len = 0;
        for d in -1isize..=1 {
            let raw = c + d;
            let idx = if self.bbox.periodic {
                raw.rem_euclid(n as isize) as usize
            } else if raw < 0 || raw >= n as isize {
                continue;
            } else {
                raw as usize
            };
            // O(3) dedup: tiny periodic grids (n <= 2) alias wrapped offsets.
            if !out[..len].contains(&idx) {
                out[len] = idx;
                len += 1;
            }
        }
        (out, len)
    }

    /// Visit every particle within distance `r` of `(px, py, pz)` (inclusive),
    /// calling `f(index, dist2)`. The query point itself is visited if it is
    /// one of the stored particles — callers filter self-interaction.
    #[allow(clippy::too_many_arguments)]
    pub fn for_neighbors<F: FnMut(usize, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        mut f: F,
    ) {
        let (ux, uy, uz) = self.bbox.normalize(px, py, pz);
        let cx = ((ux * self.nx as f64) as isize).min(self.nx as isize - 1);
        let cy = ((uy * self.ny as f64) as isize).min(self.ny as isize - 1);
        let cz = ((uz * self.nz as f64) as isize).min(self.nz as isize - 1);
        let r2 = r * r;
        let (xs, xn) = self.axis_candidates(cx, self.nx);
        let (ys, yn) = self.axis_candidates(cy, self.ny);
        let (zs, zn) = self.axis_candidates(cz, self.nz);
        for &ix in &xs[..xn] {
            for &iy in &ys[..yn] {
                for &iz in &zs[..zn] {
                    let c = (ix * self.ny + iy) * self.nz + iz;
                    let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
                    for &j in &self.order[s..e] {
                        let j = j as usize;
                        let d2 = self.bbox.dist2(px, py, pz, x[j], y[j], z[j]);
                        if d2 <= r2 {
                            f(j, d2);
                        }
                    }
                }
            }
        }
    }

    /// Collect neighbor indices of particle `i` within `r`, excluding `i`.
    pub fn neighbors_of(&self, i: usize, r: f64, x: &[f64], y: &[f64], z: &[f64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_neighbors(x[i], y[i], z[i], r, x, y, z, |j, _| {
            if j != i {
                out.push(j);
            }
        });
        out.sort_unstable();
        out
    }
}

/// O(n²) reference neighbor search, used to validate the cell list.
pub fn brute_force_neighbors(
    i: usize,
    r: f64,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    bbox: &Box3,
) -> Vec<usize> {
    let r2 = r * r;
    (0..x.len())
        .filter(|&j| j != i && bbox.dist2(x[i], y[i], z[i], x[j], y[j], z[j]) <= r2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = || (0..n).map(|_| rng.random::<f64>()).collect::<Vec<_>>();
        let x = f();
        let y = f();
        let z = f();
        (x, y, z)
    }

    #[test]
    fn matches_brute_force_periodic() {
        let (x, y, z) = cloud(300, 1);
        let bbox = Box3::unit_periodic();
        let r = 0.12;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        for i in (0..300).step_by(17) {
            assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox),
                "mismatch at particle {i}"
            );
        }
    }

    #[test]
    fn matches_brute_force_open_box() {
        let (x, y, z) = cloud(300, 2);
        let bbox = Box3::cube(0.0, 1.0, false);
        let r = 0.09;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        for i in (0..300).step_by(13) {
            assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }
    }

    #[test]
    fn tiny_grid_does_not_duplicate_periodic_images() {
        // Radius so large the grid collapses to 2 cells per axis: wrapped
        // offsets would visit the same cell twice without deduplication.
        let (x, y, z) = cloud(50, 3);
        let bbox = Box3::unit_periodic();
        let r = 0.45;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        assert!(cl.dims().0 <= 2);
        for i in 0..50 {
            let mut found = cl.neighbors_of(i, r, &x, &y, &z);
            let len = found.len();
            found.dedup();
            assert_eq!(found.len(), len, "duplicate neighbors for {i}");
            assert_eq!(found, brute_force_neighbors(i, r, &x, &y, &z, &bbox));
        }
    }

    #[test]
    fn empty_and_single_particle() {
        let bbox = Box3::unit_periodic();
        let cl = CellList::build(&[], &[], &[], &bbox, 0.1);
        assert!(cl.is_empty());
        let (x, y, z) = (vec![0.5], vec![0.5], vec![0.5]);
        let cl = CellList::build(&x, &y, &z, &bbox, 0.1);
        assert_eq!(cl.neighbors_of(0, 0.1, &x, &y, &z), Vec::<usize>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_celllist_equals_brute_force(
            seed in 0u64..1000,
            n in 1usize..150,
            r in 0.02f64..0.5,
            periodic in proptest::bool::ANY,
        ) {
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let cl = CellList::build(&x, &y, &z, &bbox, r);
            let i = (seed as usize) % n;
            prop_assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }
    }
}
