//! Uniform-grid neighbor search (cell lists) with periodic support.
//!
//! SPH needs all neighbors within the interaction radius `r = 2h`. A cell
//! list with cell edge `>= r` finds them by scanning the 27 surrounding
//! cells. Correctness is property-tested against the brute-force reference
//! ([`brute_force_neighbors`]).

use serde::{Deserialize, Serialize};

use crate::box3::Box3;

/// CSR-layout uniform grid over particle positions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellList {
    bbox: Box3,
    nx: usize,
    ny: usize,
    nz: usize,
    /// CSR offsets per cell (length `nx*ny*nz + 1`).
    cell_start: Vec<u32>,
    /// Particle indices grouped by cell.
    order: Vec<u32>,
}

impl CellList {
    /// Build over positions with cells at least `cell_size` wide. The number
    /// of cells per axis is clamped to at least 1.
    pub fn build(x: &[f64], y: &[f64], z: &[f64], bbox: &Box3, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), z.len());
        let nx = ((bbox.lx() / cell_size).floor() as usize).max(1);
        let ny = ((bbox.ly() / cell_size).floor() as usize).max(1);
        let nz = ((bbox.lz() / cell_size).floor() as usize).max(1);
        let ncells = nx * ny * nz;
        assert!(
            ncells <= u32::MAX as usize && x.len() <= u32::MAX as usize,
            "cell/particle indices must fit u32"
        );

        // Cell assignment is the expensive per-particle part (normalize +
        // float-to-index); compute it in parallel once (as u32 to halve the
        // scratch footprint), then run the histogram / prefix-sum / fill
        // passes serially so `order` keeps the exact serial-insertion layout.
        let cells: Vec<u32> = par::par_map(x.len(), |i| {
            let (ux, uy, uz) = bbox.normalize(x[i], y[i], z[i]);
            let cx = ((ux * nx as f64) as usize).min(nx - 1);
            let cy = ((uy * ny as f64) as usize).min(ny - 1);
            let cz = ((uz * nz as f64) as usize).min(nz - 1);
            ((cx * ny + cy) * nz + cz) as u32
        });
        // Single prefix-sum pass, no scratch clone: histogram shifted by one
        // slot, prefix-sum in place (cell_start[c] = first slot of cell c),
        // then fill using cell_start[c] itself as the insertion cursor. The
        // fill leaves each entry holding the *end* of its cell — one
        // right-shift restores the CSR start offsets.
        let mut cell_start = vec![0u32; ncells + 1];
        for &c in &cells {
            cell_start[c as usize + 1] += 1;
        }
        for c in 1..=ncells {
            cell_start[c] += cell_start[c - 1];
        }
        let mut order = vec![0u32; x.len()];
        for (i, &c) in cells.iter().enumerate() {
            let cursor = &mut cell_start[c as usize];
            order[*cursor as usize] = i as u32;
            *cursor += 1;
        }
        cell_start.copy_within(0..ncells, 1);
        cell_start[0] = 0;
        CellList {
            bbox: *bbox,
            nx,
            ny,
            nz,
            cell_start,
            order,
        }
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Particles stored.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Distinct wrapped indices of `{c-1, c, c+1}` along an axis of `n`
    /// cells, as a fixed stencil (`array, count`) — neighbor queries run per
    /// particle per sweep, so this must not heap-allocate.
    fn axis_candidates(&self, c: isize, n: usize) -> ([usize; 3], usize) {
        let mut out = [0usize; 3];
        let mut len = 0;
        for d in -1isize..=1 {
            let raw = c + d;
            let idx = if self.bbox.periodic {
                raw.rem_euclid(n as isize) as usize
            } else if raw < 0 || raw >= n as isize {
                continue;
            } else {
                raw as usize
            };
            // O(3) dedup: tiny periodic grids (n <= 2) alias wrapped offsets.
            if !out[..len].contains(&idx) {
                out[len] = idx;
                len += 1;
            }
        }
        (out, len)
    }

    /// Visit every particle within distance `r` of `(px, py, pz)` (inclusive),
    /// calling `f(index, dist2)`. The query point itself is visited if it is
    /// one of the stored particles — callers filter self-interaction.
    #[allow(clippy::too_many_arguments)]
    pub fn for_neighbors<F: FnMut(usize, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        mut f: F,
    ) {
        let (ux, uy, uz) = self.bbox.normalize(px, py, pz);
        let cx = ((ux * self.nx as f64) as isize).min(self.nx as isize - 1);
        let cy = ((uy * self.ny as f64) as isize).min(self.ny as isize - 1);
        let cz = ((uz * self.nz as f64) as isize).min(self.nz as isize - 1);
        let r2 = r * r;
        let (xs, xn) = self.axis_candidates(cx, self.nx);
        let (ys, yn) = self.axis_candidates(cy, self.ny);
        let (zs, zn) = self.axis_candidates(cz, self.nz);
        for &ix in &xs[..xn] {
            for &iy in &ys[..yn] {
                for &iz in &zs[..zn] {
                    let c = (ix * self.ny + iy) * self.nz + iz;
                    let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
                    for &j in &self.order[s..e] {
                        let j = j as usize;
                        let d2 = self.bbox.dist2(px, py, pz, x[j], y[j], z[j]);
                        if d2 <= r2 {
                            f(j, d2);
                        }
                    }
                }
            }
        }
    }

    /// Cell-sorted particle indices: `order()[k]` is the particle stored in
    /// CSR slot `k`. The neighbor-list build gathers coordinate copies into
    /// this layout so candidate scans read memory contiguously.
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// The [`for_neighbors`](CellList::for_neighbors) walk, reading candidate
    /// positions from *cell-sorted coordinate copies* (`xs[k]` must hold the
    /// position of particle `order()[k]`) and emitting the minimum-image
    /// displacement instead of just the distance: `emit(j, dx, dy, dz, d2)`
    /// with `(dx, dy, dz) = r_j - r_i` for every candidate with `d2 <= r²`.
    ///
    /// The emitted `(j, d2)` sequence is bit-identical to the one
    /// `for_neighbors` produces for the same query: the cell visit order is
    /// the same code, IEEE negation is exact (`b - a == -(a - b)`, squares
    /// agree), and the branch-free select form of the periodic wrap below
    /// performs the same operations as [`Box3::delta`]'s branches
    /// (`d - 0.0 == d` and `d - (-l) == d + l` exactly).
    ///
    /// Each cell run is scanned in 4-lane chunks: deltas, wraps and `d2` are
    /// computed branch-free for the whole chunk (the pass rate at the list
    /// radius is ~10-40%, so the scan dominates the build), then the rare
    /// passing lanes are emitted in index order — the emitted values and
    /// sequence are exactly the per-candidate loop's. The chunked body is
    /// dispatched through an AVX2 clone when available (see
    /// [`crate::simd`]; same operations, wider registers, same bits).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_candidate_deltas<F: FnMut(u32, f64, f64, f64, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        emit: F,
    ) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (it is the portable body under different codegen).
            return unsafe {
                self.for_candidate_deltas_avx2::<false, F>(px, py, pz, r, &[], xs, ys, zs, emit)
            };
        }
        self.for_candidate_deltas_impl::<false, F>(px, py, pz, r, &[], xs, ys, zs, emit)
    }

    /// [`CellList::for_candidate_deltas`] with a per-candidate radius
    /// floor: candidate `k` passes if `d2 <= max(r², rs2[k])`, where
    /// `rs2[k]` is the candidate's own squared search radius in cell-sorted
    /// slot order (`rs2[k]` belongs to particle `order()[k]`). This is the
    /// h-aware neighbor-list build rule — a pair is stored when it is
    /// within *either* particle's reach — which keeps every row complete
    /// for queries up to the row's own radius while dropping the far
    /// candidates a globally-maximal radius would haul in. The emitted
    /// subsequence and its values are exactly the plain scan's (the pass
    /// set is widened, never reordered).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_candidate_deltas_adaptive<F: FnMut(u32, f64, f64, f64, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        rs2: &[f64],
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        emit: F,
    ) {
        debug_assert_eq!(rs2.len(), xs.len(), "per-candidate radii mismatch");
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (it is the portable body under different codegen).
            return unsafe {
                self.for_candidate_deltas_avx2::<true, F>(px, py, pz, r, rs2, xs, ys, zs, emit)
            };
        }
        self.for_candidate_deltas_impl::<true, F>(px, py, pz, r, rs2, xs, ys, zs, emit)
    }

    /// Hand-vectorized AVX2 scan: the auto-vectorizer's cost model keeps
    /// the chunked scalar body on 128-bit ops, so the 4-lane delta / wrap /
    /// `d2` math is spelled with explicit 256-bit intrinsics here. Every
    /// intrinsic is the same correctly-rounded IEEE-754 double operation
    /// the scalar body performs, on the same values in the same order:
    /// `vsubpd`/`vmulpd`/`vaddpd` per lane; the wrap as mask-and-or
    /// (`lx` where `dx > hx`, `-lx` where `dx < -hx`, else `+0.0` — the
    /// scalar path also subtracts `0.0` in its else arm, and the two
    /// compare masks are mutually exclusive, so the merged subtrahend is
    /// identical); ordered compares matching `>`/`<`/`<=`. Passing lanes
    /// are emitted in index order from a 4-lane spill. Chunks where no
    /// lane passes (the common case at ~10-40% pass rates) skip the spill
    /// and emit loop entirely on the movemask.
    ///
    /// With `ADAPTIVE` the pass limit per lane is `max(r², rs2[k])`
    /// (`vmaxpd` — identical to `f64::max` on the positive finite radii
    /// involved); without it `rs2` is unused and the limit folds to the
    /// scalar constant.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn for_candidate_deltas_avx2<const ADAPTIVE: bool, F: FnMut(u32, f64, f64, f64, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        rs2: &[f64],
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        mut emit: F,
    ) {
        use std::arch::x86_64::*;
        let (ux, uy, uz) = self.bbox.normalize(px, py, pz);
        let cx = ((ux * self.nx as f64) as isize).min(self.nx as isize - 1);
        let cy = ((uy * self.ny as f64) as isize).min(self.ny as isize - 1);
        let cz = ((uz * self.nz as f64) as isize).min(self.nz as isize - 1);
        let r2 = r * r;
        let periodic = self.bbox.periodic;
        let (lx, ly, lz) = (self.bbox.lx(), self.bbox.ly(), self.bbox.lz());
        let (hx, hy, hz) = (0.5 * lx, 0.5 * ly, 0.5 * lz);
        let (sx, xn) = self.axis_candidates(cx, self.nx);
        let (sy, yn) = self.axis_candidates(cy, self.ny);
        let (sz, zn) = self.axis_candidates(cz, self.nz);
        let vpx = _mm256_set1_pd(px);
        let vpy = _mm256_set1_pd(py);
        let vpz = _mm256_set1_pd(pz);
        let vr2 = _mm256_set1_pd(r2);
        let (vlx, vly, vlz) = (_mm256_set1_pd(lx), _mm256_set1_pd(ly), _mm256_set1_pd(lz));
        let (vnlx, vnly, vnlz) = (
            _mm256_set1_pd(-lx),
            _mm256_set1_pd(-ly),
            _mm256_set1_pd(-lz),
        );
        let (vhx, vhy, vhz) = (_mm256_set1_pd(hx), _mm256_set1_pd(hy), _mm256_set1_pd(hz));
        let (vnhx, vnhy, vnhz) = (
            _mm256_set1_pd(-hx),
            _mm256_set1_pd(-hy),
            _mm256_set1_pd(-hz),
        );
        // dx -= (lx where dx > hx) | (-lx where dx < -hx) | (+0.0 else);
        // the masks are disjoint, so or-merging the masked constants is
        // exactly the scalar if/else-if/else subtrahend.
        #[inline(always)]
        unsafe fn wrap(
            d: __m256d,
            vh: __m256d,
            vnh: __m256d,
            vl: __m256d,
            vnl: __m256d,
        ) -> __m256d {
            let hi = _mm256_cmp_pd::<_CMP_GT_OQ>(d, vh);
            let lo = _mm256_cmp_pd::<_CMP_LT_OQ>(d, vnh);
            let adj = _mm256_or_pd(_mm256_and_pd(hi, vl), _mm256_and_pd(lo, vnl));
            _mm256_sub_pd(d, adj)
        }
        // Scalar remainder: identical expressions to the portable body.
        let candidate = |k: usize| {
            let mut dx = xs[k] - px;
            let mut dy = ys[k] - py;
            let mut dz = zs[k] - pz;
            if periodic {
                dx -= if dx > hx {
                    lx
                } else if dx < -hx {
                    -lx
                } else {
                    0.0
                };
                dy -= if dy > hy {
                    ly
                } else if dy < -hy {
                    -ly
                } else {
                    0.0
                };
                dz -= if dz > hz {
                    lz
                } else if dz < -hz {
                    -lz
                } else {
                    0.0
                };
            }
            (dx, dy, dz, dx * dx + dy * dy + dz * dz)
        };
        for &ix in &sx[..xn] {
            for &iy in &sy[..yn] {
                for &iz in &sz[..zn] {
                    let c = (ix * self.ny + iy) * self.nz + iz;
                    let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
                    let mut k = s;
                    while k + 4 <= e {
                        let mut dx = _mm256_sub_pd(_mm256_loadu_pd(xs.as_ptr().add(k)), vpx);
                        let mut dy = _mm256_sub_pd(_mm256_loadu_pd(ys.as_ptr().add(k)), vpy);
                        let mut dz = _mm256_sub_pd(_mm256_loadu_pd(zs.as_ptr().add(k)), vpz);
                        if periodic {
                            dx = wrap(dx, vhx, vnhx, vlx, vnlx);
                            dy = wrap(dy, vhy, vnhy, vly, vnly);
                            dz = wrap(dz, vhz, vnhz, vlz, vnlz);
                        }
                        let d2 = _mm256_add_pd(
                            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                            _mm256_mul_pd(dz, dz),
                        );
                        let vlim = if ADAPTIVE {
                            _mm256_max_pd(vr2, _mm256_loadu_pd(rs2.as_ptr().add(k)))
                        } else {
                            vr2
                        };
                        let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(d2, vlim));
                        if mask != 0 {
                            let mut a = [0.0f64; 4];
                            let mut b = [0.0f64; 4];
                            let mut cc = [0.0f64; 4];
                            let mut q = [0.0f64; 4];
                            _mm256_storeu_pd(a.as_mut_ptr(), dx);
                            _mm256_storeu_pd(b.as_mut_ptr(), dy);
                            _mm256_storeu_pd(cc.as_mut_ptr(), dz);
                            _mm256_storeu_pd(q.as_mut_ptr(), d2);
                            for l in 0..4 {
                                if mask & (1 << l) != 0 {
                                    emit(self.order[k + l], a[l], b[l], cc[l], q[l]);
                                }
                            }
                        }
                        k += 4;
                    }
                    while k < e {
                        let (dx, dy, dz, d2) = candidate(k);
                        let lim = if ADAPTIVE { r2.max(rs2[k]) } else { r2 };
                        if d2 <= lim {
                            emit(self.order[k], dx, dy, dz, d2);
                        }
                        k += 1;
                    }
                }
            }
        }
    }

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn for_candidate_deltas_impl<const ADAPTIVE: bool, F: FnMut(u32, f64, f64, f64, f64)>(
        &self,
        px: f64,
        py: f64,
        pz: f64,
        r: f64,
        rs2: &[f64],
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        mut emit: F,
    ) {
        let (ux, uy, uz) = self.bbox.normalize(px, py, pz);
        let cx = ((ux * self.nx as f64) as isize).min(self.nx as isize - 1);
        let cy = ((uy * self.ny as f64) as isize).min(self.ny as isize - 1);
        let cz = ((uz * self.nz as f64) as isize).min(self.nz as isize - 1);
        let r2 = r * r;
        let periodic = self.bbox.periodic;
        let (lx, ly, lz) = (self.bbox.lx(), self.bbox.ly(), self.bbox.lz());
        let (hx, hy, hz) = (0.5 * lx, 0.5 * ly, 0.5 * lz);
        let (sx, xn) = self.axis_candidates(cx, self.nx);
        let (sy, yn) = self.axis_candidates(cy, self.ny);
        let (sz, zn) = self.axis_candidates(cz, self.nz);
        // One candidate's delta/wrap/d2 — shared by the chunked lanes and
        // the remainder so both compute the same expressions (same bits).
        let candidate = |k: usize| {
            let mut dx = xs[k] - px;
            let mut dy = ys[k] - py;
            let mut dz = zs[k] - pz;
            if periodic {
                dx -= if dx > hx {
                    lx
                } else if dx < -hx {
                    -lx
                } else {
                    0.0
                };
                dy -= if dy > hy {
                    ly
                } else if dy < -hy {
                    -ly
                } else {
                    0.0
                };
                dz -= if dz > hz {
                    lz
                } else if dz < -hz {
                    -lz
                } else {
                    0.0
                };
            }
            (dx, dy, dz, dx * dx + dy * dy + dz * dz)
        };
        for &ix in &sx[..xn] {
            for &iy in &sy[..yn] {
                for &iz in &sz[..zn] {
                    let c = (ix * self.ny + iy) * self.nz + iz;
                    let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
                    let mut k = s;
                    while k + 4 <= e {
                        // Structure-of-arrays lanes, filled by component-wise
                        // sub-loops: each is a straight 4-wide map the SLP
                        // vectorizer turns into one 256-bit op (an
                        // array-of-tuples chunk defeats it with shuffles).
                        let mut dxv = [0.0f64; 4];
                        let mut dyv = [0.0f64; 4];
                        let mut dzv = [0.0f64; 4];
                        let mut d2v = [0.0f64; 4];
                        for l in 0..4 {
                            dxv[l] = xs[k + l] - px;
                            dyv[l] = ys[k + l] - py;
                            dzv[l] = zs[k + l] - pz;
                        }
                        if periodic {
                            for l in 0..4 {
                                dxv[l] -= if dxv[l] > hx {
                                    lx
                                } else if dxv[l] < -hx {
                                    -lx
                                } else {
                                    0.0
                                };
                                dyv[l] -= if dyv[l] > hy {
                                    ly
                                } else if dyv[l] < -hy {
                                    -ly
                                } else {
                                    0.0
                                };
                                dzv[l] -= if dzv[l] > hz {
                                    lz
                                } else if dzv[l] < -hz {
                                    -lz
                                } else {
                                    0.0
                                };
                            }
                        }
                        for l in 0..4 {
                            d2v[l] = dxv[l] * dxv[l] + dyv[l] * dyv[l] + dzv[l] * dzv[l];
                        }
                        for l in 0..4 {
                            let lim = if ADAPTIVE { r2.max(rs2[k + l]) } else { r2 };
                            if d2v[l] <= lim {
                                emit(self.order[k + l], dxv[l], dyv[l], dzv[l], d2v[l]);
                            }
                        }
                        k += 4;
                    }
                    while k < e {
                        let (dx, dy, dz, d2) = candidate(k);
                        let lim = if ADAPTIVE { r2.max(rs2[k]) } else { r2 };
                        if d2 <= lim {
                            emit(self.order[k], dx, dy, dz, d2);
                        }
                        k += 1;
                    }
                }
            }
        }
    }

    /// Collect neighbor indices of particle `i` within `r`, excluding `i`.
    pub fn neighbors_of(&self, i: usize, r: f64, x: &[f64], y: &[f64], z: &[f64]) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_neighbors(x[i], y[i], z[i], r, x, y, z, |j, _| {
            if j != i {
                out.push(j);
            }
        });
        out.sort_unstable();
        out
    }
}

/// O(n²) reference neighbor search, used to validate the cell list.
pub fn brute_force_neighbors(
    i: usize,
    r: f64,
    x: &[f64],
    y: &[f64],
    z: &[f64],
    bbox: &Box3,
) -> Vec<usize> {
    let r2 = r * r;
    (0..x.len())
        .filter(|&j| j != i && bbox.dist2(x[i], y[i], z[i], x[j], y[j], z[j]) <= r2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = || (0..n).map(|_| rng.random::<f64>()).collect::<Vec<_>>();
        let x = f();
        let y = f();
        let z = f();
        (x, y, z)
    }

    #[test]
    fn matches_brute_force_periodic() {
        let (x, y, z) = cloud(300, 1);
        let bbox = Box3::unit_periodic();
        let r = 0.12;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        for i in (0..300).step_by(17) {
            assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox),
                "mismatch at particle {i}"
            );
        }
    }

    #[test]
    fn matches_brute_force_open_box() {
        let (x, y, z) = cloud(300, 2);
        let bbox = Box3::cube(0.0, 1.0, false);
        let r = 0.09;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        for i in (0..300).step_by(13) {
            assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }
    }

    #[test]
    fn tiny_grid_does_not_duplicate_periodic_images() {
        // Radius so large the grid collapses to 2 cells per axis: wrapped
        // offsets would visit the same cell twice without deduplication.
        let (x, y, z) = cloud(50, 3);
        let bbox = Box3::unit_periodic();
        let r = 0.45;
        let cl = CellList::build(&x, &y, &z, &bbox, r);
        assert!(cl.dims().0 <= 2);
        for i in 0..50 {
            let mut found = cl.neighbors_of(i, r, &x, &y, &z);
            let len = found.len();
            found.dedup();
            assert_eq!(found.len(), len, "duplicate neighbors for {i}");
            assert_eq!(found, brute_force_neighbors(i, r, &x, &y, &z, &bbox));
        }
    }

    #[test]
    fn candidate_deltas_replay_for_neighbors_bitwise() {
        // The neighbor-list build rests on this: the sorted-coordinate delta
        // walk must emit the same (j, d2) sequence — same order, same bits —
        // as for_neighbors, and its deltas must equal Box3::delta(j, i).
        for periodic in [true, false] {
            let (x, y, z) = cloud(250, 8);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let r = 0.14;
            let cl = CellList::build(&x, &y, &z, &bbox, r);
            let order = cl.order();
            let xs: Vec<f64> = order.iter().map(|&j| x[j as usize]).collect();
            let ys: Vec<f64> = order.iter().map(|&j| y[j as usize]).collect();
            let zs: Vec<f64> = order.iter().map(|&j| z[j as usize]).collect();
            for i in (0..250).step_by(9) {
                let mut direct = Vec::new();
                cl.for_neighbors(x[i], y[i], z[i], r, &x, &y, &z, |j, d2| {
                    direct.push((j, d2.to_bits()));
                });
                let mut replay = Vec::new();
                cl.for_candidate_deltas(x[i], y[i], z[i], r, &xs, &ys, &zs, |j, dx, dy, dz, d2| {
                    let (ex, ey, ez) = bbox.delta(
                        x[j as usize],
                        y[j as usize],
                        z[j as usize],
                        x[i],
                        y[i],
                        z[i],
                    );
                    assert_eq!(dx.to_bits(), ex.to_bits(), "dx of pair ({i},{j})");
                    assert_eq!(dy.to_bits(), ey.to_bits(), "dy of pair ({i},{j})");
                    assert_eq!(dz.to_bits(), ez.to_bits(), "dz of pair ({i},{j})");
                    replay.push((j as usize, d2.to_bits()));
                });
                assert_eq!(direct, replay, "particle {i}, periodic={periodic}");
            }
        }
    }

    #[test]
    fn empty_and_single_particle() {
        let bbox = Box3::unit_periodic();
        let cl = CellList::build(&[], &[], &[], &bbox, 0.1);
        assert!(cl.is_empty());
        let (x, y, z) = (vec![0.5], vec![0.5], vec![0.5]);
        let cl = CellList::build(&x, &y, &z, &bbox, 0.1);
        assert_eq!(cl.neighbors_of(0, 0.1, &x, &y, &z), Vec::<usize>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_celllist_equals_brute_force(
            seed in 0u64..1000,
            n in 1usize..150,
            r in 0.02f64..0.5,
            periodic in proptest::bool::ANY,
        ) {
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let cl = CellList::build(&x, &y, &z, &bbox, r);
            let i = (seed as usize) % n;
            prop_assert_eq!(
                cl.neighbors_of(i, r, &x, &y, &z),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }
    }
}
