//! SFC domain decomposition and halo candidate discovery.
//!
//! Each rank owns a contiguous key range of the global SFC (derived from the
//! octree's balanced partition). Halos are discovered geometrically: a rank
//! sends every local particle lying within the interaction radius of a peer's
//! bounding box — the exchange pattern `DomainDecompAndSync` performs each
//! time-step.

use serde::{Deserialize, Serialize};

use crate::box3::Box3;
use crate::key::KEY_END;
use crate::octree::Octree;

/// The global SFC partition: rank `r` owns keys in `[splits[r], splits[r+1])`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    splits: Vec<u64>,
}

impl Assignment {
    /// Partition the key space into `parts` domains balanced by the octree's
    /// leaf counts.
    pub fn from_octree(tree: &Octree, parts: usize) -> Self {
        Assignment {
            splits: tree.partition(parts),
        }
    }

    /// Build directly from split keys (first must be 0, last `KEY_END`).
    pub fn from_splits(splits: Vec<u64>) -> Self {
        assert!(splits.len() >= 2, "need at least one domain");
        assert_eq!(splits[0], 0);
        assert_eq!(*splits.last().unwrap(), KEY_END);
        assert!(
            splits.windows(2).all(|w| w[0] <= w[1]),
            "splits must be sorted"
        );
        Assignment { splits }
    }

    /// Number of domains.
    pub fn parts(&self) -> usize {
        self.splits.len() - 1
    }

    /// Key range owned by `rank`.
    pub fn range(&self, rank: usize) -> (u64, u64) {
        (self.splits[rank], self.splits[rank + 1])
    }

    /// Which rank owns `key`.
    pub fn rank_of_key(&self, key: u64) -> usize {
        debug_assert!(key < KEY_END);
        (self.splits.partition_point(|&s| s <= key) - 1).min(self.parts() - 1)
    }

    /// All split keys.
    pub fn splits(&self) -> &[u64] {
        &self.splits
    }
}

/// Load skew of a per-rank particle census: `max / mean` of the counts.
///
/// This is the repartition trigger the incremental decomposition uses: a
/// perfectly balanced assignment scores 1.0, and a rank carrying twice its
/// share scores ≥ 2.0. An empty census (or all-empty ranks) scores 1.0 —
/// nothing to balance, so nothing to trigger.
pub fn load_skew(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    max / mean
}

/// Axis-aligned bounding box of a rank's particles, exchanged during halo
/// discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub xmin: f64,
    pub xmax: f64,
    pub ymin: f64,
    pub ymax: f64,
    pub zmin: f64,
    pub zmax: f64,
}

impl Aabb {
    /// Empty box (inverted bounds); grows with [`Aabb::include`].
    pub fn empty() -> Self {
        Aabb {
            xmin: f64::INFINITY,
            xmax: f64::NEG_INFINITY,
            ymin: f64::INFINITY,
            ymax: f64::NEG_INFINITY,
            zmin: f64::INFINITY,
            zmax: f64::NEG_INFINITY,
        }
    }

    /// Bounding box of a point set (empty box for no points).
    pub fn of_points(x: &[f64], y: &[f64], z: &[f64]) -> Self {
        let mut b = Aabb::empty();
        for i in 0..x.len() {
            b.include(x[i], y[i], z[i]);
        }
        b
    }

    /// Grow to contain a point.
    pub fn include(&mut self, x: f64, y: f64, z: f64) {
        self.xmin = self.xmin.min(x);
        self.xmax = self.xmax.max(x);
        self.ymin = self.ymin.min(y);
        self.ymax = self.ymax.max(y);
        self.zmin = self.zmin.min(z);
        self.zmax = self.zmax.max(z);
    }

    /// True if no point was ever included.
    pub fn is_empty(&self) -> bool {
        self.xmin > self.xmax
    }

    /// Squared distance from a point to this box (0 inside), with periodic
    /// minimum-image handling along each axis when `bbox` is periodic.
    pub fn dist2_to_point(&self, px: f64, py: f64, pz: f64, bbox: &Box3) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let axis = |p: f64, lo: f64, hi: f64, len: f64| -> f64 {
            if p >= lo && p <= hi {
                return 0.0;
            }
            let mut d = if p < lo { lo - p } else { p - hi };
            if bbox.periodic {
                // The image of the point one box-length away may be closer.
                let d_wrap_lo = (p + len - hi).abs().min((p + len - lo).abs());
                let d_wrap_hi = (p - len - lo).abs().min((p - len - hi).abs());
                let inside_wrap =
                    (p + len >= lo && p + len <= hi) || (p - len >= lo && p - len <= hi);
                if inside_wrap {
                    return 0.0;
                }
                d = d.min(d_wrap_lo).min(d_wrap_hi);
            }
            d
        };
        let dx = axis(px, self.xmin, self.xmax, bbox.lx());
        let dy = axis(py, self.ymin, self.ymax, bbox.ly());
        let dz = axis(pz, self.zmin, self.zmax, bbox.lz());
        dx * dx + dy * dy + dz * dz
    }
}

/// Indices of local particles that must be sent to a peer whose particles
/// live in `peer_box`: everything within `radius` of that box.
pub fn halo_candidates(
    x: &[f64],
    y: &[f64],
    z: &[f64],
    peer_box: &Aabb,
    radius: f64,
    bbox: &Box3,
) -> Vec<usize> {
    let r2 = radius * radius;
    (0..x.len())
        .filter(|&i| peer_box.dist2_to_point(x[i], y[i], z[i], bbox) <= r2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::key_of;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sorted_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let bbox = Box3::unit_periodic();
        let mut keys: Vec<u64> = (0..n)
            .map(|_| {
                key_of(
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    &bbox,
                )
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn assignment_covers_key_space_and_routes_keys() {
        let keys = sorted_keys(5000, 9);
        let tree = Octree::build(&keys, 64);
        let a = Assignment::from_octree(&tree, 8);
        assert_eq!(a.parts(), 8);
        assert_eq!(a.range(0).0, 0);
        assert_eq!(a.range(7).1, KEY_END);
        for &k in keys.iter().step_by(101) {
            let r = a.rank_of_key(k);
            let (s, e) = a.range(r);
            assert!(s <= k && k < e);
        }
    }

    #[test]
    fn from_splits_validates() {
        let a = Assignment::from_splits(vec![0, KEY_END / 2, KEY_END]);
        assert_eq!(a.parts(), 2);
        assert_eq!(a.rank_of_key(0), 0);
        assert_eq!(a.rank_of_key(KEY_END - 1), 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_splits_rejects_unsorted() {
        let _ = Assignment::from_splits(vec![0, KEY_END, KEY_END / 2, KEY_END]);
    }

    #[test]
    fn aabb_of_points_and_distance() {
        let b = Aabb::of_points(&[0.2, 0.4], &[0.2, 0.4], &[0.2, 0.4]);
        let bbox = Box3::cube(0.0, 1.0, false);
        assert_eq!(b.dist2_to_point(0.3, 0.3, 0.3, &bbox), 0.0);
        let d2 = b.dist2_to_point(0.5, 0.3, 0.3, &bbox);
        assert!((d2 - 0.01).abs() < 1e-12);
        assert!(Aabb::empty().is_empty());
        assert_eq!(
            Aabb::empty().dist2_to_point(0.0, 0.0, 0.0, &bbox),
            f64::INFINITY
        );
    }

    #[test]
    fn periodic_distance_sees_wrapped_box() {
        // Box hugging the high edge; point near the low edge is close through
        // the periodic boundary.
        let b = Aabb::of_points(&[0.95, 0.99], &[0.5, 0.5], &[0.5, 0.5]);
        let per = Box3::unit_periodic();
        let open = Box3::cube(0.0, 1.0, false);
        let d2p = b.dist2_to_point(0.02, 0.5, 0.5, &per);
        let d2o = b.dist2_to_point(0.02, 0.5, 0.5, &open);
        assert!(d2p < 0.002, "wrapped distance should be ~0.03^2: {d2p}");
        assert!(d2o > 0.8, "open distance is large: {d2o}");
    }

    #[test]
    fn key_exactly_on_a_split_boundary_routes_right() {
        // A key equal to `splits[r]` is the *first* key of rank r's
        // half-open range `[splits[r], splits[r+1])` — it must never land
        // on rank r-1.
        let a = Assignment::from_splits(vec![0, 100, 200, KEY_END]);
        assert_eq!(a.rank_of_key(99), 0);
        assert_eq!(a.rank_of_key(100), 1);
        assert_eq!(a.rank_of_key(101), 1);
        assert_eq!(a.rank_of_key(199), 1);
        assert_eq!(a.rank_of_key(200), 2);
        assert_eq!(a.rank_of_key(0), 0);
        assert_eq!(a.rank_of_key(KEY_END - 1), 2);
    }

    #[test]
    fn empty_domains_are_skipped_by_key_routing() {
        // Consecutive equal splits describe ranks that own zero keys. A key
        // on the collapsed boundary must go to the *last* rank of the tie —
        // the only one whose half-open range actually contains it.
        let a = Assignment::from_splits(vec![0, 50, 50, 50, KEY_END]);
        assert_eq!(a.parts(), 4);
        assert_eq!(a.rank_of_key(49), 0);
        // Ranks 1 and 2 own [50, 50) = ∅; key 50 belongs to rank 3's
        // [50, KEY_END).
        let r = a.rank_of_key(50);
        let (s, e) = a.range(r);
        assert!(s <= 50 && 50 < e, "routed to an empty range [{s}, {e})");
        assert_eq!(r, 3);
        // Empty ranges really are empty.
        assert_eq!(a.range(1), (50, 50));
        assert_eq!(a.range(2), (50, 50));
    }

    #[test]
    fn trailing_empty_domains_clamp_to_a_real_owner() {
        // All keys collapsed into rank 0; the trailing ranks share
        // [KEY_END, KEY_END) = ∅. Every key must route to rank 0 — the
        // `.min(parts - 1)` clamp must not hand keys to an empty tail rank.
        let a = Assignment::from_splits(vec![0, KEY_END, KEY_END, KEY_END]);
        assert_eq!(a.parts(), 3);
        for k in [0, 1, KEY_END / 2, KEY_END - 1] {
            assert_eq!(a.rank_of_key(k), 0, "key {k}");
        }
    }

    #[test]
    fn load_skew_measures_imbalance() {
        assert_eq!(load_skew(&[]), 1.0);
        assert_eq!(load_skew(&[0, 0, 0]), 1.0);
        assert_eq!(load_skew(&[100]), 1.0);
        assert_eq!(load_skew(&[100, 100, 100, 100]), 1.0);
        // One rank at 2x its share.
        let s = load_skew(&[200, 100, 100, 0]);
        assert!((s - 2.0).abs() < 1e-12, "skew {s}");
        // Mild imbalance stays under a 1.15 trigger.
        assert!(load_skew(&[105, 100, 95, 100]) < 1.15);
    }

    #[test]
    fn degenerate_point_box_still_measures_distance() {
        // A peer box collapsed to a single point (one-particle domain).
        let b = Aabb::of_points(&[0.5], &[0.5], &[0.5]);
        assert!(!b.is_empty());
        let bbox = Box3::cube(0.0, 1.0, false);
        assert_eq!(b.dist2_to_point(0.5, 0.5, 0.5, &bbox), 0.0);
        let d2 = b.dist2_to_point(0.6, 0.5, 0.5, &bbox);
        assert!((d2 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn halo_candidates_empty_peer_box_selects_nothing() {
        // An empty peer domain (rank with zero particles) must produce zero
        // halo candidates — infinite distance, not a panic or a full send.
        let bbox = Box3::unit_periodic();
        let x = vec![0.1, 0.5, 0.9];
        let y = vec![0.5; 3];
        let z = vec![0.5; 3];
        let got = halo_candidates(&x, &y, &z, &Aabb::empty(), 10.0, &bbox);
        assert!(got.is_empty(), "empty box produced candidates: {got:?}");
    }

    #[test]
    fn halo_candidates_degenerate_sender_set() {
        // No local particles at all: nothing to offer any peer.
        let bbox = Box3::unit_periodic();
        let peer = Aabb::of_points(&[0.4, 0.6], &[0.4, 0.6], &[0.4, 0.6]);
        let got = halo_candidates(&[], &[], &[], &peer, 0.2, &bbox);
        assert!(got.is_empty());
    }

    #[test]
    fn halo_candidates_selects_boundary_particles() {
        let bbox = Box3::cube(0.0, 1.0, false);
        let x = vec![0.10, 0.48, 0.90];
        let y = vec![0.5, 0.5, 0.5];
        let z = vec![0.5, 0.5, 0.5];
        // Peer owns the right half.
        let peer = Aabb::of_points(&[0.55, 0.95], &[0.0, 1.0], &[0.0, 1.0]);
        let got = halo_candidates(&x, &y, &z, &peer, 0.1, &bbox);
        assert_eq!(got, vec![1, 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_rank_of_key_consistent_with_ranges(seed in 0u64..300, parts in 1usize..16) {
            let keys = sorted_keys(1000, seed);
            let tree = Octree::build(&keys, 32);
            let a = Assignment::from_octree(&tree, parts);
            for &k in keys.iter().step_by(53) {
                let r = a.rank_of_key(k);
                let (s, e) = a.range(r);
                prop_assert!(s <= k && k < e);
            }
        }

        #[test]
        fn prop_split_boundary_keys_route_into_their_own_range(
            seed in 0u64..200, parts in 2usize..12
        ) {
            // Every interior split key is the first key of some rank's
            // half-open range; `rank_of_key` must return a rank whose range
            // contains it — even when neighboring ranges are empty.
            let keys = sorted_keys(500, seed);
            let tree = Octree::build(&keys, 32);
            let a = Assignment::from_octree(&tree, parts);
            for &s in &a.splits()[..a.parts()] {
                if s >= KEY_END {
                    continue;
                }
                let r = a.rank_of_key(s);
                let (lo, hi) = a.range(r);
                prop_assert!(lo <= s && s < hi, "split {s} -> rank {r} [{lo},{hi})");
            }
        }

        #[test]
        fn prop_empty_domains_never_own_keys(
            raw in (0u64..KEY_END, 0u64..KEY_END, 0u64..KEY_END, 0u64..KEY_END, 0u64..KEY_END),
            n_cuts in 1usize..=5,
            probe in 0u64..KEY_END
        ) {
            // Arbitrary split vectors (duplicates allowed -> empty domains):
            // routing always returns a non-empty range containing the key.
            let mut cuts = vec![raw.0, raw.1, raw.2, raw.3, raw.4];
            cuts.truncate(n_cuts);
            cuts.sort_unstable();
            let mut splits = vec![0u64];
            splits.extend(cuts);
            splits.push(KEY_END);
            let a = Assignment::from_splits(splits);
            let r = a.rank_of_key(probe);
            let (lo, hi) = a.range(r);
            prop_assert!(lo < hi, "key {probe} routed to empty rank {r}");
            prop_assert!(lo <= probe && probe < hi);
        }

        #[test]
        fn prop_halo_candidates_superset_of_true_neighbors(
            seed in 0u64..200, r in 0.02f64..0.2
        ) {
            // Any particle actually within r of a peer particle must be a
            // halo candidate for that peer's box.
            let mut rng = StdRng::seed_from_u64(seed);
            let bbox = Box3::cube(0.0, 1.0, false);
            let mine: Vec<(f64, f64, f64)> =
                (0..40).map(|_| (rng.random(), rng.random(), rng.random())).collect();
            let theirs: Vec<(f64, f64, f64)> =
                (0..40).map(|_| (rng.random(), rng.random(), rng.random())).collect();
            let (mx, my, mz): (Vec<f64>, Vec<f64>, Vec<f64>) = (
                mine.iter().map(|p| p.0).collect(),
                mine.iter().map(|p| p.1).collect(),
                mine.iter().map(|p| p.2).collect(),
            );
            let (tx, ty, tz): (Vec<f64>, Vec<f64>, Vec<f64>) = (
                theirs.iter().map(|p| p.0).collect(),
                theirs.iter().map(|p| p.1).collect(),
                theirs.iter().map(|p| p.2).collect(),
            );
            let peer_box = Aabb::of_points(&tx, &ty, &tz);
            let cands = halo_candidates(&mx, &my, &mz, &peer_box, r, &bbox);
            for i in 0..mx.len() {
                let near = (0..tx.len()).any(|j| {
                    bbox.dist2(mx[i], my[i], mz[i], tx[j], ty[j], tz[j]) <= r * r
                });
                if near {
                    prop_assert!(cands.contains(&i), "particle {i} near peer but not a candidate");
                }
            }
        }
    }
}
