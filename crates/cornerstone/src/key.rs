//! 63-bit Morton (Z-order) space-filling-curve keys.
//!
//! Cornerstone (Keller et al., PASC'23 — the paper's ref. \[26\]) sorts
//! particles along an SFC and derives the octree and the domain decomposition
//! from contiguous key ranges. 21 bits per dimension gives 2^63 addressable
//! octants — identical to the real library's 64-bit key layout.

use crate::box3::Box3;

/// Bits per dimension.
pub const DIM_BITS: u32 = 21;
/// Maximum refinement level of the octree implied by the key size.
pub const MAX_LEVEL: u32 = DIM_BITS;
/// Number of grid cells per dimension at the deepest level.
pub const GRID: u64 = 1 << DIM_BITS;
/// Exclusive upper bound of the key space.
pub const KEY_END: u64 = 1 << (3 * DIM_BITS);

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread3(v: u64) -> u64 {
    // Standard magic-number bit spreading for 21-bit inputs.
    let mut x = v & 0x1f_ffff;
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread3`].
#[inline]
fn compact3(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Morton key from integer grid coordinates (each `< GRID`).
#[inline]
pub fn encode(ix: u64, iy: u64, iz: u64) -> u64 {
    debug_assert!(ix < GRID && iy < GRID && iz < GRID);
    (spread3(ix) << 2) | (spread3(iy) << 1) | spread3(iz)
}

/// Grid coordinates from a Morton key.
#[inline]
pub fn decode(key: u64) -> (u64, u64, u64) {
    (compact3(key >> 2), compact3(key >> 1), compact3(key))
}

/// Key of a position inside `bbox`.
pub fn key_of(x: f64, y: f64, z: f64, bbox: &Box3) -> u64 {
    let (nx, ny, nz) = bbox.normalize(x, y, z);
    let ix = ((nx * GRID as f64) as u64).min(GRID - 1);
    let iy = ((ny * GRID as f64) as u64).min(GRID - 1);
    let iz = ((nz * GRID as f64) as u64).min(GRID - 1);
    encode(ix, iy, iz)
}

/// The key range `[start, end)` covered by the octree node containing `key`
/// at refinement `level` (level 0 = root).
pub fn node_range(key: u64, level: u32) -> (u64, u64) {
    assert!(level <= MAX_LEVEL, "level {level} beyond max {MAX_LEVEL}");
    let shift = 3 * (MAX_LEVEL - level);
    let start = (key >> shift) << shift;
    (start, start + (1u64 << shift))
}

/// Side length (in box-normalized units) of a node at `level`.
pub fn node_size(level: u32) -> f64 {
    1.0 / (1u64 << level) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_roundtrip_corners() {
        for &(x, y, z) in &[
            (0, 0, 0),
            (GRID - 1, 0, 0),
            (0, GRID - 1, GRID - 1),
            (GRID - 1, GRID - 1, GRID - 1),
        ] {
            assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn keys_order_by_octant_first() {
        // The x bit is most significant: crossing the x midplane dominates.
        let lo = key_of(0.4, 0.9, 0.9, &Box3::unit_periodic());
        let hi = key_of(0.6, 0.1, 0.1, &Box3::unit_periodic());
        assert!(hi > lo);
    }

    #[test]
    fn node_range_nests() {
        let k = encode(123456, 654321, 222222);
        let (s1, e1) = node_range(k, 5);
        let (s2, e2) = node_range(k, 8);
        assert!(s1 <= s2 && e2 <= e1, "deeper node must nest inside");
        assert_eq!(e1 - s1, 1u64 << (3 * (MAX_LEVEL - 5)));
        let (s0, e0) = node_range(k, 0);
        assert_eq!((s0, e0), (0, KEY_END));
    }

    #[test]
    fn node_size_halves_per_level() {
        assert_eq!(node_size(0), 1.0);
        assert_eq!(node_size(1), 0.5);
        assert_eq!(node_size(10), 1.0 / 1024.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(ix in 0..GRID, iy in 0..GRID, iz in 0..GRID) {
            prop_assert_eq!(decode(encode(ix, iy, iz)), (ix, iy, iz));
        }

        #[test]
        fn prop_keys_in_range(x in -2.0..2.0f64, y in -2.0..2.0f64, z in -2.0..2.0f64) {
            let k = key_of(x, y, z, &Box3::unit_periodic());
            prop_assert!(k < KEY_END);
        }

        #[test]
        fn prop_monotone_along_x(ix in 0..GRID-1, iy in 0..GRID, iz in 0..GRID) {
            // Moving +1 in x from an even cell increases the key.
            prop_assume!(ix % 2 == 0);
            prop_assert!(encode(ix + 1, iy, iz) > encode(ix, iy, iz));
        }

        #[test]
        fn prop_node_range_contains_key(k in 0..KEY_END, level in 0u32..=MAX_LEVEL) {
            let (s, e) = node_range(k, level);
            prop_assert!(s <= k && k < e);
        }
    }
}
