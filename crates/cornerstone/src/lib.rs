//! # cornerstone — octree construction for scalable particle simulations
//!
//! A CPU reimplementation of the data structures SPH-EXA builds on
//! (Keller et al., *Cornerstone: Octree construction algorithms for scalable
//! particle simulations*, PASC'23 — the paper's ref. \[26\]):
//!
//! * [`key`] — 63-bit Morton SFC keys (21 bits/dimension);
//! * [`octree`] — balanced leaf-array octree built from sorted keys;
//! * [`celllist`] — neighbor search, property-tested against brute force;
//! * [`neighborlist`] — shared per-step CSR neighbor candidates;
//! * [`domain`] — SFC partition across ranks and halo-candidate discovery;
//! * [`box3`] — the global (optionally periodic) simulation volume.

pub mod box3;
pub mod celllist;
pub mod domain;
pub mod key;
pub mod neighborlist;
pub mod octree;
pub mod simd;

pub use box3::Box3;
pub use celllist::{brute_force_neighbors, CellList};
pub use domain::{halo_candidates, load_skew, Aabb, Assignment};
pub use key::{decode, encode, key_of, node_range, node_size, KEY_END, MAX_LEVEL};
pub use neighborlist::{FilteredRow, NeighborList, NeighborSearch, ScalarReplay};
pub use octree::Octree;
