//! Shared per-step CSR neighbor list.
//!
//! The SPH step performs five neighbor sweeps (`FindNeighbors`, density,
//! two IAD passes, momentum) over the *same* [`CellList`], each re-walking
//! the 27-cell stencil per particle. [`NeighborList`] runs that walk once at
//! the step's maximum interaction radius and stores the visited candidates
//! in CSR form; every sweep then iterates the precomputed row with a
//! per-sweep radius filter.
//!
//! ## Bit-identity argument
//!
//! [`CellList::for_neighbors`] visits the same cell sequence regardless of
//! the query radius (always the ±1 stencil) and only the `d2 <= r²` filter
//! changes — so the candidates visited at radius `r <= R` are exactly the
//! subsequence of the radius-`R` visit sequence passing the filter. A CSR
//! row recorded at `R` in visit order, replayed with the per-sweep filter,
//! therefore yields the identical `(j, d2)` callback sequence, and f64
//! accumulation in the sweeps stays bit-identical to the direct-grid path
//! (`d2` is recomputed by the same [`Box3::dist2`] on the same inputs).
//! This requires the grid's cells to be at least `R` wide — the same
//! precondition the direct path already has — which [`NeighborList::build`]
//! cannot check (the grid does not expose its cell size) but the simulation
//! guarantees by building the grid at the list radius.
//!
//! ## Memory cost model
//!
//! `4·pairs + 8·(n+1)` bytes: one `u32` per candidate pair plus `usize`
//! offsets. At the laptop scale (~60 neighbors within support, ~2.7× that
//! inside the superset sphere at `R`) this is ~650 B/particle — far below
//! the 27-cell re-scan the five sweeps would otherwise repeat, which touches
//! ~6.9× more candidates than the `R`-sphere contains per sweep.

use crate::box3::Box3;
use crate::celllist::CellList;

/// Uniform interface over neighbor-candidate enumeration: the direct grid
/// walk ([`CellList`]) and the precomputed CSR replay ([`NeighborList`]).
///
/// Implementations MUST visit candidates in the canonical cell-list order
/// (cell stencil order, insertion order within a cell) and call
/// `f(j, dist2)` for every stored particle within `r` of particle `i` —
/// including `i` itself. The SPH sweeps rely on that order for bit-identical
/// f64 accumulation across implementations.
pub trait NeighborSearch {
    /// Visit every particle within `r` (inclusive) of stored particle `i`,
    /// in the canonical order, calling `f(index, dist2)`.
    // Mirrors `CellList::for_neighbors`' coordinate-slice signature so both
    // implementations stay drop-in; bundling the slices would cost every hot
    // call site a struct build.
    #[allow(clippy::too_many_arguments)]
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
        f: F,
    );
}

impl NeighborSearch for CellList {
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        _bbox: &Box3,
        f: F,
    ) {
        self.for_neighbors(x[i], y[i], z[i], r, x, y, z, f);
    }
}

/// CSR neighbor candidates for the first `n_query` stored particles,
/// recorded at a fixed superset radius (see the module docs).
///
/// Buffers are reusable across steps via [`NeighborList::build_into`]; a
/// rebuild only reallocates when the pair count grows past capacity.
#[derive(Debug, Clone, Default)]
pub struct NeighborList {
    /// Row `i` spans `pairs[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<usize>,
    /// Candidate particle indices in cell-list visit order (self included).
    pairs: Vec<u32>,
    /// The superset radius rows were recorded at.
    radius: f64,
}

impl NeighborList {
    /// An empty list (no rows); fill it with [`NeighborList::build_into`].
    pub fn new() -> Self {
        NeighborList {
            offsets: vec![0],
            pairs: Vec::new(),
            radius: 0.0,
        }
    }

    /// Build a fresh list: rows for particles `0..n_query` holding every
    /// candidate within `radius`, in grid visit order. The grid must have
    /// been built over `x/y/z` with cells at least `radius` wide.
    pub fn build(
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
    ) -> Self {
        let mut nl = NeighborList::new();
        nl.build_into(grid, x, y, z, n_query, radius);
        nl
    }

    /// Rebuild in place, reusing the CSR allocations of a previous step.
    ///
    /// Two passes, both parallel and order-preserving: count candidates per
    /// row (`par_map`), prefix-sum serially, then fill each row's slice
    /// (`par_fill_rows`) — rows land in exactly the serial visit order.
    pub fn build_into(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
    ) {
        assert!(radius > 0.0, "neighbor radius must be positive");
        assert!(n_query <= x.len(), "query range exceeds stored particles");
        self.radius = radius;
        let counts: Vec<u32> = par::par_map(n_query, |i| {
            let mut c = 0u32;
            grid.for_neighbors(x[i], y[i], z[i], radius, x, y, z, |_, _| c += 1);
            c
        });
        self.offsets.clear();
        self.offsets.reserve(n_query + 1);
        self.offsets.push(0);
        let mut total = 0usize;
        for &c in &counts {
            total += c as usize;
            self.offsets.push(total);
        }
        self.pairs.resize(total, 0);
        par::par_fill_rows(&self.offsets, &mut self.pairs, |i, row| {
            let mut k = 0;
            grid.for_neighbors(x[i], y[i], z[i], radius, x, y, z, |j, _| {
                row[k] = j as u32;
                k += 1;
            });
            debug_assert_eq!(k, row.len(), "count and fill passes disagree");
        });
    }

    /// The superset radius rows were recorded at.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of rows (query particles).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate indices of row `i`, in visit order (includes `i` itself).
    pub fn row(&self, i: usize) -> &[u32] {
        &self.pairs[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Total stored candidate pairs (self-pairs included).
    pub fn pair_count(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Mean candidates per row, excluding the self-pair.
    pub fn avg_neighbors(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.pair_count() as f64 / self.len() as f64 - 1.0).max(0.0)
    }

    /// Largest row, excluding the self-pair.
    pub fn max_neighbors(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Resident bytes of the CSR arrays (capacity, not just length — this is
    /// what the buffer reuse actually holds onto across steps).
    pub fn csr_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.pairs.capacity() * std::mem::size_of::<u32>()
    }
}

impl NeighborSearch for NeighborList {
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
        mut f: F,
    ) {
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        let (px, py, pz) = (x[i], y[i], z[i]);
        let r2 = r * r;
        for &j in self.row(i) {
            let j = j as usize;
            let d2 = bbox.dist2(px, py, pz, x[j], y[j], z[j]);
            if d2 <= r2 {
                f(j, d2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celllist::brute_force_neighbors;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = || (0..n).map(|_| rng.random::<f64>()).collect::<Vec<_>>();
        let x = f();
        let y = f();
        let z = f();
        (x, y, z)
    }

    /// Sorted neighbor indices of `i` within `r`, via the trait (self
    /// excluded, matching `brute_force_neighbors`).
    fn neighbors_via<N: NeighborSearch>(
        nb: &N,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        nb.for_neighbors_of(i, r, x, y, z, bbox, |j, _| {
            if j != i {
                out.push(j);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn rows_replay_the_exact_grid_visit_sequence() {
        // The contract everything rests on: filtered row iteration produces
        // the same (j, d2) sequence — same order, same bits — as the direct
        // grid walk at the sweep radius.
        let (x, y, z) = cloud(400, 11);
        let bbox = Box3::unit_periodic();
        let big = 0.15;
        let grid = CellList::build(&x, &y, &z, &bbox, big);
        let nl = NeighborList::build(&grid, &x, &y, &z, 400, big);
        for i in (0..400).step_by(7) {
            for r in [big, 0.1, 0.04] {
                let mut direct = Vec::new();
                grid.for_neighbors(x[i], y[i], z[i], r, &x, &y, &z, |j, d2| {
                    direct.push((j, d2.to_bits()));
                });
                let mut replay = Vec::new();
                nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                    replay.push((j, d2.to_bits()));
                });
                assert_eq!(direct, replay, "particle {i} at radius {r}");
            }
        }
    }

    #[test]
    fn build_into_reuses_buffers_and_stays_correct() {
        let bbox = Box3::unit_periodic();
        let (x, y, z) = cloud(500, 3);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.2);
        let mut nl = NeighborList::build(&grid, &x, &y, &z, 500, 0.2);
        let cap_before = nl.csr_bytes();

        // Rebuild over a smaller cloud with a smaller radius: capacity must
        // not shrink (reuse), rows must be fresh.
        let (x2, y2, z2) = cloud(200, 4);
        let grid2 = CellList::build(&x2, &y2, &z2, &bbox, 0.1);
        nl.build_into(&grid2, &x2, &y2, &z2, 200, 0.1);
        assert_eq!(nl.len(), 200);
        assert!(nl.csr_bytes() >= cap_before || nl.csr_bytes() > 0);
        for i in (0..200).step_by(11) {
            assert_eq!(
                neighbors_via(&nl, i, 0.1, &x2, &y2, &z2, &bbox),
                brute_force_neighbors(i, 0.1, &x2, &y2, &z2, &bbox)
            );
        }
    }

    #[test]
    fn partial_query_range_covers_only_the_prefix() {
        // The simulation only queries owned particles; halos are stored in
        // the grid (as candidates) but get no row of their own.
        let bbox = Box3::cube(0.0, 1.0, false);
        let (x, y, z) = cloud(120, 9);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.12);
        let nl = NeighborList::build(&grid, &x, &y, &z, 80, 0.12);
        assert_eq!(nl.len(), 80);
        for i in (0..80).step_by(13) {
            assert_eq!(
                neighbors_via(&nl, i, 0.12, &x, &y, &z, &bbox),
                brute_force_neighbors(i, 0.12, &x, &y, &z, &bbox),
                "halo candidates must still appear in owned rows"
            );
        }
    }

    #[test]
    fn stats_report_the_csr_shape() {
        let bbox = Box3::unit_periodic();
        let (x, y, z) = cloud(300, 5);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.2);
        let nl = NeighborList::build(&grid, &x, &y, &z, 300, 0.2);
        assert_eq!(nl.len(), 300);
        assert!(nl.pair_count() >= 300, "every row holds at least itself");
        let avg = nl.avg_neighbors();
        let max = nl.max_neighbors();
        assert!(avg > 0.0 && (avg as usize) <= max);
        // Recompute max from the rows directly.
        let by_rows = (0..300).map(|i| nl.row(i).len() - 1).max().unwrap();
        assert_eq!(max, by_rows);
        assert!(nl.csr_bytes() >= nl.pair_count() * 4);
        // Empty list edge case.
        let empty = NeighborList::new();
        assert!(empty.is_empty());
        assert_eq!(empty.avg_neighbors(), 0.0);
        assert_eq!(empty.max_neighbors(), 0);
        assert_eq!(empty.pair_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_neighborlist_equals_brute_force(
            seed in 0u64..1000,
            n in 1usize..150,
            r in 0.02f64..0.5,
            periodic in proptest::bool::ANY,
        ) {
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            let nl = NeighborList::build(&grid, &x, &y, &z, n, r);
            let i = (seed as usize) % n;
            prop_assert_eq!(
                neighbors_via(&nl, i, r, &x, &y, &z, &bbox),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }

        #[test]
        fn prop_filtered_rows_match_grid_at_smaller_radius(
            seed in 0u64..1000,
            n in 1usize..120,
            shrink in 0.2f64..1.0,
            periodic in proptest::bool::ANY,
        ) {
            // Querying a NeighborList recorded at R with any r <= R must
            // agree with brute force at r (the superset-plus-filter claim).
            let big = 0.3;
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let grid = CellList::build(&x, &y, &z, &bbox, big);
            let nl = NeighborList::build(&grid, &x, &y, &z, n, big);
            let r = big * shrink;
            let i = (seed as usize) % n;
            prop_assert_eq!(
                neighbors_via(&nl, i, r, &x, &y, &z, &bbox),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }
    }
}
