//! Shared per-step CSR neighbor list with stored minimum-image deltas.
//!
//! The SPH step performs five neighbor sweeps (`FindNeighbors`, density,
//! two IAD passes, momentum) over the *same* [`CellList`], each re-walking
//! the 27-cell stencil per particle. [`NeighborList`] runs that walk once
//! and stores, per candidate, the neighbor index *and* the wrapped
//! displacement `r_j - r_i`; every sweep then iterates the precomputed row
//! with a per-sweep radius filter and never touches scattered positions or
//! [`Box3`] again. Rows are recorded either at one fixed superset radius
//! ([`NeighborList::build_into`]) or — the simulation's default — with the
//! h-aware per-pair rule of [`NeighborList::build_adaptive_into`], which
//! keeps rows of small-`h` particles from hauling in candidates out to the
//! global maximum radius.
//!
//! The build itself is single-pass: candidate positions are gathered once
//! into cell-sorted coordinate copies (contiguous scans instead of `order`
//! indirections), rows are pushed directly (serial) or into per-chunk
//! scratch buffers spliced back in row order (parallel) — both produce
//! identical arrays.
//!
//! ## Positions-unchanged contract
//!
//! Stored deltas are only valid while the positions the list was built over
//! are unchanged. The simulation satisfies this by construction: positions
//! move in `update_quantities`, after every sweep of the step, and the list
//! is rebuilt at the start of the next step.
//!
//! ## Bit-identity argument
//!
//! [`CellList::for_neighbors`] visits the same cell sequence regardless of
//! the query radius (always the ±1 stencil) and only the `d2 <= r²` filter
//! changes — so the candidates visited at radius `r <= R` are exactly the
//! subsequence of the radius-`R` visit sequence passing the filter. A CSR
//! row recorded at `R` in visit order, replayed with the per-sweep filter,
//! therefore yields the identical `(j, d2)` callback sequence. The replayed
//! `d2` is recomputed from the stored delta as `dx² + dy² + dz²` — the same
//! value [`Box3::dist2`] produces, to the bit: the stored delta is the exact
//! IEEE negation of `dist2`'s internal `r_i - r_j` (see
//! `CellList::for_candidate_deltas`), squares erase the sign, and the
//! summation order matches. This requires the grid's cells to be at least
//! `R` wide — the same precondition the direct path already has — which
//! [`NeighborList::build`] cannot check (the grid does not expose its cell
//! size) but the simulation guarantees by building the grid at the list
//! radius.
//!
//! The adaptive build preserves the argument row by row: row `i` stores the
//! visit-order subsequence passing `d2 <= max(radii[i], radii[j])²`, which
//! contains every candidate within `radii[i]` — so replaying it at any query
//! radius `r <= radii[i]` yields the same `(j, d2)` sequence the grid walk
//! produces at `r`. Candidates the rule drops lie beyond *both* particles'
//! search radii; no sweep ever visits them (each filters at its own radius
//! `<= radii[i]`), so dropping them cannot reorder or change any fold. The
//! grid-cell precondition becomes `max(radii)`.
//!
//! ## Memory cost model
//!
//! `28·pairs + 8·(n+1) + 24·stored` bytes: a `u32` index plus three `f64`
//! delta components per candidate pair, `usize` offsets, and one cell-sorted
//! coordinate copy per stored particle (plus transient per-chunk build
//! scratch of the same shape as the pair arrays). At the laptop scale
//! (~160 candidates per row) this is ~4.5 KiB/particle — a deliberate trade:
//! the five sweeps re-read each pair's geometry 6× per step (IAD twice), and
//! streaming 28 B beats re-gathering three scattered positions plus a
//! minimum-image computation each time.

use crate::box3::Box3;
use crate::celllist::CellList;

/// Uniform interface over neighbor-candidate enumeration: the direct grid
/// walk ([`CellList`]) and the precomputed CSR replay ([`NeighborList`]).
///
/// Implementations MUST visit candidates in the canonical cell-list order
/// (cell stencil order, insertion order within a cell) and call
/// `f(j, dist2)` for every stored particle within `r` of particle `i` —
/// including `i` itself. The SPH sweeps rely on that order for bit-identical
/// f64 accumulation across implementations.
pub trait NeighborSearch {
    /// Visit every particle within `r` (inclusive) of stored particle `i`,
    /// in the canonical order, calling `f(index, dist2)`.
    // Mirrors `CellList::for_neighbors`' coordinate-slice signature so both
    // implementations stay drop-in; bundling the slices would cost every hot
    // call site a struct build.
    #[allow(clippy::too_many_arguments)]
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
        f: F,
    );

    /// The concrete CSR list behind this source, if any. The SPH sweeps use
    /// it to take the cache-blocked row path ([`NeighborList::filter_row_into`])
    /// instead of the per-pair callback replay. Sources whose candidates are
    /// not stored CSR rows — the direct grid walk, the [`ScalarReplay`]
    /// adapter — return `None` and keep the callback path.
    fn as_list(&self) -> Option<&NeighborList> {
        None
    }
}

impl NeighborSearch for CellList {
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        _bbox: &Box3,
        f: F,
    ) {
        self.for_neighbors(x[i], y[i], z[i], r, x, y, z, f);
    }
}

/// Rows per parallel build chunk. Output is chunk-size independent (chunks
/// are spliced back in row order), so this only tunes load balance against
/// splice/scratch overhead.
const ROWS_PER_CHUNK: usize = 128;

/// Below this row count the scoped-thread spawn overhead of the chunked
/// build dominates; build serially instead.
const PAR_BUILD_MIN_ROWS: usize = 256;

/// Cell-sorted coordinate copies: slot `k` holds the position of the
/// particle in the grid's CSR slot `k`, so candidate scans are contiguous.
/// The adaptive build additionally keeps each candidate's squared search
/// radius in the same slot order (`r2`, empty for fixed-radius builds).
#[derive(Debug, Clone, Default)]
struct SortedCoords {
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
    r2: Vec<f64>,
}

impl SortedCoords {
    fn fill(&mut self, order: &[u32], x: &[f64], y: &[f64], z: &[f64]) {
        let n = order.len();
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.r2.clear();
        self.x.resize(n, 0.0);
        self.y.resize(n, 0.0);
        self.z.resize(n, 0.0);
        for (k, &j) in order.iter().enumerate() {
            let j = j as usize;
            self.x[k] = x[j];
            self.y[k] = y[j];
            self.z[k] = z[j];
        }
    }

    /// Gather squared per-particle radii into cell-sorted slots (adaptive
    /// builds only).
    fn fill_radii(&mut self, order: &[u32], radii: &[f64]) {
        self.r2.clear();
        self.r2.resize(order.len(), 0.0);
        for (k, &j) in order.iter().enumerate() {
            let r = radii[j as usize];
            self.r2[k] = r * r;
        }
    }

    fn bytes(&self) -> usize {
        (self.x.capacity() + self.y.capacity() + self.z.capacity() + self.r2.capacity())
            * std::mem::size_of::<f64>()
    }
}

/// Per-chunk scratch of the parallel build: a contiguous run of rows'
/// candidates plus per-row counts, spliced into the main arrays serially.
#[derive(Debug, Clone, Default)]
struct BuildChunk {
    counts: Vec<u32>,
    j: Vec<u32>,
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
}

impl BuildChunk {
    fn clear(&mut self) {
        self.counts.clear();
        self.j.clear();
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
    }

    fn bytes(&self) -> usize {
        (self.counts.capacity() + self.j.capacity()) * std::mem::size_of::<u32>()
            + (self.dx.capacity() + self.dy.capacity() + self.dz.capacity())
                * std::mem::size_of::<f64>()
    }
}

/// One row's radius-filtered candidates, compacted into contiguous lane
/// buffers: parallel arrays of neighbor index, wrapped displacement
/// `r_j - r_i`, and squared distance, in visit order. The blocked sweeps
/// fill one of these per row (thread-local, reused) and run their pair math
/// as passes over the buffers.
#[derive(Debug, Clone, Default)]
pub struct FilteredRow {
    /// Passing candidate indices (self included), visit order.
    pub j: Vec<u32>,
    /// Wrapped displacement components `r_j - r_i`.
    pub dx: Vec<f64>,
    pub dy: Vec<f64>,
    pub dz: Vec<f64>,
    /// `dx² + dy² + dz²` — the same bits the scalar replay hands callbacks.
    pub d2: Vec<f64>,
}

impl FilteredRow {
    /// Number of passing candidates.
    pub fn len(&self) -> usize {
        self.j.len()
    }

    pub fn is_empty(&self) -> bool {
        self.j.is_empty()
    }

    /// Drop all candidates, keeping capacity.
    pub fn clear(&mut self) {
        self.j.clear();
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        self.d2.clear();
    }

    #[inline]
    fn push(&mut self, j: u32, dx: f64, dy: f64, dz: f64, d2: f64) {
        self.j.push(j);
        self.dx.push(dx);
        self.dy.push(dy);
        self.dz.push(dz);
        self.d2.push(d2);
    }
}

/// CSR neighbor candidates for the first `n_query` stored particles,
/// recorded with their minimum-image deltas at a fixed superset radius or
/// under the h-aware per-pair rule (see the module docs).
///
/// Buffers are reusable across steps via [`NeighborList::build_into`]; a
/// rebuild only reallocates when the pair count grows past capacity.
#[derive(Debug, Clone, Default)]
pub struct NeighborList {
    /// Row `i` spans slot range `offsets[i]..offsets[i + 1]`.
    offsets: Vec<usize>,
    /// Candidate particle indices in cell-list visit order (self included).
    pairs: Vec<u32>,
    /// Wrapped displacement `r_j - r_i` per candidate pair, recorded at
    /// build time (valid while positions are unchanged — see module docs).
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    /// The superset radius rows were recorded at — `max(radii)` for
    /// adaptive builds, where it bounds any *global*-radius query; row `i`
    /// individually answers queries up to its own `radii[i]`.
    radius: f64,
    /// Build scratch, reused across steps.
    sorted: SortedCoords,
    chunks: Vec<BuildChunk>,
}

impl NeighborList {
    /// An empty list (no rows); fill it with [`NeighborList::build_into`].
    pub fn new() -> Self {
        NeighborList {
            offsets: vec![0],
            ..NeighborList::default()
        }
    }

    /// Build a fresh list: rows for particles `0..n_query` holding every
    /// candidate within `radius` with its wrapped delta, in grid visit
    /// order. The grid must have been built over `x/y/z` with cells at
    /// least `radius` wide.
    pub fn build(
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
    ) -> Self {
        let mut nl = NeighborList::new();
        nl.build_into(grid, x, y, z, n_query, radius);
        nl
    }

    /// Rebuild in place, reusing the CSR allocations of a previous step.
    ///
    /// Single traversal per row over cell-sorted coordinate copies: the
    /// serial path pushes candidates straight into the CSR arrays; the
    /// parallel path fills fixed-size row chunks into per-chunk scratch
    /// (each chunk owned by one worker via `par_for_each_mut`) and splices
    /// them back in row order. Both paths produce bit-identical arrays, and
    /// the emitted `(j, d2)` sequence per row is bit-identical to the
    /// direct grid walk (see `CellList::for_candidate_deltas`).
    pub fn build_into(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
    ) {
        self.build_common(grid, x, y, z, n_query, radius, None);
    }

    /// h-aware rebuild: pair `(i, j)` is stored iff
    /// `d2 <= max(radii[i], radii[j])²`, with `radii[p]` the per-particle
    /// search radius (one entry per stored particle, queries and candidates
    /// alike). Row `i` is then complete for any query radius up to
    /// `radii[i]` — every sweep filters at its own radius `<= radii[i]`, so
    /// results are unchanged — while rows of small-radius particles no
    /// longer haul in every candidate out to the *global* maximum radius.
    /// On strongly h-graded workloads (Evrard collapse) this shrinks rows
    /// severalfold; with uniform radii the stored arrays are bit-identical
    /// to [`NeighborList::build_into`] at that radius.
    ///
    /// The grid's cells must be at least `max(radii)` wide (the same
    /// precondition as the fixed-radius build at that maximum).
    pub fn build_adaptive_into(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radii: &[f64],
    ) {
        assert_eq!(
            radii.len(),
            x.len(),
            "one search radius per stored particle"
        );
        let rmax = radii.iter().fold(0.0f64, |m, &r| m.max(r));
        self.build_common(grid, x, y, z, n_query, rmax, Some(radii));
    }

    #[allow(clippy::too_many_arguments)]
    fn build_common(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
        radii: Option<&[f64]>,
    ) {
        assert!(radius > 0.0, "neighbor radius must be positive");
        assert!(n_query <= x.len(), "query range exceeds stored particles");
        assert_eq!(
            grid.len(),
            x.len(),
            "grid and coordinate arrays disagree on particle count"
        );
        self.radius = radius;
        self.sorted.fill(grid.order(), x, y, z);
        if let Some(rr) = radii {
            self.sorted.fill_radii(grid.order(), rr);
        }
        self.offsets.clear();
        self.offsets.reserve(n_query + 1);
        self.offsets.push(0);
        self.pairs.clear();
        self.dx.clear();
        self.dy.clear();
        self.dz.clear();
        if par::max_threads() <= 1 || n_query < PAR_BUILD_MIN_ROWS {
            self.fill_rows_serial(grid, x, y, z, n_query, radius, radii);
        } else {
            self.fill_rows_chunked(grid, x, y, z, n_query, radius, radii);
        }
    }

    /// Serial single-pass fill: rows pushed directly into the CSR arrays.
    #[allow(clippy::too_many_arguments)]
    fn fill_rows_serial(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
        radii: Option<&[f64]>,
    ) {
        let Self {
            offsets,
            pairs,
            dx,
            dy,
            dz,
            sorted,
            ..
        } = self;
        for i in 0..n_query {
            let emit = |j: u32, a: f64, b: f64, c: f64, _d2: f64| {
                pairs.push(j);
                dx.push(a);
                dy.push(b);
                dz.push(c);
            };
            match radii {
                Some(rr) => grid.for_candidate_deltas_adaptive(
                    x[i], y[i], z[i], rr[i], &sorted.r2, &sorted.x, &sorted.y, &sorted.z, emit,
                ),
                None => grid.for_candidate_deltas(
                    x[i], y[i], z[i], radius, &sorted.x, &sorted.y, &sorted.z, emit,
                ),
            }
            offsets.push(pairs.len());
        }
    }

    /// Parallel fill: fixed-size row chunks into per-chunk scratch, then an
    /// order-preserving serial splice. Chunk size cannot affect the output —
    /// every row's candidates land in the same final slots.
    #[allow(clippy::too_many_arguments)]
    fn fill_rows_chunked(
        &mut self,
        grid: &CellList,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        n_query: usize,
        radius: f64,
        radii: Option<&[f64]>,
    ) {
        let nchunks = n_query.div_ceil(ROWS_PER_CHUNK);
        self.chunks.resize_with(nchunks, BuildChunk::default);
        let sorted = &self.sorted;
        par::par_for_each_mut(&mut self.chunks[..nchunks], |ci, ch| {
            ch.clear();
            let lo = ci * ROWS_PER_CHUNK;
            let hi = ((ci + 1) * ROWS_PER_CHUNK).min(n_query);
            for i in lo..hi {
                let before = ch.j.len();
                let emit = |j: u32, a: f64, b: f64, c: f64, _d2: f64| {
                    ch.j.push(j);
                    ch.dx.push(a);
                    ch.dy.push(b);
                    ch.dz.push(c);
                };
                match radii {
                    Some(rr) => grid.for_candidate_deltas_adaptive(
                        x[i], y[i], z[i], rr[i], &sorted.r2, &sorted.x, &sorted.y, &sorted.z, emit,
                    ),
                    None => grid.for_candidate_deltas(
                        x[i], y[i], z[i], radius, &sorted.x, &sorted.y, &sorted.z, emit,
                    ),
                }
                ch.counts.push((ch.j.len() - before) as u32);
            }
        });
        let total: usize = self.chunks[..nchunks].iter().map(|c| c.j.len()).sum();
        self.pairs.reserve(total);
        self.dx.reserve(total);
        self.dy.reserve(total);
        self.dz.reserve(total);
        let mut running = 0usize;
        for ch in &self.chunks[..nchunks] {
            for &c in &ch.counts {
                running += c as usize;
                self.offsets.push(running);
            }
            self.pairs.extend_from_slice(&ch.j);
            self.dx.extend_from_slice(&ch.dx);
            self.dy.extend_from_slice(&ch.dy);
            self.dz.extend_from_slice(&ch.dz);
        }
        debug_assert_eq!(running, total, "chunk counts and payload disagree");
    }

    /// The superset radius rows were recorded at (`max(radii)` for
    /// adaptive builds).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of rows (query particles).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate indices of row `i`, in visit order (includes `i` itself).
    pub fn row(&self, i: usize) -> &[u32] {
        &self.pairs[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Row `i`'s raw candidates with their stored deltas, unfiltered:
    /// `(j, dx, dy, dz)` parallel slices in visit order (self included).
    /// Sweeps that can tolerate out-of-radius candidates (because the
    /// kernel evaluates to exact zero beyond support, or because they apply
    /// the radius cut themselves) iterate this directly and skip the
    /// compaction pass entirely.
    pub fn row_deltas(&self, i: usize) -> (&[u32], &[f64], &[f64], &[f64]) {
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        (
            &self.pairs[s..e],
            &self.dx[s..e],
            &self.dy[s..e],
            &self.dz[s..e],
        )
    }

    /// Compact row `i`'s candidates within `r` (inclusive) into `out`, in
    /// visit order — index, stored delta and recomputed `d2` per passing
    /// candidate. Distances are evaluated in 4-lane chunks with the
    /// pass/fail pushes kept in index order (remainder lanes likewise), so
    /// the emitted sequence is exactly the scalar replay's, bit for bit.
    /// Dispatched through an AVX2 clone when available ([`crate::simd`]).
    pub fn filter_row_into(&self, i: usize, r: f64, out: &mut FilteredRow) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.filter_row_into_avx2(i, r, out) };
        }
        self.filter_row_into_impl(i, r, out)
    }

    /// Hand-vectorized AVX2 compaction (the auto-vectorizer keeps the
    /// chunked portable body scalar): `d2` for four candidates per
    /// `vmulpd`/`vaddpd` — the same `(a·a + b·b) + c·c` association, hence
    /// the same bits — then an ordered compare + movemask picks the passing
    /// lanes, pushed in index order straight from the stored slices. Chunks
    /// with no passing lane skip the push loop entirely.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn filter_row_into_avx2(&self, i: usize, r: f64, out: &mut FilteredRow) {
        use std::arch::x86_64::*;
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        out.clear();
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let n = e - s;
        let (jj, xs, ys, zs) = (
            &self.pairs[s..e],
            &self.dx[s..e],
            &self.dy[s..e],
            &self.dz[s..e],
        );
        out.j.reserve(n);
        out.dx.reserve(n);
        out.dy.reserve(n);
        out.dz.reserve(n);
        out.d2.reserve(n);
        let r2 = r * r;
        let vr2 = _mm256_set1_pd(r2);
        let mut k = 0;
        while k + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(k));
            let y = _mm256_loadu_pd(ys.as_ptr().add(k));
            let z = _mm256_loadu_pd(zs.as_ptr().add(k));
            let q = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y)),
                _mm256_mul_pd(z, z),
            );
            let mask = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LE_OQ>(q, vr2));
            if mask != 0 {
                let mut ql = [0.0f64; 4];
                _mm256_storeu_pd(ql.as_mut_ptr(), q);
                for l in 0..4 {
                    if mask & (1 << l) != 0 {
                        out.push(jj[k + l], xs[k + l], ys[k + l], zs[k + l], ql[l]);
                    }
                }
            }
            k += 4;
        }
        while k < n {
            let (a, b, c) = (xs[k], ys[k], zs[k]);
            let q = a * a + b * b + c * c;
            if q <= r2 {
                out.push(jj[k], a, b, c, q);
            }
            k += 1;
        }
    }

    #[inline(always)]
    fn filter_row_into_impl(&self, i: usize, r: f64, out: &mut FilteredRow) {
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        out.clear();
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let n = e - s;
        let (jj, xs, ys, zs) = (
            &self.pairs[s..e],
            &self.dx[s..e],
            &self.dy[s..e],
            &self.dz[s..e],
        );
        out.j.reserve(n);
        out.dx.reserve(n);
        out.dy.reserve(n);
        out.dz.reserve(n);
        out.d2.reserve(n);
        let r2 = r * r;
        let mut k = 0;
        while k + 4 <= n {
            let mut q = [0.0f64; 4];
            for l in 0..4 {
                let (a, b, c) = (xs[k + l], ys[k + l], zs[k + l]);
                q[l] = a * a + b * b + c * c;
            }
            for l in 0..4 {
                if q[l] <= r2 {
                    out.push(jj[k + l], xs[k + l], ys[k + l], zs[k + l], q[l]);
                }
            }
            k += 4;
        }
        while k < n {
            let (a, b, c) = (xs[k], ys[k], zs[k]);
            let q = a * a + b * b + c * c;
            if q <= r2 {
                out.push(jj[k], a, b, c, q);
            }
            k += 1;
        }
    }

    /// [`NeighborList::filter_row_into`] minus the zero-distance
    /// candidates: compact row `i`'s candidates with `0 < d2 <= r²` into
    /// `out`, in visit order. `d2 == 0` happens exactly for the self-pair
    /// and coincident particles — the set every pair-interaction sweep
    /// skips (`j == i || d2 == 0`), so fusing the skip into the filter
    /// saves those sweeps a second compaction pass. With `NEGATE` the
    /// stored `r_j - r_i` deltas are emitted negated (`r_i - r_j`, the
    /// momentum equation's direction); IEEE negation is exact and `d2` is
    /// unchanged (squares erase sign).
    /// Dispatched through an AVX2 clone when available ([`crate::simd`]).
    pub fn filter_pairs_into<const NEGATE: bool>(&self, i: usize, r: f64, out: &mut FilteredRow) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.filter_pairs_into_avx2::<NEGATE>(i, r, out) };
        }
        self.filter_pairs_into_impl::<NEGATE>(i, r, out)
    }

    /// Hand-vectorized like [`NeighborList::filter_row_into_avx2`], with
    /// the pair condition `0 < d2 <= r²` as two ordered compares and-ed
    /// into one mask. Negation (under `NEGATE`) stays scalar on the pushed
    /// values — exact IEEE sign flips, `d2` untouched.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn filter_pairs_into_avx2<const NEGATE: bool>(
        &self,
        i: usize,
        r: f64,
        out: &mut FilteredRow,
    ) {
        use std::arch::x86_64::*;
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        out.clear();
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let n = e - s;
        let (jj, xs, ys, zs) = (
            &self.pairs[s..e],
            &self.dx[s..e],
            &self.dy[s..e],
            &self.dz[s..e],
        );
        out.j.reserve(n);
        out.dx.reserve(n);
        out.dy.reserve(n);
        out.dz.reserve(n);
        out.d2.reserve(n);
        let r2 = r * r;
        let vr2 = _mm256_set1_pd(r2);
        let vzero = _mm256_setzero_pd();
        let mut k = 0;
        while k + 4 <= n {
            let x = _mm256_loadu_pd(xs.as_ptr().add(k));
            let y = _mm256_loadu_pd(ys.as_ptr().add(k));
            let z = _mm256_loadu_pd(zs.as_ptr().add(k));
            let q = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y)),
                _mm256_mul_pd(z, z),
            );
            let pass = _mm256_and_pd(
                _mm256_cmp_pd::<_CMP_GT_OQ>(q, vzero),
                _mm256_cmp_pd::<_CMP_LE_OQ>(q, vr2),
            );
            let mask = _mm256_movemask_pd(pass);
            if mask != 0 {
                let mut ql = [0.0f64; 4];
                _mm256_storeu_pd(ql.as_mut_ptr(), q);
                for l in 0..4 {
                    if mask & (1 << l) != 0 {
                        let (a, b, c) = (xs[k + l], ys[k + l], zs[k + l]);
                        if NEGATE {
                            out.push(jj[k + l], -a, -b, -c, ql[l]);
                        } else {
                            out.push(jj[k + l], a, b, c, ql[l]);
                        }
                    }
                }
            }
            k += 4;
        }
        while k < n {
            let (a, b, c) = (xs[k], ys[k], zs[k]);
            let q = a * a + b * b + c * c;
            if q > 0.0 && q <= r2 {
                if NEGATE {
                    out.push(jj[k], -a, -b, -c, q);
                } else {
                    out.push(jj[k], a, b, c, q);
                }
            }
            k += 1;
        }
    }

    #[inline(always)]
    fn filter_pairs_into_impl<const NEGATE: bool>(&self, i: usize, r: f64, out: &mut FilteredRow) {
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        out.clear();
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let n = e - s;
        let (jj, xs, ys, zs) = (
            &self.pairs[s..e],
            &self.dx[s..e],
            &self.dy[s..e],
            &self.dz[s..e],
        );
        out.j.reserve(n);
        out.dx.reserve(n);
        out.dy.reserve(n);
        out.dz.reserve(n);
        out.d2.reserve(n);
        let r2 = r * r;
        let mut k = 0;
        while k + 4 <= n {
            let mut q = [0.0f64; 4];
            for l in 0..4 {
                let (a, b, c) = (xs[k + l], ys[k + l], zs[k + l]);
                q[l] = a * a + b * b + c * c;
            }
            for l in 0..4 {
                if q[l] > 0.0 && q[l] <= r2 {
                    let (a, b, c) = (xs[k + l], ys[k + l], zs[k + l]);
                    if NEGATE {
                        out.push(jj[k + l], -a, -b, -c, q[l]);
                    } else {
                        out.push(jj[k + l], a, b, c, q[l]);
                    }
                }
            }
            k += 4;
        }
        while k < n {
            let (a, b, c) = (xs[k], ys[k], zs[k]);
            let q = a * a + b * b + c * c;
            if q > 0.0 && q <= r2 {
                if NEGATE {
                    out.push(jj[k], -a, -b, -c, q);
                } else {
                    out.push(jj[k], a, b, c, q);
                }
            }
            k += 1;
        }
    }

    /// Count row `i`'s candidates within `r` (inclusive), self-pair
    /// included. Counting is order-insensitive, so the four lane counters
    /// need no ordered combine.
    /// Dispatched through an AVX2 clone when available ([`crate::simd`]).
    pub fn count_within(&self, i: usize, r: f64) -> usize {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2() {
            // SAFETY: AVX2 support was just checked; the clone has no other
            // precondition (portable body under different codegen).
            return unsafe { self.count_within_avx2(i, r) };
        }
        self.count_within_impl(i, r)
    }

    /// Hand-vectorized count: the pass mask (all-ones = -1 per passing
    /// lane, reinterpreted as i64) is subtracted from a vector counter, so
    /// each passing lane increments its own tally with no extract in the
    /// loop. Counting is order-insensitive, so summing the four lane
    /// counters at the end is exact.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn count_within_avx2(&self, i: usize, r: f64) -> usize {
        use std::arch::x86_64::*;
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let r2 = r * r;
        let vr2 = _mm256_set1_pd(r2);
        let mut vcount = _mm256_setzero_si256();
        let mut k = s;
        while k + 4 <= e {
            let x = _mm256_loadu_pd(self.dx.as_ptr().add(k));
            let y = _mm256_loadu_pd(self.dy.as_ptr().add(k));
            let z = _mm256_loadu_pd(self.dz.as_ptr().add(k));
            let q = _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y)),
                _mm256_mul_pd(z, z),
            );
            let pass = _mm256_castpd_si256(_mm256_cmp_pd::<_CMP_LE_OQ>(q, vr2));
            vcount = _mm256_sub_epi64(vcount, pass);
            k += 4;
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, vcount);
        let mut total = (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize;
        while k < e {
            let (a, b, c) = (self.dx[k], self.dy[k], self.dz[k]);
            total += ((a * a + b * b + c * c) <= r2) as usize;
            k += 1;
        }
        total
    }

    #[inline(always)]
    fn count_within_impl(&self, i: usize, r: f64) -> usize {
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        let (s, e) = (self.offsets[i], self.offsets[i + 1]);
        let r2 = r * r;
        let mut lanes = [0usize; 4];
        let mut k = s;
        while k + 4 <= e {
            for (l, lane) in lanes.iter_mut().enumerate() {
                let (a, b, c) = (self.dx[k + l], self.dy[k + l], self.dz[k + l]);
                *lane += ((a * a + b * b + c * c) <= r2) as usize;
            }
            k += 4;
        }
        let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        while k < e {
            let (a, b, c) = (self.dx[k], self.dy[k], self.dz[k]);
            total += ((a * a + b * b + c * c) <= r2) as usize;
            k += 1;
        }
        total
    }

    /// Total stored candidate pairs (self-pairs included).
    pub fn pair_count(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Mean candidates per row, excluding the self-pair.
    pub fn avg_neighbors(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (self.pair_count() as f64 / self.len() as f64 - 1.0).max(0.0)
    }

    /// Largest row, excluding the self-pair.
    pub fn max_neighbors(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Resident bytes of the CSR arrays plus build scratch (capacity, not
    /// just length — this is what the buffer reuse actually holds onto
    /// across steps).
    pub fn csr_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.pairs.capacity() * std::mem::size_of::<u32>()
            + (self.dx.capacity() + self.dy.capacity() + self.dz.capacity())
                * std::mem::size_of::<f64>()
            + self.sorted.bytes()
            + self.chunks.iter().map(BuildChunk::bytes).sum::<usize>()
    }
}

impl NeighborSearch for NeighborList {
    /// Scalar replay from the stored deltas: `d2` is `dx² + dy² + dz²` of
    /// the recorded displacement — bit-identical to [`Box3::dist2`] on the
    /// build-time positions (see the module docs). The coordinate and box
    /// arguments are unused; they exist so the grid walk stays drop-in.
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        _x: &[f64],
        _y: &[f64],
        _z: &[f64],
        _bbox: &Box3,
        mut f: F,
    ) {
        debug_assert!(
            r <= self.radius,
            "query radius {r} exceeds the recorded superset radius {}",
            self.radius
        );
        let r2 = r * r;
        for k in self.offsets[i]..self.offsets[i + 1] {
            let (a, b, c) = (self.dx[k], self.dy[k], self.dz[k]);
            let d2 = a * a + b * b + c * c;
            if d2 <= r2 {
                f(self.pairs[k] as usize, d2);
            }
        }
    }

    fn as_list(&self) -> Option<&NeighborList> {
        Some(self)
    }
}

/// Forces the scalar `for_neighbors_of` replay of a [`NeighborList`]:
/// [`NeighborSearch::as_list`] stays `None`, so sweeps keep the per-pair
/// callback path instead of the blocked row path. The benchmark and the
/// blocked-vs-scalar equivalence tests use it as the reference.
#[derive(Debug, Clone, Copy)]
pub struct ScalarReplay<'a>(pub &'a NeighborList);

impl NeighborSearch for ScalarReplay<'_> {
    fn for_neighbors_of<F: FnMut(usize, f64)>(
        &self,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
        f: F,
    ) {
        self.0.for_neighbors_of(i, r, x, y, z, bbox, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celllist::brute_force_neighbors;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = || (0..n).map(|_| rng.random::<f64>()).collect::<Vec<_>>();
        let x = f();
        let y = f();
        let z = f();
        (x, y, z)
    }

    /// Sorted neighbor indices of `i` within `r`, via the trait (self
    /// excluded, matching `brute_force_neighbors`).
    fn neighbors_via<N: NeighborSearch>(
        nb: &N,
        i: usize,
        r: f64,
        x: &[f64],
        y: &[f64],
        z: &[f64],
        bbox: &Box3,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        nb.for_neighbors_of(i, r, x, y, z, bbox, |j, _| {
            if j != i {
                out.push(j);
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn rows_replay_the_exact_grid_visit_sequence() {
        // The contract everything rests on: filtered row iteration produces
        // the same (j, d2) sequence — same order, same bits — as the direct
        // grid walk at the sweep radius.
        let (x, y, z) = cloud(400, 11);
        let bbox = Box3::unit_periodic();
        let big = 0.15;
        let grid = CellList::build(&x, &y, &z, &bbox, big);
        let nl = NeighborList::build(&grid, &x, &y, &z, 400, big);
        for i in (0..400).step_by(7) {
            for r in [big, 0.1, 0.04] {
                let mut direct = Vec::new();
                grid.for_neighbors(x[i], y[i], z[i], r, &x, &y, &z, |j, d2| {
                    direct.push((j, d2.to_bits()));
                });
                let mut replay = Vec::new();
                nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                    replay.push((j, d2.to_bits()));
                });
                assert_eq!(direct, replay, "particle {i} at radius {r}");
            }
        }
    }

    #[test]
    fn stored_deltas_match_box_delta_bitwise() {
        for periodic in [true, false] {
            let (x, y, z) = cloud(300, 21);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let r = 0.18;
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            let nl = NeighborList::build(&grid, &x, &y, &z, 300, r);
            for i in (0..300).step_by(13) {
                let (s, e) = (nl.offsets[i], nl.offsets[i + 1]);
                for k in s..e {
                    let j = nl.pairs[k] as usize;
                    let (ex, ey, ez) = bbox.delta(x[j], y[j], z[j], x[i], y[i], z[i]);
                    assert_eq!(nl.dx[k].to_bits(), ex.to_bits(), "dx of ({i},{j})");
                    assert_eq!(nl.dy[k].to_bits(), ey.to_bits(), "dy of ({i},{j})");
                    assert_eq!(nl.dz[k].to_bits(), ez.to_bits(), "dz of ({i},{j})");
                    let d2 = nl.dx[k] * nl.dx[k] + nl.dy[k] * nl.dy[k] + nl.dz[k] * nl.dz[k];
                    let expect = bbox.dist2(x[i], y[i], z[i], x[j], y[j], z[j]);
                    assert_eq!(d2.to_bits(), expect.to_bits(), "d2 of ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn serial_and_chunked_builds_are_bitwise_identical() {
        for (n, periodic) in [(700, true), (700, false), (300, true)] {
            let (x, y, z) = cloud(n, 31);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let r = 0.11;
            // Non-uniform per-particle radii for the adaptive variant, all
            // bounded by the grid cell size `r`.
            let radii: Vec<f64> = (0..n).map(|i| 0.06 + 0.05 * (i % 7) as f64 / 6.0).collect();
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            for rr in [None, Some(radii.as_slice())] {
                let mut serial = NeighborList::new();
                serial.radius = r;
                serial.sorted.fill(grid.order(), &x, &y, &z);
                if let Some(rr) = rr {
                    serial.sorted.fill_radii(grid.order(), rr);
                }
                serial.fill_rows_serial(&grid, &x, &y, &z, n, r, rr);
                let mut chunked = NeighborList::new();
                chunked.radius = r;
                chunked.sorted.fill(grid.order(), &x, &y, &z);
                if let Some(rr) = rr {
                    chunked.sorted.fill_radii(grid.order(), rr);
                }
                chunked.fill_rows_chunked(&grid, &x, &y, &z, n, r, rr);
                assert_eq!(serial.offsets, chunked.offsets);
                assert_eq!(serial.pairs, chunked.pairs);
                let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&serial.dx), bits(&chunked.dx));
                assert_eq!(bits(&serial.dy), bits(&chunked.dy));
                assert_eq!(bits(&serial.dz), bits(&chunked.dz));
            }
        }
    }

    #[test]
    fn adaptive_build_with_uniform_radii_matches_fixed_radius_build() {
        // With every per-particle radius equal, the pair rule degenerates to
        // the fixed-radius filter — the stored arrays must be bitwise the
        // same (max-then-square equals square-then-max for equal operands).
        for periodic in [true, false] {
            let (x, y, z) = cloud(500, 41);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let r = 0.13;
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            let plain = NeighborList::build(&grid, &x, &y, &z, 500, r);
            let mut adaptive = NeighborList::new();
            adaptive.build_adaptive_into(&grid, &x, &y, &z, 500, &vec![r; 500]);
            assert_eq!(plain.offsets, adaptive.offsets);
            assert_eq!(plain.pairs, adaptive.pairs);
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&plain.dx), bits(&adaptive.dx));
            assert_eq!(bits(&plain.dy), bits(&adaptive.dy));
            assert_eq!(bits(&plain.dz), bits(&adaptive.dz));
            assert_eq!(plain.radius(), adaptive.radius());
        }
    }

    #[test]
    fn adaptive_build_stores_exactly_the_pair_rule_set() {
        // Against first principles: row i holds j iff
        // d2 <= max(radii[i], radii[j])², nothing more, nothing less.
        for periodic in [true, false] {
            let (x, y, z) = cloud(350, 43);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let n = 350;
            let radii: Vec<f64> = (0..n).map(|i| 0.05 + 0.09 * (i % 5) as f64 / 4.0).collect();
            let rmax = radii.iter().fold(0.0f64, |m, &r| m.max(r));
            let grid = CellList::build(&x, &y, &z, &bbox, rmax);
            let mut nl = NeighborList::new();
            nl.build_adaptive_into(&grid, &x, &y, &z, n, &radii);
            for i in 0..n {
                let mut stored: Vec<usize> = nl.row(i).iter().map(|&j| j as usize).collect();
                stored.sort_unstable();
                let mut expect: Vec<usize> = (0..n)
                    .filter(|&j| {
                        let d2 = bbox.dist2(x[i], y[i], z[i], x[j], y[j], z[j]);
                        let lim = radii[i].max(radii[j]);
                        d2 <= lim * lim
                    })
                    .collect();
                expect.sort_unstable();
                assert_eq!(stored, expect, "row {i}");
            }
        }
    }

    #[test]
    fn adaptive_rows_replay_the_grid_sequence_within_row_radius() {
        // The per-row completeness contract: replaying row i at any query
        // radius up to radii[i] reproduces the direct grid walk's (j, d2)
        // sequence — same order, same bits — exactly as the fixed-radius
        // list does at its superset radius.
        let (x, y, z) = cloud(400, 47);
        let bbox = Box3::unit_periodic();
        let n = 400;
        let radii: Vec<f64> = (0..n).map(|i| 0.06 + 0.08 * (i % 7) as f64 / 6.0).collect();
        let rmax = radii.iter().fold(0.0f64, |m, &r| m.max(r));
        let grid = CellList::build(&x, &y, &z, &bbox, rmax);
        let mut nl = NeighborList::new();
        nl.build_adaptive_into(&grid, &x, &y, &z, n, &radii);
        for i in (0..n).step_by(7) {
            for r in [radii[i], 0.6 * radii[i], 0.25 * radii[i]] {
                let mut direct = Vec::new();
                grid.for_neighbors(x[i], y[i], z[i], r, &x, &y, &z, |j, d2| {
                    direct.push((j, d2.to_bits()));
                });
                let mut replay = Vec::new();
                nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                    replay.push((j, d2.to_bits()));
                });
                assert_eq!(direct, replay, "particle {i} at radius {r}");
            }
        }
    }

    #[test]
    fn pair_filter_drops_zero_distance_and_negates_exactly() {
        // filter_pairs_into must emit filter_row_into's sequence minus the
        // zero-distance candidates (self included), with NEGATE flipping
        // exactly the delta signs and leaving d2 bits untouched.
        let (x, y, z) = cloud(300, 53);
        let bbox = Box3::unit_periodic();
        let big = 0.16;
        let grid = CellList::build(&x, &y, &z, &bbox, big);
        let nl = NeighborList::build(&grid, &x, &y, &z, 300, big);
        let mut base = FilteredRow::default();
        let mut pairs = FilteredRow::default();
        let mut negated = FilteredRow::default();
        for i in (0..300).step_by(11) {
            // Row lengths vary mod 4, covering the vector remainder cases.
            for r in [big, 0.11, 0.05] {
                nl.filter_row_into(i, r, &mut base);
                nl.filter_pairs_into::<false>(i, r, &mut pairs);
                nl.filter_pairs_into::<true>(i, r, &mut negated);
                let keep: Vec<usize> = (0..base.len()).filter(|&k| base.d2[k] > 0.0).collect();
                assert_eq!(pairs.len(), keep.len(), "row {i} at radius {r}");
                assert!(pairs.j.iter().all(|&j| j as usize != i));
                for (out_k, &k) in keep.iter().enumerate() {
                    assert_eq!(pairs.j[out_k], base.j[k]);
                    assert_eq!(pairs.dx[out_k].to_bits(), base.dx[k].to_bits());
                    assert_eq!(pairs.dy[out_k].to_bits(), base.dy[k].to_bits());
                    assert_eq!(pairs.dz[out_k].to_bits(), base.dz[k].to_bits());
                    assert_eq!(pairs.d2[out_k].to_bits(), base.d2[k].to_bits());
                    assert_eq!(negated.j[out_k], base.j[k]);
                    assert_eq!(negated.dx[out_k].to_bits(), (-base.dx[k]).to_bits());
                    assert_eq!(negated.dy[out_k].to_bits(), (-base.dy[k]).to_bits());
                    assert_eq!(negated.dz[out_k].to_bits(), (-base.dz[k]).to_bits());
                    assert_eq!(negated.d2[out_k].to_bits(), base.d2[k].to_bits());
                }
            }
        }
    }

    #[test]
    fn filtered_rows_match_the_scalar_replay() {
        // filter_row_into must emit exactly the scalar replay's passing
        // sequence — indices, deltas and d2 bits — at every radius,
        // covering all 4-lane remainder classes (row lengths vary mod 4).
        let (x, y, z) = cloud(400, 11);
        let bbox = Box3::unit_periodic();
        let big = 0.15;
        let grid = CellList::build(&x, &y, &z, &bbox, big);
        let nl = NeighborList::build(&grid, &x, &y, &z, 400, big);
        let mut row = FilteredRow::default();
        let mut seen_rem = [false; 4];
        for i in 0..400 {
            for r in [big, 0.1, 0.04, 0.002] {
                let mut scalar = Vec::new();
                nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                    scalar.push((j as u32, d2.to_bits()));
                });
                nl.filter_row_into(i, r, &mut row);
                seen_rem[nl.row(i).len() % 4] = true;
                let blocked: Vec<(u32, u64)> = row
                    .j
                    .iter()
                    .zip(&row.d2)
                    .map(|(&j, d2)| (j, d2.to_bits()))
                    .collect();
                assert_eq!(scalar, blocked, "row {i} at radius {r}");
                assert_eq!(nl.count_within(i, r), row.len(), "count of row {i} at {r}");
                for k in 0..row.len() {
                    let slot =
                        nl.offsets[i] + nl.row(i).iter().position(|&j| j == row.j[k]).unwrap();
                    assert_eq!(row.dx[k].to_bits(), nl.dx[slot].to_bits());
                }
            }
        }
        assert_eq!(seen_rem, [true; 4], "all remainder classes exercised");
    }

    #[test]
    fn tiny_rows_cover_every_remainder_length() {
        // Rows of length 1..=6 (a clustered line of particles): the
        // remainder-lane path handles every length-mod-4 class including
        // whole rows shorter than one chunk.
        let bbox = Box3::cube(0.0, 1.0, false);
        for n in 1usize..=6 {
            let x: Vec<f64> = (0..n).map(|k| 0.5 + 0.001 * k as f64).collect();
            let y = vec![0.5; n];
            let z = vec![0.5; n];
            let r = 0.1;
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            let nl = NeighborList::build(&grid, &x, &y, &z, n, r);
            let mut row = FilteredRow::default();
            for i in 0..n {
                nl.filter_row_into(i, r, &mut row);
                assert_eq!(row.len(), n, "row {i} of the {n}-cluster");
                let mut scalar = Vec::new();
                nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                    scalar.push((j as u32, d2.to_bits()));
                });
                let blocked: Vec<(u32, u64)> = row
                    .j
                    .iter()
                    .zip(&row.d2)
                    .map(|(&j, d2)| (j, d2.to_bits()))
                    .collect();
                assert_eq!(scalar, blocked);
                // A sub-support filter that drops the far tail.
                let small = 0.0015;
                nl.filter_row_into(i, small, &mut row);
                assert_eq!(nl.count_within(i, small), row.len());
            }
        }
    }

    #[test]
    fn scalar_replay_adapter_is_transparent() {
        let (x, y, z) = cloud(150, 17);
        let bbox = Box3::unit_periodic();
        let r = 0.2;
        let grid = CellList::build(&x, &y, &z, &bbox, r);
        let nl = NeighborList::build(&grid, &x, &y, &z, 150, r);
        let adapter = ScalarReplay(&nl);
        assert!(adapter.as_list().is_none(), "adapter must hide the list");
        assert!(nl.as_list().is_some(), "list must expose itself");
        for i in (0..150).step_by(11) {
            let mut direct = Vec::new();
            nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                direct.push((j, d2.to_bits()));
            });
            let mut via = Vec::new();
            adapter.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                via.push((j, d2.to_bits()));
            });
            assert_eq!(direct, via);
        }
    }

    #[test]
    fn build_into_reuses_buffers_and_stays_correct() {
        let bbox = Box3::unit_periodic();
        let (x, y, z) = cloud(500, 3);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.2);
        let mut nl = NeighborList::build(&grid, &x, &y, &z, 500, 0.2);
        let cap_before = nl.csr_bytes();

        // Rebuild over a smaller cloud with a smaller radius: capacity must
        // not shrink (reuse), rows must be fresh.
        let (x2, y2, z2) = cloud(200, 4);
        let grid2 = CellList::build(&x2, &y2, &z2, &bbox, 0.1);
        nl.build_into(&grid2, &x2, &y2, &z2, 200, 0.1);
        assert_eq!(nl.len(), 200);
        assert!(nl.csr_bytes() >= cap_before || nl.csr_bytes() > 0);
        for i in (0..200).step_by(11) {
            assert_eq!(
                neighbors_via(&nl, i, 0.1, &x2, &y2, &z2, &bbox),
                brute_force_neighbors(i, 0.1, &x2, &y2, &z2, &bbox)
            );
        }
    }

    #[test]
    fn partial_query_range_covers_only_the_prefix() {
        // The simulation only queries owned particles; halos are stored in
        // the grid (as candidates) but get no row of their own.
        let bbox = Box3::cube(0.0, 1.0, false);
        let (x, y, z) = cloud(120, 9);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.12);
        let nl = NeighborList::build(&grid, &x, &y, &z, 80, 0.12);
        assert_eq!(nl.len(), 80);
        for i in (0..80).step_by(13) {
            assert_eq!(
                neighbors_via(&nl, i, 0.12, &x, &y, &z, &bbox),
                brute_force_neighbors(i, 0.12, &x, &y, &z, &bbox),
                "halo candidates must still appear in owned rows"
            );
        }
    }

    #[test]
    fn stats_report_the_csr_shape() {
        let bbox = Box3::unit_periodic();
        let (x, y, z) = cloud(300, 5);
        let grid = CellList::build(&x, &y, &z, &bbox, 0.2);
        let nl = NeighborList::build(&grid, &x, &y, &z, 300, 0.2);
        assert_eq!(nl.len(), 300);
        assert!(nl.pair_count() >= 300, "every row holds at least itself");
        let avg = nl.avg_neighbors();
        let max = nl.max_neighbors();
        assert!(avg > 0.0 && (avg as usize) <= max);
        // Recompute max from the rows directly.
        let by_rows = (0..300).map(|i| nl.row(i).len() - 1).max().unwrap();
        assert_eq!(max, by_rows);
        // 28 bytes per pair (u32 index + 3 f64 deltas) at minimum.
        assert!(nl.csr_bytes() >= nl.pair_count() * 28);
        // Empty list edge case.
        let empty = NeighborList::new();
        assert!(empty.is_empty());
        assert_eq!(empty.avg_neighbors(), 0.0);
        assert_eq!(empty.max_neighbors(), 0);
        assert_eq!(empty.pair_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_neighborlist_equals_brute_force(
            seed in 0u64..1000,
            n in 1usize..150,
            r in 0.02f64..0.5,
            periodic in proptest::bool::ANY,
        ) {
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let grid = CellList::build(&x, &y, &z, &bbox, r);
            let nl = NeighborList::build(&grid, &x, &y, &z, n, r);
            let i = (seed as usize) % n;
            prop_assert_eq!(
                neighbors_via(&nl, i, r, &x, &y, &z, &bbox),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
        }

        #[test]
        fn prop_filtered_rows_match_grid_at_smaller_radius(
            seed in 0u64..1000,
            n in 1usize..120,
            shrink in 0.2f64..1.0,
            periodic in proptest::bool::ANY,
        ) {
            // Querying a NeighborList recorded at R with any r <= R must
            // agree with brute force at r (the superset-plus-filter claim),
            // and the blocked compaction must match the scalar replay on
            // rows of every length (n down to 1 covers all remainders).
            let big = 0.3;
            let (x, y, z) = cloud(n, seed);
            let bbox = Box3::cube(0.0, 1.0, periodic);
            let grid = CellList::build(&x, &y, &z, &bbox, big);
            let nl = NeighborList::build(&grid, &x, &y, &z, n, big);
            let r = big * shrink;
            let i = (seed as usize) % n;
            prop_assert_eq!(
                neighbors_via(&nl, i, r, &x, &y, &z, &bbox),
                brute_force_neighbors(i, r, &x, &y, &z, &bbox)
            );
            let mut row = FilteredRow::default();
            nl.filter_row_into(i, r, &mut row);
            let mut scalar = Vec::new();
            nl.for_neighbors_of(i, r, &x, &y, &z, &bbox, |j, d2| {
                scalar.push((j as u32, d2.to_bits()));
            });
            let blocked: Vec<(u32, u64)> = row
                .j
                .iter()
                .zip(&row.d2)
                .map(|(&j, d2)| (j, d2.to_bits()))
                .collect();
            prop_assert_eq!(scalar, blocked);
            prop_assert_eq!(nl.count_within(i, r), row.len());
        }
    }
}
