//! Cornerstone-style octree: a flat, sorted array of SFC leaf boundaries.
//!
//! A node is a key range `[leaves[i], leaves[i+1])` that is exactly one
//! octant at some refinement level. The tree is built by subdividing any
//! octant holding more than `bucket_size` particles — the same balanced-leaf
//! construction the real Cornerstone library uses on the GPU.

use serde::{Deserialize, Serialize};

use crate::key::{KEY_END, MAX_LEVEL};

/// Below this key count a parallel top-level build costs more in thread
/// spawns than the subdivision saves.
const PAR_BUILD_THRESHOLD: usize = 4096;

/// Balanced octree over sorted particle keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Octree {
    /// Leaf boundaries: `leaves[0] == 0`, `leaves.last() == KEY_END`,
    /// strictly increasing; `[leaves[i], leaves[i+1])` is octant-aligned.
    leaves: Vec<u64>,
    /// Particles per leaf (same length as `leaves.len() - 1`).
    counts: Vec<usize>,
    bucket_size: usize,
}

impl Octree {
    /// Build from **sorted** particle keys. Panics (debug) on unsorted input.
    pub fn build(sorted_keys: &[u64], bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be positive");
        debug_assert!(
            sorted_keys.windows(2).all(|w| w[0] <= w[1]),
            "keys must be sorted"
        );
        let mut leaves = Vec::new();
        let mut counts = Vec::new();
        leaves.push(0);
        // `sorted_keys.len() > bucket_size` is exactly the condition under
        // which the serial recursion would subdivide the root; the eight
        // top-level octants are then independent subtrees whose leaf runs
        // concatenate in octant order, identical to the serial output.
        if sorted_keys.len() > bucket_size && sorted_keys.len() >= PAR_BUILD_THRESHOLD {
            let child_span = KEY_END / 8;
            let octants: Vec<(Vec<u64>, Vec<usize>)> = par::par_map(8, |c| {
                let cs = c as u64 * child_span;
                let mut l = Vec::new();
                let mut n = Vec::new();
                subdivide(
                    sorted_keys,
                    cs,
                    cs + child_span,
                    1,
                    bucket_size,
                    &mut l,
                    &mut n,
                );
                (l, n)
            });
            for (l, n) in octants {
                leaves.extend(l);
                counts.extend(n);
            }
        } else {
            subdivide(
                sorted_keys,
                0,
                KEY_END,
                0,
                bucket_size,
                &mut leaves,
                &mut counts,
            );
        }
        Octree {
            leaves,
            counts,
            bucket_size,
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// Leaf boundaries (length `len() + 1`).
    pub fn leaf_boundaries(&self) -> &[u64] {
        &self.leaves
    }

    /// Particle counts per leaf.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total particles covered.
    pub fn total_count(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Key range of leaf `i`.
    pub fn leaf_range(&self, i: usize) -> (u64, u64) {
        (self.leaves[i], self.leaves[i + 1])
    }

    /// Refinement level of leaf `i` (0 = root).
    pub fn leaf_level(&self, i: usize) -> u32 {
        let span = self.leaves[i + 1] - self.leaves[i];
        // span = 8^(MAX_LEVEL - level)
        MAX_LEVEL - (span.trailing_zeros() / 3)
    }

    /// Index of the leaf containing `key`.
    pub fn leaf_of_key(&self, key: u64) -> usize {
        debug_assert!(key < KEY_END);
        self.leaves.partition_point(|&b| b <= key) - 1
    }

    /// Deepest leaf level in the tree.
    pub fn max_depth(&self) -> u32 {
        (0..self.len())
            .map(|i| self.leaf_level(i))
            .max()
            .unwrap_or(0)
    }

    /// Check all structural invariants (used by property tests and after
    /// exchanges). Returns a human-readable violation if any.
    pub fn validate(&self, n_particles: usize) -> Result<(), String> {
        if self.leaves.first() != Some(&0) || self.leaves.last() != Some(&KEY_END) {
            return Err("leaf boundaries must span the whole key space".into());
        }
        if self.leaves.len() != self.counts.len() + 1 {
            return Err("boundary/count length mismatch".into());
        }
        for w in self.leaves.windows(2) {
            let span = w[1] - w[0];
            if span == 0 {
                return Err("empty leaf range".into());
            }
            if span.count_ones() != 1 || span.trailing_zeros() % 3 != 0 {
                return Err(format!("leaf span {span} is not a whole octant"));
            }
            if w[0] % span != 0 {
                return Err(format!("leaf start {} misaligned for span {span}", w[0]));
            }
        }
        if self.total_count() != n_particles {
            return Err(format!(
                "counts sum {} != particle count {n_particles}",
                self.total_count()
            ));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.bucket_size && self.leaf_level(i) < MAX_LEVEL {
                return Err(format!("leaf {i} overfull ({c}) but not at max level"));
            }
        }
        Ok(())
    }

    /// Split the key space into `parts` contiguous rank domains with
    /// near-equal particle counts (the global SFC partition of Cornerstone's
    /// domain decomposition). Returns `parts + 1` split keys.
    pub fn partition(&self, parts: usize) -> Vec<u64> {
        assert!(parts > 0);
        let total = self.total_count();
        let mut splits = Vec::with_capacity(parts + 1);
        splits.push(0);
        let mut acc = 0usize;
        let mut next_target = 1;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            // Close domains whenever the running count passes the ideal
            // boundary; ties resolve to the earlier leaf edge.
            while next_target < parts
                && acc * parts >= next_target * total
                && splits.len() <= next_target
            {
                splits.push(self.leaves[i + 1]);
                next_target += 1;
            }
        }
        while splits.len() < parts {
            splits.push(KEY_END);
        }
        splits.push(KEY_END);
        splits
    }
}

fn subdivide(
    keys: &[u64],
    start: u64,
    end: u64,
    level: u32,
    bucket: usize,
    leaves: &mut Vec<u64>,
    counts: &mut Vec<usize>,
) {
    let lo = keys.partition_point(|&k| k < start);
    let hi = keys.partition_point(|&k| k < end);
    let count = hi - lo;
    if count <= bucket || level == MAX_LEVEL {
        leaves.push(end);
        counts.push(count);
        return;
    }
    let child_span = (end - start) / 8;
    for c in 0..8u64 {
        let cs = start + c * child_span;
        subdivide(
            &keys[lo..hi],
            cs,
            cs + child_span,
            level + 1,
            bucket,
            leaves,
            counts,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::box3::Box3;
    use crate::key::key_of;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let bbox = Box3::unit_periodic();
        let mut keys: Vec<u64> = (0..n)
            .map(|_| {
                key_of(
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    rng.random::<f64>(),
                    &bbox,
                )
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    #[test]
    fn empty_input_gives_root_leaf() {
        let t = Octree::build(&[], 64);
        assert_eq!(t.len(), 1);
        assert_eq!(t.leaf_range(0), (0, KEY_END));
        assert_eq!(t.total_count(), 0);
        t.validate(0).unwrap();
    }

    #[test]
    fn uniform_cloud_respects_bucket_size() {
        let keys = random_keys(4096, 42);
        let t = Octree::build(&keys, 64);
        t.validate(keys.len()).unwrap();
        assert!(t.len() >= 4096 / 64, "too few leaves: {}", t.len());
        assert!(t.counts().iter().all(|&c| c <= 64));
    }

    #[test]
    fn clustered_cloud_refines_locally() {
        let bbox = Box3::unit_periodic();
        let mut rng = StdRng::seed_from_u64(7);
        // 2000 particles crammed into a corner, 100 spread out.
        let mut keys: Vec<u64> = Vec::with_capacity(2100);
        for _ in 0..2000 {
            keys.push(key_of(
                rng.random::<f64>() * 0.01,
                rng.random::<f64>() * 0.01,
                rng.random::<f64>() * 0.01,
                &bbox,
            ));
        }
        for _ in 0..100 {
            keys.push(key_of(
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
                &bbox,
            ));
        }
        keys.sort_unstable();
        let t = Octree::build(&keys, 32);
        t.validate(keys.len()).unwrap();
        assert!(t.max_depth() > 5, "cluster must force deep refinement");
    }

    #[test]
    fn leaf_of_key_finds_containing_leaf() {
        let keys = random_keys(1000, 3);
        let t = Octree::build(&keys, 32);
        for &k in keys.iter().step_by(37) {
            let i = t.leaf_of_key(k);
            let (s, e) = t.leaf_range(i);
            assert!(s <= k && k < e);
        }
        assert_eq!(t.leaf_of_key(0), 0);
        assert_eq!(t.leaf_of_key(KEY_END - 1), t.len() - 1);
    }

    #[test]
    fn partition_balances_counts() {
        let keys = random_keys(10_000, 11);
        let t = Octree::build(&keys, 64);
        for parts in [1usize, 2, 3, 8, 32] {
            let splits = t.partition(parts);
            assert_eq!(splits.len(), parts + 1);
            assert_eq!(splits[0], 0);
            assert_eq!(*splits.last().unwrap(), KEY_END);
            assert!(splits.windows(2).all(|w| w[0] <= w[1]));
            let per: Vec<usize> = splits
                .windows(2)
                .map(|w| keys.iter().filter(|&&k| k >= w[0] && k < w[1]).count())
                .collect();
            assert_eq!(per.iter().sum::<usize>(), keys.len());
            let ideal = keys.len() / parts;
            for &c in &per {
                // Leaf granularity bounds the imbalance.
                assert!(
                    c <= ideal + 64 + ideal / 4,
                    "parts={parts}: domain of {c} vs ideal {ideal}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_tree_invariants(seed in 0u64..500, n in 0usize..3000, bucket in 1usize..200) {
            let keys = random_keys(n, seed);
            let t = Octree::build(&keys, bucket);
            prop_assert!(t.validate(n).is_ok());
        }

        #[test]
        fn prop_every_key_lands_in_counted_leaf(seed in 0u64..200) {
            let keys = random_keys(500, seed);
            let t = Octree::build(&keys, 16);
            // Histogram by leaf index must equal stored counts.
            let mut hist = vec![0usize; t.len()];
            for &k in &keys {
                hist[t.leaf_of_key(k)] += 1;
            }
            prop_assert_eq!(hist, t.counts().to_vec());
        }
    }
}
