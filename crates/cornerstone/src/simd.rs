//! Runtime CPU-feature dispatch for the hot per-row loops.
//!
//! The crate is built for the baseline `x86-64` target (SSE2), but the hot
//! candidate-scan and sweep-batch loops are all straight-line f64 lane code
//! that LLVM happily widens to 256-bit vectors when AVX2 is available. Each
//! such loop therefore exists twice: the portable body in an
//! `#[inline(always)]` function, and a thin `#[target_feature(enable =
//! "avx2")]` clone that inlines the *same body* compiled with AVX2 codegen.
//! [`avx2()`] picks the clone at runtime (the `is_x86_feature_detected!`
//! result is cached by `std`, so the check is an atomic load).
//!
//! Cloning cannot change results: every operation is the same IEEE-754
//! double operation on the same values in the same order — wider registers
//! evaluate lanes independently, and rustc never licenses FMA contraction
//! or reassociation, with or without `target_feature`. The clones are
//! therefore bit-identical to the portable bodies; the dispatch is purely a
//! codegen choice. (This mirrors how SPH-EXA ships one kernel source
//! compiled per-architecture, minus the separate translation units.)

/// `true` when the running CPU supports AVX2 and the crate was compiled for
/// an x86-64 target that does not already assume it.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
pub fn avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86 targets: no AVX2 clone exists; always take the portable body.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub fn avx2() -> bool {
    false
}
