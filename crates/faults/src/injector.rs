//! The live injector, compiled with the `enabled` feature.
//!
//! Decisions are **stateless hashes**, not a shared RNG stream: each draw on
//! a channel hashes `(seed, channel, device, n)` where `n` is that
//! `(channel, device)` pair's own draw counter. Every device handle is owned
//! by exactly one rank, so its counters advance in program order no matter
//! how worker threads interleave — the schedule is byte-identical across 1
//! and N workers (pinned by `tests/fault_determinism.rs`), and enabling one
//! channel never shifts another's draws.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::profile::{Channel, FaultProfile, FaultStats, SampleFault};

/// `true`: this build carries the live injector.
pub const ENABLED: bool = true;

struct Inner {
    profile: FaultProfile,
    /// Per-(channel, device) draw counters.
    draws: Mutex<HashMap<(u8, u64), u64>>,
    /// Injected/recovered counters, `[inj, rec]` per channel in
    /// `FaultStats::CHANNELS` order.
    stats: [[AtomicU64; 2]; 7],
}

fn channel_index(ch: Channel) -> usize {
    FaultStats::CHANNELS
        .iter()
        .position(|&c| c == ch)
        .expect("channel listed in FaultStats::CHANNELS")
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Inner {
    /// Uniform draw in `[0, 1)` for this `(channel, device)` pair's next
    /// sequence number.
    fn unit_draw(&self, ch: Channel, device: u64) -> f64 {
        let n = {
            let mut draws = self.draws.lock().unwrap_or_else(|e| e.into_inner());
            let n = draws.entry((channel_index(ch) as u8, device)).or_insert(0);
            let cur = *n;
            *n += 1;
            cur
        };
        let mut h = splitmix64(self.profile.seed ^ ch.salt());
        h = splitmix64(h ^ device.wrapping_mul(0xA076_1D64_78BD_642F));
        h = splitmix64(h ^ n);
        // 53 high bits → the unit interval, the standard f64 construction.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    fn bump(&self, ch: Channel, slot: usize, n: u64) {
        self.stats[channel_index(ch)][slot].fetch_add(n, Ordering::Relaxed);
    }
}

/// The process-wide injector: builds per-device handles and aggregates
/// injected/recovered accounting across them.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("active", &self.is_active())
            .finish()
    }
}

impl FaultInjector {
    /// Build an injector for `profile`. An inert profile yields an injector
    /// that never fires (same as `FaultInjector::default()`).
    pub fn new(profile: FaultProfile) -> Self {
        if profile.is_inert() {
            return FaultInjector { inner: None };
        }
        FaultInjector {
            inner: Some(Arc::new(Inner {
                profile,
                draws: Mutex::new(HashMap::new()),
                stats: Default::default(),
            })),
        }
    }

    /// True when at least one channel can fire.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The fault handle for one device/rank. Handles share the injector's
    /// schedule and accounting but draw from their own per-device sequence.
    pub fn device(&self, id: u64) -> DeviceFaults {
        DeviceFaults {
            inner: self.inner.clone(),
            device: id,
        }
    }

    /// Snapshot of the injected/recovered accounting across all devices.
    pub fn stats(&self) -> FaultStats {
        let Some(inner) = &self.inner else {
            return FaultStats::default();
        };
        let mut s = FaultStats::default();
        let read = |i: usize, j: usize| inner.stats[i][j].load(Ordering::Relaxed);
        s.clock_set_injected = read(0, 0);
        s.clock_set_recovered = read(0, 1);
        s.clock_clamp_injected = read(1, 0);
        s.clock_clamp_recovered = read(1, 1);
        s.power_sample_injected = read(2, 0);
        s.power_sample_recovered = read(2, 1);
        s.energy_counter_injected = read(3, 0);
        s.energy_counter_recovered = read(3, 1);
        s.thermal_injected = read(4, 0);
        s.thermal_recovered = read(4, 1);
        s.straggler_injected = read(5, 0);
        s.straggler_recovered = read(5, 1);
        s.measurement_glitch_injected = read(6, 0);
        s.measurement_glitch_recovered = read(6, 1);
        s
    }
}

/// One device's (or rank's) fault handle: pure decision draws plus the
/// injected/recovered accounting the injection and resilience sites call.
///
/// Draw methods decide only — a site that acts on a positive draw must call
/// [`DeviceFaults::note_injected`], and the layer that absorbs the fault
/// calls [`DeviceFaults::note_recovered`], so `FaultStats` counts faults
/// that actually landed.
#[derive(Clone, Default)]
pub struct DeviceFaults {
    inner: Option<Arc<Inner>>,
    device: u64,
}

impl std::fmt::Debug for DeviceFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceFaults")
            .field("active", &self.is_active())
            .field("device", &self.device)
            .finish()
    }
}

impl DeviceFaults {
    /// True when this handle can fire at all — sites may use it to skip
    /// fault bookkeeping wholesale.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Should the next `SetApplicationsClocks` call fail transiently?
    pub fn clock_set_rejects(&self) -> bool {
        match &self.inner {
            Some(i) if i.profile.clock_set_reject > 0.0 => {
                self.unit(i, Channel::ClockSet) < i.profile.clock_set_reject
            }
            _ => false,
        }
    }

    /// How many ladder rungs the next accepted clock-set silently loses
    /// (0 = no clamp).
    pub fn clock_clamp_rungs(&self) -> u32 {
        match &self.inner {
            Some(i)
                if i.profile.clock_clamp > 0.0
                    && self.unit(i, Channel::ClockClamp) < i.profile.clock_clamp =>
            {
                i.profile.clock_clamp_rungs
            }
            _ => 0,
        }
    }

    /// Fate of the next power/energy sample read.
    pub fn sample_fault(&self) -> SampleFault {
        match &self.inner {
            Some(i) if i.profile.sample_drop > 0.0 || i.profile.sample_duplicate > 0.0 => {
                let u = self.unit(i, Channel::PowerSample);
                if u < i.profile.sample_drop {
                    SampleFault::Dropped
                } else if u < i.profile.sample_drop + i.profile.sample_duplicate {
                    SampleFault::Duplicated
                } else {
                    SampleFault::None
                }
            }
            _ => SampleFault::None,
        }
    }

    /// Wrap modulus of the cumulative energy counter, if the rollover
    /// channel is enabled. Not a draw — the register wraps deterministically.
    pub fn energy_rollover_j(&self) -> Option<f64> {
        self.inner.as_ref()?.profile.energy_rollover_j
    }

    /// Should the next kernel region run under a transient thermal cap?
    pub fn thermal_throttle(&self) -> bool {
        match &self.inner {
            Some(i) if i.profile.thermal_throttle > 0.0 => {
                self.unit(i, Channel::Thermal) < i.profile.thermal_throttle
            }
            _ => false,
        }
    }

    /// Should the next local `advance` stall (straggler behaviour)?
    pub fn straggler_stall(&self) -> bool {
        match &self.inner {
            Some(i) if i.profile.straggler_stall > 0.0 => {
                self.unit(i, Channel::Straggler) < i.profile.straggler_stall
            }
            _ => false,
        }
    }

    /// Should the next per-region measurement reach the tuner poisoned
    /// (non-finite) instead of as measured?
    pub fn measurement_glitch(&self) -> bool {
        match &self.inner {
            Some(i) if i.profile.measurement_glitch > 0.0 => {
                self.unit(i, Channel::MeasurementGlitch) < i.profile.measurement_glitch
            }
            _ => false,
        }
    }

    /// Time-inflation factor for a stalled `advance` (1.0 when inactive).
    pub fn straggler_factor(&self) -> f64 {
        match &self.inner {
            Some(i) => i.profile.straggler_factor.max(1.0),
            None => 1.0,
        }
    }

    fn unit(&self, inner: &Inner, ch: Channel) -> f64 {
        inner.unit_draw(ch, self.device)
    }

    /// Record that a fault on `ch` actually landed, and emit a telemetry
    /// instant (`cat = "faults"`, `name = "injected"`) so traces show it.
    pub fn note_injected(&self, ch: Channel) {
        let Some(inner) = &self.inner else { return };
        inner.bump(ch, 0, 1);
        telemetry::instant(
            "faults",
            "injected",
            None,
            vec![
                ("channel", ch.name().into()),
                ("device", self.device.into()),
            ],
        );
    }

    /// Record that one fault on `ch` was detected and absorbed by a
    /// resilience layer (telemetry instant `name = "recovered"`).
    pub fn note_recovered(&self, ch: Channel) {
        self.note_recovered_n(ch, 1);
    }

    /// Record `n` recoveries on `ch` at once (e.g. a run of dropped samples
    /// re-anchored by the next good read).
    pub fn note_recovered_n(&self, ch: Channel, n: u64) {
        if n == 0 {
            return;
        }
        let Some(inner) = &self.inner else { return };
        inner.bump(ch, 1, n);
        telemetry::instant(
            "faults",
            "recovered",
            None,
            vec![
                ("channel", ch.name().into()),
                ("device", self.device.into()),
                ("count", n.into()),
            ],
        );
    }
}
