//! Deterministic, seeded fault injection for the freq-scaling workspace's
//! two fragile real-world channels: the NVML clock-control path
//! (`SetApplicationsClocks` rejections and silent clamping) and the
//! `pm_counters`/PMT measurement path (dropped/duplicated power samples,
//! energy-counter rollover), plus the execution-side disturbances that stress
//! the online tuner (transient thermal throttles, straggler ranks).
//!
//! # Model
//!
//! - A [`FaultProfile`] (the `faults` section of a run spec) gives each
//!   channel a per-decision probability; [`FaultProfile::chaos`] is the
//!   default chaos profile of `freqscale-run --fault-profile default`.
//! - [`FaultInjector::new`] builds the process-wide injector;
//!   [`FaultInjector::device`] hands out one [`DeviceFaults`] per device or
//!   rank. Draws are stateless hashes of `(seed, channel, device, n)`, so
//!   the schedule is byte-identical across worker counts (pinned by
//!   `tests/fault_determinism.rs`).
//! - Draw methods only *decide*. A site acting on a positive draw calls
//!   [`DeviceFaults::note_injected`]; the resilience layer that absorbs the
//!   fault calls [`DeviceFaults::note_recovered`]. Both emit telemetry
//!   instants (`cat = "faults"`), and [`FaultInjector::stats`] aggregates
//!   them into a [`FaultStats`] — a clean chaos run ends with
//!   [`FaultStats::all_recovered`].
//!
//! # Feature gate
//!
//! With the default `enabled` feature off, `noop.rs` replaces the injector:
//! [`ENABLED`] is `false`, both handle types are zero-sized and every entry
//! point is an empty `#[inline]` function, so call sites across the
//! workspace need no `cfg` and cost nothing (pinned by `disabled_tests`
//! below). Workspace crates re-export this gate as their own default-on
//! `faults` feature, mirroring the `telemetry` feature chain.
//!
//! # Example
//!
//! ```
//! let inj = faults::FaultInjector::new(faults::FaultProfile::chaos());
//! let dev = inj.device(0);
//! if dev.clock_set_rejects() {
//!     dev.note_injected(faults::Channel::ClockSet);
//!     // ... retry, then:
//!     dev.note_recovered(faults::Channel::ClockSet);
//! }
//! # if faults::ENABLED { assert!(inj.stats().all_recovered()); }
//! ```

mod profile;
pub use profile::{Channel, FaultProfile, FaultStats, SampleFault};

#[cfg(feature = "enabled")]
mod injector;
#[cfg(feature = "enabled")]
pub use injector::{DeviceFaults, FaultInjector, ENABLED};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{DeviceFaults, FaultInjector, ENABLED};

#[cfg(all(test, feature = "enabled"))]
mod enabled_tests {
    use super::*;

    #[test]
    fn inert_profile_never_fires() {
        let inj = FaultInjector::new(FaultProfile::default());
        assert!(!inj.is_active());
        let dev = inj.device(0);
        assert!(!dev.is_active());
        for _ in 0..64 {
            assert!(!dev.clock_set_rejects());
            assert_eq!(dev.clock_clamp_rungs(), 0);
            assert_eq!(dev.sample_fault(), SampleFault::None);
            assert!(!dev.thermal_throttle());
            assert!(!dev.straggler_stall());
            assert!(!dev.measurement_glitch());
        }
        assert_eq!(dev.energy_rollover_j(), None);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let profile = FaultProfile {
            seed: 42,
            clock_set_reject: 0.25,
            sample_drop: 0.10,
            sample_duplicate: 0.10,
            ..FaultProfile::default()
        };
        let inj = FaultInjector::new(profile);
        assert!(inj.is_active());
        let dev = inj.device(3);
        let n = 20_000;
        let rejects = (0..n).filter(|_| dev.clock_set_rejects()).count();
        let frac = rejects as f64 / n as f64;
        assert!(
            (frac - 0.25).abs() < 0.02,
            "clock-set reject rate {frac} far from 0.25"
        );
        let mut drops = 0;
        let mut dups = 0;
        for _ in 0..n {
            match dev.sample_fault() {
                SampleFault::Dropped => drops += 1,
                SampleFault::Duplicated => dups += 1,
                SampleFault::None => {}
            }
        }
        assert!((drops as f64 / n as f64 - 0.10).abs() < 0.02);
        assert!((dups as f64 / n as f64 - 0.10).abs() < 0.02);
    }

    #[test]
    fn measurement_glitch_rate_and_accounting() {
        let inj = FaultInjector::new(FaultProfile {
            seed: 9,
            measurement_glitch: 0.2,
            ..FaultProfile::default()
        });
        let dev = inj.device(0);
        let n = 20_000;
        let hits = (0..n).filter(|_| dev.measurement_glitch()).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "glitch rate {frac} far from 0.2");
        dev.note_injected(Channel::MeasurementGlitch);
        dev.note_recovered(Channel::MeasurementGlitch);
        let s = inj.stats();
        assert_eq!(s.channel(Channel::MeasurementGlitch), (1, 1));
        assert!(s.all_recovered());
        assert!(s.summary().contains("measurement_glitch: 1 injected"));
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let draw = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultProfile {
                seed,
                clock_set_reject: 0.3,
                ..FaultProfile::default()
            });
            let dev = inj.device(1);
            (0..256).map(|_| dev.clock_set_rejects()).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay identically");
        assert_ne!(draw(7), draw(8), "different seeds should diverge");
    }

    #[test]
    fn channels_and_devices_draw_independently() {
        let mk = |thermal: f64| {
            FaultInjector::new(FaultProfile {
                seed: 11,
                clock_set_reject: 0.3,
                thermal_throttle: thermal,
                ..FaultProfile::default()
            })
        };
        // Enabling a second channel must not shift the first one's schedule.
        let a: Vec<bool> = {
            let dev = mk(0.0).device(0);
            (0..128).map(|_| dev.clock_set_rejects()).collect()
        };
        let b: Vec<bool> = {
            let dev = mk(0.5).device(0);
            (0..128)
                .map(|_| {
                    dev.thermal_throttle();
                    dev.clock_set_rejects()
                })
                .collect()
        };
        assert_eq!(a, b);
        // Distinct devices see distinct schedules.
        let inj = mk(0.0);
        let d0: Vec<bool> = (0..128)
            .map(|_| inj.device(0).clock_set_rejects())
            .collect();
        let inj = mk(0.0);
        let d1: Vec<bool> = (0..128)
            .map(|_| inj.device(1).clock_set_rejects())
            .collect();
        assert_ne!(d0, d1);
    }

    #[test]
    fn accounting_lands_in_stats() {
        let inj = FaultInjector::new(FaultProfile::chaos());
        let d0 = inj.device(0);
        let d1 = inj.device(1);
        d0.note_injected(Channel::ClockSet);
        d1.note_injected(Channel::ClockSet);
        d0.note_recovered(Channel::ClockSet);
        d0.note_injected(Channel::PowerSample);
        d0.note_injected(Channel::PowerSample);
        d0.note_recovered_n(Channel::PowerSample, 2);
        d0.note_recovered_n(Channel::Thermal, 0); // no-op
        let s = inj.stats();
        assert_eq!(s.channel(Channel::ClockSet), (2, 1));
        assert_eq!(s.channel(Channel::PowerSample), (2, 2));
        assert_eq!(s.channel(Channel::Thermal), (0, 0));
        assert!(!s.all_recovered());
        d1.note_recovered(Channel::ClockSet);
        assert!(inj.stats().all_recovered());
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    /// The zero-cost pin the acceptance criteria ask for: with `enabled` off
    /// both handles are ZSTs, the API reports itself compiled out and every
    /// draw is "no fault".
    #[test]
    fn disabled_build_is_zero_cost() {
        assert!(!ENABLED);
        assert_eq!(std::mem::size_of::<FaultInjector>(), 0);
        assert_eq!(std::mem::size_of::<DeviceFaults>(), 0);
        let inj = FaultInjector::new(FaultProfile::chaos());
        assert!(!inj.is_active());
        let dev = inj.device(0);
        assert!(!dev.is_active());
        assert!(!dev.clock_set_rejects());
        assert_eq!(dev.clock_clamp_rungs(), 0);
        assert_eq!(dev.sample_fault(), SampleFault::None);
        assert_eq!(dev.energy_rollover_j(), None);
        assert!(!dev.thermal_throttle());
        assert!(!dev.straggler_stall());
        assert_eq!(dev.straggler_factor(), 1.0);
        dev.note_injected(Channel::ClockSet);
        dev.note_recovered(Channel::ClockSet);
        assert_eq!(inj.stats(), FaultStats::default());
    }

    /// Profiles still parse and validate when the injector is compiled out,
    /// so specs carrying a `faults` section load in every build.
    #[test]
    fn profiles_still_parse_when_disabled() {
        let p: FaultProfile = serde_json::from_str(r#"{"clock_set_reject": 0.05}"#).unwrap();
        assert!(p.validate().is_ok());
        assert!(!p.is_inert());
    }
}
