//! No-op mirror of `injector.rs`, compiled when the `enabled` feature is
//! off. Every type is zero-sized and every entry point is an empty inline
//! function returning "no fault", so instrumented call sites cost nothing
//! and need no `cfg` (pinned by `disabled_tests` in `lib.rs`).

use crate::profile::{Channel, FaultProfile, FaultStats, SampleFault};

/// `false`: the injector is compiled out of this build.
pub const ENABLED: bool = false;

/// Zero-sized stand-in for the live injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultInjector;

impl FaultInjector {
    #[inline]
    pub fn new(_profile: FaultProfile) -> Self {
        FaultInjector
    }

    #[inline]
    pub fn is_active(&self) -> bool {
        false
    }

    #[inline]
    pub fn device(&self, _id: u64) -> DeviceFaults {
        DeviceFaults
    }

    #[inline]
    pub fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Zero-sized stand-in for a device's fault handle.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceFaults;

impl DeviceFaults {
    #[inline]
    pub fn is_active(&self) -> bool {
        false
    }

    #[inline]
    pub fn clock_set_rejects(&self) -> bool {
        false
    }

    #[inline]
    pub fn clock_clamp_rungs(&self) -> u32 {
        0
    }

    #[inline]
    pub fn sample_fault(&self) -> SampleFault {
        SampleFault::None
    }

    #[inline]
    pub fn energy_rollover_j(&self) -> Option<f64> {
        None
    }

    #[inline]
    pub fn thermal_throttle(&self) -> bool {
        false
    }

    #[inline]
    pub fn straggler_stall(&self) -> bool {
        false
    }

    #[inline]
    pub fn straggler_factor(&self) -> f64 {
        1.0
    }

    #[inline]
    pub fn measurement_glitch(&self) -> bool {
        false
    }

    #[inline]
    pub fn note_injected(&self, _ch: Channel) {}

    #[inline]
    pub fn note_recovered(&self, _ch: Channel) {}

    #[inline]
    pub fn note_recovered_n(&self, _ch: Channel, _n: u64) {}
}
