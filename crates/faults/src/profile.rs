//! Fault profiles and injection/recovery accounting.
//!
//! These types are compiled unconditionally (even when the `enabled` feature
//! is off) so run specs carrying a `faults` section always parse and reports
//! always carry a (possibly all-zero) [`FaultStats`].

use serde::{Deserialize, Serialize};

/// The injection channels, one per fragile real-world interface the stack
/// talks to. Decisions on different channels are hashed independently, so
/// enabling one channel never shifts another's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Channel {
    /// `SetApplicationsClocks` fails transiently (`NVML_ERROR_UNKNOWN`).
    ClockSet,
    /// `SetApplicationsClocks` succeeds but silently clamps the requested
    /// graphics clock a few rungs down (power/thermal limit behaviour).
    ClockClamp,
    /// A power/energy sample read returns stale data (dropped) or the
    /// previous sample again (duplicated).
    PowerSample,
    /// The cumulative energy counter wraps at a fixed modulus.
    EnergyCounter,
    /// A kernel region runs under a transient thermal-throttle clock cap.
    Thermal,
    /// A rank's local compute stalls (straggler), inflating one `advance`.
    Straggler,
    /// One per-region (energy, time) measurement reaches the tuner as a
    /// poisoned (non-finite) reading, exercising the measurement-validity
    /// guards (invalid-sample rejection, probe quarantine, search fallback).
    MeasurementGlitch,
}

impl Channel {
    /// Stable per-channel salt for the decision hash.
    pub(crate) fn salt(self) -> u64 {
        match self {
            Channel::ClockSet => 0x636c_6f63_6b73_6574,
            Channel::ClockClamp => 0x636c_616d_7000_0000,
            Channel::PowerSample => 0x7361_6d70_6c65_0000,
            Channel::EnergyCounter => 0x726f_6c6c_6f76_6572,
            Channel::Thermal => 0x7468_6572_6d61_6c00,
            Channel::Straggler => 0x7374_7261_6767_6c65,
            Channel::MeasurementGlitch => 0x676c_6974_6368_0000,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Channel::ClockSet => "clock_set",
            Channel::ClockClamp => "clock_clamp",
            Channel::PowerSample => "power_sample",
            Channel::EnergyCounter => "energy_counter",
            Channel::Thermal => "thermal",
            Channel::Straggler => "straggler",
            Channel::MeasurementGlitch => "measurement_glitch",
        }
    }
}

/// Outcome of a power-sample fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleFault {
    /// The sample is delivered normally.
    #[default]
    None,
    /// The sample is lost; the reader sees the previous state.
    Dropped,
    /// The previous sample is delivered again.
    Duplicated,
}

/// A per-channel fault profile. All rates are per-decision probabilities in
/// `[0, 1]`; the default profile injects nothing, so installing an injector
/// built from `FaultProfile::default()` changes no behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Seed of the deterministic schedule. Same seed + same profile gives a
    /// byte-identical fault schedule regardless of worker count.
    #[serde(default)]
    pub seed: u64,
    /// Probability one `SetApplicationsClocks` call fails transiently.
    #[serde(default)]
    pub clock_set_reject: f64,
    /// Probability a successful clock-set is silently clamped down.
    #[serde(default)]
    pub clock_clamp: f64,
    /// How many ladder rungs a clamped request loses.
    #[serde(default = "default_clamp_rungs")]
    pub clock_clamp_rungs: u32,
    /// Probability one power/energy sample read is dropped.
    #[serde(default)]
    pub sample_drop: f64,
    /// Probability one power/energy sample read is duplicated.
    #[serde(default)]
    pub sample_duplicate: f64,
    /// Cumulative-energy counter wrap modulus in joules; `None` disables the
    /// rollover channel. The raw register shows `true_joules % modulus`.
    #[serde(default)]
    pub energy_rollover_j: Option<f64>,
    /// Probability one kernel region runs under a transient thermal cap.
    #[serde(default)]
    pub thermal_throttle: f64,
    /// Probability one local `advance` stalls (straggler rank behaviour).
    #[serde(default)]
    pub straggler_stall: f64,
    /// Time-inflation factor applied to a stalled `advance` (> 1).
    #[serde(default = "default_straggler_factor")]
    pub straggler_factor: f64,
    /// Probability one per-region (energy, time) measurement reaches the
    /// tuner as a poisoned (non-finite) reading instead of as measured.
    #[serde(default)]
    pub measurement_glitch: f64,
}

fn default_clamp_rungs() -> u32 {
    2
}

fn default_straggler_factor() -> f64 {
    3.0
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0,
            clock_set_reject: 0.0,
            clock_clamp: 0.0,
            clock_clamp_rungs: default_clamp_rungs(),
            sample_drop: 0.0,
            sample_duplicate: 0.0,
            energy_rollover_j: None,
            thermal_throttle: 0.0,
            straggler_stall: 0.0,
            straggler_factor: default_straggler_factor(),
            measurement_glitch: 0.0,
        }
    }
}

impl FaultProfile {
    /// The default chaos profile: 5% clock-set rejection, 1% sample drop and
    /// a counter rollover every 500 J — the acceptance profile of the chaos
    /// end-to-end test and of `freqscale-run --fault-profile default`.
    pub fn chaos() -> Self {
        FaultProfile {
            seed: 0xC4A05,
            clock_set_reject: 0.05,
            clock_clamp: 0.02,
            sample_drop: 0.01,
            sample_duplicate: 0.005,
            energy_rollover_j: Some(500.0),
            thermal_throttle: 0.01,
            ..FaultProfile::default()
        }
    }

    /// True if every channel is disabled — an injector built from such a
    /// profile never fires.
    pub fn is_inert(&self) -> bool {
        self.clock_set_reject <= 0.0
            && self.clock_clamp <= 0.0
            && self.sample_drop <= 0.0
            && self.sample_duplicate <= 0.0
            && self.energy_rollover_j.is_none()
            && self.thermal_throttle <= 0.0
            && self.straggler_stall <= 0.0
            && self.measurement_glitch <= 0.0
    }

    /// Reject profiles the injector cannot run with.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("clock_set_reject", self.clock_set_reject),
            ("clock_clamp", self.clock_clamp),
            ("sample_drop", self.sample_drop),
            ("sample_duplicate", self.sample_duplicate),
            ("thermal_throttle", self.thermal_throttle),
            ("straggler_stall", self.straggler_stall),
            ("measurement_glitch", self.measurement_glitch),
        ];
        for (name, p) in rates {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if self.sample_drop + self.sample_duplicate > 1.0 {
            return Err("sample_drop + sample_duplicate exceeds 1".into());
        }
        if let Some(m) = self.energy_rollover_j {
            if !m.is_finite() || m <= 0.0 {
                return Err(format!("energy_rollover_j = {m} must be positive"));
            }
        }
        if self.clock_clamp > 0.0 && self.clock_clamp_rungs == 0 {
            return Err("clock_clamp enabled with clock_clamp_rungs = 0".into());
        }
        if self.straggler_stall > 0.0 && self.straggler_factor <= 1.0 {
            return Err(format!(
                "straggler_factor = {} must exceed 1",
                self.straggler_factor
            ));
        }
        Ok(())
    }
}

/// Injected/recovered counters per channel. `injected` counts faults that
/// actually landed (not mere decision draws); each resilience layer calls
/// `note_recovered` when it detects and absorbs one, so a clean run ends
/// with `all_recovered()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    #[serde(default)]
    pub clock_set_injected: u64,
    #[serde(default)]
    pub clock_set_recovered: u64,
    #[serde(default)]
    pub clock_clamp_injected: u64,
    #[serde(default)]
    pub clock_clamp_recovered: u64,
    #[serde(default)]
    pub power_sample_injected: u64,
    #[serde(default)]
    pub power_sample_recovered: u64,
    #[serde(default)]
    pub energy_counter_injected: u64,
    #[serde(default)]
    pub energy_counter_recovered: u64,
    #[serde(default)]
    pub thermal_injected: u64,
    #[serde(default)]
    pub thermal_recovered: u64,
    #[serde(default)]
    pub straggler_injected: u64,
    #[serde(default)]
    pub straggler_recovered: u64,
    #[serde(default)]
    pub measurement_glitch_injected: u64,
    #[serde(default)]
    pub measurement_glitch_recovered: u64,
}

impl FaultStats {
    /// `(injected, recovered)` for one channel.
    pub fn channel(&self, ch: Channel) -> (u64, u64) {
        match ch {
            Channel::ClockSet => (self.clock_set_injected, self.clock_set_recovered),
            Channel::ClockClamp => (self.clock_clamp_injected, self.clock_clamp_recovered),
            Channel::PowerSample => (self.power_sample_injected, self.power_sample_recovered),
            Channel::EnergyCounter => (self.energy_counter_injected, self.energy_counter_recovered),
            Channel::Thermal => (self.thermal_injected, self.thermal_recovered),
            Channel::Straggler => (self.straggler_injected, self.straggler_recovered),
            Channel::MeasurementGlitch => (
                self.measurement_glitch_injected,
                self.measurement_glitch_recovered,
            ),
        }
    }

    pub const CHANNELS: [Channel; 7] = [
        Channel::ClockSet,
        Channel::ClockClamp,
        Channel::PowerSample,
        Channel::EnergyCounter,
        Channel::Thermal,
        Channel::Straggler,
        Channel::MeasurementGlitch,
    ];

    /// Total faults injected across channels.
    pub fn injected(&self) -> u64 {
        Self::CHANNELS.iter().map(|&c| self.channel(c).0).sum()
    }

    /// Total faults recovered across channels.
    pub fn recovered(&self) -> u64 {
        Self::CHANNELS.iter().map(|&c| self.channel(c).1).sum()
    }

    /// True when every injected fault was recovered (vacuously true for a
    /// fault-free run).
    pub fn all_recovered(&self) -> bool {
        Self::CHANNELS
            .iter()
            .all(|&c| self.channel(c).0 == self.channel(c).1)
    }

    /// Merge another stats snapshot into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.clock_set_injected += other.clock_set_injected;
        self.clock_set_recovered += other.clock_set_recovered;
        self.clock_clamp_injected += other.clock_clamp_injected;
        self.clock_clamp_recovered += other.clock_clamp_recovered;
        self.power_sample_injected += other.power_sample_injected;
        self.power_sample_recovered += other.power_sample_recovered;
        self.energy_counter_injected += other.energy_counter_injected;
        self.energy_counter_recovered += other.energy_counter_recovered;
        self.thermal_injected += other.thermal_injected;
        self.thermal_recovered += other.thermal_recovered;
        self.straggler_injected += other.straggler_injected;
        self.straggler_recovered += other.straggler_recovered;
        self.measurement_glitch_injected += other.measurement_glitch_injected;
        self.measurement_glitch_recovered += other.measurement_glitch_recovered;
    }

    /// Human-readable per-channel summary, one `name: N injected, M
    /// recovered` clause per active channel — the recovery log line a chaos
    /// run prints.
    pub fn summary(&self) -> String {
        let clauses: Vec<String> = Self::CHANNELS
            .iter()
            .filter_map(|&c| {
                let (inj, rec) = self.channel(c);
                (inj + rec > 0).then(|| format!("{}: {inj} injected, {rec} recovered", c.name()))
            })
            .collect();
        if clauses.is_empty() {
            "no faults injected".to_string()
        } else {
            clauses.join("; ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_inert_and_valid() {
        let p = FaultProfile::default();
        assert!(p.is_inert());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn chaos_profile_matches_acceptance_rates() {
        let p = FaultProfile::chaos();
        assert!(!p.is_inert());
        assert!(p.validate().is_ok());
        assert!((p.clock_set_reject - 0.05).abs() < 1e-12);
        assert!((p.sample_drop - 0.01).abs() < 1e-12);
        assert!(p.energy_rollover_j.is_some());
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let mut p = FaultProfile {
            clock_set_reject: 1.5,
            ..FaultProfile::default()
        };
        assert!(p.validate().is_err(), "rate above 1");
        p.clock_set_reject = 0.1;
        p.energy_rollover_j = Some(0.0);
        assert!(p.validate().is_err(), "zero modulus");
        p.energy_rollover_j = None;
        p.straggler_stall = 0.1;
        p.straggler_factor = 1.0;
        assert!(p.validate().is_err(), "non-inflating straggler");
    }

    #[test]
    fn profile_serde_round_trips_and_tolerates_missing_fields() {
        let p = FaultProfile::chaos();
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // A sparse spec section parses with defaults for everything else.
        let sparse: FaultProfile =
            serde_json::from_str(r#"{"seed": 7, "sample_drop": 0.25}"#).unwrap();
        assert_eq!(sparse.seed, 7);
        assert!((sparse.sample_drop - 0.25).abs() < 1e-12);
        assert_eq!(sparse.clock_set_reject, 0.0);
    }

    #[test]
    fn stats_accounting_and_summary() {
        let mut s = FaultStats::default();
        assert!(s.all_recovered(), "vacuously true");
        assert_eq!(s.summary(), "no faults injected");
        s.clock_set_injected = 3;
        s.clock_set_recovered = 2;
        s.energy_counter_injected = 1;
        s.energy_counter_recovered = 1;
        assert_eq!(s.injected(), 4);
        assert_eq!(s.recovered(), 3);
        assert!(!s.all_recovered());
        let text = s.summary();
        assert!(text.contains("clock_set: 3 injected, 2 recovered"));
        assert!(text.contains("energy_counter: 1 injected, 1 recovered"));
        let t = FaultStats {
            clock_set_recovered: 1,
            ..FaultStats::default()
        };
        s.merge(&t);
        assert!(s.all_recovered());
    }
}
