//! Ordinary least squares fitting of the analytic time/power models.
//!
//! Both models are linear in their coefficients once the predictors are
//! formed (`f_ref/f` for time, `1`, `V²f` and `(f_mem/f_ref)^1.3` for
//! power), so a handful of probe samples pins them down through the normal
//! equations — no iterative solver, no external linear-algebra crate. The
//! systems are at most 3×3.

use serde::{Deserialize, Serialize};

use crate::{KernelModel, Sample, VoltageParams, MEM_POWER_EXP};

/// Fewest samples a fit will accept. Three points over two distinct core
/// clocks already determine the 2-coefficient time model with one residual
/// degree of freedom.
pub const MIN_FIT_SAMPLES: usize = 3;

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than [`MIN_FIT_SAMPLES`] valid samples.
    TooFewSamples { needed: usize, got: usize },
    /// All samples sit at one core clock — the clock-sensitive share is
    /// unobservable.
    NoClockVariation,
    /// The normal equations were numerically singular.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples { needed, got } => {
                write!(f, "too few valid samples: need {needed}, got {got}")
            }
            FitError::NoClockVariation => {
                write!(
                    f,
                    "samples cover a single core clock; cannot separate T_comp"
                )
            }
            FitError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// Quality of a fit: coefficient-of-determination per response plus the
/// worst relative residual, so callers can reject fits that interpolate
/// noise or miss structure (e.g. a roofline dominance flip mid-ladder).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FitDiagnostics {
    /// R² of the time model over the fit samples.
    pub r2_time: f64,
    /// R² of the power model over the fit samples.
    pub r2_power: f64,
    /// Worst `|observed − predicted| / observed` for time.
    pub max_rel_residual_time: f64,
    /// Worst relative residual for power.
    pub max_rel_residual_power: f64,
    /// Number of samples the fit consumed.
    pub samples: usize,
}

impl FitDiagnostics {
    /// A fit a predictive tuner should trust: both R² at or above `min_r2`
    /// and no residual beyond `max_residual` (relative).
    pub fn healthy(&self, min_r2: f64, max_residual: f64) -> bool {
        self.r2_time >= min_r2
            && self.r2_power >= min_r2
            && self.max_rel_residual_time <= max_residual
            && self.max_rel_residual_power <= max_residual
    }
}

/// Solve the least-squares problem `min ||X·b − y||²` through the normal
/// equations, for `k ≤ 3` predictors. Gaussian elimination with partial
/// pivoting; returns `None` when the system is numerically singular.
fn solve_normal(rows: &[[f64; 3]], y: &[f64], k: usize) -> Option<[f64; 3]> {
    debug_assert!((1..=3).contains(&k) && rows.len() == y.len());
    // Accumulate XᵀX and Xᵀy.
    let mut a = [[0.0f64; 3]; 3];
    let mut b = [0.0f64; 3];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..k {
            b[i] += row[i] * yi;
            for j in 0..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    // Scale-aware singularity guard, then eliminate.
    let scale = (0..k)
        .map(|i| a[i][i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    for col in 0..k {
        let pivot = (col..k).max_by(|&r, &s| a[r][col].abs().total_cmp(&a[s][col].abs()))?;
        if a[pivot][col].abs() <= 1e-12 * scale {
            return None;
        }
        if pivot != col {
            a.swap(pivot, col);
            b.swap(pivot, col);
        }
        let pivot_row = a[col];
        for r in (col + 1)..k {
            let m = a[r][col] / pivot_row[col];
            for (c, &p) in pivot_row.iter().enumerate().take(k).skip(col) {
                a[r][c] -= m * p;
            }
            b[r] -= m * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for r in (0..k).rev() {
        let mut acc = b[r];
        for c in (r + 1)..k {
            acc -= a[r][c] * x[c];
        }
        x[r] = acc / a[r][r];
    }
    Some(x)
}

/// R² of `predicted` against `actual`, guarded for near-constant responses:
/// when the response has (almost) no variance, score the residuals against
/// the response magnitude instead, so a flat kernel fitted flat still reads
/// as a good fit.
fn r_squared(actual: &[f64], predicted: &[f64]) -> f64 {
    let n = actual.len() as f64;
    let mean = actual.iter().sum::<f64>() / n;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p) * (a - p))
        .sum();
    let magnitude: f64 = actual.iter().map(|a| a * a).sum();
    if ss_tot > 1e-9 * magnitude {
        1.0 - ss_res / ss_tot
    } else if magnitude > 0.0 {
        (1.0 - ss_res / magnitude).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

fn distinct(values: impl Iterator<Item = f64>) -> usize {
    let mut seen: Vec<f64> = Vec::new();
    for v in values {
        if !seen.iter().any(|s| (s - v).abs() < 1e-9) {
            seen.push(v);
        }
    }
    seen.len()
}

impl KernelModel {
    /// Fit both models from probe samples by ordinary least squares.
    ///
    /// Invalid samples (non-finite or non-positive time/energy) are dropped
    /// first; at least [`MIN_FIT_SAMPLES`] valid ones covering two distinct
    /// core clocks must remain. The memory-power coefficient is fitted only
    /// when the samples vary the memory clock, otherwise it is zero and the
    /// static term absorbs memory power at the reference P-state.
    pub fn fit(
        samples: &[Sample],
        f_core_ref_mhz: f64,
        f_mem_ref_mhz: f64,
        voltage: VoltageParams,
    ) -> Result<KernelModel, FitError> {
        let valid: Vec<Sample> = samples.iter().copied().filter(Sample::is_valid).collect();
        if valid.len() < MIN_FIT_SAMPLES {
            return Err(FitError::TooFewSamples {
                needed: MIN_FIT_SAMPLES,
                got: valid.len(),
            });
        }
        if distinct(valid.iter().map(|s| s.f_core_mhz)) < 2 {
            return Err(FitError::NoClockVariation);
        }
        let mem_varies = distinct(valid.iter().map(|s| s.f_mem_mhz)) >= 2;

        // ---- time: y = t_mem·(fm_ref/fm) + t_comp·(fc_ref/fc) ----
        let t_rows: Vec<[f64; 3]> = valid
            .iter()
            .map(|s| {
                [
                    f_mem_ref_mhz / s.f_mem_mhz,
                    f_core_ref_mhz / s.f_core_mhz,
                    0.0,
                ]
            })
            .collect();
        let t_y: Vec<f64> = valid.iter().map(|s| s.time_s).collect();
        let t = solve_normal(&t_rows, &t_y, 2).ok_or(FitError::Singular)?;
        let (mut t_mem_s, mut t_comp_s) = (t[0], t[1]);
        // A negative share means that axis contributes nothing observable;
        // drop it and refit the other in one dimension.
        if t_comp_s < 0.0 {
            t_comp_s = 0.0;
            t_mem_s = one_dim(&t_rows, &t_y, 0);
        } else if t_mem_s < 0.0 {
            t_mem_s = 0.0;
            t_comp_s = one_dim(&t_rows, &t_y, 1);
        }

        // ---- power: y = p_static + p_core·s(fc) [+ p_mem·(fm/fm_ref)^1.3] ----
        let ref_scale = voltage.core_power_scale(f_core_ref_mhz).max(1e-12);
        let p_rows: Vec<[f64; 3]> = valid
            .iter()
            .map(|s| {
                [
                    1.0,
                    voltage.core_power_scale(s.f_core_mhz) / ref_scale,
                    if mem_varies {
                        (s.f_mem_mhz / f_mem_ref_mhz).powf(MEM_POWER_EXP)
                    } else {
                        0.0
                    },
                ]
            })
            .collect();
        let p_y: Vec<f64> = valid.iter().map(Sample::power_w).collect();
        let k = if mem_varies { 3 } else { 2 };
        let p = solve_normal(&p_rows, &p_y, k)
            .or_else(|| solve_normal(&p_rows, &p_y, 2))
            .ok_or(FitError::Singular)?;
        let (mut p_static_w, mut p_core_w, mut p_mem_w) =
            (p[0], p[1], if k == 3 { p[2] } else { 0.0 });
        if p_core_w < 0.0 {
            // Power that falls with the core clock is unphysical here; call
            // it flat and let the diagnostics report the misfit.
            p_core_w = 0.0;
        }
        if p_mem_w < 0.0 {
            p_mem_w = 0.0;
        }
        if p_static_w < 0.0 {
            p_static_w = 0.0;
        }

        let mut m = KernelModel {
            f_core_ref_mhz,
            f_mem_ref_mhz,
            t_comp_s,
            t_mem_s,
            p_static_w,
            p_core_w,
            p_mem_w,
            voltage,
            diag: FitDiagnostics::default(),
        };
        let t_pred: Vec<f64> = valid
            .iter()
            .map(|s| m.time_s(s.f_core_mhz, s.f_mem_mhz))
            .collect();
        let p_pred: Vec<f64> = valid
            .iter()
            .map(|s| m.power_w(s.f_core_mhz, s.f_mem_mhz))
            .collect();
        let rel = |a: &[f64], p: &[f64]| {
            a.iter()
                .zip(p)
                .map(|(a, p)| (a - p).abs() / a.max(1e-300))
                .fold(0.0f64, f64::max)
        };
        m.diag = FitDiagnostics {
            r2_time: r_squared(&t_y, &t_pred),
            r2_power: r_squared(&p_y, &p_pred),
            max_rel_residual_time: rel(&t_y, &t_pred),
            max_rel_residual_power: rel(&p_y, &p_pred),
            samples: valid.len(),
        };
        Ok(m)
    }
}

/// One-predictor least squares on column `col` of `rows`.
fn one_dim(rows: &[[f64; 3]], y: &[f64], col: usize) -> f64 {
    let num: f64 = rows.iter().zip(y).map(|(r, &yi)| r[col] * yi).sum();
    let den: f64 = rows.iter().map(|r| r[col] * r[col]).sum();
    if den > 0.0 {
        (num / den).max(0.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn volts() -> VoltageParams {
        VoltageParams {
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        }
    }

    /// Generate a sample exactly on a ground-truth model.
    fn on_model(truth: &KernelModel, fc: f64, fm: f64) -> Sample {
        Sample {
            f_core_mhz: fc,
            f_mem_mhz: fm,
            time_s: truth.time_s(fc, fm),
            energy_j: truth.energy_j(fc, fm),
        }
    }

    fn truth() -> KernelModel {
        KernelModel {
            f_core_ref_mhz: 1410.0,
            f_mem_ref_mhz: 1593.0,
            t_comp_s: 0.045,
            t_mem_s: 0.012,
            p_static_w: 85.0,
            p_core_w: 140.0,
            p_mem_w: 38.0,
            voltage: volts(),
            diag: FitDiagnostics::default(),
        }
    }

    #[test]
    fn recovers_coefficients_from_clean_core_probes() {
        let t = truth();
        let samples: Vec<Sample> = [1410.0, 1275.0, 1140.0, 1005.0]
            .iter()
            .map(|&fc| on_model(&t, fc, 1593.0))
            .collect();
        let m = KernelModel::fit(&samples, 1410.0, 1593.0, volts()).unwrap();
        assert!(
            (m.t_comp_s - t.t_comp_s).abs() < 1e-9,
            "t_comp {}",
            m.t_comp_s
        );
        assert!((m.t_mem_s - t.t_mem_s).abs() < 1e-9, "t_mem {}", m.t_mem_s);
        assert!((m.p_core_w - t.p_core_w).abs() < 1e-6);
        // Without mem variation, static power absorbs the mem share.
        assert_eq!(m.p_mem_w, 0.0);
        assert!((m.p_static_w - (t.p_static_w + t.p_mem_w)).abs() < 1e-6);
        assert!(m.diag.r2_time > 0.999 && m.diag.r2_power > 0.999);
        assert!(m.diag.healthy(0.99, 0.02));
    }

    #[test]
    fn recovers_memory_coefficients_with_a_mem_probe() {
        let t = truth();
        let mut samples: Vec<Sample> = [1410.0, 1275.0, 1140.0, 1005.0]
            .iter()
            .map(|&fc| on_model(&t, fc, 1593.0))
            .collect();
        samples.push(on_model(&t, 1410.0, 810.0));
        let m = KernelModel::fit(&samples, 1410.0, 1593.0, volts()).unwrap();
        assert!((m.t_mem_s - t.t_mem_s).abs() < 1e-9);
        assert!((m.p_mem_w - t.p_mem_w).abs() < 1e-6, "p_mem {}", m.p_mem_w);
        assert!((m.p_static_w - t.p_static_w).abs() < 1e-6);
        assert!(m.diag.healthy(0.99, 0.02));
    }

    #[test]
    fn tolerates_mild_noise() {
        let t = truth();
        let noise = [1.01, 0.99, 1.02, 0.985, 1.005];
        let samples: Vec<Sample> = [1410.0, 1305.0, 1200.0, 1095.0, 1005.0]
            .iter()
            .zip(noise)
            .map(|(&fc, n)| {
                let s = on_model(&t, fc, 1593.0);
                Sample {
                    time_s: s.time_s * n,
                    energy_j: s.energy_j * n,
                    ..s
                }
            })
            .collect();
        let m = KernelModel::fit(&samples, 1410.0, 1593.0, volts()).unwrap();
        assert!(m.diag.r2_time > 0.9, "r2_time {}", m.diag.r2_time);
        assert!((m.t_comp_s - t.t_comp_s).abs() / t.t_comp_s < 0.2);
    }

    #[test]
    fn rejects_too_few_or_invalid_samples() {
        let t = truth();
        let s = on_model(&t, 1410.0, 1593.0);
        assert_eq!(
            KernelModel::fit(&[s, s], 1410.0, 1593.0, volts()),
            Err(FitError::TooFewSamples { needed: 3, got: 2 })
        );
        let bad = Sample {
            time_s: f64::NAN,
            ..s
        };
        assert_eq!(
            KernelModel::fit(&[s, bad, bad, bad], 1410.0, 1593.0, volts()),
            Err(FitError::TooFewSamples { needed: 3, got: 1 })
        );
    }

    #[test]
    fn rejects_single_clock_probes() {
        let t = truth();
        let samples = [
            on_model(&t, 1410.0, 1593.0),
            on_model(&t, 1410.0, 1593.0),
            on_model(&t, 1410.0, 1593.0),
        ];
        assert_eq!(
            KernelModel::fit(&samples, 1410.0, 1593.0, volts()),
            Err(FitError::NoClockVariation)
        );
    }

    #[test]
    fn flat_kernel_fits_flat_with_good_diagnostics() {
        // Memory-bound limit: time and power barely move with the core clock.
        let flat = KernelModel {
            t_comp_s: 0.0,
            t_mem_s: 0.05,
            p_core_w: 5.0,
            ..truth()
        };
        let samples: Vec<Sample> = [1410.0, 1200.0, 1005.0]
            .iter()
            .map(|&fc| on_model(&flat, fc, 1593.0))
            .collect();
        let m = KernelModel::fit(&samples, 1410.0, 1593.0, volts()).unwrap();
        assert!(m.t_comp_s.abs() < 1e-9);
        assert!(m.diag.healthy(0.9, 0.05), "diag {:?}", m.diag);
    }

    #[test]
    fn garbage_samples_produce_unhealthy_diagnostics() {
        // Time *rising* with clock in a zig-zag no roofline can express.
        let samples = [
            Sample {
                f_core_mhz: 1410.0,
                f_mem_mhz: 1593.0,
                time_s: 0.10,
                energy_j: 30.0,
            },
            Sample {
                f_core_mhz: 1200.0,
                f_mem_mhz: 1593.0,
                time_s: 0.02,
                energy_j: 2.0,
            },
            Sample {
                f_core_mhz: 1005.0,
                f_mem_mhz: 1593.0,
                time_s: 0.30,
                energy_j: 80.0,
            },
            Sample {
                f_core_mhz: 1300.0,
                f_mem_mhz: 1593.0,
                time_s: 0.01,
                energy_j: 1.0,
            },
        ];
        let m = KernelModel::fit(&samples, 1410.0, 1593.0, volts()).unwrap();
        assert!(
            !m.diag.healthy(0.95, 0.10),
            "zig-zag should not fit cleanly: {:?}",
            m.diag
        );
    }
}
