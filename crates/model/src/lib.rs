//! Analytic per-kernel time/power models for predictive frequency tuning.
//!
//! The paper's ManDyn *searches* the clock ladder for each kernel's
//! EDP-optimal frequency. Afzal et al. ("Modeling and Chasing the
//! Energy-Efficiency Sweet Spots in Modern GPUs", PAPERS.md) show the sweet
//! spot is *predictable* from a roofline time model plus a CV²f power model;
//! Calore et al. show the real optimization space is the (core, memory) DVFS
//! product. This crate holds the model layer shared by the online predictive
//! tuner and the offline sweep harness:
//!
//! ```text
//! T(f_core, f_mem) = T_mem · (f_mem_ref / f_mem) + T_comp · (f_core_ref / f_core)
//! P(f_core, f_mem) = P_static + P_core · V(f_core)²·f_core / (V(ref)²·ref)
//!                             + P_mem · (f_mem / f_mem_ref)^1.3
//! ```
//!
//! Both are fitted by ordinary least squares from a handful of
//! (core clock, memory clock, time, energy) samples ([`KernelModel::fit`]),
//! carry fit-quality diagnostics (R², worst relative residual) so callers can
//! tell a trustworthy fit from garbage, predict the EDP optimum over the
//! discrete (core, mem) ladder product ([`KernelModel::predict_optimum`]),
//! and detect drift of live measurements away from the fit
//! ([`KernelModel::drifted`]) to trigger a refit.
//!
//! The crate is dependency-free apart from `serde` (the coefficients persist
//! in learned-table files); it knows nothing about archsim devices, NVML or
//! tuner state machines.

mod fit;
mod predict;

pub use fit::{FitDiagnostics, FitError, MIN_FIT_SAMPLES};
pub use predict::{golden_section_min, Predicted};

use serde::{Deserialize, Serialize};

/// Exponent of the memory-clock share of dynamic power: HBM I/O voltage
/// tracks the memory clock weakly, so power scales slightly super-linearly
/// (matches `GpuSpec::with_memory_clock`).
pub const MEM_POWER_EXP: f64 = 1.3;

/// One accepted measurement: a kernel region run at pinned clocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Pinned core (graphics/SM) clock, MHz.
    pub f_core_mhz: f64,
    /// Pinned memory clock, MHz.
    pub f_mem_mhz: f64,
    /// Region busy time, seconds.
    pub time_s: f64,
    /// Region energy, joules.
    pub energy_j: f64,
}

impl Sample {
    /// Average power over the region, watts.
    pub fn power_w(&self) -> f64 {
        if self.time_s > 0.0 {
            self.energy_j / self.time_s
        } else {
            0.0
        }
    }

    /// A sample the fitter may use: finite, strictly positive time/energy,
    /// positive clocks.
    pub fn is_valid(&self) -> bool {
        self.f_core_mhz > 0.0
            && self.f_mem_mhz > 0.0
            && self.time_s.is_finite()
            && self.time_s > 0.0
            && self.energy_j.is_finite()
            && self.energy_j > 0.0
    }
}

/// Linear voltage/frequency operating curve, the shape archsim's
/// `VoltageCurve` uses. Duplicated here (plain floats) so the model crate
/// stays free of workspace dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageParams {
    pub v_min: f64,
    pub v_max: f64,
    pub f_min_mhz: f64,
    pub f_max_mhz: f64,
}

impl VoltageParams {
    /// Operating voltage at core clock `f_mhz` (clamped to the curve).
    pub fn volts(&self, f_mhz: f64) -> f64 {
        let f = f_mhz.clamp(self.f_min_mhz, self.f_max_mhz);
        let span = self.f_max_mhz - self.f_min_mhz;
        let x = if span <= 0.0 {
            1.0
        } else {
            (f - self.f_min_mhz) / span
        };
        self.v_min + (self.v_max - self.v_min) * x
    }

    /// The CV²f dynamic-power scale `V(f)²·f / (V(f_max)²·f_max)` — 1.0 at
    /// the top of the curve.
    pub fn core_power_scale(&self, f_mhz: f64) -> f64 {
        let v = self.volts(f_mhz) / self.volts(self.f_max_mhz);
        v * v * (f_mhz / self.f_max_mhz).min(1.0)
    }
}

/// Fitted per-kernel analytic model: time roofline + CV²f power, with the
/// diagnostics of the fit that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Reference core clock the coefficients are expressed at, MHz
    /// (normally the top of the ladder).
    pub f_core_ref_mhz: f64,
    /// Reference memory clock, MHz (normally the default P-state).
    pub f_mem_ref_mhz: f64,
    /// Core-clock-sensitive time share at the reference clocks, seconds.
    pub t_comp_s: f64,
    /// Core-clock-insensitive (memory/overhead) time share at the reference
    /// clocks, seconds.
    pub t_mem_s: f64,
    /// Clock-independent power floor, watts.
    pub p_static_w: f64,
    /// Core dynamic power at the reference core clock, watts. Scales as
    /// CV²f via [`VoltageParams::core_power_scale`].
    pub p_core_w: f64,
    /// Memory dynamic power at the reference memory clock, watts. Scales as
    /// `(f_mem/f_mem_ref)^`[`MEM_POWER_EXP`]. Zero when the fit saw no
    /// memory-clock variation.
    pub p_mem_w: f64,
    /// Voltage curve used to evaluate the CV²f term.
    pub voltage: VoltageParams,
    /// Quality of the fit that produced these coefficients.
    pub diag: FitDiagnostics,
}

impl KernelModel {
    /// Predicted region time at the given clocks, seconds.
    pub fn time_s(&self, f_core_mhz: f64, f_mem_mhz: f64) -> f64 {
        self.t_mem_s * (self.f_mem_ref_mhz / f_mem_mhz)
            + self.t_comp_s * (self.f_core_ref_mhz / f_core_mhz)
    }

    /// Predicted average power at the given clocks, watts.
    pub fn power_w(&self, f_core_mhz: f64, f_mem_mhz: f64) -> f64 {
        let core_rel = self.voltage.core_power_scale(f_core_mhz)
            / self.voltage.core_power_scale(self.f_core_ref_mhz);
        self.p_static_w
            + self.p_core_w * core_rel
            + self.p_mem_w * (f_mem_mhz / self.f_mem_ref_mhz).powf(MEM_POWER_EXP)
    }

    /// Predicted region energy, joules.
    pub fn energy_j(&self, f_core_mhz: f64, f_mem_mhz: f64) -> f64 {
        self.power_w(f_core_mhz, f_mem_mhz) * self.time_s(f_core_mhz, f_mem_mhz)
    }

    /// Predicted energy-delay product, J·s.
    pub fn edp(&self, f_core_mhz: f64, f_mem_mhz: f64) -> f64 {
        let t = self.time_s(f_core_mhz, f_mem_mhz);
        self.power_w(f_core_mhz, f_mem_mhz) * t * t
    }

    /// Relative time residual of a live sample against the model.
    pub fn rel_time_residual(&self, s: &Sample) -> f64 {
        let pred = self.time_s(s.f_core_mhz, s.f_mem_mhz);
        if pred <= 0.0 {
            return f64::INFINITY;
        }
        (s.time_s - pred).abs() / pred
    }

    /// Relative power residual of a live sample against the model.
    pub fn rel_power_residual(&self, s: &Sample) -> f64 {
        let pred = self.power_w(s.f_core_mhz, s.f_mem_mhz);
        if pred <= 0.0 {
            return f64::INFINITY;
        }
        (s.power_w() - pred).abs() / pred
    }

    /// Has the kernel drifted away from the fit? True when either the time
    /// or the power residual of `s` exceeds `tolerance` (relative). Callers
    /// count consecutive positives and refit when the count crosses their
    /// threshold.
    pub fn drifted(&self, s: &Sample, tolerance: f64) -> bool {
        self.rel_time_residual(s) > tolerance || self.rel_power_residual(s) > tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn a100_voltage() -> VoltageParams {
        VoltageParams {
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        }
    }

    #[test]
    fn voltage_curve_matches_endpoints() {
        let v = a100_voltage();
        assert!((v.volts(210.0) - 0.70).abs() < 1e-12);
        assert!((v.volts(1410.0) - 1.05).abs() < 1e-12);
        assert!((v.core_power_scale(1410.0) - 1.0).abs() < 1e-12);
        assert!(v.core_power_scale(1005.0) < 1.0);
        assert!(v.core_power_scale(1005.0) > 0.4);
    }

    #[test]
    fn sample_validity() {
        let good = Sample {
            f_core_mhz: 1410.0,
            f_mem_mhz: 1593.0,
            time_s: 0.1,
            energy_j: 30.0,
        };
        assert!(good.is_valid());
        assert!((good.power_w() - 300.0).abs() < 1e-9);
        assert!(!Sample {
            time_s: 0.0,
            ..good
        }
        .is_valid());
        assert!(!Sample {
            energy_j: f64::NAN,
            ..good
        }
        .is_valid());
        assert!(!Sample {
            time_s: -1.0,
            ..good
        }
        .is_valid());
    }

    #[test]
    fn model_roundtrips_through_serde() {
        let m = KernelModel {
            f_core_ref_mhz: 1410.0,
            f_mem_ref_mhz: 1593.0,
            t_comp_s: 0.04,
            t_mem_s: 0.01,
            p_static_w: 80.0,
            p_core_w: 150.0,
            p_mem_w: 40.0,
            voltage: a100_voltage(),
            diag: FitDiagnostics {
                r2_time: 0.999,
                r2_power: 0.998,
                max_rel_residual_time: 0.01,
                max_rel_residual_power: 0.02,
                samples: 5,
            },
        };
        let json = serde_json::to_string(&m).unwrap();
        let back: KernelModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn drift_detection_uses_both_axes() {
        let m = KernelModel {
            f_core_ref_mhz: 1410.0,
            f_mem_ref_mhz: 1593.0,
            t_comp_s: 0.04,
            t_mem_s: 0.01,
            p_static_w: 80.0,
            p_core_w: 150.0,
            p_mem_w: 0.0,
            voltage: a100_voltage(),
            diag: FitDiagnostics::default(),
        };
        let on_model = Sample {
            f_core_mhz: 1410.0,
            f_mem_mhz: 1593.0,
            time_s: m.time_s(1410.0, 1593.0),
            energy_j: m.energy_j(1410.0, 1593.0),
        };
        assert!(!m.drifted(&on_model, 0.05));
        let slow = Sample {
            time_s: on_model.time_s * 1.5,
            energy_j: on_model.energy_j * 1.5,
            ..on_model
        };
        assert!(m.drifted(&slow, 0.1));
        let hungry = Sample {
            energy_j: on_model.energy_j * 1.5,
            ..on_model
        };
        assert!(m.drifted(&hungry, 0.1));
    }
}
