//! EDP-optimum prediction over the discrete (core, memory) clock ladder.
//!
//! The fitted EDP surface `P(f)·T(f)²` is unimodal in the core clock for
//! fixed memory clock (monotone-decreasing time times monotone-increasing
//! power), so a golden-section search brackets the continuous minimizer
//! cheaply; the discrete prediction then scores the ladder rungs around it.
//! Ladders are small (tens of core rungs × a few memory P-states), so
//! [`KernelModel::predict_optimum`] simply evaluates every product point —
//! exact, and still thousands of times cheaper than one real measurement.

use serde::{Deserialize, Serialize};

use crate::KernelModel;

/// The model's predicted EDP optimum on the discrete ladder product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicted {
    /// Core clock of the predicted optimum, MHz.
    pub f_core_mhz: u32,
    /// Memory clock of the predicted optimum, MHz.
    pub f_mem_mhz: u32,
    /// Predicted region time there, seconds.
    pub time_s: f64,
    /// Predicted average power there, watts.
    pub power_w: f64,
    /// Predicted EDP there, J·s.
    pub edp: f64,
}

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
/// Returns the abscissa of the minimum to within `tol`.
pub fn golden_section_min(mut lo: f64, mut hi: f64, tol: f64, f: impl Fn(f64) -> f64) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    if hi < lo {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut a = hi - INV_PHI * (hi - lo);
    let mut b = lo + INV_PHI * (hi - lo);
    let (mut fa, mut fb) = (f(a), f(b));
    while hi - lo > tol.max(1e-12) {
        if fa <= fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - INV_PHI * (hi - lo);
            fa = f(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + INV_PHI * (hi - lo);
            fb = f(b);
        }
    }
    0.5 * (lo + hi)
}

impl KernelModel {
    /// Continuous core-clock EDP minimizer at a fixed memory clock, via
    /// golden-section search over `[lo, hi]` MHz.
    pub fn continuous_core_optimum(&self, lo_mhz: f64, hi_mhz: f64, f_mem_mhz: f64) -> f64 {
        golden_section_min(lo_mhz, hi_mhz, 0.5, |fc| self.edp(fc, f_mem_mhz))
    }

    /// Exact argmin of the predicted EDP over the discrete
    /// `core_ladder × mem_ladder` product. Returns `None` when either
    /// ladder is empty. Ties break toward higher clocks (cheap safety: when
    /// the model can't tell, don't slow the kernel down).
    pub fn predict_optimum(&self, core_ladder: &[u32], mem_ladder: &[u32]) -> Option<Predicted> {
        let mut best: Option<Predicted> = None;
        for &fm in mem_ladder {
            for &fc in core_ladder {
                let (fcf, fmf) = (f64::from(fc), f64::from(fm));
                let time_s = self.time_s(fcf, fmf);
                let power_w = self.power_w(fcf, fmf);
                let edp = power_w * time_s * time_s;
                let better = match &best {
                    None => true,
                    Some(b) => {
                        edp < b.edp || (edp == b.edp && (fc, fm) > (b.f_core_mhz, b.f_mem_mhz))
                    }
                };
                if better {
                    best = Some(Predicted {
                        f_core_mhz: fc,
                        f_mem_mhz: fm,
                        time_s,
                        power_w,
                        edp,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FitDiagnostics, VoltageParams};

    fn volts() -> VoltageParams {
        VoltageParams {
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        }
    }

    fn core_ladder() -> Vec<u32> {
        (0..28).map(|i| 1410 - 15 * i).collect()
    }

    fn model(t_comp: f64, t_mem: f64) -> KernelModel {
        KernelModel {
            f_core_ref_mhz: 1410.0,
            f_mem_ref_mhz: 1593.0,
            t_comp_s: t_comp,
            t_mem_s: t_mem,
            p_static_w: 85.0,
            p_core_w: 140.0,
            p_mem_w: 38.0,
            voltage: volts(),
            diag: FitDiagnostics::default(),
        }
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let x = golden_section_min(0.0, 10.0, 1e-6, |x| (x - 3.7) * (x - 3.7));
        assert!((x - 3.7).abs() < 1e-4, "got {x}");
    }

    #[test]
    fn compute_bound_kernel_prefers_high_clocks() {
        // Strongly compute-bound: slowdown hurts EDP quadratically.
        let m = model(0.10, 0.002);
        let p = m.predict_optimum(&core_ladder(), &[1593]).unwrap();
        assert!(p.f_core_mhz >= 1300, "got {}", p.f_core_mhz);
    }

    #[test]
    fn memory_bound_kernel_prefers_low_core_clock() {
        // Time barely moves with the core clock; power still does.
        let m = model(0.002, 0.10);
        let p = m.predict_optimum(&core_ladder(), &[1593]).unwrap();
        assert!(p.f_core_mhz <= 1050, "got {}", p.f_core_mhz);
    }

    #[test]
    fn discrete_argmin_matches_golden_section() {
        for (tc, tm) in [(0.08, 0.02), (0.02, 0.08), (0.05, 0.05)] {
            let m = model(tc, tm);
            let cont = m.continuous_core_optimum(1005.0, 1410.0, 1593.0);
            let disc = m.predict_optimum(&core_ladder(), &[1593]).unwrap();
            assert!(
                (f64::from(disc.f_core_mhz) - cont).abs() <= 15.0 + 0.5,
                "discrete {} vs continuous {cont}",
                disc.f_core_mhz
            );
        }
    }

    #[test]
    fn memory_axis_widens_the_savings_for_compute_bound_kernels() {
        // A compute-bound kernel wastes memory power at the top P-state;
        // the co-tuned optimum downclocks memory.
        let m = model(0.10, 0.001);
        let mono = m.predict_optimum(&core_ladder(), &[1593]).unwrap();
        let co = m
            .predict_optimum(&core_ladder(), &[1593, 1215, 810])
            .unwrap();
        assert!(co.f_mem_mhz < 1593, "got {}", co.f_mem_mhz);
        assert!(co.edp <= mono.edp);
    }

    #[test]
    fn memory_bound_kernel_keeps_memory_at_the_top_pstate() {
        let m = model(0.002, 0.10);
        let co = m
            .predict_optimum(&core_ladder(), &[1593, 1215, 810])
            .unwrap();
        assert_eq!(co.f_mem_mhz, 1593);
    }

    #[test]
    fn empty_ladders_predict_nothing() {
        let m = model(0.05, 0.05);
        assert!(m.predict_optimum(&[], &[1593]).is_none());
        assert!(m.predict_optimum(&core_ladder(), &[]).is_none());
    }
}
