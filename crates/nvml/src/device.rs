//! NVML device handles and queries.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use archsim::{GpuDevice, MegaHertz, SimDuration};

use crate::error::NvmlError;

/// `nvmlClockType_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockType {
    Graphics,
    Sm,
    Mem,
}

/// `nvmlUtilization_t`: coarse percent-of-time utilization over the last
/// sample window. Known to overestimate real occupancy (paper ref. \[25\]):
/// any resident kernel — even pure launch overhead — counts as busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    /// Percent of time at least one kernel was resident.
    pub gpu: u32,
    /// Percent of time the memory subsystem was active.
    pub memory: u32,
}

/// Bit flags mirroring `nvmlClocksEventReasons*` (formerly throttle reasons).
pub mod clocks_event_reasons {
    /// Nothing is holding clocks back.
    pub const NONE: u64 = 0x0;
    /// Clocks are low because the GPU is idle.
    pub const GPU_IDLE: u64 = 0x1;
    /// Clocks are pinned by an applications-clocks setting.
    pub const APPLICATIONS_CLOCKS_SETTING: u64 = 0x2;
    /// The software power cap is pulling clocks down.
    pub const SW_POWER_CAP: u64 = 0x4;
    /// Thermal slowdown (HW) is pulling clocks down.
    pub const HW_THERMAL_SLOWDOWN: u64 = 0x40;
}

/// `nvmlTemperatureSensors_t` (only the GPU die sensor is modeled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemperatureSensor {
    Gpu,
}

/// The utilization window NVML averages over.
const UTIL_WINDOW: SimDuration = SimDuration::from_millis(100);

/// A device handle (`nvmlDevice_t`). Cheap to clone; all handles observe the
/// same underlying simulated device.
#[derive(Clone)]
pub struct NvmlDevice {
    index: usize,
    inner: Arc<Mutex<GpuDevice>>,
}

impl NvmlDevice {
    pub(crate) fn new(index: usize, inner: Arc<Mutex<GpuDevice>>) -> Self {
        NvmlDevice { index, inner }
    }

    /// NVML device index on the node.
    pub fn index(&self) -> usize {
        self.index
    }

    /// `nvmlDeviceGetName`.
    pub fn name(&self) -> String {
        self.inner.lock().spec().name.clone()
    }

    /// `nvmlDeviceGetUUID` — stable per device identity, derived from the
    /// model and index the way monitoring stacks key their series.
    pub fn uuid(&self) -> String {
        let d = self.inner.lock();
        // FNV-1a over the name for a deterministic pseudo-UUID body.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in d.spec().name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        format!(
            "GPU-{:08x}-{:04x}-{:04x}",
            h as u32,
            (h >> 32) as u16,
            self.index as u16
        )
    }

    /// `nvmlDeviceGetPowerUsage` — current draw in **milliwatts**.
    pub fn power_usage(&self) -> Result<u64, NvmlError> {
        Ok(self
            .inner
            .lock()
            .power_timeline()
            .last_power()
            .as_milliwatts())
    }

    /// `nvmlDeviceGetTotalEnergyConsumption` — cumulative energy in
    /// **millijoules** since the driver loaded (supported on A100-class
    /// parts; this is what PMT's NVML backend prefers when present).
    pub fn total_energy_consumption(&self) -> Result<u64, NvmlError> {
        let j = self.inner.lock().total_energy().0;
        Ok((j * 1e3).round().max(0.0) as u64)
    }

    /// `nvmlDeviceGetClockInfo` — the *current* clock in MHz.
    pub fn clock_info(&self, which: ClockType) -> Result<u32, NvmlError> {
        let d = self.inner.lock();
        Ok(match which {
            ClockType::Graphics | ClockType::Sm => d.current_freq().0,
            ClockType::Mem => d.current_mem_clock().0,
        })
    }

    /// `nvmlDeviceGetApplicationsClock` — the pinned clock, if any.
    pub fn applications_clock(&self, which: ClockType) -> Result<u32, NvmlError> {
        let d = self.inner.lock();
        match which {
            // The memory clock the device actually pins — a silently clamped
            // P-state shows up here, which is how co-tuners detect it.
            ClockType::Mem => Ok(d.current_mem_clock().0),
            ClockType::Graphics | ClockType::Sm => match d.policy() {
                archsim::ClockPolicy::ApplicationClocks(f) => Ok(f.0),
                archsim::ClockPolicy::Dvfs(_) => {
                    Err(NvmlError::NotSupported("no applications clock set"))
                }
            },
        }
    }

    /// `nvmlDeviceSetApplicationsClocks(mem, graphics)` — the call the paper
    /// instruments SPH-EXA with (§III-D). Argument order matches NVML: memory
    /// clock first. Both clocks must be on their supported ladders; either
    /// half may fail transiently under fault injection, in which case the
    /// caller's retry loop re-requests the pair (the device may then hold a
    /// partially applied pair until the retry lands — real NVML behaves the
    /// same way).
    pub fn set_applications_clocks(
        &self,
        mem_mhz: u32,
        graphics_mhz: u32,
    ) -> Result<(), NvmlError> {
        let mut d = self.inner.lock();
        if !d.spec().mem_clock_table.contains(&MegaHertz(mem_mhz)) {
            return Err(NvmlError::InvalidArgument(format!(
                "memory clock {mem_mhz} MHz not supported (device supports {:?})",
                d.spec().mem_clock_table
            )));
        }
        // Graphics clock first: it carries the permission/ladder checks and
        // leaves the device untouched on failure.
        d.set_application_clocks(MegaHertz(graphics_mhz))?;
        d.set_memory_clock(MegaHertz(mem_mhz))?;
        Ok(())
    }

    /// `nvmlDeviceResetApplicationsClocks` — hand the clock back to DVFS.
    pub fn reset_applications_clocks(&self) -> Result<(), NvmlError> {
        self.inner.lock().reset_application_clocks()?;
        Ok(())
    }

    /// `nvmlDeviceGetSupportedMemoryClocks` — descending P-states.
    pub fn supported_memory_clocks(&self) -> Result<Vec<u32>, NvmlError> {
        Ok(self
            .inner
            .lock()
            .spec()
            .mem_clock_table
            .iter()
            .map(|f| f.0)
            .collect())
    }

    /// `nvmlDeviceGetSupportedGraphicsClocks(mem)` — descending, as NVML
    /// enumerates them.
    pub fn supported_graphics_clocks(&self, mem_mhz: u32) -> Result<Vec<u32>, NvmlError> {
        let d = self.inner.lock();
        if !d.spec().mem_clock_table.contains(&MegaHertz(mem_mhz)) {
            return Err(NvmlError::InvalidArgument(format!(
                "no graphics clocks for memory clock {mem_mhz} MHz"
            )));
        }
        Ok(d.spec()
            .clock_table
            .supported_clocks()
            .into_iter()
            .map(|f| f.0)
            .collect())
    }

    /// `nvmlDeviceGetUtilizationRates` — coarse busy-percent over the last
    /// ~100 ms of device time.
    pub fn utilization_rates(&self) -> Result<Utilization, NvmlError> {
        let d = self.inner.lock();
        let now = d.now();
        let from = now - UTIL_WINDOW;
        let busy = d.utilization_coarse(from, now);
        Ok(Utilization {
            gpu: (busy * 100.0).round() as u32,
            // The memory pipe is assumed active whenever kernels are
            // resident; NVML reports it similarly coarsely.
            memory: (busy * 100.0 * 0.7).round() as u32,
        })
    }

    /// `nvmlDeviceGetCurrentClocksEventReasons`.
    pub fn current_clocks_event_reasons(&self) -> Result<u64, NvmlError> {
        let d = self.inner.lock();
        let mut reasons = clocks_event_reasons::NONE;
        match d.policy() {
            archsim::ClockPolicy::ApplicationClocks(_) => {
                reasons |= clocks_event_reasons::APPLICATIONS_CLOCKS_SETTING;
            }
            archsim::ClockPolicy::Dvfs(p) => {
                if d.current_freq() <= p.idle_floor {
                    reasons |= clocks_event_reasons::GPU_IDLE;
                }
            }
        }
        let (sw_cap, thermal) = d.cap_state();
        if sw_cap {
            reasons |= clocks_event_reasons::SW_POWER_CAP;
        }
        if thermal {
            reasons |= clocks_event_reasons::HW_THERMAL_SLOWDOWN;
        }
        Ok(reasons)
    }

    /// `nvmlDeviceGetTemperature` — junction temperature in whole °C.
    pub fn temperature(&self, _sensor: TemperatureSensor) -> Result<u32, NvmlError> {
        Ok(self.inner.lock().temperature_c().round().max(0.0) as u32)
    }

    /// `nvmlDeviceGetPowerManagementLimit` — enforced limit in milliwatts.
    pub fn power_management_limit(&self) -> Result<u64, NvmlError> {
        Ok(self.inner.lock().power_limit().as_milliwatts())
    }

    /// `nvmlDeviceGetPowerManagementLimitConstraints` — `(min, max)` in
    /// milliwatts.
    pub fn power_management_limit_constraints(&self) -> Result<(u64, u64), NvmlError> {
        let d = self.inner.lock();
        Ok((
            d.spec().idle_power.as_milliwatts(),
            d.spec().tdp().as_milliwatts(),
        ))
    }

    /// `nvmlDeviceSetPowerManagementLimit` — takes milliwatts; requires the
    /// same privilege as clock control.
    pub fn set_power_management_limit(&self, limit_mw: u64) -> Result<(), NvmlError> {
        self.inner
            .lock()
            .set_power_limit(archsim::Watts(limit_mw as f64 / 1e3))?;
        Ok(())
    }

    /// Escape hatch for tools layered on the shim (PMT backends, the tuner):
    /// the underlying simulated device.
    pub fn raw(&self) -> Arc<Mutex<GpuDevice>> {
        Arc::clone(&self.inner)
    }
}

impl std::fmt::Debug for NvmlDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmlDevice")
            .field("index", &self.index)
            .field("name", &self.name())
            .finish()
    }
}
