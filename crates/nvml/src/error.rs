//! NVML-style error codes.

use std::fmt;

use archsim::ArchError;

/// Mirrors `nvmlReturn_t`. Only the variants the instrumentation layer can
/// actually encounter are modeled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmlError {
    /// `NVML_ERROR_UNINITIALIZED` — library handle was shut down.
    Uninitialized,
    /// `NVML_ERROR_INVALID_ARGUMENT` — e.g. an unsupported clock pair.
    InvalidArgument(String),
    /// `NVML_ERROR_NOT_SUPPORTED` — query not available on this device.
    NotSupported(&'static str),
    /// `NVML_ERROR_NO_PERMISSION` — the root-only operation the paper's
    /// user-level frequency control works around.
    NoPermission(&'static str),
    /// `NVML_ERROR_NOT_FOUND` — bad device index.
    NotFound { index: usize, count: usize },
    /// `NVML_ERROR_UNKNOWN` — the driver failed transiently. Real NVML
    /// returns this for intermittent clock-set failures; callers should
    /// retry with backoff (see `EnergyInstrument::try_set_clocks`).
    Unknown(&'static str),
}

impl fmt::Display for NvmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmlError::Uninitialized => write!(f, "NVML_ERROR_UNINITIALIZED"),
            NvmlError::InvalidArgument(m) => write!(f, "NVML_ERROR_INVALID_ARGUMENT: {m}"),
            NvmlError::NotSupported(m) => write!(f, "NVML_ERROR_NOT_SUPPORTED: {m}"),
            NvmlError::NoPermission(m) => write!(f, "NVML_ERROR_NO_PERMISSION: {m}"),
            NvmlError::NotFound { index, count } => {
                write!(f, "NVML_ERROR_NOT_FOUND: device {index} of {count}")
            }
            NvmlError::Unknown(m) => write!(f, "NVML_ERROR_UNKNOWN: {m}"),
        }
    }
}

impl std::error::Error for NvmlError {}

impl From<ArchError> for NvmlError {
    fn from(e: ArchError) -> Self {
        match e {
            ArchError::UnsupportedClock {
                requested,
                min,
                max,
            } => NvmlError::InvalidArgument(format!(
                "clock {requested} outside supported range {min}..={max}"
            )),
            ArchError::NoPermission(op) => NvmlError::NoPermission(op),
            ArchError::NoSuchDevice { index, count } => NvmlError::NotFound { index, count },
            ArchError::InvalidSpec(m) => NvmlError::InvalidArgument(m),
            ArchError::Transient(op) => NvmlError::Unknown(op),
        }
    }
}
