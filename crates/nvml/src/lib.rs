//! # nvml-shim — NVML/rocm-smi-shaped control plane over simulated GPUs
//!
//! The paper's contribution is instrumentation that calls
//! `nvmlDeviceSetApplicationsClocks` before each computational kernel
//! (§III-D). This crate reproduces the relevant slice of the NVML surface —
//! device handles, power/energy/clock/utilization queries, applications-clock
//! control, clocks-event reasons — plus the rocm-smi equivalents used on
//! LUMI-G, all over [`archsim`] devices.
//!
//! ```
//! use archsim::{GpuDevice, GpuSpec};
//! use nvml_shim::{Nvml, ClockType};
//! use parking_lot::Mutex;
//! use std::sync::Arc;
//!
//! let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
//! let nvml = Nvml::init(vec![gpu]);
//! let dev = nvml.device_by_index(0).unwrap();
//! // Pin 1005 MHz compute / 1593 MHz memory, exactly as the paper does:
//! dev.set_applications_clocks(1593, 1005).unwrap();
//! assert_eq!(dev.clock_info(ClockType::Graphics).unwrap(), 1005);
//! ```

pub mod device;
pub mod error;
pub mod rocm;

use std::sync::Arc;

use parking_lot::Mutex;

use archsim::GpuDevice;

pub use device::{clocks_event_reasons, ClockType, NvmlDevice, TemperatureSensor, Utilization};
pub use error::NvmlError;
pub use rocm::{RocmSmi, RsmiError};

/// The NVML library handle (`nvmlInit_v2` equivalent). Owns the node's device
/// registry for the lifetime of the session.
pub struct Nvml {
    devices: Vec<Arc<Mutex<GpuDevice>>>,
}

impl Nvml {
    /// Initialize against a node's visible GPU devices.
    pub fn init(devices: Vec<Arc<Mutex<GpuDevice>>>) -> Self {
        Nvml { devices }
    }

    /// Initialize against every GPU of an [`archsim::Node`].
    pub fn init_for_node(node: &archsim::Node) -> Self {
        Nvml::init(node.gpus().to_vec())
    }

    /// `nvmlDeviceGetCount_v2`.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// `nvmlDeviceGetHandleByIndex_v2`.
    pub fn device_by_index(&self, index: usize) -> Result<NvmlDevice, NvmlError> {
        self.devices
            .get(index)
            .map(|d| NvmlDevice::new(index, Arc::clone(d)))
            .ok_or(NvmlError::NotFound {
                index,
                count: self.devices.len(),
            })
    }

    /// `nvmlSystemGetDriverVersion` equivalent: the simulator's version
    /// string, so monitoring stacks have something to log.
    pub fn driver_version(&self) -> String {
        format!("archsim-nvml {}", env!("CARGO_PKG_VERSION"))
    }

    /// All device handles.
    pub fn devices(&self) -> Vec<NvmlDevice> {
        (0..self.device_count())
            .map(|i| self.device_by_index(i).expect("index in range"))
            .collect()
    }
}

/// The paper's `getNvmlDevice` helper: "since each MPI rank is bound to only
/// one GPU, getNvmlDevice returns the corresponding device ID" (§III-D).
pub fn get_nvml_device(nvml: &Nvml, rank: usize) -> Result<NvmlDevice, NvmlError> {
    nvml.device_by_index(rank % nvml.device_count().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{GpuSpec, KernelWorkload, MegaHertz, SimDuration};

    fn nvml_with(n: usize) -> Nvml {
        let devs = (0..n)
            .map(|i| Arc::new(Mutex::new(GpuDevice::new(i, GpuSpec::a100_sxm4_80gb()))))
            .collect();
        Nvml::init(devs)
    }

    #[test]
    fn device_enumeration() {
        let nvml = nvml_with(4);
        assert_eq!(nvml.device_count(), 4);
        assert!(nvml.device_by_index(3).is_ok());
        assert!(matches!(
            nvml.device_by_index(4),
            Err(NvmlError::NotFound { index: 4, count: 4 })
        ));
        assert_eq!(nvml.devices().len(), 4);
    }

    #[test]
    fn rank_to_device_binding() {
        let nvml = nvml_with(4);
        assert_eq!(get_nvml_device(&nvml, 0).unwrap().index(), 0);
        assert_eq!(get_nvml_device(&nvml, 3).unwrap().index(), 3);
        // Ranks on later nodes wrap around the node-local registry.
        assert_eq!(get_nvml_device(&nvml, 5).unwrap().index(), 1);
    }

    #[test]
    fn set_applications_clocks_validates_both_clocks() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        // Wrong memory clock.
        assert!(matches!(
            dev.set_applications_clocks(1600, 1410),
            Err(NvmlError::InvalidArgument(_))
        ));
        // Unsupported graphics clock.
        assert!(matches!(
            dev.set_applications_clocks(1593, 1001),
            Err(NvmlError::InvalidArgument(_))
        ));
        // Valid pair.
        dev.set_applications_clocks(1593, 1005).unwrap();
        assert_eq!(dev.applications_clock(ClockType::Graphics).unwrap(), 1005);
        assert_eq!(dev.clock_info(ClockType::Mem).unwrap(), 1593);
    }

    #[test]
    fn applications_clock_absent_under_dvfs() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        assert!(matches!(
            dev.applications_clock(ClockType::Graphics),
            Err(NvmlError::NotSupported(_))
        ));
        dev.set_applications_clocks(1593, 1410).unwrap();
        dev.reset_applications_clocks().unwrap();
        assert!(dev.applications_clock(ClockType::Graphics).is_err());
    }

    #[test]
    fn supported_graphics_clocks_descending() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        let clocks = dev.supported_graphics_clocks(1593).unwrap();
        assert_eq!(clocks.first(), Some(&1410));
        assert_eq!(clocks.last(), Some(&210));
        assert!(clocks.windows(2).all(|w| w[0] > w[1]));
        // Any supported P-state enumerates the same graphics ladder.
        assert_eq!(dev.supported_graphics_clocks(810).unwrap(), clocks);
        assert!(dev.supported_graphics_clocks(1600).is_err());
    }

    #[test]
    fn memory_clock_sets_and_reads_back() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        assert_eq!(dev.applications_clock(ClockType::Mem).unwrap(), 1593);
        dev.set_applications_clocks(1215, 1410).unwrap();
        // Both the current clock and the pinned applications clock reflect
        // the requested P-state — this readback is how co-tuners detect a
        // silently clamped memory transition.
        assert_eq!(dev.clock_info(ClockType::Mem).unwrap(), 1215);
        assert_eq!(dev.applications_clock(ClockType::Mem).unwrap(), 1215);
        assert_eq!(
            dev.supported_memory_clocks().unwrap(),
            vec![1593, 1215, 810]
        );
    }

    #[test]
    fn power_and_energy_counters_advance_with_work() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        assert_eq!(dev.total_energy_consumption().unwrap(), 0);
        dev.raw()
            .lock()
            .run_region(&KernelWorkload::new("k", 1e12, 1e11).with_activity(0.9, 0.6));
        let mw = dev.power_usage().unwrap();
        assert!(mw > 55_000, "busy power above idle: {mw} mW");
        assert!(dev.total_energy_consumption().unwrap() > 0);
    }

    #[test]
    fn utilization_is_coarse_overestimate() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        // A launch-overhead-dominated stream still reads as fully busy.
        dev.raw().lock().run_region(
            &KernelWorkload::new("light", 1e6, 1e6)
                .with_launches(500)
                .with_activity(0.1, 0.1),
        );
        let u = dev.utilization_rates().unwrap();
        assert!(u.gpu >= 99, "coarse utilization counts overhead: {}", u.gpu);
        // After a long idle the window empties out.
        dev.raw().lock().advance_idle(SimDuration::from_secs(1));
        let u2 = dev.utilization_rates().unwrap();
        assert_eq!(u2.gpu, 0);
    }

    #[test]
    fn clocks_event_reasons_reflect_policy() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        dev.set_applications_clocks(1593, 1200).unwrap();
        assert_eq!(
            dev.current_clocks_event_reasons().unwrap(),
            clocks_event_reasons::APPLICATIONS_CLOCKS_SETTING
        );
        dev.reset_applications_clocks().unwrap();
        dev.raw().lock().advance_idle(SimDuration::from_secs(30));
        assert_eq!(
            dev.current_clocks_event_reasons().unwrap(),
            clocks_event_reasons::GPU_IDLE
        );
    }

    #[test]
    fn locked_production_device_yields_no_permission() {
        let devs = vec![Arc::new(Mutex::new({
            let mut g = GpuDevice::new(0, GpuSpec::a100_sxm4_80gb());
            g.set_application_clocks(MegaHertz(1410)).unwrap();
            g.lock_clock_control();
            g
        }))];
        let nvml = Nvml::init(devs);
        let dev = nvml.device_by_index(0).unwrap();
        assert!(matches!(
            dev.set_applications_clocks(1593, 1005),
            Err(NvmlError::NoPermission(_))
        ));
    }

    #[test]
    fn temperature_and_power_limit_surface() {
        let nvml = nvml_with(1);
        let dev = nvml.device_by_index(0).unwrap();
        // Cold device reads ambient.
        let t0 = dev.temperature(TemperatureSensor::Gpu).unwrap();
        assert!((28..=35).contains(&t0), "ambient-ish start: {t0}");
        // Default limit is the TDP; constraints bracket it.
        let (lo, hi) = dev.power_management_limit_constraints().unwrap();
        assert_eq!(dev.power_management_limit().unwrap(), hi);
        assert!(lo < hi);
        // Lower the cap, run hot work, observe the SW_POWER_CAP reason.
        dev.set_power_management_limit(220_000).unwrap();
        assert_eq!(dev.power_management_limit().unwrap(), 220_000);
        dev.set_applications_clocks(1593, 1410).unwrap();
        dev.raw()
            .lock()
            .run_region(&KernelWorkload::new("hot", 1e13, 1e12).with_activity(0.95, 0.9));
        let reasons = dev.current_clocks_event_reasons().unwrap();
        assert!(
            reasons & clocks_event_reasons::SW_POWER_CAP != 0,
            "reasons {reasons:#x}"
        );
        // The junction warmed up.
        let t1 = dev.temperature(TemperatureSensor::Gpu).unwrap();
        assert!(t1 > t0, "heated: {t0} -> {t1}");
        // Out-of-range limits are rejected.
        assert!(dev.set_power_management_limit(1_000).is_err());
        assert!(dev.set_power_management_limit(999_000_000).is_err());
    }

    #[test]
    fn identity_queries_are_stable_and_distinct() {
        let nvml = nvml_with(2);
        let a = nvml.device_by_index(0).unwrap();
        let b = nvml.device_by_index(1).unwrap();
        assert_eq!(a.uuid(), nvml.device_by_index(0).unwrap().uuid(), "stable");
        assert_ne!(a.uuid(), b.uuid(), "distinct per index");
        assert!(a.uuid().starts_with("GPU-"));
        assert!(nvml.driver_version().starts_with("archsim-nvml"));
    }

    #[test]
    fn nvml_for_node_sees_all_node_gpus() {
        let node = archsim::Node::new(archsim::cscs_a100().node);
        let nvml = Nvml::init_for_node(&node);
        assert_eq!(nvml.device_count(), 4);
    }
}
