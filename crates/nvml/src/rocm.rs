//! rocm-smi-flavoured façade over the same simulated devices.
//!
//! PMT's AMD backend uses `rocm_smi_lib`; LUMI-G's MI250X GCDs are driven
//! through this interface. Units intentionally differ from NVML (microwatts,
//! not milliwatts) to keep backends honest about conversions.

use std::sync::Arc;

use parking_lot::Mutex;

use archsim::{GpuDevice, MegaHertz};

use crate::error::NvmlError;

/// rocm-smi status codes (subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmiError {
    InvalidArgs(String),
    PermissionDenied(&'static str),
    NotFound { index: usize, count: usize },
}

impl std::fmt::Display for RsmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmiError::InvalidArgs(m) => write!(f, "RSMI_STATUS_INVALID_ARGS: {m}"),
            RsmiError::PermissionDenied(m) => write!(f, "RSMI_STATUS_PERMISSION: {m}"),
            RsmiError::NotFound { index, count } => {
                write!(f, "RSMI_STATUS_NOT_FOUND: device {index} of {count}")
            }
        }
    }
}

impl std::error::Error for RsmiError {}

impl From<NvmlError> for RsmiError {
    fn from(e: NvmlError) -> Self {
        match e {
            NvmlError::NoPermission(m) => RsmiError::PermissionDenied(m),
            NvmlError::NotFound { index, count } => RsmiError::NotFound { index, count },
            other => RsmiError::InvalidArgs(other.to_string()),
        }
    }
}

/// A rocm-smi session over a node's GCDs (`rsmi_init` equivalent).
pub struct RocmSmi {
    devices: Vec<Arc<Mutex<GpuDevice>>>,
}

impl RocmSmi {
    pub fn init(devices: Vec<Arc<Mutex<GpuDevice>>>) -> Self {
        RocmSmi { devices }
    }

    /// `rsmi_num_monitor_devices`.
    pub fn num_monitor_devices(&self) -> usize {
        self.devices.len()
    }

    fn dev(&self, dv_ind: usize) -> Result<&Arc<Mutex<GpuDevice>>, RsmiError> {
        self.devices.get(dv_ind).ok_or(RsmiError::NotFound {
            index: dv_ind,
            count: self.devices.len(),
        })
    }

    /// `rsmi_dev_power_ave_get` — average socket power in **microwatts**.
    pub fn dev_power_ave_get(&self, dv_ind: usize) -> Result<u64, RsmiError> {
        let d = self.dev(dv_ind)?.lock();
        let w = d.power_timeline().last_power().0;
        Ok((w * 1e6).round().max(0.0) as u64)
    }

    /// `rsmi_dev_energy_count_get` — accumulated energy counter in
    /// **microjoules**.
    pub fn dev_energy_count_get(&self, dv_ind: usize) -> Result<u64, RsmiError> {
        let d = self.dev(dv_ind)?.lock();
        Ok((d.total_energy().0 * 1e6).round().max(0.0) as u64)
    }

    /// `rsmi_dev_gpu_clk_freq_get(RSMI_CLK_TYPE_SYS)` — current system clock
    /// in hertz.
    pub fn dev_gpu_clk_freq_get(&self, dv_ind: usize) -> Result<u64, RsmiError> {
        let d = self.dev(dv_ind)?.lock();
        Ok(d.current_freq().as_hz() as u64)
    }

    /// `rsmi_dev_gpu_clk_freq_set` via a target frequency in MHz (rocm-smi
    /// exposes performance levels; we accept the level's frequency directly).
    pub fn dev_gpu_clk_freq_set(&self, dv_ind: usize, mhz: u32) -> Result<(), RsmiError> {
        let mut d = self.dev(dv_ind)?.lock();
        d.set_application_clocks(MegaHertz(mhz))
            .map_err(|e| RsmiError::from(NvmlError::from(e)))
    }

    /// `rsmi_dev_perf_level_set(AUTO)` — return the clock to the governor.
    pub fn dev_perf_level_auto(&self, dv_ind: usize) -> Result<(), RsmiError> {
        let mut d = self.dev(dv_ind)?.lock();
        d.reset_application_clocks()
            .map_err(|e| RsmiError::from(NvmlError::from(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{GpuSpec, KernelWorkload};

    fn session() -> RocmSmi {
        let devs = (0..2)
            .map(|i| Arc::new(Mutex::new(GpuDevice::new(i, GpuSpec::mi250x_gcd()))))
            .collect();
        RocmSmi::init(devs)
    }

    #[test]
    fn power_is_reported_in_microwatts() {
        let s = session();
        let dev = Arc::clone(s.dev(0).unwrap());
        dev.lock()
            .run_region(&KernelWorkload::new("k", 1e12, 1e11).with_activity(0.9, 0.6));
        let uw = s.dev_power_ave_get(0).unwrap();
        // MI250X GCD draws between idle (45 W) and TDP (250 W).
        assert!(uw > 45_000_000, "got {uw} uW");
        assert!(uw < 250_000_000, "got {uw} uW");
    }

    #[test]
    fn energy_counter_accumulates_microjoules() {
        let s = session();
        assert_eq!(s.dev_energy_count_get(0).unwrap(), 0);
        let dev = Arc::clone(s.dev(0).unwrap());
        dev.lock().run_region(&KernelWorkload::new("k", 1e12, 1e11));
        assert!(s.dev_energy_count_get(0).unwrap() > 0);
    }

    #[test]
    fn clk_set_on_supported_step_mhz() {
        let s = session();
        assert!(s.dev_gpu_clk_freq_set(0, 1500).is_ok());
        assert_eq!(s.dev_gpu_clk_freq_get(0).unwrap(), 1_500_000_000);
        assert!(s.dev_gpu_clk_freq_set(0, 1501).is_err());
    }

    #[test]
    fn out_of_range_device_not_found() {
        let s = session();
        assert!(matches!(
            s.dev_power_ave_get(7),
            Err(RsmiError::NotFound { index: 7, count: 2 })
        ));
    }

    #[test]
    fn perf_level_auto_restores_dvfs() {
        let s = session();
        s.dev_gpu_clk_freq_set(1, 1700).unwrap();
        s.dev_perf_level_auto(1).unwrap();
        let dev = s.dev(1).unwrap().lock();
        assert!(matches!(dev.policy(), archsim::ClockPolicy::Dvfs(_)));
    }
}
