//! Tuner configuration.
//!
//! Every knob has a serde default so a spec file can simply say
//! `"policy": {"ManDynOnline": {}}` and get the paper-equivalent setup: the
//! 1005–1410 MHz sweep window of §III-C, explored coarsely first and then
//! refined with a shrinking step.

use archsim::MegaHertz;
use serde::{Deserialize, Serialize};

use crate::error::OnlineError;

/// Knobs of the in-run per-kernel frequency search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTunerConfig {
    /// Search floor. Defaults to the paper's 1005 MHz sweep floor — clocks
    /// below it trade too much time for the energy they save (§IV-C).
    #[serde(default = "default_min_freq")]
    pub min_freq: MegaHertz,
    /// Search ceiling; `None` means the device's maximum supported clock.
    #[serde(default)]
    pub max_freq: Option<MegaHertz>,
    /// Ladder rungs skipped between coarse-phase probes. The coarse pass
    /// brackets the EDP minimum; refinement then halves this step until it
    /// reaches one rung — the exploration-decay schedule.
    #[serde(default = "default_coarse_step")]
    pub coarse_step: u32,
    /// Measurements required at a rung before its estimate is trusted.
    #[serde(default = "default_min_samples")]
    pub min_samples: u32,
    /// Sliding-window length of the per-rung EDP estimator. Old samples age
    /// out so the estimate tracks thermal drift instead of averaging it away.
    #[serde(default = "default_window")]
    pub window: usize,
    /// Relative per-call EDP improvement a neighbouring rung must show
    /// before the tuner moves to it. Hysteresis against measurement jitter;
    /// kept small because the EDP curve is nearly flat within a rung or two
    /// of its minimum and a large dead-band would freeze the search there.
    #[serde(default = "default_min_improvement")]
    pub min_improvement: f64,
    /// Consecutive keep-decisions at the finest (one-rung) step before the
    /// kernel is pinned — i.e. the estimate has stabilised within one
    /// 15 MHz bin.
    #[serde(default = "default_patience")]
    pub patience: u32,
    /// Hard per-kernel exploration budget: once a kernel has spent this
    /// many launches unpinned it is pinned at its current best rung no
    /// matter what. Bounds the search even if thermal drift keeps the
    /// estimates wobbling.
    #[serde(default = "default_max_explore_launches")]
    pub max_explore_launches: u64,
    /// Measurement-validity guard: a sample whose per-call EDP exceeds this
    /// multiple of the rung's current windowed mean is rejected as an
    /// outlier instead of poisoning the estimate (throttled regions,
    /// glitched counters).
    #[serde(default = "default_outlier_factor")]
    pub outlier_factor: f64,
    /// Consecutive rejected samples after which the offending rung's
    /// estimate is quarantined (dropped and re-measured from scratch).
    #[serde(default = "default_quarantine_after")]
    pub quarantine_after: u32,
    /// Consecutive rejected samples after which the kernel gives up on
    /// measurement-driven tuning entirely and pins at the maximum clock —
    /// the "fall back to default application clocks" safety valve.
    #[serde(default = "default_fallback_after")]
    pub fallback_after: u32,
}

fn default_min_freq() -> MegaHertz {
    MegaHertz(1005)
}

fn default_coarse_step() -> u32 {
    4
}

fn default_min_samples() -> u32 {
    2
}

fn default_window() -> usize {
    8
}

fn default_min_improvement() -> f64 {
    1e-4
}

fn default_patience() -> u32 {
    2
}

fn default_max_explore_launches() -> u64 {
    64
}

fn default_outlier_factor() -> f64 {
    8.0
}

fn default_quarantine_after() -> u32 {
    3
}

fn default_fallback_after() -> u32 {
    6
}

impl Default for OnlineTunerConfig {
    fn default() -> Self {
        OnlineTunerConfig {
            min_freq: default_min_freq(),
            max_freq: None,
            coarse_step: default_coarse_step(),
            min_samples: default_min_samples(),
            window: default_window(),
            min_improvement: default_min_improvement(),
            patience: default_patience(),
            max_explore_launches: default_max_explore_launches(),
            outlier_factor: default_outlier_factor(),
            quarantine_after: default_quarantine_after(),
            fallback_after: default_fallback_after(),
        }
    }
}

impl OnlineTunerConfig {
    /// Reject configurations the controller cannot run with.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if let Some(hi) = self.max_freq {
            if hi < self.min_freq {
                return Err(OnlineError::InvalidConfig(format!(
                    "max_freq {hi} below min_freq {}",
                    self.min_freq
                )));
            }
        }
        if self.coarse_step == 0 {
            return Err(OnlineError::InvalidConfig(
                "coarse_step must be >= 1".into(),
            ));
        }
        if self.min_samples == 0 {
            return Err(OnlineError::InvalidConfig(
                "min_samples must be >= 1".into(),
            ));
        }
        if self.window == 0 {
            return Err(OnlineError::InvalidConfig("window must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&self.min_improvement) {
            return Err(OnlineError::InvalidConfig(
                "min_improvement must be in [0, 1)".into(),
            ));
        }
        if self.patience == 0 {
            return Err(OnlineError::InvalidConfig("patience must be >= 1".into()));
        }
        if self.max_explore_launches == 0 {
            return Err(OnlineError::InvalidConfig(
                "max_explore_launches must be >= 1".into(),
            ));
        }
        if !self.outlier_factor.is_finite() || self.outlier_factor <= 1.0 {
            return Err(OnlineError::InvalidConfig(
                "outlier_factor must exceed 1".into(),
            ));
        }
        if self.quarantine_after == 0 {
            return Err(OnlineError::InvalidConfig(
                "quarantine_after must be >= 1".into(),
            ));
        }
        if self.fallback_after < self.quarantine_after {
            return Err(OnlineError::InvalidConfig(
                "fallback_after must be >= quarantine_after".into(),
            ));
        }
        Ok(())
    }
}

/// Knobs of the predictive (model-fitting) tuner. Layers on a full search
/// config — the machine the predictive mode falls back to when the fit is
/// poor or faults quarantine its probes — plus the probe/fit/drift knobs of
/// the model path. All serde-defaulted, so a spec can say
/// `"policy": {"ManDynPredictive": {}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictiveConfig {
    /// The coarse-to-refine search fallback, and the shared window/validity
    /// knobs (`min_freq`, `max_freq`, `min_samples`, `quarantine_after`).
    #[serde(default)]
    pub search: OnlineTunerConfig,
    /// Core-clock probe rungs sampled before fitting, spread evenly over
    /// the search window (top and bottom always included). The paper-level
    /// claim is 3–5 probes instead of dozens of search launches.
    #[serde(default = "default_probe_rungs")]
    pub probe_rungs: u32,
    /// Open the memory-clock axis: add one probe at the lowest memory
    /// P-state and predict over the full (core, mem) ladder product.
    #[serde(default)]
    pub tune_memory: bool,
    /// Minimum R² (both time and power fits) for a prediction to be
    /// trusted; below it the kernel falls back to the search.
    #[serde(default = "default_min_r2")]
    pub min_r2: f64,
    /// Maximum relative residual any fit sample may show.
    #[serde(default = "default_max_fit_residual")]
    pub max_fit_residual: f64,
    /// Relative time/power deviation of a live sample from the model before
    /// it counts as drift.
    #[serde(default = "default_drift_tolerance")]
    pub drift_tolerance: f64,
    /// Consecutive drifted samples at the pinned point that trigger a
    /// refit (re-probe from scratch).
    #[serde(default = "default_drift_after")]
    pub drift_after: u32,
}

fn default_probe_rungs() -> u32 {
    4
}

fn default_min_r2() -> f64 {
    0.95
}

fn default_max_fit_residual() -> f64 {
    0.10
}

fn default_drift_tolerance() -> f64 {
    0.25
}

fn default_drift_after() -> u32 {
    4
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            search: OnlineTunerConfig::default(),
            probe_rungs: default_probe_rungs(),
            tune_memory: false,
            min_r2: default_min_r2(),
            max_fit_residual: default_max_fit_residual(),
            drift_tolerance: default_drift_tolerance(),
            drift_after: default_drift_after(),
        }
    }
}

impl PredictiveConfig {
    /// Reject configurations the predictive tuner cannot run with.
    pub fn validate(&self) -> Result<(), OnlineError> {
        self.search.validate()?;
        if !(3..=5).contains(&self.probe_rungs) {
            return Err(OnlineError::InvalidConfig(
                "probe_rungs must be in 3..=5".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_r2) {
            return Err(OnlineError::InvalidConfig(
                "min_r2 must be in [0, 1]".into(),
            ));
        }
        if !self.max_fit_residual.is_finite() || self.max_fit_residual <= 0.0 {
            return Err(OnlineError::InvalidConfig(
                "max_fit_residual must be positive".into(),
            ));
        }
        if !self.drift_tolerance.is_finite() || self.drift_tolerance <= 0.0 {
            return Err(OnlineError::InvalidConfig(
                "drift_tolerance must be positive".into(),
            ));
        }
        if self.drift_after == 0 {
            return Err(OnlineError::InvalidConfig(
                "drift_after must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sweep_floor() {
        let cfg = OnlineTunerConfig::default();
        assert_eq!(cfg.min_freq, MegaHertz(1005));
        assert_eq!(cfg.max_freq, None);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let mut cfg = OnlineTunerConfig {
            max_freq: Some(MegaHertz(900)),
            ..OnlineTunerConfig::default()
        };
        assert!(cfg.validate().is_err(), "inverted range");
        cfg.max_freq = None;
        cfg.coarse_step = 0;
        assert!(cfg.validate().is_err(), "zero step");
        cfg.coarse_step = 4;
        cfg.min_improvement = 1.0;
        assert!(cfg.validate().is_err(), "hysteresis out of range");
    }
}
