//! The in-run per-kernel frequency search.
//!
//! `OnlineTuner` replaces the paper's offline KernelTuner pass (§III-C) with
//! a measurement-driven search that runs *inside* the production job. Per
//! kernel it walks the device's discrete clock ladder in two phases:
//!
//! 1. **Coarse** — probe every `coarse_step`-th rung between the configured
//!    floor and ceiling, top-down. Until a kernel has enough samples its
//!    proposals sit at the maximum clock, i.e. the safe Baseline fallback.
//! 2. **Refine** — hill-climb around the coarse winner with a step that
//!    halves after every keep-decision (the exploration-decay schedule)
//!    until it reaches a single rung. Every refine round (a new candidate
//!    set after entering the phase, moving, or halving) discards the
//!    candidates' old estimates and re-measures them together, so the
//!    comparison is between *contemporaneous* samples — without this, a
//!    device that warms monotonically through the run makes early (cold)
//!    incumbent samples look better than later (hot) candidate samples and
//!    the search freezes below the sweet spot. Moves need a relative EDP
//!    improvement of at least `min_improvement` (hysteresis); `patience`
//!    consecutive keep-decisions at one-rung granularity — each backed by a
//!    fresh measurement — pin the kernel: its estimate has stabilised within
//!    one ladder bin and no further clock changes happen. A hard per-kernel
//!    launch budget (`max_explore_launches`) bounds the search regardless.
//!
//! EDP estimates come from [`RungEstimate`] sliding windows, scored through
//! the shared [`archsim::EnergyDelay`] formulation.

use std::collections::BTreeMap;

use archsim::{GpuSpec, MegaHertz};
use sph::FuncId;

use crate::config::OnlineTunerConfig;
use crate::error::OnlineError;
use crate::estimator::RungEstimate;

/// A learned per-kernel frequency table. Structurally identical to
/// `freqscale`'s `FreqTable`, so learned tables plug straight into the
/// `ManDyn` policy.
pub type LearnedTable = BTreeMap<FuncId, MegaHertz>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Coarse,
    Refine { step: usize, stays: u32 },
    Pinned,
}

/// What [`OnlineTuner::record`] did with one measured sample — the
/// measurement-validity guard's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// The sample entered the rung's sliding window.
    Accepted,
    /// Non-finite or non-positive energy/time — a glitched measurement.
    RejectedInvalid,
    /// Per-call EDP beyond `outlier_factor` times the rung's windowed mean.
    RejectedOutlier,
    /// `quarantine_after` consecutive rejects: the rung's estimate was
    /// dropped for re-measurement.
    Quarantined,
    /// `fallback_after` consecutive rejects: the kernel pinned at the
    /// maximum clock (default application clocks).
    FellBack,
}

#[derive(Debug)]
struct KernelState {
    phase: Phase,
    /// Ladder index of the current operating point.
    best: usize,
    estimates: BTreeMap<usize, RungEstimate>,
    /// Launches taken while not yet pinned.
    explore_launches: u64,
    /// Consecutive samples the validity guard rejected.
    consecutive_invalid: u32,
}

impl KernelState {
    fn fresh(top: usize) -> Self {
        KernelState {
            phase: Phase::Coarse,
            best: top,
            estimates: BTreeMap::new(),
            explore_launches: 0,
            consecutive_invalid: 0,
        }
    }

    fn samples_at(&self, idx: usize) -> u64 {
        self.estimates.get(&idx).map_or(0, RungEstimate::samples)
    }

    fn mean_at(&self, idx: usize) -> Option<f64> {
        self.estimates.get(&idx).and_then(RungEstimate::mean)
    }
}

/// Per-kernel online frequency tuner over one GPU's clock ladder.
pub struct OnlineTuner {
    cfg: OnlineTunerConfig,
    /// Supported clocks in the search window, ascending.
    ladder: Vec<MegaHertz>,
    /// Coarse-phase probe order: ladder indices, highest clock first.
    coarse_probes: Vec<usize>,
    kernels: BTreeMap<FuncId, KernelState>,
}

/// Emit one controller decision as an `online/decide` event: which kernel,
/// what happened, the chosen clock, and the windowed EDP backing the choice.
fn decide_event(func: FuncId, action: &'static str, mhz: MegaHertz, windowed_edp: Option<f64>) {
    if !telemetry::active() {
        return;
    }
    let mut fields: telemetry::Fields = vec![
        ("func", func.name().into()),
        ("action", action.into()),
        ("mhz", mhz.0.into()),
    ];
    if let Some(e) = windowed_edp {
        fields.push(("windowed_edp", e.into()));
    }
    telemetry::instant("online", "decide", None, fields);
}

fn nearest_idx(ladder: &[MegaHertz], f: MegaHertz) -> usize {
    ladder
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.0.abs_diff(f.0))
        .map(|(i, _)| i)
        .expect("non-empty ladder")
}

fn probe_order(len: usize, coarse_step: usize) -> Vec<usize> {
    let mut probes = Vec::new();
    let mut i = len as i64 - 1;
    while i >= 0 {
        probes.push(i as usize);
        i -= coarse_step as i64;
    }
    if *probes.last().expect("at least one probe") != 0 {
        probes.push(0);
    }
    probes
}

impl OnlineTuner {
    /// Build a tuner over `spec`'s clock ladder restricted to the config's
    /// `[min_freq, max_freq]` window.
    pub fn new(spec: &GpuSpec, cfg: OnlineTunerConfig) -> Result<Self, OnlineError> {
        cfg.validate()?;
        let hi = cfg.max_freq.unwrap_or(spec.clock_table.max());
        let mut ladder = spec.clock_table.clocks_in_range(cfg.min_freq, hi);
        ladder.reverse(); // clocks_in_range returns descending
        if ladder.is_empty() {
            return Err(OnlineError::InvalidConfig(format!(
                "no supported clocks in [{}, {hi}]",
                cfg.min_freq
            )));
        }
        let coarse_probes = probe_order(ladder.len(), cfg.coarse_step as usize);
        Ok(OnlineTuner {
            cfg,
            ladder,
            coarse_probes,
            kernels: BTreeMap::new(),
        })
    }

    /// The search window, ascending.
    pub fn ladder(&self) -> &[MegaHertz] {
        &self.ladder
    }

    /// Lower the search ceiling (power-cap composition). Must be called
    /// before any measurements are recorded; pinned warm-start entries are
    /// re-clamped to the shrunk ladder.
    pub fn set_ceiling(&mut self, ceiling: MegaHertz) {
        assert!(
            self.kernels.values().all(|s| s.estimates.is_empty()),
            "set_ceiling must run before tuning starts"
        );
        let mut keep: Vec<MegaHertz> = self
            .ladder
            .iter()
            .copied()
            .filter(|f| *f <= ceiling)
            .collect();
        if keep.is_empty() {
            keep.push(self.ladder[0]); // never below the configured floor
        }
        let old = std::mem::replace(&mut self.ladder, keep);
        self.coarse_probes = probe_order(self.ladder.len(), self.cfg.coarse_step as usize);
        let top = self.ladder.len() - 1;
        for st in self.kernels.values_mut() {
            st.best = if st.phase == Phase::Pinned {
                nearest_idx(&self.ladder, old[st.best])
            } else {
                top
            };
        }
    }

    /// Pin every kernel in `table` to its stored clock (clamped to the
    /// ladder): a warm-started run explores nothing.
    pub fn warm_start(&mut self, table: &LearnedTable) {
        for (func, f) in table {
            let idx = nearest_idx(&self.ladder, *f);
            let mut st = KernelState::fresh(idx);
            st.phase = Phase::Pinned;
            self.kernels.insert(*func, st);
        }
    }

    /// The clock the next launch of `func` should run at. Advances the
    /// phase machine when the pending decision has enough samples.
    pub fn propose(&mut self, func: FuncId) -> MegaHertz {
        let top = self.ladder.len() - 1;
        let min_samples = u64::from(self.cfg.min_samples);
        let min_improvement = self.cfg.min_improvement;
        let patience = self.cfg.patience;
        let max_explore = self.cfg.max_explore_launches;
        let refine_step = (self.cfg.coarse_step as usize / 2).max(1);
        let st = self
            .kernels
            .entry(func)
            .or_insert_with(|| KernelState::fresh(top));
        if st.phase != Phase::Pinned && st.explore_launches >= max_explore {
            // Exploration budget exhausted: pin at the incumbent rung (the
            // safe maximum clock if the search never left the coarse phase).
            st.phase = Phase::Pinned;
            decide_event(
                func,
                "pin_budget",
                self.ladder[st.best],
                st.mean_at(st.best),
            );
        }
        // Each iteration either returns a rung to measure next or advances
        // the phase machine by one decision; the bound is defensive.
        for _ in 0..64 {
            match st.phase {
                Phase::Pinned => return self.ladder[st.best],
                Phase::Coarse => {
                    if let Some(&i) = self
                        .coarse_probes
                        .iter()
                        .find(|&&i| st.samples_at(i) < min_samples)
                    {
                        return self.ladder[i];
                    }
                    st.best = self
                        .coarse_probes
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            let ma = st.mean_at(a).expect("probe sampled");
                            let mb = st.mean_at(b).expect("probe sampled");
                            ma.partial_cmp(&mb).expect("finite EDP")
                        })
                        .expect("non-empty probe set");
                    st.phase = Phase::Refine {
                        step: refine_step,
                        stays: 0,
                    };
                    decide_event(
                        func,
                        "coarse_winner",
                        self.ladder[st.best],
                        st.mean_at(st.best),
                    );
                    // New candidate set: drop the coarse-phase samples so the
                    // refine comparison is between contemporaneous windows.
                    st.estimates.clear();
                }
                Phase::Refine { step, stays } => {
                    let mut cands = vec![st.best];
                    if st.best >= step {
                        cands.push(st.best - step);
                    }
                    if st.best + step <= top {
                        cands.push(st.best + step);
                    }
                    // Fill the round's windows least-sampled-first, which
                    // interleaves the candidates and spreads any thermal
                    // drift evenly across them.
                    if let Some(&i) = cands
                        .iter()
                        .filter(|&&i| st.samples_at(i) < min_samples)
                        .min_by_key(|&&i| st.samples_at(i))
                    {
                        return self.ladder[i];
                    }
                    let cur = st.mean_at(st.best).expect("best sampled");
                    let (win, win_mean) = cands
                        .iter()
                        .map(|&i| (i, st.mean_at(i).expect("candidate sampled")))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
                        .expect("non-empty candidates");
                    if win != st.best && win_mean < cur * (1.0 - min_improvement) {
                        st.best = win;
                        st.phase = Phase::Refine { step, stays: 0 };
                        decide_event(func, "refine_move", self.ladder[win], Some(win_mean));
                        st.estimates.clear();
                    } else if step > 1 {
                        st.phase = Phase::Refine {
                            step: step / 2,
                            stays: 0,
                        };
                        st.estimates.clear();
                    } else if stays + 1 >= patience {
                        st.phase = Phase::Pinned;
                        decide_event(func, "pin", self.ladder[st.best], st.mean_at(st.best));
                    } else {
                        // Demand one more measurement at the incumbent rung
                        // before the next keep-decision counts toward
                        // patience — stability must be observed, not assumed.
                        st.phase = Phase::Refine {
                            step,
                            stays: stays + 1,
                        };
                        return self.ladder[st.best];
                    }
                }
            }
        }
        self.ladder[st.best]
    }

    /// Feed back one measured launch. `freq` is the clock the region
    /// actually ran at (which, when clock control is denied, may not be the
    /// proposed one — samples land where the hardware really was).
    ///
    /// Every sample passes the measurement-validity guard first: glitched
    /// (non-finite/non-positive) measurements and EDP outliers beyond
    /// `outlier_factor`× the rung's windowed mean are rejected rather than
    /// poisoning the estimate. `quarantine_after` consecutive rejects drop
    /// the rung's estimate for re-measurement; `fallback_after` consecutive
    /// rejects pin the kernel at the maximum clock (default application
    /// clocks) — measurements that broken cannot steer a search.
    pub fn record(
        &mut self,
        func: FuncId,
        freq: MegaHertz,
        energy_j: f64,
        time_s: f64,
    ) -> RecordOutcome {
        let top = self.ladder.len() - 1;
        let window = self.cfg.window;
        let outlier_factor = self.cfg.outlier_factor;
        let quarantine_after = self.cfg.quarantine_after;
        let fallback_after = self.cfg.fallback_after;
        let idx = nearest_idx(&self.ladder, freq);
        let st = self
            .kernels
            .entry(func)
            .or_insert_with(|| KernelState::fresh(top));
        if st.phase != Phase::Pinned {
            st.explore_launches += 1;
        }
        let invalid =
            !energy_j.is_finite() || !time_s.is_finite() || energy_j <= 0.0 || time_s <= 0.0;
        let outlier = !invalid
            && st.mean_at(idx).is_some_and(|mean| {
                mean > 0.0 && archsim::EnergyDelay::of(energy_j, time_s).0 > outlier_factor * mean
            });
        if invalid || outlier {
            st.consecutive_invalid += 1;
            if st.consecutive_invalid >= fallback_after {
                st.consecutive_invalid = 0;
                st.best = top;
                st.phase = Phase::Pinned;
                decide_event(func, "fallback_default", self.ladder[top], None);
                return RecordOutcome::FellBack;
            }
            if st.consecutive_invalid >= quarantine_after {
                st.estimates.remove(&idx);
                decide_event(func, "quarantine", self.ladder[idx], None);
                return RecordOutcome::Quarantined;
            }
            decide_event(func, "reject_sample", self.ladder[idx], st.mean_at(idx));
            return if invalid {
                RecordOutcome::RejectedInvalid
            } else {
                RecordOutcome::RejectedOutlier
            };
        }
        st.consecutive_invalid = 0;
        st.estimates
            .entry(idx)
            .or_insert_with(|| RungEstimate::new(window))
            .record(energy_j, time_s);
        RecordOutcome::Accepted
    }

    /// The contemporaneous windowed-EDP estimate at `func`'s current best
    /// rung, if it has samples.
    pub fn windowed_edp(&self, func: FuncId) -> Option<f64> {
        self.kernels.get(&func).and_then(|s| s.mean_at(s.best))
    }

    /// True once `func`'s clock is pinned.
    pub fn is_pinned(&self, func: FuncId) -> bool {
        self.kernels
            .get(&func)
            .is_some_and(|s| s.phase == Phase::Pinned)
    }

    /// True when every kernel seen so far is pinned (and at least one was).
    pub fn all_pinned(&self) -> bool {
        !self.kernels.is_empty() && self.kernels.values().all(|s| s.phase == Phase::Pinned)
    }

    /// Learned table: pinned kernels only.
    pub fn table(&self) -> LearnedTable {
        self.kernels
            .iter()
            .filter(|(_, s)| s.phase == Phase::Pinned)
            .map(|(f, s)| (*f, self.ladder[s.best]))
            .collect()
    }

    /// Learned table over every kernel seen, with unpinned kernels falling
    /// back to the maximum clock (Baseline behaviour).
    pub fn table_with_fallback(&self) -> LearnedTable {
        let max = *self.ladder.last().expect("non-empty ladder");
        self.kernels
            .iter()
            .map(|(f, s)| {
                let clock = if s.phase == Phase::Pinned {
                    self.ladder[s.best]
                } else {
                    max
                };
                (*f, clock)
            })
            .collect()
    }

    /// Total launches spent exploring (taken while not pinned), across all
    /// kernels.
    pub fn exploration_launches(&self) -> u64 {
        self.kernels.values().map(|s| s.explore_launches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::GpuSpec;

    /// Synthetic per-call measurement with an EDP minimum exactly at
    /// `f_star`: time rises as the clock drops, energy rises away from the
    /// sweet spot.
    fn measure(f: MegaHertz, f_star: MegaHertz) -> (f64, f64) {
        let t = 1.0 + (1410.0 - f64::from(f.0)) / 1410.0;
        let d = (f64::from(f.0) - f64::from(f_star.0)) / 1410.0;
        let e = 100.0 * (1.0 + 4.0 * d * d) / t; // EDP = e*t minimal at f_star
        (e, t)
    }

    fn drive(tuner: &mut OnlineTuner, func: FuncId, f_star: MegaHertz, max_launches: usize) {
        for _ in 0..max_launches {
            if tuner.is_pinned(func) {
                break;
            }
            let f = tuner.propose(func);
            let (e, t) = measure(f, f_star);
            tuner.record(func, f, e, t);
        }
    }

    #[test]
    fn converges_to_synthetic_optimum_from_any_target() {
        let gpu = GpuSpec::a100_pcie_40gb();
        for f_star in [1005, 1110, 1200, 1305, 1410] {
            let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
            drive(&mut tuner, FuncId::XMass, MegaHertz(f_star), 200);
            assert!(tuner.is_pinned(FuncId::XMass), "pinned for target {f_star}");
            let got = tuner.table()[&FuncId::XMass];
            assert!(
                got.0.abs_diff(f_star) <= 15,
                "target {f_star}: landed at {got}"
            );
        }
    }

    #[test]
    fn exploration_is_bounded_and_stops_after_pinning() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        drive(&mut tuner, FuncId::MomentumEnergy, MegaHertz(1350), 500);
        let spent = tuner.exploration_launches();
        assert!(spent > 0 && spent < 80, "exploration {spent} out of bounds");
        // Further pinned launches do not count as exploration.
        for _ in 0..10 {
            let f = tuner.propose(FuncId::MomentumEnergy);
            let (e, t) = measure(f, MegaHertz(1350));
            tuner.record(FuncId::MomentumEnergy, f, e, t);
        }
        assert_eq!(tuner.exploration_launches(), spent);
    }

    #[test]
    fn under_sampled_kernel_proposes_max_and_falls_back_to_baseline() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        // A single launch is far below min_samples on every probe.
        let f = tuner.propose(FuncId::Timestep);
        assert_eq!(f, MegaHertz(1410), "first probe is the safe max clock");
        tuner.record(FuncId::Timestep, f, 10.0, 0.1);
        assert!(tuner.table().is_empty(), "nothing pinned yet");
        assert_eq!(
            tuner.table_with_fallback()[&FuncId::Timestep],
            MegaHertz(1410),
            "unpinned kernels fall back to Baseline"
        );
    }

    #[test]
    fn warm_start_pins_immediately_without_exploration() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        let mut table = LearnedTable::new();
        table.insert(FuncId::XMass, MegaHertz(1050));
        table.insert(FuncId::MomentumEnergy, MegaHertz(1395));
        tuner.warm_start(&table);
        assert!(tuner.all_pinned());
        assert_eq!(tuner.propose(FuncId::XMass), MegaHertz(1050));
        assert_eq!(tuner.propose(FuncId::MomentumEnergy), MegaHertz(1395));
        let (e, t) = (10.0, 0.1);
        tuner.record(FuncId::XMass, MegaHertz(1050), e, t);
        assert_eq!(tuner.exploration_launches(), 0);
        assert_eq!(tuner.table(), table);
    }

    #[test]
    fn invalid_samples_are_rejected_not_recorded() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        let f = tuner.propose(FuncId::XMass);
        assert_eq!(
            tuner.record(FuncId::XMass, f, f64::NAN, 0.1),
            RecordOutcome::RejectedInvalid
        );
        assert_eq!(
            tuner.record(FuncId::XMass, f, -5.0, 0.1),
            RecordOutcome::RejectedInvalid
        );
        assert_eq!(
            tuner.record(FuncId::XMass, f, 10.0, 0.0),
            RecordOutcome::Quarantined,
            "third consecutive reject quarantines the rung"
        );
        // A good sample resets the consecutive counter and is accepted.
        assert_eq!(
            tuner.record(FuncId::XMass, f, 10.0, 0.1),
            RecordOutcome::Accepted
        );
        assert_eq!(
            tuner.record(FuncId::XMass, f, f64::INFINITY, 0.1),
            RecordOutcome::RejectedInvalid,
            "counter restarted after the accept"
        );
    }

    #[test]
    fn edp_outliers_are_rejected_and_quarantine_clears_the_rung() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        let f = tuner.propose(FuncId::FindNeighbors);
        tuner.record(FuncId::FindNeighbors, f, 100.0, 1.0); // EDP 100 baseline
        assert_eq!(
            tuner.record(FuncId::FindNeighbors, f, 100.0 * 20.0, 1.0), // EDP 2000 > 8x mean
            RecordOutcome::RejectedOutlier
        );
        assert!(
            (tuner.windowed_edp(FuncId::FindNeighbors).unwrap() - 100.0).abs() < 1e-9,
            "outlier must not move the estimate"
        );
        // Two more rejects hit quarantine_after = 3: the rung is dropped.
        assert_eq!(
            tuner.record(FuncId::FindNeighbors, f, 2000.0, 1.0),
            RecordOutcome::RejectedOutlier,
            "second reject (mean still 100)"
        );
        assert_eq!(
            tuner.record(FuncId::FindNeighbors, f, 2000.0, 1.0),
            RecordOutcome::Quarantined
        );
        assert_eq!(
            tuner.windowed_edp(FuncId::FindNeighbors),
            None,
            "quarantined rung re-measures from scratch"
        );
    }

    #[test]
    fn persistent_bad_measurements_fall_back_to_max_clock() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        let f = tuner.propose(FuncId::IADVelocityDivCurl);
        let mut fell_back = false;
        for _ in 0..OnlineTunerConfig::default().fallback_after {
            if tuner.record(FuncId::IADVelocityDivCurl, f, f64::NAN, 0.1) == RecordOutcome::FellBack
            {
                fell_back = true;
                break;
            }
        }
        assert!(fell_back, "six consecutive invalid samples must fall back");
        assert!(tuner.is_pinned(FuncId::IADVelocityDivCurl));
        assert_eq!(
            tuner.table()[&FuncId::IADVelocityDivCurl],
            MegaHertz(1410),
            "fallback pins at the safe maximum clock"
        );
    }

    #[test]
    fn ceiling_shrinks_the_search_window() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        assert_eq!(tuner.ladder().last(), Some(&MegaHertz(1410)));
        tuner.set_ceiling(MegaHertz(1200));
        assert_eq!(tuner.ladder().last(), Some(&MegaHertz(1200)));
        assert_eq!(tuner.propose(FuncId::XMass), MegaHertz(1200));
        // Warm-started entries re-clamp onto the shrunk ladder.
        let mut tuner = OnlineTuner::new(&gpu, OnlineTunerConfig::default()).unwrap();
        let mut table = LearnedTable::new();
        table.insert(FuncId::XMass, MegaHertz(1410));
        tuner.warm_start(&table);
        tuner.set_ceiling(MegaHertz(1200));
        assert_eq!(tuner.propose(FuncId::XMass), MegaHertz(1200));
    }
}
