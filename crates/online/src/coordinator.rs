//! Node/cluster power-cap composition.
//!
//! `PowerCapCoordinator` takes one watt budget for a whole job and splits it
//! across ranks. Each rank's demand is its (learned or configured) per-kernel
//! frequency table; the coordinator's model predicts every kernel's peak
//! draw from the device power model and greedily walks the most expensive
//! kernels down the clock ladder — always picking the `(rank, kernel)` step
//! with the smallest marginal EDP cost — until the summed worst-case draw
//! fits the budget. The per-rank budget that falls out is then *enforced* on
//! the device (`GpuDevice::set_power_limit`), so the trace guarantee does
//! not rest on the model being right: the model only decides where the
//! clamping hurts least.

use archsim::{EnergyDelay, GpuSpec, MegaHertz, Watts};
use sph::FuncId;

use crate::controller::LearnedTable;
use crate::error::OnlineError;

/// Headroom kept above the modelled busy power: covers thermal leakage and
/// the clock-transition energy the device spreads over the segment *after*
/// enforcing its power limit.
pub const DEFAULT_MARGIN: f64 = 0.05;

/// Per-rank outcome of a power-cap allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RankAllocation {
    /// Device power limit to enforce on this rank's GPU.
    pub budget: Watts,
    /// The rank's kernel table after greedy clamping (equal to the demand
    /// when the budget was never binding).
    pub table: LearnedTable,
}

/// Splits a job-wide watt budget across ranks by clamping kernel clocks.
#[derive(Debug, Clone)]
pub struct PowerCapCoordinator {
    spec: GpuSpec,
    budget: Watts,
    margin: f64,
}

impl PowerCapCoordinator {
    /// Coordinator for GPUs of `spec` sharing `budget` watts in total.
    pub fn new(spec: GpuSpec, budget: Watts) -> Self {
        PowerCapCoordinator {
            spec,
            budget,
            margin: DEFAULT_MARGIN,
        }
    }

    /// Override the modelling headroom (fraction above busy power).
    pub fn with_margin(mut self, margin: f64) -> Self {
        self.margin = margin.max(0.0);
        self
    }

    /// The job-wide budget.
    pub fn budget(&self) -> Watts {
        self.budget
    }

    /// Modelled draw of `func` running flat-out at clock `f`. Uses the raw
    /// activity factors (no occupancy de-rate), so it upper-bounds the
    /// busy power the device will actually see.
    pub fn kernel_power(&self, func: FuncId, f: MegaHertz) -> Watts {
        let w = func.workload(1.0);
        self.spec
            .busy_power(f, w.compute_activity, w.memory_activity, false)
    }

    /// Worst-case draw of a rank running `table`: its hungriest kernel.
    pub fn table_peak(&self, table: &LearnedTable) -> Watts {
        Watts(
            table
                .iter()
                .map(|(k, f)| self.kernel_power(*k, *f).0)
                .fold(self.spec.idle_power.0, f64::max),
        )
    }

    /// Roofline estimate of `func`'s per-particle EDP at clock `f` — the
    /// marginal-cost metric the greedy clamp minimises. Kernel time is
    /// compute time (clock-scaled) plus memory time; energy is modelled
    /// power times that span; EDP goes through the shared formulation.
    fn edp_density(&self, func: FuncId, f: MegaHertz) -> f64 {
        let w = func.workload(1.0);
        let fmax = self.spec.clock_table.max();
        let t = w.flops / (self.spec.peak_flops * f.ratio(fmax).min(1.0))
            + w.bytes / self.spec.mem_bandwidth;
        EnergyDelay::of(self.kernel_power(func, f).0 * t, t).0
    }

    /// Highest ladder clock a rank with `rank_budget` watts can run any of
    /// `table`'s kernels at without the modelled worst case (with headroom)
    /// exceeding the budget. An empty table means "all kernels". Used to
    /// cap an online tuner's search window so exploration never proposes a
    /// rung the device limit would immediately throttle.
    pub fn freq_ceiling(&self, rank_budget: Watts, table: &LearnedTable) -> MegaHertz {
        let clocks = &self.spec.clock_table;
        let headroom = 1.0 + self.margin;
        let funcs: Vec<FuncId> = if table.is_empty() {
            FuncId::ALL.to_vec()
        } else {
            table.keys().copied().collect()
        };
        let mut f = clocks.max();
        loop {
            let peak = funcs
                .iter()
                .map(|k| self.kernel_power(*k, f).0)
                .fold(self.spec.idle_power.0, f64::max)
                * headroom;
            if peak <= rank_budget.0 || f <= clocks.min() {
                return f;
            }
            f = MegaHertz(f.0 - clocks.step());
        }
    }

    /// Split the budget across `demands` (one table per rank; an empty
    /// table means "baseline: everything at the maximum clock").
    ///
    /// Returns one [`RankAllocation`] per rank, with
    /// `sum(budgets) <= budget` and every table clock at or below its
    /// demand. Errs with [`OnlineError::InfeasibleBudget`] when even the
    /// ladder floor is too hungry.
    pub fn allocate(&self, demands: &[LearnedTable]) -> Result<Vec<RankAllocation>, OnlineError> {
        if demands.is_empty() {
            return Ok(Vec::new());
        }
        let clocks = &self.spec.clock_table;
        let floor = clocks.min();
        let step = clocks.step();
        let headroom = 1.0 + self.margin;

        let mut tables: Vec<LearnedTable> = demands
            .iter()
            .map(|d| {
                if d.is_empty() {
                    FuncId::ALL.iter().map(|f| (*f, clocks.max())).collect()
                } else {
                    d.iter().map(|(k, f)| (*k, clocks.nearest(*f))).collect()
                }
            })
            .collect();

        loop {
            let peaks: Vec<f64> = tables
                .iter()
                .map(|t| self.table_peak(t).0 * headroom)
                .collect();
            let total: f64 = peaks.iter().sum();
            if total <= self.budget.0 {
                let slack = (self.budget.0 - total) / tables.len() as f64;
                return Ok(tables
                    .into_iter()
                    .zip(peaks)
                    .map(|(table, peak)| RankAllocation {
                        budget: Watts((peak + slack).min(self.spec.tdp().0)),
                        table,
                    })
                    .collect());
            }

            // Cheapest next clamp: each rank's peak kernel, one rung down.
            let mut best: Option<(usize, FuncId, MegaHertz, f64)> = None;
            for (r, t) in tables.iter().enumerate() {
                let Some((func, f)) = t.iter().map(|(k, f)| (*k, *f)).max_by(|a, b| {
                    let pa = self.kernel_power(a.0, a.1).0;
                    let pb = self.kernel_power(b.0, b.1).0;
                    pa.partial_cmp(&pb).expect("finite power")
                }) else {
                    continue;
                };
                if f <= floor {
                    continue; // this rank's peak cannot go lower
                }
                let down = MegaHertz(f.0 - step);
                let cost = self.edp_density(func, down) - self.edp_density(func, f);
                if best.as_ref().is_none_or(|b| cost < b.3) {
                    best = Some((r, func, down, cost));
                }
            }
            match best {
                Some((r, func, down, _)) => {
                    tables[r].insert(func, down);
                }
                None => {
                    let floor_w: f64 = tables
                        .iter()
                        .map(|t| {
                            t.keys()
                                .map(|k| self.kernel_power(*k, floor).0)
                                .fold(self.spec.idle_power.0, f64::max)
                                * headroom
                        })
                        .sum();
                    return Err(OnlineError::InfeasibleBudget {
                        budget_w: self.budget.0,
                        floor_w,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::GpuSpec;
    use std::collections::BTreeMap;

    fn full_demand(gpu: &GpuSpec) -> LearnedTable {
        FuncId::ALL
            .iter()
            .map(|f| (*f, gpu.clock_table.max()))
            .collect()
    }

    #[test]
    fn generous_budget_leaves_demands_untouched() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let demand = full_demand(&gpu);
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(2.0 * gpu.tdp().0));
        let allocs = coord.allocate(&[demand.clone(), demand.clone()]).unwrap();
        assert_eq!(allocs.len(), 2);
        for a in &allocs {
            assert_eq!(a.table, demand, "no clamping needed");
            assert!(a.budget.0 <= gpu.tdp().0 + 1e-9);
        }
        let total: f64 = allocs.iter().map(|a| a.budget.0).sum();
        assert!(total <= 2.0 * gpu.tdp().0 + 1e-9);
    }

    #[test]
    fn tight_budget_clamps_hungriest_kernels_first() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let demand = full_demand(&gpu);
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(0.85 * gpu.tdp().0));
        let allocs = coord.allocate(std::slice::from_ref(&demand)).unwrap();
        let a = &allocs[0];
        assert!(a.budget.0 <= 0.85 * gpu.tdp().0 + 1e-9);
        // The modelled worst case fits the enforced limit.
        assert!(coord.table_peak(&a.table).0 * (1.0 + DEFAULT_MARGIN) <= a.budget.0 + 1e-9);
        // Every clock at or below demand; at least one was clamped.
        let mut clamped = 0;
        for (k, f) in &a.table {
            assert!(*f <= demand[k]);
            if *f < demand[k] {
                clamped += 1;
            }
        }
        assert!(clamped > 0, "budget below TDP must clamp something");
        // Cold kernels keep their clocks: only peak kernels get stepped, so
        // the memory-bound XMass should be untouched while compute-heavy
        // kernels absorb the cap.
        assert_eq!(a.table[&FuncId::XMass], demand[&FuncId::XMass]);
        assert!(a.table[&FuncId::MomentumEnergy] < demand[&FuncId::MomentumEnergy]);
    }

    #[test]
    fn infeasible_budget_is_an_error() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(gpu.idle_power.0 * 0.5));
        match coord.allocate(&[full_demand(&gpu)]) {
            Err(OnlineError::InfeasibleBudget { budget_w, floor_w }) => {
                assert!(floor_w > budget_w);
            }
            other => panic!("expected InfeasibleBudget, got {other:?}"),
        }
    }

    #[test]
    fn empty_demand_means_baseline() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(2.0 * gpu.tdp().0));
        let allocs = coord.allocate(&[BTreeMap::new()]).unwrap();
        assert_eq!(allocs[0].table, full_demand(&gpu));
    }

    #[test]
    fn single_rank_gets_the_whole_budget_capped_at_tdp() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let demand = full_demand(&gpu);
        // Comfortable but sub-TDP budget: the one rank owns all of it.
        let budget = Watts(0.95 * gpu.tdp().0);
        let coord = PowerCapCoordinator::new(gpu.clone(), budget);
        let allocs = coord.allocate(std::slice::from_ref(&demand)).unwrap();
        assert_eq!(allocs.len(), 1);
        let a = &allocs[0];
        assert!(a.budget.0 <= budget.0 + 1e-9, "never over the job budget");
        assert!(
            coord.table_peak(&a.table).0 * (1.0 + DEFAULT_MARGIN) <= a.budget.0 + 1e-9,
            "modelled worst case fits the enforced limit"
        );
        // And with budget above TDP, the device limit caps the grant.
        let rich = PowerCapCoordinator::new(gpu.clone(), Watts(3.0 * gpu.tdp().0));
        let a = &rich.allocate(std::slice::from_ref(&demand)).unwrap()[0];
        assert_eq!(a.table, demand, "no clamping under an over-TDP budget");
        assert!(
            a.budget.0 <= gpu.tdp().0 + 1e-9,
            "per-rank budget saturates at TDP, surplus watts are dead"
        );
    }

    #[test]
    fn budget_below_summed_idle_power_is_infeasible_for_every_rank_count() {
        let gpu = GpuSpec::a100_pcie_40gb();
        for ranks in [1usize, 4] {
            // Idle power alone exceeds the split budget: no amount of
            // clamping reaches feasibility, because the floor of every
            // rank's draw is its idle power.
            let budget = Watts(0.9 * gpu.idle_power.0 * ranks as f64);
            let coord = PowerCapCoordinator::new(gpu.clone(), budget);
            let demands = vec![full_demand(&gpu); ranks];
            match coord.allocate(&demands) {
                Err(OnlineError::InfeasibleBudget { budget_w, floor_w }) => {
                    assert!(floor_w > budget_w, "{ranks} ranks: floor above budget");
                    assert!(
                        floor_w >= gpu.idle_power.0 * ranks as f64,
                        "reported floor accounts for every rank's idle draw"
                    );
                }
                other => panic!("{ranks} ranks: expected InfeasibleBudget, got {other:?}"),
            }
        }
    }

    #[test]
    fn budget_above_summed_tdp_never_grants_more_than_tdp_per_rank() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let ranks = 4usize;
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(2.5 * gpu.tdp().0 * ranks as f64));
        let demands = vec![full_demand(&gpu); ranks];
        let allocs = coord.allocate(&demands).unwrap();
        assert_eq!(allocs.len(), ranks);
        for a in &allocs {
            assert_eq!(a.table, full_demand(&gpu), "no clamping");
            assert!(
                a.budget.0 <= gpu.tdp().0 + 1e-9,
                "TDP is the hard per-GPU cap"
            );
        }
    }

    #[test]
    fn starved_ceiling_clamps_to_ladder_floor_and_confines_both_tuners() {
        let gpu = GpuSpec::a100_pcie_40gb();
        let coord = PowerCapCoordinator::new(gpu.clone(), Watts(gpu.tdp().0));
        // A rank budget below what even the ladder floor draws: the ceiling
        // saturates at the lowest rung rather than walking off the ladder.
        let floor = gpu.clock_table.min();
        let starved = Watts(gpu.idle_power.0 * 0.5);
        let ceiling = coord.freq_ceiling(starved, &full_demand(&gpu));
        assert_eq!(ceiling, floor, "ceiling never leaves the device ladder");

        // The online search accepts that ceiling: its window collapses to
        // the configured floor rung (min_freq), and every proposal stays
        // inside it.
        let cfg = crate::OnlineTunerConfig::default();
        let mut tuner = crate::OnlineTuner::new(&gpu, cfg.clone()).unwrap();
        tuner.set_ceiling(ceiling);
        assert_eq!(
            tuner.ladder(),
            &[cfg.min_freq],
            "ceiling below the window floor leaves exactly the floor rung"
        );
        assert_eq!(tuner.propose(FuncId::XMass), cfg.min_freq);

        // Same contract for the predictive tuner: probe plan and proposals
        // are confined to the single surviving rung.
        let mut pred =
            crate::PredictiveTuner::new(&gpu, crate::PredictiveConfig::default()).unwrap();
        pred.set_ceiling(ceiling);
        let (core, _mem) = pred.propose(FuncId::XMass);
        assert_eq!(core, cfg.min_freq);
    }
}
