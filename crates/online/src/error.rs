//! Error type for the online-tuning subsystem.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while tuning online, persisting tables or
/// allocating a power budget.
#[derive(Debug)]
pub enum OnlineError {
    /// The tuner was configured with an empty or inverted frequency range.
    InvalidConfig(String),
    /// The watt budget cannot be met even with every rank's every kernel at
    /// the ladder floor.
    InfeasibleBudget {
        /// Requested budget across all ranks.
        budget_w: f64,
        /// Minimum achievable draw (all ranks clamped to the floor clock).
        floor_w: f64,
    },
    /// Table-store I/O failure.
    Store(std::io::Error),
    /// A table-store file exists but does not parse.
    Corrupt { path: PathBuf, detail: String },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig(msg) => write!(f, "invalid online-tuner config: {msg}"),
            OnlineError::InfeasibleBudget { budget_w, floor_w } => write!(
                f,
                "power budget {budget_w:.1} W infeasible: floor demand is {floor_w:.1} W"
            ),
            OnlineError::Store(e) => write!(f, "table store I/O: {e}"),
            OnlineError::Corrupt { path, detail } => {
                write!(f, "corrupt table store file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OnlineError {
    fn from(e: std::io::Error) -> Self {
        OnlineError::Store(e)
    }
}
