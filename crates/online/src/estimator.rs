//! Windowed per-rung EDP estimator.
//!
//! One `RungEstimate` per (kernel, clock-rung) pair. Samples are per-call
//! energy-delay products computed through the shared
//! [`archsim::EnergyDelay`] formulation, kept in a bounded sliding window so
//! the estimate follows thermal drift over a long run instead of averaging
//! the cold start against the hot steady state.

use std::collections::VecDeque;

use archsim::EnergyDelay;

/// Sliding-window mean of a kernel's per-call EDP at one clock rung.
#[derive(Debug, Clone)]
pub struct RungEstimate {
    window: VecDeque<f64>,
    cap: usize,
    total_samples: u64,
}

impl RungEstimate {
    /// New estimator keeping at most `cap` recent samples.
    pub fn new(cap: usize) -> Self {
        RungEstimate {
            window: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            total_samples: 0,
        }
    }

    /// Record one measured call.
    pub fn record(&mut self, energy_j: f64, time_s: f64) {
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(EnergyDelay::of(energy_j, time_s).0);
        self.total_samples += 1;
    }

    /// Samples ever recorded (not just those still in the window).
    pub fn samples(&self) -> u64 {
        self.total_samples
    }

    /// Windowed mean EDP, or `None` before the first sample.
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<f64>() / self.window.len() as f64)
        }
    }

    /// Relative spread `(max - min) / mean` of the window; `0` with fewer
    /// than two samples. The controller's stability signal.
    pub fn spread(&self) -> f64 {
        if self.window.len() < 2 {
            return 0.0;
        }
        let min = self.window.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self
            .window
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = self.mean().expect("non-empty window");
        if mean <= 0.0 {
            0.0
        } else {
            (max - min) / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_uses_shared_edp_formulation() {
        let mut e = RungEstimate::new(4);
        assert_eq!(e.mean(), None);
        e.record(100.0, 2.0); // EDP 200
        e.record(50.0, 2.0); // EDP 100
        assert_eq!(e.samples(), 2);
        assert!((e.mean().unwrap() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut e = RungEstimate::new(2);
        e.record(10.0, 1.0); // 10, evicted below
        e.record(20.0, 1.0); // 20
        e.record(30.0, 1.0); // 30
        assert_eq!(e.samples(), 3);
        assert!((e.mean().unwrap() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn spread_reflects_window_jitter() {
        let mut e = RungEstimate::new(8);
        e.record(100.0, 1.0);
        assert_eq!(e.spread(), 0.0, "one sample has no spread");
        e.record(110.0, 1.0);
        assert!((e.spread() - 10.0 / 105.0).abs() < 1e-12);
    }
}
