//! Online ManDyn: in-run autotuning and power management.
//!
//! The paper's ManDyn policy (§III-C/D) needs an *offline* KernelTuner
//! sweep before the production run. This crate removes that prerequisite
//! and adds the operational pieces a production deployment needs:
//!
//! - [`OnlineTuner`] — a per-kernel search over the GPU clock ladder that
//!   optimises windowed per-call EDP while the job runs. Coarse probing
//!   followed by step-halving hill-climbing (exploration decay); kernels
//!   pin once their estimate is stable within one ladder bin; kernels with
//!   too few samples run at the maximum clock (Baseline fallback).
//! - [`TableStore`] — JSON persistence of learned [`LearnedTable`]s keyed
//!   by `(GPU, workload)`, so later runs warm-start and skip exploration.
//! - [`PowerCapCoordinator`] — splits a node/cluster watt budget across
//!   ranks by greedily clamping the kernels with the smallest marginal EDP
//!   cost, and emits the per-rank device power limit that enforces it.
//!
//! The `freqscale` crate integrates all three as the `ManDynOnline`
//! frequency policy.

pub mod config;
pub mod controller;
pub mod coordinator;
pub mod error;
pub mod estimator;
pub mod predictive;
pub mod store;

pub use config::{OnlineTunerConfig, PredictiveConfig};
pub use controller::{LearnedTable, OnlineTuner, RecordOutcome};
pub use coordinator::{PowerCapCoordinator, RankAllocation, DEFAULT_MARGIN};
pub use error::OnlineError;
pub use estimator::RungEstimate;
pub use predictive::{ModelTable, PredictiveTuner};
pub use store::{models_by_name, StoredModels, StoredTable, TableStore};
