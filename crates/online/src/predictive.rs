//! Predictive per-kernel tuning: probe a handful of rungs, fit the analytic
//! model, jump straight to the predicted EDP optimum.
//!
//! Where [`crate::OnlineTuner`] *searches* the ladder (dozens
//! of exploration launches per kernel), this controller samples
//! `probe_rungs` core clocks — plus one memory P-state when the memory axis
//! is enabled — fits the roofline/CV²f model of the `model` crate by least
//! squares, and pins the kernel at the model's (core, mem) EDP optimum after
//! a single verification measurement. The fallback ladder is explicit:
//!
//! 1. fit rejected (low R², large residual) → coarse-to-refine search;
//! 2. probes quarantined by the measurement-validity guard → search;
//! 3. verification sample off the model → search;
//! 4. pinned samples drift from the model → refit from fresh probes.
//!
//! Fitted models are exposed for persistence, so a warm-started run can skip
//! even the probe phase and jump directly to each kernel's predicted
//! optimum.

use std::collections::BTreeMap;

use archsim::{GpuSpec, MegaHertz};
use model::{KernelModel, Sample, VoltageParams};
use sph::FuncId;

use crate::config::PredictiveConfig;
use crate::controller::{LearnedTable, OnlineTuner, RecordOutcome};
use crate::error::OnlineError;

/// Per-kernel fitted models, keyed like the learned frequency table.
pub type ModelTable = BTreeMap<FuncId, KernelModel>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Measuring probe point `at` of the plan.
    Probe { at: usize },
    /// Measuring the predicted optimum to confirm the model.
    Verify,
    /// Operating at the predicted optimum, watching for drift.
    Pinned,
    /// The model path gave up; the inner search tuner owns this kernel.
    Search,
}

#[derive(Debug)]
struct KernelState {
    phase: Phase,
    /// Accumulated (energy, time, core, mem) of the point being measured.
    acc: Vec<(f64, f64, MegaHertz, MegaHertz)>,
    /// Completed probe means, one per plan point.
    samples: Vec<Sample>,
    /// The model's predicted (core, mem) optimum, once fitted.
    predicted: Option<(MegaHertz, MegaHertz)>,
    /// Launches taken while not pinned (probing + verification).
    explore_launches: u64,
    consecutive_invalid: u32,
    drifted: u32,
    refits: u32,
}

impl KernelState {
    fn fresh() -> Self {
        KernelState {
            phase: Phase::Probe { at: 0 },
            acc: Vec::new(),
            samples: Vec::new(),
            predicted: None,
            explore_launches: 0,
            consecutive_invalid: 0,
            drifted: 0,
            refits: 0,
        }
    }

    /// Collapse the accumulated launches into one mean sample at the clocks
    /// the launches actually ran at.
    fn mean_sample(&self) -> Sample {
        let n = self.acc.len().max(1) as f64;
        let (e, t): (f64, f64) = self
            .acc
            .iter()
            .fold((0.0, 0.0), |(e, t), &(ei, ti, _, _)| (e + ei, t + ti));
        let &(_, _, core, mem) = self.acc.last().expect("mean of nothing");
        Sample {
            f_core_mhz: f64::from(core.0),
            f_mem_mhz: f64::from(mem.0),
            time_s: t / n,
            energy_j: e / n,
        }
    }
}

/// Model-driven (core, memory) clock tuner with a search fallback.
pub struct PredictiveTuner {
    cfg: PredictiveConfig,
    /// Core-clock search window, ascending (same window the search uses).
    ladder: Vec<MegaHertz>,
    /// Memory P-states, descending; just the default when the memory axis
    /// is closed.
    mem_ladder: Vec<MegaHertz>,
    mem_default: MegaHertz,
    voltage: VoltageParams,
    /// Probe plan shared by every kernel: (core, mem) points to measure.
    plan: Vec<(MegaHertz, MegaHertz)>,
    kernels: BTreeMap<FuncId, KernelState>,
    models: ModelTable,
    /// The coarse-to-refine machine kernels fall back to.
    search: OnlineTuner,
    search_fallbacks: u64,
}

impl PredictiveTuner {
    /// Build a predictive tuner over `spec`'s (core, memory) ladders.
    pub fn new(spec: &GpuSpec, cfg: PredictiveConfig) -> Result<Self, OnlineError> {
        cfg.validate()?;
        let search = OnlineTuner::new(spec, cfg.search.clone())?;
        let ladder = search.ladder().to_vec();
        let mem_default = spec.mem_clock;
        let mem_ladder = if cfg.tune_memory && spec.mem_clock_table.len() > 1 {
            spec.mem_clock_table.clone()
        } else {
            vec![mem_default]
        };
        let voltage = VoltageParams {
            v_min: spec.voltage.v_min.0,
            v_max: spec.voltage.v_max.0,
            f_min_mhz: f64::from(spec.voltage.f_min.0),
            f_max_mhz: f64::from(spec.voltage.f_max.0),
        };
        // Core probes spread evenly over the window, top and bottom
        // included, measured top-down (the safe clocks first); then one
        // memory probe at the lowest P-state to open the second axis.
        let n = ladder.len();
        let k = (cfg.probe_rungs as usize).min(n);
        let mut plan: Vec<(MegaHertz, MegaHertz)> = (0..k)
            .map(|j| {
                let idx = if k == 1 {
                    n - 1
                } else {
                    (n - 1) * (k - 1 - j) / (k - 1)
                };
                (ladder[idx], mem_default)
            })
            .collect();
        plan.dedup();
        if mem_ladder.len() > 1 {
            let lowest = *mem_ladder.last().expect("non-empty mem ladder");
            plan.push((*ladder.last().expect("non-empty ladder"), lowest));
        }
        Ok(PredictiveTuner {
            cfg,
            ladder,
            mem_ladder,
            mem_default,
            voltage,
            plan,
            kernels: BTreeMap::new(),
            models: BTreeMap::new(),
            search,
            search_fallbacks: 0,
        })
    }

    /// The core-clock search window, ascending.
    pub fn ladder(&self) -> &[MegaHertz] {
        &self.ladder
    }

    /// The memory P-states in play, descending.
    pub fn mem_ladder(&self) -> &[MegaHertz] {
        &self.mem_ladder
    }

    /// Lower the core-clock ceiling (power-cap composition). Must run
    /// before any measurements.
    pub fn set_ceiling(&mut self, ceiling: MegaHertz) {
        assert!(
            self.kernels.is_empty(),
            "set_ceiling must run before tuning starts"
        );
        self.search.set_ceiling(ceiling);
        self.ladder = self.search.ladder().to_vec();
        let n = self.ladder.len();
        let k = (self.cfg.probe_rungs as usize).min(n);
        let mut plan: Vec<(MegaHertz, MegaHertz)> = (0..k)
            .map(|j| {
                let idx = if k == 1 {
                    n - 1
                } else {
                    (n - 1) * (k - 1 - j) / (k - 1)
                };
                (self.ladder[idx], self.mem_default)
            })
            .collect();
        plan.dedup();
        if self.mem_ladder.len() > 1 {
            let lowest = *self.mem_ladder.last().expect("non-empty mem ladder");
            plan.push((*self.ladder.last().expect("non-empty ladder"), lowest));
        }
        self.plan = plan;
    }

    /// Warm-start from persisted models: each kernel jumps straight to its
    /// model's predicted optimum — no probe phase, no verification launches.
    pub fn warm_start_models(&mut self, models: &ModelTable) {
        let core: Vec<u32> = self.ladder.iter().map(|f| f.0).collect();
        let mem: Vec<u32> = self.mem_ladder.iter().map(|f| f.0).collect();
        for (func, m) in models {
            if let Some(p) = m.predict_optimum(&core, &mem) {
                let mut st = KernelState::fresh();
                st.phase = Phase::Pinned;
                st.predicted = Some((MegaHertz(p.f_core_mhz), MegaHertz(p.f_mem_mhz)));
                self.kernels.insert(*func, st);
                self.models.insert(*func, m.clone());
            }
        }
    }

    /// Warm-start kernels without stored models from a plain frequency
    /// table (handled by the inner search tuner: they pin, no exploration).
    pub fn warm_start_table(&mut self, table: &LearnedTable) {
        let missing: LearnedTable = table
            .iter()
            .filter(|(f, _)| !self.kernels.contains_key(f))
            .map(|(f, m)| (*f, *m))
            .collect();
        if missing.is_empty() {
            return;
        }
        self.search.warm_start(&missing);
        for func in missing.keys() {
            let mut st = KernelState::fresh();
            st.phase = Phase::Search;
            self.kernels.insert(*func, st);
        }
    }

    /// The (core, memory) clocks the next launch of `func` should run at.
    pub fn propose(&mut self, func: FuncId) -> (MegaHertz, MegaHertz) {
        let st = self.kernels.entry(func).or_insert_with(KernelState::fresh);
        match st.phase {
            Phase::Probe { at } => self.plan[at.min(self.plan.len() - 1)],
            Phase::Verify | Phase::Pinned => {
                st.predicted.expect("predicted point set before verify")
            }
            Phase::Search => (self.search.propose(func), self.mem_default),
        }
    }

    /// Feed back one measured launch at the clocks it actually ran at.
    pub fn record(
        &mut self,
        func: FuncId,
        core: MegaHertz,
        mem: MegaHertz,
        energy_j: f64,
        time_s: f64,
    ) -> RecordOutcome {
        let min_samples = self.cfg.search.min_samples as usize;
        let quarantine_after = self.cfg.search.quarantine_after;
        let st = self.kernels.entry(func).or_insert_with(KernelState::fresh);
        if st.phase == Phase::Search {
            return self.search.record(func, core, energy_j, time_s);
        }
        if st.phase != Phase::Pinned {
            st.explore_launches += 1;
        }
        let invalid =
            !energy_j.is_finite() || !time_s.is_finite() || energy_j <= 0.0 || time_s <= 0.0;
        // A finite sample can still be garbage: a straggler stall or a
        // transient thermal clamp inflates EDP far beyond anything the
        // roofline surface produces across the probe window. Judge it
        // against the kernel's accepted probe evidence, the same one-sided
        // guard the search applies per rung. Pinned kernels are excluded —
        // drift there is the model's job to notice, not the guard's.
        let outlier = !invalid && !matches!(st.phase, Phase::Pinned) && {
            let edp = |e: f64, t: f64| archsim::EnergyDelay::of(e, t).0;
            let (sum, n) = st
                .acc
                .iter()
                .map(|&(e, t, _, _)| edp(e, t))
                .chain(st.samples.iter().map(|s| edp(s.energy_j, s.time_s)))
                .fold((0.0, 0u32), |(sum, n), v| (sum + v, n + 1));
            n > 0 && edp(energy_j, time_s) > self.cfg.search.outlier_factor * (sum / f64::from(n))
        };
        if invalid || outlier {
            st.consecutive_invalid += 1;
            if st.consecutive_invalid >= quarantine_after {
                // Faulty measurements cannot anchor a fit: quarantine the
                // probe and hand the kernel to the search, which carries
                // its own (deeper) resilience ladder.
                Self::fall_back(
                    &mut self.search,
                    &mut self.search_fallbacks,
                    func,
                    st,
                    "probe_quarantined",
                );
                return RecordOutcome::Quarantined;
            }
            return RecordOutcome::RejectedInvalid;
        }
        st.consecutive_invalid = 0;
        match st.phase {
            Phase::Probe { at } => {
                st.acc.push((energy_j, time_s, core, mem));
                if st.acc.len() >= min_samples {
                    st.samples.push(st.mean_sample());
                    st.acc.clear();
                    if at + 1 < self.plan.len() {
                        st.phase = Phase::Probe { at: at + 1 };
                    } else {
                        Self::fit_and_predict(
                            &self.cfg,
                            &self.ladder,
                            &self.mem_ladder,
                            self.voltage,
                            &mut self.models,
                            &mut self.search,
                            &mut self.search_fallbacks,
                            func,
                            st,
                        );
                    }
                }
                RecordOutcome::Accepted
            }
            Phase::Verify => {
                st.acc.push((energy_j, time_s, core, mem));
                if st.acc.len() >= min_samples {
                    let sample = st.mean_sample();
                    st.acc.clear();
                    let model = self.models.get(&func).expect("model fitted before verify");
                    if model.drifted(&sample, self.cfg.drift_tolerance) {
                        // The jump target does not measure like the model
                        // said it would — don't trust the rest of the
                        // surface either.
                        Self::fall_back(
                            &mut self.search,
                            &mut self.search_fallbacks,
                            func,
                            st,
                            "verify_failed",
                        );
                    } else {
                        st.phase = Phase::Pinned;
                        let (c, m) = st.predicted.expect("predicted set");
                        telemetry::instant(
                            "model",
                            "pin",
                            None,
                            vec![
                                ("func", func.name().into()),
                                ("core_mhz", c.0.into()),
                                ("mem_mhz", m.0.into()),
                                ("launches", st.explore_launches.into()),
                            ],
                        );
                    }
                }
                RecordOutcome::Accepted
            }
            Phase::Pinned => {
                let sample = Sample {
                    f_core_mhz: f64::from(core.0),
                    f_mem_mhz: f64::from(mem.0),
                    time_s,
                    energy_j,
                };
                let model = self.models.get(&func).expect("model fitted before pin");
                if model.drifted(&sample, self.cfg.drift_tolerance) {
                    st.drifted += 1;
                    if st.drifted >= self.cfg.drift_after {
                        // Refit-on-drift: thermal state or workload shape
                        // moved; measure fresh probes and fit again.
                        st.drifted = 0;
                        st.refits += 1;
                        st.samples.clear();
                        st.acc.clear();
                        st.predicted = None;
                        st.phase = Phase::Probe { at: 0 };
                        self.models.remove(&func);
                        telemetry::instant(
                            "model",
                            "refit",
                            None,
                            vec![("func", func.name().into()), ("refits", st.refits.into())],
                        );
                    }
                } else {
                    st.drifted = 0;
                }
                RecordOutcome::Accepted
            }
            Phase::Search => unreachable!("handled above"),
        }
    }

    /// Fit the model from the completed probe samples and either jump to
    /// the predicted optimum (entering verification) or fall back.
    #[allow(clippy::too_many_arguments)]
    fn fit_and_predict(
        cfg: &PredictiveConfig,
        ladder: &[MegaHertz],
        mem_ladder: &[MegaHertz],
        voltage: VoltageParams,
        models: &mut ModelTable,
        search: &mut OnlineTuner,
        search_fallbacks: &mut u64,
        func: FuncId,
        st: &mut KernelState,
    ) {
        let f_core_ref = f64::from(ladder.last().expect("non-empty ladder").0);
        let f_mem_ref = f64::from(mem_ladder.first().expect("non-empty mem ladder").0);
        let fitted = KernelModel::fit(&st.samples, f_core_ref, f_mem_ref, voltage);
        let model = match fitted {
            Ok(m) => m,
            Err(_) => {
                Self::fall_back(search, search_fallbacks, func, st, "fit_failed");
                return;
            }
        };
        telemetry::instant(
            "model",
            "fit",
            None,
            vec![
                ("func", func.name().into()),
                ("r2_time", model.diag.r2_time.into()),
                ("r2_power", model.diag.r2_power.into()),
                ("samples", (model.diag.samples as u64).into()),
            ],
        );
        if !model.diag.healthy(cfg.min_r2, cfg.max_fit_residual) {
            Self::fall_back(search, search_fallbacks, func, st, "fit_unhealthy");
            return;
        }
        let core: Vec<u32> = ladder.iter().map(|f| f.0).collect();
        let mem: Vec<u32> = mem_ladder.iter().map(|f| f.0).collect();
        let Some(p) = model.predict_optimum(&core, &mem) else {
            Self::fall_back(search, search_fallbacks, func, st, "empty_ladder");
            return;
        };
        telemetry::instant(
            "model",
            "predict",
            None,
            vec![
                ("func", func.name().into()),
                ("core_mhz", p.f_core_mhz.into()),
                ("mem_mhz", p.f_mem_mhz.into()),
                ("edp", p.edp.into()),
            ],
        );
        st.predicted = Some((MegaHertz(p.f_core_mhz), MegaHertz(p.f_mem_mhz)));
        st.phase = Phase::Verify;
        models.insert(func, model);
    }

    /// Hand a kernel to the inner search machine.
    fn fall_back(
        search: &mut OnlineTuner,
        search_fallbacks: &mut u64,
        func: FuncId,
        st: &mut KernelState,
        why: &'static str,
    ) {
        st.phase = Phase::Search;
        st.acc.clear();
        *search_fallbacks += 1;
        telemetry::counter_add("model.search_fallbacks", 1);
        telemetry::instant(
            "model",
            "fallback",
            None,
            vec![("func", func.name().into()), ("why", why.into())],
        );
        // Seed the search with the valid probe means so they aren't wasted.
        for s in &st.samples {
            search.record(
                func,
                MegaHertz(s.f_core_mhz.round() as u32),
                s.energy_j,
                s.time_s,
            );
        }
        let _ = search.propose(func);
    }

    /// True once `func` is pinned (by the model or by the search).
    pub fn is_pinned(&self, func: FuncId) -> bool {
        match self.kernels.get(&func) {
            Some(st) if st.phase == Phase::Pinned => true,
            Some(st) if st.phase == Phase::Search => self.search.is_pinned(func),
            _ => false,
        }
    }

    /// True when every kernel seen so far is pinned (and at least one was).
    pub fn all_pinned(&self) -> bool {
        !self.kernels.is_empty() && self.kernels.keys().all(|f| self.is_pinned(*f))
    }

    /// Learned core-clock table: pinned kernels only.
    pub fn table(&self) -> LearnedTable {
        let mut t = LearnedTable::new();
        for (func, st) in &self.kernels {
            match st.phase {
                Phase::Pinned => {
                    let (core, _) = st.predicted.expect("pinned has a point");
                    t.insert(*func, core);
                }
                Phase::Search => {
                    if let Some(f) = self.search.table().get(func) {
                        t.insert(*func, *f);
                    }
                }
                _ => {}
            }
        }
        t
    }

    /// Learned memory-clock table: pinned kernels only; search-owned
    /// kernels run at the default P-state.
    pub fn mem_table(&self) -> LearnedTable {
        let mut t = LearnedTable::new();
        for (func, st) in &self.kernels {
            match st.phase {
                Phase::Pinned => {
                    let (_, mem) = st.predicted.expect("pinned has a point");
                    t.insert(*func, mem);
                }
                Phase::Search if self.search.is_pinned(*func) => {
                    t.insert(*func, self.mem_default);
                }
                _ => {}
            }
        }
        t
    }

    /// Learned table over every kernel seen, unpinned kernels at max clock.
    pub fn table_with_fallback(&self) -> LearnedTable {
        let max = *self.ladder.last().expect("non-empty ladder");
        self.kernels
            .keys()
            .map(|f| (*f, *self.table().get(f).unwrap_or(&max)))
            .collect()
    }

    /// Fitted models, for persistence and `--print-model`.
    pub fn models(&self) -> &ModelTable {
        &self.models
    }

    /// Launches spent while not pinned, across kernels (probe + verify +
    /// any launches the search fallback spent).
    pub fn exploration_launches(&self) -> u64 {
        self.kernels
            .values()
            .map(|s| s.explore_launches)
            .sum::<u64>()
            + self.search.exploration_launches()
    }

    /// How many kernels abandoned the model path for the search.
    pub fn search_fallbacks(&self) -> u64 {
        self.search_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::GpuSpec;

    fn a100() -> GpuSpec {
        GpuSpec::a100_sxm4_80gb()
    }

    /// Synthetic measurement faithful to the analytic shape: additive
    /// roofline time plus CV²f power, with per-kernel compute share.
    fn measure(
        spec: &GpuSpec,
        t_comp: f64,
        t_mem: f64,
        core: MegaHertz,
        mem: MegaHertz,
    ) -> (f64, f64) {
        let fc = f64::from(core.0) / f64::from(spec.clock_table.max().0);
        let fm = f64::from(mem.0) / f64::from(spec.mem_clock.0);
        let t = t_mem / fm + t_comp / fc;
        let p = 80.0 + 150.0 * spec.voltage.dynamic_power_scale(core) + 40.0 * fm.powf(1.3);
        (p * t, t)
    }

    fn drive(
        tuner: &mut PredictiveTuner,
        spec: &GpuSpec,
        func: FuncId,
        t_comp: f64,
        t_mem: f64,
    ) -> u64 {
        for _ in 0..200 {
            if tuner.is_pinned(func) {
                break;
            }
            let (core, mem) = tuner.propose(func);
            let (e, t) = measure(spec, t_comp, t_mem, core, mem);
            tuner.record(func, core, mem, e, t);
        }
        tuner.exploration_launches()
    }

    #[test]
    fn jumps_to_the_optimum_in_a_handful_of_launches() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        // Memory-bound kernel: optimum near the window floor.
        let launches = drive(&mut tuner, &spec, FuncId::XMass, 0.004, 0.060);
        assert!(tuner.is_pinned(FuncId::XMass));
        let pinned = tuner.table()[&FuncId::XMass];
        assert!(pinned <= MegaHertz(1065), "pinned at {pinned}");
        // 4 probes + 1 verification, min_samples = 2 → 10 launches, far
        // below the search's typical dozens.
        assert!(launches <= 12, "spent {launches} launches");
        assert_eq!(tuner.search_fallbacks(), 0);
        assert!(tuner.models().contains_key(&FuncId::XMass));
    }

    #[test]
    fn compute_bound_kernel_pins_high() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        drive(&mut tuner, &spec, FuncId::MomentumEnergy, 0.080, 0.004);
        let pinned = tuner.table()[&FuncId::MomentumEnergy];
        assert!(pinned >= MegaHertz(1290), "pinned at {pinned}");
    }

    #[test]
    fn memory_axis_downclocks_memory_for_compute_bound_kernels() {
        let spec = a100();
        let cfg = PredictiveConfig {
            tune_memory: true,
            ..PredictiveConfig::default()
        };
        let mut tuner = PredictiveTuner::new(&spec, cfg).unwrap();
        drive(&mut tuner, &spec, FuncId::Gravity, 0.080, 0.001);
        assert!(tuner.is_pinned(FuncId::Gravity));
        let mem = tuner.mem_table()[&FuncId::Gravity];
        assert!(mem < spec.mem_clock, "mem pinned at {mem}");
        // And a memory-bound kernel keeps the top P-state.
        drive(&mut tuner, &spec, FuncId::XMass, 0.002, 0.080);
        assert_eq!(tuner.mem_table()[&FuncId::XMass], spec.mem_clock);
    }

    #[test]
    fn quarantined_probes_fall_back_to_the_search() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        let func = FuncId::FindNeighbors;
        // Feed glitched measurements until the guard quarantines the probe.
        for _ in 0..tuner.cfg.search.quarantine_after {
            let (core, mem) = tuner.propose(func);
            let out = tuner.record(func, core, mem, f64::NAN, 0.1);
            assert!(matches!(
                out,
                RecordOutcome::RejectedInvalid | RecordOutcome::Quarantined
            ));
        }
        assert_eq!(tuner.search_fallbacks(), 1);
        // The search now owns the kernel and converges on good samples.
        for _ in 0..200 {
            if tuner.is_pinned(func) {
                break;
            }
            let (core, mem) = tuner.propose(func);
            let (e, t) = measure(&spec, 0.03, 0.03, core, mem);
            tuner.record(func, core, mem, e, t);
        }
        assert!(tuner.is_pinned(func));
    }

    #[test]
    fn probe_outliers_are_rejected_not_fitted() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        let func = FuncId::XMass;
        // One clean sample anchors the kernel's probe evidence.
        let (core, mem) = tuner.propose(func);
        let (e, t) = measure(&spec, 0.002, 0.030, core, mem);
        assert_eq!(tuner.record(func, core, mem, e, t), RecordOutcome::Accepted);
        // A finite but absurd measurement (straggler-class inflation) must
        // be rejected by the probe guard, not averaged into the rung.
        let (core, mem) = tuner.propose(func);
        let out = tuner.record(func, core, mem, e * 50.0, t * 50.0);
        assert_eq!(out, RecordOutcome::RejectedInvalid);
        assert_eq!(tuner.search_fallbacks(), 0, "one outlier is not a fallback");
        // Clean samples resume as if the outlier never happened, and the
        // kernel still pins through the model path.
        drive(&mut tuner, &spec, func, 0.002, 0.030);
        assert!(tuner.is_pinned(func));
        assert_eq!(tuner.search_fallbacks(), 0);
    }

    #[test]
    fn unfittable_kernel_falls_back_to_the_search() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        let func = FuncId::Timestep;
        // Zig-zag response no roofline can express: time alternates with the
        // probe rung (deterministic per clock, so averaging keeps the shape).
        for _ in 0..200 {
            if tuner.is_pinned(func) || tuner.search_fallbacks() > 0 {
                break;
            }
            let (core, mem) = tuner.propose(func);
            let t = if (core.0 / 15) % 2 == 0 { 0.5 } else { 0.05 };
            tuner.record(func, core, mem, 100.0 * t, t);
        }
        assert_eq!(tuner.search_fallbacks(), 1, "bad fit must fall back");
    }

    #[test]
    fn drift_triggers_a_refit() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        let func = FuncId::AVSwitches;
        drive(&mut tuner, &spec, func, 0.040, 0.020);
        assert!(tuner.is_pinned(func));
        // The kernel's shape changes: pinned samples now read 2× slower.
        for _ in 0..tuner.cfg.drift_after {
            let (core, mem) = tuner.propose(func);
            let (e, t) = measure(&spec, 0.100, 0.040, core, mem);
            tuner.record(func, core, mem, e, t);
        }
        assert!(!tuner.is_pinned(func), "drift must reopen the search");
        assert!(!tuner.models().contains_key(&func));
        // It re-probes and re-pins on the new shape.
        drive(&mut tuner, &spec, func, 0.100, 0.040);
        assert!(tuner.is_pinned(func));
        assert!(tuner.models().contains_key(&func));
    }

    #[test]
    fn warm_start_from_models_skips_probing() {
        let spec = a100();
        let mut cold = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        drive(&mut cold, &spec, FuncId::XMass, 0.004, 0.060);
        let models = cold.models().clone();
        let cold_table = cold.table();

        let mut warm = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        warm.warm_start_models(&models);
        assert!(warm.is_pinned(FuncId::XMass));
        assert_eq!(warm.exploration_launches(), 0);
        assert_eq!(warm.table(), cold_table);
    }

    #[test]
    fn ceiling_caps_the_prediction() {
        let spec = a100();
        let mut tuner = PredictiveTuner::new(&spec, PredictiveConfig::default()).unwrap();
        tuner.set_ceiling(MegaHertz(1200));
        drive(&mut tuner, &spec, FuncId::MomentumEnergy, 0.080, 0.004);
        let pinned = tuner.table()[&FuncId::MomentumEnergy];
        assert!(pinned <= MegaHertz(1200), "pinned at {pinned}");
    }
}
