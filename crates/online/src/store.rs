//! Learned-table persistence.
//!
//! A `TableStore` is a directory of JSON files, one per `(GPU, workload)`
//! pair, each holding the per-kernel frequency table a previous run learned.
//! A later run on the same hardware and workload loads the table and
//! warm-starts: the tuner pins every kernel up front and spends zero
//! launches exploring.
//!
//! File layout: `<root>/<gpu>__<workload>.json` (names sanitised to
//! filesystem-safe characters), containing a [`StoredTable`] with the
//! identity key repeated inside the file so a store survives renames and
//! can be audited with a pager.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::controller::LearnedTable;
use crate::error::OnlineError;
use crate::predictive::ModelTable;

/// Fitted per-kernel models as persisted: keyed by kernel name so the JSON
/// stays greppable and survives enum reordering.
pub type StoredModels = BTreeMap<String, model::KernelModel>;

/// One persisted table, self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTable {
    /// GPU spec name the table was learned on (e.g. `A100-PCIE-40GB`).
    pub gpu: String,
    /// Workload name (e.g. `turbulence-8`).
    pub workload: String,
    /// Learned per-kernel clocks.
    pub table: LearnedTable,
    /// Monotonic publish version for this `(gpu, workload)` slot. Each save
    /// through [`TableStore::save`] (or an explicit
    /// [`TableStore::save_versioned`]) moves it forward, so an in-process
    /// table server can evict an entry and later reload it from disk without
    /// ever handing out a version that goes backwards. Absent in pre-version
    /// files, which read back as version 0.
    #[serde(default)]
    pub version: u64,
    /// Fitted analytic models (predictive policy), keyed by kernel name.
    /// Absent in pre-predictive files — those read back empty, and a
    /// predictive warm start then runs its probe phase. Omitted from the
    /// JSON when empty so search-only stores keep their old shape.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub models: StoredModels,
}

impl StoredTable {
    /// The stored models re-keyed by [`sph::FuncId`], dropping entries whose
    /// kernel name no longer exists (e.g. a table from a newer build).
    pub fn model_table(&self) -> ModelTable {
        self.models
            .iter()
            .filter_map(|(name, m)| sph::FuncId::from_name(name).map(|f| (f, m.clone())))
            .collect()
    }
}

/// Re-key a [`ModelTable`] by kernel name for persistence.
pub fn models_by_name(models: &ModelTable) -> StoredModels {
    models
        .iter()
        .map(|(f, m)| (f.name().to_string(), m.clone()))
        .collect()
}

/// Directory-backed store of learned frequency tables.
///
/// Clones share a save lock, so concurrent [`TableStore::save`] calls from
/// one process serialize their read-bump-write and the persisted version
/// stays monotone per slot. Writers in *other* processes are only protected
/// by the atomic rename (no torn entries), not by the version bump.
#[derive(Debug, Clone)]
pub struct TableStore {
    root: PathBuf,
    save_lock: Arc<Mutex<()>>,
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl TableStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, OnlineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(TableStore {
            root,
            save_lock: Arc::new(Mutex::new(())),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, gpu: &str, workload: &str) -> PathBuf {
        self.root
            .join(format!("{}__{}.json", sanitize(gpu), sanitize(workload)))
    }

    /// Load the table learned for `(gpu, workload)`, if one is stored.
    pub fn load(&self, gpu: &str, workload: &str) -> Result<Option<LearnedTable>, OnlineError> {
        Ok(self.load_stored(gpu, workload)?.map(|s| s.table))
    }

    /// Load the full self-describing entry for `(gpu, workload)`, including
    /// its persisted version.
    pub fn load_stored(
        &self,
        gpu: &str,
        workload: &str,
    ) -> Result<Option<StoredTable>, OnlineError> {
        let path = self.file_for(gpu, workload);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let stored: StoredTable =
            serde_json::from_str(&text).map_err(|e| OnlineError::Corrupt {
                path: path.clone(),
                detail: e.to_string(),
            })?;
        Ok(Some(stored))
    }

    /// Load the table for `(gpu, workload)`, degrading gracefully.
    ///
    /// Unlike [`TableStore::load`] — which reports a corrupt file as a hard
    /// [`OnlineError::Corrupt`] so audits can catch it — this variant treats
    /// any unreadable entry as "no warm start available": it logs a warning,
    /// moves the offending file aside to `<name>.json.corrupt` so the bad
    /// bytes survive for inspection (and so the next `save` rebuilds a clean
    /// entry), and returns `None`. Production runs use this path: a truncated
    /// or hand-mangled store must cost one cold-start exploration, never a
    /// crash.
    pub fn load_or_rebuild(&self, gpu: &str, workload: &str) -> Option<LearnedTable> {
        self.load_or_rebuild_stored(gpu, workload).map(|s| s.table)
    }

    /// [`TableStore::load_or_rebuild`], but returning the full entry with
    /// its persisted version — what an in-process table server caches.
    pub fn load_or_rebuild_stored(&self, gpu: &str, workload: &str) -> Option<StoredTable> {
        match self.load_stored(gpu, workload) {
            Ok(found) => found,
            Err(OnlineError::Corrupt { path, detail }) => {
                let aside = path.with_extension("json.corrupt");
                let moved = fs::rename(&path, &aside).is_ok();
                eprintln!(
                    "warning: learned-table store entry {} is corrupt ({detail}); \
                     {} and rebuilding from a cold start",
                    path.display(),
                    if moved {
                        format!("moved aside to {}", aside.display())
                    } else {
                        "leaving it in place".to_string()
                    }
                );
                None
            }
            Err(e) => {
                eprintln!(
                    "warning: learned-table store unreadable for ({gpu}, {workload}): {e}; \
                     rebuilding from a cold start"
                );
                None
            }
        }
    }

    /// Persist `table` for `(gpu, workload)`, replacing any previous entry.
    ///
    /// The entry's version advances past whatever is currently on disk
    /// (corrupt or missing entries restart from version 1). Returns the
    /// version that was written.
    pub fn save(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
    ) -> Result<u64, OnlineError> {
        self.save_bumping(gpu, workload, table, None)
    }

    /// [`TableStore::save`], also persisting the fitted per-kernel models so
    /// a later predictive run warm-starts without even a probe phase.
    pub fn save_with_models(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
        models: &ModelTable,
    ) -> Result<u64, OnlineError> {
        self.save_bumping(gpu, workload, table, Some(models_by_name(models)))
    }

    /// Read-bump-write under the save lock. `models: None` keeps whatever
    /// models the slot already holds (a search-only save must not discard a
    /// previous predictive run's coefficients).
    fn save_bumping(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
        models: Option<StoredModels>,
    ) -> Result<u64, OnlineError> {
        let _bump = self.save_lock.lock().unwrap_or_else(|e| e.into_inner());
        let (prior, kept) = match self.load_stored(gpu, workload) {
            Ok(Some(stored)) => (stored.version, stored.models),
            Ok(None) | Err(OnlineError::Corrupt { .. }) => (0, StoredModels::new()),
            Err(e) => return Err(e),
        };
        let version = prior + 1;
        self.save_versioned_with_models(gpu, workload, table, &models.unwrap_or(kept), version)?;
        Ok(version)
    }

    /// Persist `table` for `(gpu, workload)` at an explicit `version`.
    ///
    /// The write is atomic: the entry is staged to a uniquely named
    /// `*.json.tmp.<pid>.<seq>` file in the same directory and renamed over
    /// the destination, so a concurrent reader sees either the old complete
    /// entry or the new complete entry — never a torn half-write — and a
    /// crash mid-save leaves the previous entry intact.
    pub fn save_versioned(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
        version: u64,
    ) -> Result<(), OnlineError> {
        self.save_versioned_with_models(gpu, workload, table, &StoredModels::new(), version)
    }

    /// [`TableStore::save_versioned`] carrying fitted models (possibly none).
    pub fn save_versioned_with_models(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
        models: &StoredModels,
        version: u64,
    ) -> Result<(), OnlineError> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let stored = StoredTable {
            gpu: gpu.to_string(),
            workload: workload.to_string(),
            table: table.clone(),
            version,
            models: models.clone(),
        };
        let text = serde_json::to_string_pretty(&stored)
            .map_err(|e| OnlineError::InvalidConfig(e.to_string()))?;
        let dest = self.file_for(gpu, workload);
        let tmp = dest.with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, text)?;
        if let Err(e) = fs::rename(&tmp, &dest) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Every table in the store, in directory order.
    pub fn list(&self) -> Result<Vec<StoredTable>, OnlineError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            let stored: StoredTable =
                serde_json::from_str(&text).map_err(|e| OnlineError::Corrupt {
                    path: path.clone(),
                    detail: e.to_string(),
                })?;
            out.push(stored);
        }
        out.sort_by(|a, b| (&a.gpu, &a.workload).cmp(&(&b.gpu, &b.workload)));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;
    use sph::FuncId;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("online-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table() -> LearnedTable {
        let mut t = LearnedTable::new();
        t.insert(FuncId::XMass, MegaHertz(1050));
        t.insert(FuncId::MomentumEnergy, MegaHertz(1410));
        t
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(store.load("A100", "turbulence-8").unwrap(), None);
        let table = sample_table();
        store.save("A100", "turbulence-8", &table).unwrap();
        assert_eq!(store.load("A100", "turbulence-8").unwrap(), Some(table));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_isolated_and_sanitized() {
        let dir = tmpdir("keys");
        let store = TableStore::open(&dir).unwrap();
        let table = sample_table();
        store.save("A100/SXM4 80GB", "sedov n=50", &table).unwrap();
        assert_eq!(store.load("A100", "sedov n=50").unwrap(), None);
        assert_eq!(
            store.load("A100/SXM4 80GB", "sedov n=50").unwrap(),
            Some(table.clone())
        );
        let all = store.list().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].gpu, "A100/SXM4 80GB", "identity survives sanitising");
        assert_eq!(all[0].table, table);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_reported_not_swallowed() {
        let dir = tmpdir("corrupt");
        let store = TableStore::open(&dir).unwrap();
        fs::write(dir.join("A100__turb.json"), "{not json").unwrap();
        match store.load("A100", "turb") {
            Err(OnlineError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_rebuild_recovers_from_corruption() {
        let dir = tmpdir("rebuild");
        let store = TableStore::open(&dir).unwrap();
        fs::write(dir.join("A100__turb.json"), "{not json").unwrap();
        assert_eq!(
            store.load_or_rebuild("A100", "turb"),
            None,
            "corrupt entry degrades to a cold start"
        );
        assert!(
            !dir.join("A100__turb.json").exists(),
            "corrupt file is moved aside"
        );
        assert!(
            dir.join("A100__turb.json.corrupt").exists(),
            "bad bytes are preserved for inspection"
        );
        // The slot now rebuilds cleanly.
        let table = sample_table();
        store.save("A100", "turb", &table).unwrap();
        assert_eq!(store.load_or_rebuild("A100", "turb"), Some(table));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_rebuild_handles_truncated_and_missing_files() {
        let dir = tmpdir("truncated");
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(store.load_or_rebuild("A100", "evrard"), None, "missing");
        // Simulate a write cut short mid-file (e.g. node OOM during save).
        let full = serde_json::to_string(&StoredTable {
            gpu: "A100".into(),
            workload: "evrard".into(),
            table: sample_table(),
            version: 1,
            models: StoredModels::new(),
        })
        .unwrap();
        fs::write(dir.join("A100__evrard.json"), &full[..full.len() / 2]).unwrap();
        assert_eq!(
            store.load_or_rebuild("A100", "evrard"),
            None,
            "truncated entry degrades to a cold start"
        );
        assert!(dir.join("A100__evrard.json.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    fn sample_models() -> ModelTable {
        let samples = [
            (1005.0, 0.090),
            (1140.0, 0.082),
            (1275.0, 0.076),
            (1410.0, 0.071),
        ]
        .map(|(f, t)| model::Sample {
            f_core_mhz: f,
            f_mem_mhz: 1593.0,
            time_s: t,
            energy_j: t * (80.0 + 0.1 * f),
        });
        let voltage = model::VoltageParams {
            v_min: 0.70,
            v_max: 1.05,
            f_min_mhz: 210.0,
            f_max_mhz: 1410.0,
        };
        let m = model::KernelModel::fit(&samples, 1410.0, 1593.0, voltage).unwrap();
        let mut t = ModelTable::new();
        t.insert(FuncId::XMass, m);
        t
    }

    /// Satellite: a PR-6-era store file — no `models` key at all — must
    /// load cleanly with empty models, so the predictive warm start falls
    /// through to its probe phase instead of crashing on the old schema.
    #[test]
    fn pre_model_schema_loads_with_empty_models() {
        let dir = tmpdir("oldschema");
        let store = TableStore::open(&dir).unwrap();
        // Byte-for-byte the shape `save` produced before models existed
        // (and before that, without `version` either).
        fs::write(
            dir.join("A100__turb.json"),
            r#"{"gpu":"A100","workload":"turb","table":{"XMass":1050},"version":3}"#,
        )
        .unwrap();
        fs::write(
            dir.join("A100__sedov.json"),
            r#"{"gpu":"A100","workload":"sedov","table":{"Gravity":1410}}"#,
        )
        .unwrap();
        let turb = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(turb.version, 3);
        assert!(turb.models.is_empty());
        assert!(turb.model_table().is_empty());
        let sedov = store.load_stored("A100", "sedov").unwrap().unwrap();
        assert_eq!(sedov.version, 0, "pre-version files read as version 0");
        assert!(sedov.models.is_empty());
        // And a plain re-save of the old-format slot keeps models empty.
        store.save("A100", "turb", &sample_table()).unwrap();
        let resaved = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(resaved.version, 4);
        assert!(resaved.models.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite: the new format — coefficients included — round-trips
    /// save/load bit-exactly.
    #[test]
    fn model_schema_round_trips_bit_exactly() {
        let dir = tmpdir("modelschema");
        let store = TableStore::open(&dir).unwrap();
        let table = sample_table();
        let models = sample_models();
        store
            .save_with_models("A100", "turb", &table, &models)
            .unwrap();
        let first = fs::read(dir.join("A100__turb.json")).unwrap();
        let stored = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(stored.table, table);
        assert_eq!(stored.model_table(), models);
        // Re-saving the loaded entry reproduces the same bytes (version
        // pinned so the bump doesn't differ).
        store
            .save_versioned_with_models("A100", "turb", &stored.table, &stored.models, 1)
            .unwrap();
        let second = fs::read(dir.join("A100__turb.json")).unwrap();
        assert_eq!(first, second, "save/load is bit-exact");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A search-only save must not discard a previous predictive run's
    /// fitted coefficients for the same slot.
    #[test]
    fn plain_save_preserves_stored_models() {
        let dir = tmpdir("preserve");
        let store = TableStore::open(&dir).unwrap();
        store
            .save_with_models("A100", "turb", &sample_table(), &sample_models())
            .unwrap();
        store.save("A100", "turb", &sample_table()).unwrap();
        let stored = store.load_stored("A100", "turb").unwrap().unwrap();
        assert_eq!(stored.version, 2);
        assert_eq!(stored.model_table(), sample_models());
        let _ = fs::remove_dir_all(&dir);
    }
}
