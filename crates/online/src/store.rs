//! Learned-table persistence.
//!
//! A `TableStore` is a directory of JSON files, one per `(GPU, workload)`
//! pair, each holding the per-kernel frequency table a previous run learned.
//! A later run on the same hardware and workload loads the table and
//! warm-starts: the tuner pins every kernel up front and spends zero
//! launches exploring.
//!
//! File layout: `<root>/<gpu>__<workload>.json` (names sanitised to
//! filesystem-safe characters), containing a [`StoredTable`] with the
//! identity key repeated inside the file so a store survives renames and
//! can be audited with a pager.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::controller::LearnedTable;
use crate::error::OnlineError;

/// One persisted table, self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTable {
    /// GPU spec name the table was learned on (e.g. `A100-PCIE-40GB`).
    pub gpu: String,
    /// Workload name (e.g. `turbulence-8`).
    pub workload: String,
    /// Learned per-kernel clocks.
    pub table: LearnedTable,
    /// Monotonic publish version for this `(gpu, workload)` slot. Each save
    /// through [`TableStore::save`] (or an explicit
    /// [`TableStore::save_versioned`]) moves it forward, so an in-process
    /// table server can evict an entry and later reload it from disk without
    /// ever handing out a version that goes backwards. Absent in pre-version
    /// files, which read back as version 0.
    #[serde(default)]
    pub version: u64,
}

/// Directory-backed store of learned frequency tables.
///
/// Clones share a save lock, so concurrent [`TableStore::save`] calls from
/// one process serialize their read-bump-write and the persisted version
/// stays monotone per slot. Writers in *other* processes are only protected
/// by the atomic rename (no torn entries), not by the version bump.
#[derive(Debug, Clone)]
pub struct TableStore {
    root: PathBuf,
    save_lock: Arc<Mutex<()>>,
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl TableStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, OnlineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(TableStore {
            root,
            save_lock: Arc::new(Mutex::new(())),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, gpu: &str, workload: &str) -> PathBuf {
        self.root
            .join(format!("{}__{}.json", sanitize(gpu), sanitize(workload)))
    }

    /// Load the table learned for `(gpu, workload)`, if one is stored.
    pub fn load(&self, gpu: &str, workload: &str) -> Result<Option<LearnedTable>, OnlineError> {
        Ok(self.load_stored(gpu, workload)?.map(|s| s.table))
    }

    /// Load the full self-describing entry for `(gpu, workload)`, including
    /// its persisted version.
    pub fn load_stored(
        &self,
        gpu: &str,
        workload: &str,
    ) -> Result<Option<StoredTable>, OnlineError> {
        let path = self.file_for(gpu, workload);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let stored: StoredTable =
            serde_json::from_str(&text).map_err(|e| OnlineError::Corrupt {
                path: path.clone(),
                detail: e.to_string(),
            })?;
        Ok(Some(stored))
    }

    /// Load the table for `(gpu, workload)`, degrading gracefully.
    ///
    /// Unlike [`TableStore::load`] — which reports a corrupt file as a hard
    /// [`OnlineError::Corrupt`] so audits can catch it — this variant treats
    /// any unreadable entry as "no warm start available": it logs a warning,
    /// moves the offending file aside to `<name>.json.corrupt` so the bad
    /// bytes survive for inspection (and so the next `save` rebuilds a clean
    /// entry), and returns `None`. Production runs use this path: a truncated
    /// or hand-mangled store must cost one cold-start exploration, never a
    /// crash.
    pub fn load_or_rebuild(&self, gpu: &str, workload: &str) -> Option<LearnedTable> {
        self.load_or_rebuild_stored(gpu, workload).map(|s| s.table)
    }

    /// [`TableStore::load_or_rebuild`], but returning the full entry with
    /// its persisted version — what an in-process table server caches.
    pub fn load_or_rebuild_stored(&self, gpu: &str, workload: &str) -> Option<StoredTable> {
        match self.load_stored(gpu, workload) {
            Ok(found) => found,
            Err(OnlineError::Corrupt { path, detail }) => {
                let aside = path.with_extension("json.corrupt");
                let moved = fs::rename(&path, &aside).is_ok();
                eprintln!(
                    "warning: learned-table store entry {} is corrupt ({detail}); \
                     {} and rebuilding from a cold start",
                    path.display(),
                    if moved {
                        format!("moved aside to {}", aside.display())
                    } else {
                        "leaving it in place".to_string()
                    }
                );
                None
            }
            Err(e) => {
                eprintln!(
                    "warning: learned-table store unreadable for ({gpu}, {workload}): {e}; \
                     rebuilding from a cold start"
                );
                None
            }
        }
    }

    /// Persist `table` for `(gpu, workload)`, replacing any previous entry.
    ///
    /// The entry's version advances past whatever is currently on disk
    /// (corrupt or missing entries restart from version 1). Returns the
    /// version that was written.
    pub fn save(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
    ) -> Result<u64, OnlineError> {
        let _bump = self.save_lock.lock().unwrap_or_else(|e| e.into_inner());
        let prior = match self.load_stored(gpu, workload) {
            Ok(Some(stored)) => stored.version,
            Ok(None) | Err(OnlineError::Corrupt { .. }) => 0,
            Err(e) => return Err(e),
        };
        let version = prior + 1;
        self.save_versioned(gpu, workload, table, version)?;
        Ok(version)
    }

    /// Persist `table` for `(gpu, workload)` at an explicit `version`.
    ///
    /// The write is atomic: the entry is staged to a uniquely named
    /// `*.json.tmp.<pid>.<seq>` file in the same directory and renamed over
    /// the destination, so a concurrent reader sees either the old complete
    /// entry or the new complete entry — never a torn half-write — and a
    /// crash mid-save leaves the previous entry intact.
    pub fn save_versioned(
        &self,
        gpu: &str,
        workload: &str,
        table: &LearnedTable,
        version: u64,
    ) -> Result<(), OnlineError> {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let stored = StoredTable {
            gpu: gpu.to_string(),
            workload: workload.to_string(),
            table: table.clone(),
            version,
        };
        let text = serde_json::to_string_pretty(&stored)
            .map_err(|e| OnlineError::InvalidConfig(e.to_string()))?;
        let dest = self.file_for(gpu, workload);
        let tmp = dest.with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::write(&tmp, text)?;
        if let Err(e) = fs::rename(&tmp, &dest) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Every table in the store, in directory order.
    pub fn list(&self) -> Result<Vec<StoredTable>, OnlineError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            let stored: StoredTable =
                serde_json::from_str(&text).map_err(|e| OnlineError::Corrupt {
                    path: path.clone(),
                    detail: e.to_string(),
                })?;
            out.push(stored);
        }
        out.sort_by(|a, b| (&a.gpu, &a.workload).cmp(&(&b.gpu, &b.workload)));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::MegaHertz;
    use sph::FuncId;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("online-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table() -> LearnedTable {
        let mut t = LearnedTable::new();
        t.insert(FuncId::XMass, MegaHertz(1050));
        t.insert(FuncId::MomentumEnergy, MegaHertz(1410));
        t
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(store.load("A100", "turbulence-8").unwrap(), None);
        let table = sample_table();
        store.save("A100", "turbulence-8", &table).unwrap();
        assert_eq!(store.load("A100", "turbulence-8").unwrap(), Some(table));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_isolated_and_sanitized() {
        let dir = tmpdir("keys");
        let store = TableStore::open(&dir).unwrap();
        let table = sample_table();
        store.save("A100/SXM4 80GB", "sedov n=50", &table).unwrap();
        assert_eq!(store.load("A100", "sedov n=50").unwrap(), None);
        assert_eq!(
            store.load("A100/SXM4 80GB", "sedov n=50").unwrap(),
            Some(table.clone())
        );
        let all = store.list().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].gpu, "A100/SXM4 80GB", "identity survives sanitising");
        assert_eq!(all[0].table, table);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_reported_not_swallowed() {
        let dir = tmpdir("corrupt");
        let store = TableStore::open(&dir).unwrap();
        fs::write(dir.join("A100__turb.json"), "{not json").unwrap();
        match store.load("A100", "turb") {
            Err(OnlineError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_rebuild_recovers_from_corruption() {
        let dir = tmpdir("rebuild");
        let store = TableStore::open(&dir).unwrap();
        fs::write(dir.join("A100__turb.json"), "{not json").unwrap();
        assert_eq!(
            store.load_or_rebuild("A100", "turb"),
            None,
            "corrupt entry degrades to a cold start"
        );
        assert!(
            !dir.join("A100__turb.json").exists(),
            "corrupt file is moved aside"
        );
        assert!(
            dir.join("A100__turb.json.corrupt").exists(),
            "bad bytes are preserved for inspection"
        );
        // The slot now rebuilds cleanly.
        let table = sample_table();
        store.save("A100", "turb", &table).unwrap();
        assert_eq!(store.load_or_rebuild("A100", "turb"), Some(table));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_or_rebuild_handles_truncated_and_missing_files() {
        let dir = tmpdir("truncated");
        let store = TableStore::open(&dir).unwrap();
        assert_eq!(store.load_or_rebuild("A100", "evrard"), None, "missing");
        // Simulate a write cut short mid-file (e.g. node OOM during save).
        let full = serde_json::to_string(&StoredTable {
            gpu: "A100".into(),
            workload: "evrard".into(),
            table: sample_table(),
            version: 1,
        })
        .unwrap();
        fs::write(dir.join("A100__evrard.json"), &full[..full.len() / 2]).unwrap();
        assert_eq!(
            store.load_or_rebuild("A100", "evrard"),
            None,
            "truncated entry degrades to a cold start"
        );
        assert!(dir.join("A100__evrard.json.corrupt").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
