//! Concurrent `TableStore` access: N threads hammering save/load on
//! overlapping keys must never observe a torn entry, per-key versions must
//! be monotone, and `load_or_rebuild` must cold-start past corruption even
//! while writers race it. These properties are what make the store safe as
//! the write-behind target of the in-process table server.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use archsim::MegaHertz;
use online::{LearnedTable, OnlineError, TableStore};
use sph::FuncId;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("online-store-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A self-consistent table: every kernel pinned to the same clock, so a mix
/// of two writers' payloads is detectable.
fn uniform_table(mhz: u32) -> LearnedTable {
    let mut t = LearnedTable::new();
    for f in [
        FuncId::XMass,
        FuncId::MomentumEnergy,
        FuncId::FindNeighbors,
        FuncId::Timestep,
    ] {
        t.insert(f, MegaHertz(mhz));
    }
    t
}

fn assert_uniform(t: &LearnedTable) -> u32 {
    let mut values = t.values().map(|m| m.0);
    let first = values.next().expect("table non-empty");
    assert!(
        values.all(|v| v == first),
        "torn read: table mixes writers' payloads: {t:?}"
    );
    first
}

#[test]
fn concurrent_save_load_no_torn_reads() {
    let dir = tmpdir("torn");
    let store = TableStore::open(&dir).unwrap();
    let keys = ["turb-a", "turb-b", "evrard-c"];
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // 4 writers cycling over the shared keys with distinct payloads.
        for w in 0..4u32 {
            let store = store.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let key = keys[(i as usize + w as usize) % keys.len()];
                    store
                        .save("A100", key, &uniform_table(1000 + w))
                        .expect("save never fails under contention");
                    i += 1;
                }
            });
        }
        // 4 readers: every successful load parses and is self-consistent.
        for r in 0..4usize {
            let store = store.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut seen = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let key = keys[(seen as usize + r) % keys.len()];
                    match store.load("A100", key) {
                        Ok(Some(t)) => {
                            let v = assert_uniform(&t);
                            assert!((1000..1004).contains(&v), "unexpected payload {v}");
                        }
                        Ok(None) => {}
                        Err(OnlineError::Corrupt { path, detail }) => {
                            panic!("torn read at {}: {detail}", path.display())
                        }
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                    seen += 1;
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    // No stray staging files left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "staging files leaked: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_saves_keep_versions_monotone() {
    let dir = tmpdir("versions");
    let store = TableStore::open(&dir).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for w in 0..3u32 {
            let store = store.clone();
            let stop = stop.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store
                        .save("A100", "hot-key", &uniform_table(1100 + w))
                        .unwrap();
                }
            });
        }
        // One observer: the persisted version must never go backwards.
        let store_obs = store.clone();
        let stop_obs = stop.clone();
        let observer = s.spawn(move || {
            let mut last = 0u64;
            let mut observations = 0u32;
            while !stop_obs.load(Ordering::Relaxed) {
                if let Ok(Some(stored)) = store_obs.load_stored("A100", "hot-key") {
                    assert!(
                        stored.version >= last,
                        "version went backwards: {} after {last}",
                        stored.version
                    );
                    last = stored.version;
                    observations += 1;
                }
            }
            (last, observations)
        });
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        let (last, observations) = observer.join().unwrap();
        assert!(observations > 0, "observer never saw an entry");
        assert!(last >= 1, "at least one versioned save landed");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_or_rebuild_cold_starts_past_corruption_under_contention() {
    let dir = tmpdir("corrupt");
    let store = TableStore::open(&dir).unwrap();
    // Seed a corrupt entry where the store expects JSON.
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("A100__wrecked.json"), "{torn mid-write").unwrap();

    std::thread::scope(|s| {
        // Several threads race load_or_rebuild on the corrupt key while
        // writers hammer a *different* key in the same directory.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                s.spawn(move || store.load_or_rebuild("A100", "wrecked"))
            })
            .collect();
        for w in 0..2u32 {
            let store = store.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    store
                        .save("A100", "healthy", &uniform_table(1300 + w))
                        .unwrap();
                }
            });
        }
        for h in handles {
            assert_eq!(
                h.join().unwrap(),
                None,
                "corrupt entry degrades to a cold start, never a crash"
            );
        }
    });
    assert!(
        !dir.join("A100__wrecked.json").exists(),
        "corrupt file moved aside"
    );
    // The slot rebuilds cleanly afterwards.
    store.save("A100", "wrecked", &uniform_table(1500)).unwrap();
    assert_eq!(
        store.load_or_rebuild("A100", "wrecked"),
        Some(uniform_table(1500))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
