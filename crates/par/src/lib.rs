//! # par — a dependency-free data-parallel execution layer
//!
//! The paper's offline sweet-spot search multiplies kernels × clocks ×
//! workloads, and the SPH per-particle loops dominate every step; both are
//! embarrassingly parallel. This crate provides the rayon-style primitives
//! the rest of the workspace builds on — [`par_map`] (an order-preserving
//! indexed map) and [`par_chunks_mut`] (disjoint in-place chunks) — on plain
//! `std::thread::scope`, so the workspace needs no external runtime.
//!
//! ## Determinism contract
//!
//! Every primitive is *bit-identical to its serial equivalent* regardless of
//! thread count:
//!
//! * [`par_map`] computes `f(i)` independently per index and writes each
//!   result into slot `i`. The accumulation order *within* one index is
//!   whatever `f` does — identical to the serial loop — and no cross-index
//!   reduction exists, so chunk boundaries cannot affect results.
//! * [`par_chunks_mut`] hands each worker a disjoint sub-slice; element `i`
//!   is only ever touched by the worker owning its chunk.
//!
//! Callers that need a parallel *reduction* must instead map into per-index
//! slots and fold serially (gather, not scatter) — that is the pattern the
//! SPH kernels use, and it is what keeps 1-thread and N-thread runs equal
//! to the last bit.
//!
//! ## Thread-count control
//!
//! Priority order: [`set_max_threads`] override (used by the determinism
//! tests and `--jobs` CLI flags) → the `RAYON_NUM_THREADS` environment
//! variable → `std::thread::available_parallelism()`. With the `parallel`
//! feature disabled everything runs inline on the calling thread.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// How many chunks each worker should expect to claim. More chunks per
/// thread smooths load imbalance (neighbor counts vary across particles) at
/// the cost of a little counter traffic.
const CHUNKS_PER_THREAD: usize = 8;

/// Override the worker count for every subsequent parallel call in this
/// process. `0` clears the override. Safe to call from any thread; the
/// results of parallel calls do not depend on the value (see the
/// determinism contract), only their speed does.
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count parallel calls will use: the [`set_max_threads`]
/// override, else `RAYON_NUM_THREADS`, else the machine's available
/// parallelism. Always 1 with the `parallel` feature disabled.
pub fn max_threads() -> usize {
    if !cfg!(feature = "parallel") {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Raw output cursor shared by the workers of one `par_map` call. Workers
/// write disjoint index sets, so sharing the base pointer is sound.
struct OutPtr<T>(*mut MaybeUninit<T>);
unsafe impl<T: Send> Sync for OutPtr<T> {}

/// Order-preserving parallel indexed map: returns `vec![f(0), .., f(n-1)]`.
///
/// Work is distributed in fixed-size chunks claimed from an atomic cursor,
/// so threads stay busy even when per-index cost varies. Falls back to a
/// plain serial loop for tiny inputs, one worker, or a serial build.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_threads(max_threads(), n, f)
}

/// [`par_map`] with an explicit worker count (e.g. a `--jobs N` flag).
pub fn par_map_threads<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if !cfg!(feature = "parallel") || threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = (n / (threads * CHUNKS_PER_THREAD)).max(1);
    let mut out: Vec<MaybeUninit<T>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
    let next = AtomicUsize::new(0);
    let base = OutPtr(out.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (next, f, base) = (&next, &f, &base);
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: the cursor hands each index range to exactly
                    // one worker, and `out` outlives the scope, so slot `i`
                    // is written once with no aliasing.
                    unsafe { base.0.add(i).write(MaybeUninit::new(f(i))) };
                }
            });
        }
    });
    // SAFETY: the cursor covered 0..n and the scope joined every worker, so
    // all n slots are initialized; re-owning the buffer as Vec<T> is the
    // standard MaybeUninit -> init conversion.
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), n, out.capacity()) }
}

/// Fill the rows of a CSR buffer in parallel: `f(r, row)` receives row `r`'s
/// slice `out[offsets[r]..offsets[r + 1]]`, each row visited exactly once.
///
/// This is the write half of a two-pass CSR build (count rows, prefix-sum,
/// fill): rows are disjoint sub-slices of one allocation, so they can be
/// filled concurrently without chunk boundaries ever splitting a row. Like
/// [`par_map`], results are position-addressed and therefore bit-identical
/// at any thread count. Rows are claimed in fixed-size chunks from an atomic
/// cursor so uneven row lengths (neighbor counts vary) stay load-balanced.
///
/// Panics if `offsets` is not monotonically non-decreasing starting at 0, or
/// if `out` is shorter than the last offset.
pub fn par_fill_rows<T, F>(offsets: &[usize], out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let nrows = offsets.len().saturating_sub(1);
    assert_eq!(
        offsets.first().copied().unwrap_or(0),
        0,
        "offsets must start at 0"
    );
    for w in offsets.windows(2) {
        assert!(w[0] <= w[1], "offsets must be non-decreasing");
    }
    assert!(
        offsets.last().copied().unwrap_or(0) <= out.len(),
        "out buffer shorter than the CSR extent"
    );
    let threads = max_threads().min(nrows.max(1));
    if !cfg!(feature = "parallel") || threads <= 1 || nrows <= 1 {
        for r in 0..nrows {
            f(r, &mut out[offsets[r]..offsets[r + 1]]);
        }
        return;
    }
    let chunk = (nrows / (threads * CHUNKS_PER_THREAD)).max(1);
    let next = AtomicUsize::new(0);
    let base = OutPtr(out.as_mut_ptr().cast::<MaybeUninit<T>>());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (next, f, base, offsets) = (&next, &f, &base, offsets);
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= nrows {
                    break;
                }
                let end = (start + chunk).min(nrows);
                for r in start..end {
                    // SAFETY: the cursor hands each row index to exactly one
                    // worker, offsets are monotone so rows are disjoint
                    // sub-slices of `out`, and `out` outlives the scope. The
                    // elements are already initialized `T`s (we only lend
                    // them out as `&mut [T]`).
                    let row = unsafe {
                        std::slice::from_raw_parts_mut(
                            base.0.add(offsets[r]).cast::<T>(),
                            offsets[r + 1] - offsets[r],
                        )
                    };
                    f(r, row);
                }
            });
        }
    });
}

/// Run `f(i, &mut data[i])` for every element, each index claimed by
/// exactly one worker. Like [`par_map`], but in place over caller-owned
/// slots — the pattern for heavyweight per-chunk scratch (e.g. the neighbor
/// list's build buffers) that must be reused across calls rather than
/// returned. Elements are claimed one at a time: each is expected to carry
/// many rows of work, so cursor traffic is negligible and single-element
/// claims give the best load balance.
pub fn par_for_each_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = data.len();
    let threads = max_threads().min(n.max(1));
    if !cfg!(feature = "parallel") || threads <= 1 || n <= 1 {
        for (i, v) in data.iter_mut().enumerate() {
            f(i, v);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let base = OutPtr(data.as_mut_ptr().cast::<MaybeUninit<T>>());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (next, f, base) = (&next, &f, &base);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the cursor hands each index to exactly one worker
                // and `data` outlives the scope, so this is the only live
                // reference to element `i`; it is an initialized `T` only
                // lent out as `&mut T`, never moved or deinitialized.
                let v = unsafe { &mut *base.0.add(i).cast::<T>() };
                f(i, v);
            });
        }
    });
}

/// Run `f(offset, chunk)` over disjoint contiguous chunks of `data`, one
/// chunk per worker. `offset` is the chunk's start index in `data`.
pub fn par_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let threads = max_threads().min(n.max(1));
    if !cfg!(feature = "parallel") || threads <= 1 || n <= 1 {
        if n > 0 {
            f(0, data);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (k, c) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || f(k * chunk, c));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_map_matches_serial_map() {
        let serial: Vec<u64> = (0..10_000)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        let parallel = par_map(10_000, |i| (i as u64).wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_preserves_order_for_nontrivial_types() {
        let out = par_map(513, |i| format!("item-{i}"));
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("item-{i}"));
        }
    }

    #[test]
    fn par_map_edge_sizes() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 7), vec![7]);
        assert_eq!(par_map(2, |i| i * 3), vec![0, 3]);
    }

    #[test]
    fn par_map_threads_explicit_counts_agree() {
        let reference = par_map_threads(1, 4096, |i| (i * i) % 97);
        for t in [2, 3, 4, 8, 64] {
            assert_eq!(par_map_threads(t, 4096, |i| (i * i) % 97), reference);
        }
    }

    #[test]
    fn par_map_uses_at_most_the_requested_workers() {
        let seen = Mutex::new(HashSet::new());
        let _ = par_map_threads(3, 20_000, |i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            i
        });
        // 3 workers requested; the calling thread never computes items on
        // the parallel path, so at most 3 distinct ids appear.
        let distinct = seen.lock().unwrap().len();
        let cap = if cfg!(feature = "parallel") { 3 } else { 1 };
        assert!(distinct <= cap, "saw {distinct} worker threads");
    }

    #[test]
    fn par_fill_rows_matches_serial_fill() {
        // Ragged rows: row r has (r * 7) % 13 elements.
        let lens: Vec<usize> = (0..500).map(|r| (r * 7) % 13).collect();
        let mut offsets = vec![0usize];
        for l in &lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let total = *offsets.last().unwrap();
        let fill = |r: usize, row: &mut [u64]| {
            for (k, v) in row.iter_mut().enumerate() {
                *v = (r as u64) << 32 | k as u64;
            }
        };
        let mut serial = vec![0u64; total];
        for r in 0..lens.len() {
            fill(r, &mut serial[offsets[r]..offsets[r + 1]]);
        }
        let mut parallel = vec![0u64; total];
        par_fill_rows(&offsets, &mut parallel, fill);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_fill_rows_thread_counts_agree() {
        let offsets: Vec<usize> = (0..=300).map(|r| r * 3).collect();
        let fill = |r: usize, row: &mut [usize]| {
            for (k, v) in row.iter_mut().enumerate() {
                *v = r * 1000 + k;
            }
        };
        let mut reference = vec![0usize; 900];
        set_max_threads(1);
        par_fill_rows(&offsets, &mut reference, fill);
        for t in [2, 3, 8] {
            set_max_threads(t);
            let mut out = vec![0usize; 900];
            par_fill_rows(&offsets, &mut out, fill);
            assert_eq!(out, reference, "at {t} threads");
        }
        set_max_threads(0);
    }

    #[test]
    fn par_fill_rows_empty_rows_and_edges() {
        // No rows at all.
        par_fill_rows::<u8, _>(&[], &mut [], |_, _| panic!("no rows"));
        par_fill_rows::<u8, _>(&[0], &mut [], |_, _| panic!("no rows"));
        // All rows empty.
        let mut out: Vec<u8> = Vec::new();
        par_fill_rows(&[0, 0, 0, 0], &mut out, |_, row| assert!(row.is_empty()));
        // Mix of empty and non-empty rows.
        let mut out = vec![0u8; 4];
        par_fill_rows(&[0, 0, 3, 3, 4], &mut out, |r, row| {
            row.iter_mut().for_each(|v| *v = r as u8);
        });
        assert_eq!(out, vec![1, 1, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn par_fill_rows_rejects_descending_offsets() {
        let mut out = vec![0u8; 4];
        par_fill_rows(&[0, 3, 1], &mut out, |_, _| {});
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        let mut serial: Vec<Vec<u64>> = (0..257).map(|i| vec![i as u64]).collect();
        for (i, v) in serial.iter_mut().enumerate() {
            v.push((i as u64).wrapping_mul(0x9E3779B9));
        }
        let mut parallel: Vec<Vec<u64>> = (0..257).map(|i| vec![i as u64]).collect();
        par_for_each_mut(&mut parallel, |i, v| {
            v.push((i as u64).wrapping_mul(0x9E3779B9));
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_for_each_mut_thread_counts_agree() {
        let run = |threads: usize| {
            set_max_threads(threads);
            let mut data = vec![0u64; 4096];
            par_for_each_mut(&mut data, |i, v| *v = (i as u64) * 3 + 1);
            set_max_threads(0);
            data
        };
        let reference = run(1);
        for t in [2, 3, 8] {
            assert_eq!(run(t), reference, "at {t} threads");
        }
    }

    #[test]
    fn par_for_each_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| panic!("no elements expected"));
        let mut one = vec![1u8];
        par_for_each_mut(&mut one, |i, v| {
            assert_eq!(i, 0);
            *v = 7;
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 8191];
        par_chunks_mut(&mut data, |offset, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (offset + k) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1, "element {i} touched {v} times/wrong");
        }
    }

    #[test]
    fn par_chunks_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        par_chunks_mut(&mut empty, |_, _| panic!("no chunks expected"));
        let mut one = vec![5u8];
        par_chunks_mut(&mut one, |offset, chunk| {
            assert_eq!(offset, 0);
            chunk[0] = 9;
        });
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn override_round_trips() {
        set_max_threads(2);
        assert_eq!(
            max_threads(),
            if cfg!(feature = "parallel") { 2 } else { 1 }
        );
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn gather_then_fold_is_thread_count_invariant() {
        // The reduction pattern the SPH kernels rely on: map into slots,
        // fold serially. Sums of f64 are order-sensitive, so this only holds
        // because the fold order is fixed by the output Vec.
        let terms = |i: usize| 1.0f64 / (i as f64 + 1.0);
        let a: f64 = par_map_threads(1, 5000, terms).iter().sum();
        let b: f64 = par_map_threads(7, 5000, terms).iter().sum();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
