//! # pm-counters — HPE/Cray out-of-band power/energy counters
//!
//! Cray EX blades collect node power out-of-band at 10 Hz and publish it
//! through read-only sysfs files under `/sys/cray/pm_counters/`: `energy`,
//! `cpu_energy`, `memory_energy`, `accel[0-3]_energy` and the matching
//! `*_power` files (Martin, CUG 2014/2018 — the paper's refs \[18\], \[19\]).
//!
//! This crate reproduces that collector against [`archsim`] device timelines:
//!
//! * counters advance only on 10 Hz ticks (quantization a real reader sees);
//! * energy is the left-rectangle integral of 10 Hz power samples, so short
//!   spikes between ticks are missed exactly as on real blades;
//! * one `accel*` counter covers one *card* — on LUMI-G that is two GCDs,
//!   i.e. two MPI ranks share one counter (§III-B's measurement quirk);
//! * node energy includes the auxiliary draw no per-device counter covers,
//!   which is why "Other" in the paper is a *calculated* value.

pub mod rollover;
pub mod snapshot;

use std::sync::Arc;

use parking_lot::Mutex;

use archsim::{
    CpuDevice, GpuDevice, Joules, MemoryDevice, Node, NodeSpec, SimDuration, SimInstant, Watts,
};

pub use rollover::RolloverCorrector;
pub use snapshot::{capture_series, series_to_csv, PmSnapshot};

/// Default out-of-band collection rate (10 Hz).
pub const DEFAULT_SCAN_PERIOD: SimDuration = SimDuration::from_millis(100);

/// Error reading a pm_counters file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmError {
    /// The named file does not exist on this blade.
    NoSuchFile(String),
}

impl std::fmt::Display for PmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmError::NoSuchFile(name) => write!(f, "pm_counters: no such file {name:?}"),
        }
    }
}

impl std::error::Error for PmError {}

/// The out-of-band collector attached to one node.
pub struct PmCounters {
    spec: NodeSpec,
    cpu: Arc<Mutex<CpuDevice>>,
    mem: Arc<Mutex<MemoryDevice>>,
    gpus: Vec<Arc<Mutex<GpuDevice>>>,
    scan_period: SimDuration,
}

impl PmCounters {
    /// Attach the collector to a node's devices.
    pub fn attach(node: &Node) -> Self {
        PmCounters {
            spec: node.spec().clone(),
            cpu: node.cpu(),
            mem: node.mem(),
            gpus: node.gpus().to_vec(),
            scan_period: DEFAULT_SCAN_PERIOD,
        }
    }

    /// Override the collection rate (the `raw_scan_hz` file).
    pub fn with_scan_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "scan period must be positive");
        self.scan_period = period;
        self
    }

    pub fn scan_period(&self) -> SimDuration {
        self.scan_period
    }

    /// Number of `accel*` counters = physical cards.
    pub fn accel_count(&self) -> usize {
        self.spec.cards() as usize
    }

    /// Latest instant for which every attached device timeline is recorded —
    /// the newest instant a live reader can trust.
    pub fn recorded_until(&self) -> SimInstant {
        let mut t = self.cpu.lock().now().min(self.mem.lock().now());
        for g in &self.gpus {
            t = t.min(g.lock().now());
        }
        t
    }

    /// The last collection tick at or before `t`.
    pub fn tick(&self, t: SimInstant) -> SimInstant {
        let p = self.scan_period.as_nanos();
        SimInstant::from_nanos(t.as_nanos() / p * p)
    }

    /// CPU package energy counter at `t` (joules, all sockets).
    pub fn cpu_energy(&self, t: SimInstant) -> Joules {
        let until = self.tick(t);
        self.cpu
            .lock()
            .power_timeline()
            .sampled_energy(SimInstant::ZERO, until, self.scan_period)
            * f64::from(self.spec.sockets)
    }

    /// Node DRAM energy counter at `t`.
    pub fn memory_energy(&self, t: SimInstant) -> Joules {
        let until = self.tick(t);
        self.mem
            .lock()
            .power_timeline()
            .sampled_energy(SimInstant::ZERO, until, self.scan_period)
    }

    /// `accel<card>_energy` counter at `t`: sums every GCD on the card.
    pub fn accel_energy(&self, card: usize, t: SimInstant) -> Result<Joules, PmError> {
        if card >= self.accel_count() {
            return Err(PmError::NoSuchFile(format!("accel{card}_energy")));
        }
        let until = self.tick(t);
        let per_card = self.spec.gcds_per_card as usize;
        let mut e = Joules::ZERO;
        for g in &self.gpus[card * per_card..(card + 1) * per_card] {
            e +=
                g.lock()
                    .power_timeline()
                    .sampled_energy(SimInstant::ZERO, until, self.scan_period);
        }
        Ok(e)
    }

    /// All accelerator energy combined.
    pub fn total_accel_energy(&self, t: SimInstant) -> Joules {
        (0..self.accel_count())
            .map(|c| self.accel_energy(c, t).expect("card index in range"))
            .sum()
    }

    /// Node-level `energy` counter at `t`: devices plus auxiliary draw.
    pub fn node_energy(&self, t: SimInstant) -> Joules {
        let until = self.tick(t);
        self.cpu_energy(t)
            + self.memory_energy(t)
            + self.total_accel_energy(t)
            + self.spec.aux_power.energy_over(until - SimInstant::ZERO)
    }

    /// Instantaneous CPU power at the last tick.
    pub fn cpu_power(&self, t: SimInstant) -> Watts {
        self.cpu.lock().power_timeline().power_at(self.tick(t)) * f64::from(self.spec.sockets)
    }

    /// Instantaneous DRAM power at the last tick.
    pub fn memory_power(&self, t: SimInstant) -> Watts {
        self.mem.lock().power_timeline().power_at(self.tick(t))
    }

    /// `accel<card>_power` at the last tick.
    pub fn accel_power(&self, card: usize, t: SimInstant) -> Result<Watts, PmError> {
        if card >= self.accel_count() {
            return Err(PmError::NoSuchFile(format!("accel{card}_power")));
        }
        let tick = self.tick(t);
        let per_card = self.spec.gcds_per_card as usize;
        let mut p = Watts::ZERO;
        for g in &self.gpus[card * per_card..(card + 1) * per_card] {
            p += g.lock().power_timeline().power_at(tick);
        }
        Ok(p)
    }

    /// Node `power` file at the last tick.
    pub fn node_power(&self, t: SimInstant) -> Watts {
        let mut p = self.cpu_power(t) + self.memory_power(t) + self.spec.aux_power;
        for c in 0..self.accel_count() {
            p += self.accel_power(c, t).expect("card index in range");
        }
        p
    }

    /// The blade-level `power_cap` file: the sum of enforced board power
    /// limits across accelerators plus the host budget (0 = uncapped, as on
    /// the real files when no cap is set).
    pub fn power_cap(&self) -> Watts {
        let mut cap = Watts::ZERO;
        let mut any = false;
        for g in &self.gpus {
            let g = g.lock();
            if g.power_limit() < g.spec().tdp() {
                any = true;
            }
            cap += g.power_limit();
        }
        if any {
            cap + self.spec.cpu.max_power * f64::from(self.spec.sockets) + self.spec.mem.max_power
        } else {
            Watts::ZERO
        }
    }

    /// Names of every file this blade publishes.
    pub fn files(&self) -> Vec<String> {
        let mut names = vec![
            "power".to_string(),
            "power_cap".to_string(),
            "energy".to_string(),
            "cpu_power".to_string(),
            "cpu_energy".to_string(),
            "memory_power".to_string(),
            "memory_energy".to_string(),
            "generation".to_string(),
            "startup".to_string(),
            "freshness".to_string(),
            "version".to_string(),
            "raw_scan_hz".to_string(),
        ];
        for c in 0..self.accel_count() {
            names.push(format!("accel{c}_power"));
            names.push(format!("accel{c}_energy"));
        }
        names
    }

    /// Read one sysfs file's contents as of instant `t`. Values carry their
    /// unit suffix exactly like the real files (`"482 W"`, `"1288383 J"`).
    pub fn read_file(&self, name: &str, t: SimInstant) -> Result<String, PmError> {
        let fmt_j = |j: Joules| format!("{} J", j.0.round() as u64);
        let fmt_w = |w: Watts| format!("{} W", w.0.round() as u64);
        match name {
            "power" => return Ok(fmt_w(self.node_power(t))),
            "power_cap" => return Ok(fmt_w(self.power_cap())),
            "energy" => return Ok(fmt_j(self.node_energy(t))),
            "cpu_power" => return Ok(fmt_w(self.cpu_power(t))),
            "cpu_energy" => return Ok(fmt_j(self.cpu_energy(t))),
            "memory_power" => return Ok(fmt_w(self.memory_power(t))),
            "memory_energy" => return Ok(fmt_j(self.memory_energy(t))),
            "generation" => return Ok("1".into()),
            "startup" => return Ok("0".into()),
            "freshness" => {
                return Ok(format!(
                    "{}",
                    self.tick(t).as_nanos() / self.scan_period.as_nanos()
                ))
            }
            "version" => return Ok("archsim-pm 1".into()),
            "raw_scan_hz" => {
                return Ok(format!(
                    "{}",
                    (1.0 / self.scan_period.as_secs_f64()).round() as u64
                ))
            }
            _ => {}
        }
        if let Some(rest) = name.strip_prefix("accel") {
            if let Some(card_str) = rest.strip_suffix("_power") {
                if let Ok(card) = card_str.parse::<usize>() {
                    return Ok(fmt_w(self.accel_power(card, t)?));
                }
            }
            if let Some(card_str) = rest.strip_suffix("_energy") {
                if let Ok(card) = card_str.parse::<usize>() {
                    return Ok(fmt_j(self.accel_energy(card, t)?));
                }
            }
        }
        Err(PmError::NoSuchFile(name.into()))
    }

    /// Capture a serializable snapshot of every counter as of `t`.
    pub fn snapshot(&self, t: SimInstant) -> PmSnapshot {
        PmSnapshot::capture(self, t)
    }

    /// Materialize the sysfs tree on disk (post-hoc inspection; analysis
    /// scripts in the paper's workflow read these files).
    pub fn publish_to_dir(&self, dir: &std::path::Path, t: SimInstant) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for name in self.files() {
            let contents = self.read_file(&name, t).expect("listed file must read");
            std::fs::write(dir.join(name), contents + "\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{cscs_a100, lumi_g, KernelWorkload};

    fn t(ms: u64) -> SimInstant {
        SimInstant::from_nanos(ms * 1_000_000)
    }

    fn settled_node(spec: archsim::SystemSpec, until_ms: u64) -> (Node, PmCounters) {
        let node = Node::new(spec.node);
        node.settle_until(t(until_ms), 0.2, 0.3);
        let pm = PmCounters::attach(&node);
        (node, pm)
    }

    #[test]
    fn counters_quantize_to_ten_hz_ticks() {
        let (_node, pm) = settled_node(cscs_a100(), 1000);
        assert_eq!(pm.tick(t(99)), SimInstant::ZERO);
        assert_eq!(pm.tick(t(100)), t(100));
        assert_eq!(pm.tick(t(199)), t(100));
        // Energy does not advance between ticks.
        assert_eq!(pm.node_energy(t(150)), pm.node_energy(t(100)));
        assert!(pm.node_energy(t(200)) > pm.node_energy(t(100)));
    }

    #[test]
    fn lumi_publishes_four_accel_counters_for_eight_gcds() {
        let (_node, pm) = settled_node(lumi_g(), 500);
        assert_eq!(pm.accel_count(), 4);
        let files = pm.files();
        assert!(files.contains(&"accel3_energy".to_string()));
        assert!(!files.contains(&"accel4_energy".to_string()));
        assert!(pm.accel_energy(4, t(500)).is_err());
    }

    #[test]
    fn accel_counter_covers_both_gcds_of_a_card() {
        let node = Node::new(lumi_g().node);
        // Run work on GCD 0 only; its card counter must still include GCD 1's
        // idle draw.
        {
            let g0 = node.gpu(0).unwrap();
            g0.lock()
                .run_region(&KernelWorkload::new("k", 5e12, 5e11).with_activity(0.9, 0.6));
        }
        let end = node.gpu(0).unwrap().lock().now();
        node.settle_until(end.max(t(500)), 0.2, 0.3);
        let pm = PmCounters::attach(&node);
        let at = t(500);
        let card0 = pm.accel_energy(0, at).unwrap();
        let card1 = pm.accel_energy(1, at).unwrap();
        assert!(
            card0 > card1,
            "busy card must read higher: {card0} vs {card1}"
        );
        // Both ranks of card 0 would see the same (combined) number — the
        // §III-B measurement ambiguity.
        assert!(card1.0 > 0.0, "idle GCDs still draw");
    }

    #[test]
    fn node_energy_includes_auxiliary_draw() {
        let (node, pm) = settled_node(cscs_a100(), 1000);
        let at = t(1000);
        let devices = pm.cpu_energy(at) + pm.memory_energy(at) + pm.total_accel_energy(at);
        let node_e = pm.node_energy(at);
        let aux = node_e - devices;
        let expected_aux = node.spec().aux_power.energy_over(SimDuration::from_secs(1));
        assert!((aux.0 - expected_aux.0).abs() < 1e-6);
    }

    #[test]
    fn files_read_with_unit_suffixes() {
        let (_node, pm) = settled_node(cscs_a100(), 500);
        let e = pm.read_file("energy", t(500)).unwrap();
        assert!(e.ends_with(" J"), "got {e:?}");
        let p = pm.read_file("cpu_power", t(500)).unwrap();
        assert!(p.ends_with(" W"), "got {p:?}");
        assert_eq!(pm.read_file("raw_scan_hz", t(0)).unwrap(), "10");
        assert!(matches!(
            pm.read_file("accel9_energy", t(0)),
            Err(PmError::NoSuchFile(_))
        ));
        assert!(matches!(
            pm.read_file("nonsense", t(0)),
            Err(PmError::NoSuchFile(_))
        ));
    }

    #[test]
    fn every_listed_file_is_readable() {
        let (_node, pm) = settled_node(lumi_g(), 300);
        for f in pm.files() {
            assert!(pm.read_file(&f, t(300)).is_ok(), "file {f} unreadable");
        }
    }

    #[test]
    fn sampled_energy_close_to_exact_for_steady_load() {
        let (node, pm) = settled_node(cscs_a100(), 2000);
        let at = t(2000);
        let exact = node.node_energy(SimInstant::ZERO, at);
        let counted = pm.node_energy(at);
        let rel = (exact.0 - counted.0).abs() / exact.0;
        assert!(rel < 0.01, "10 Hz sampling error too large: {rel}");
    }

    #[test]
    fn publish_to_dir_writes_sysfs_tree() {
        let (_node, pm) = settled_node(cscs_a100(), 200);
        let dir = std::env::temp_dir().join("pm_counters_test_sysfs");
        let _ = std::fs::remove_dir_all(&dir);
        pm.publish_to_dir(&dir, t(200)).unwrap();
        let energy = std::fs::read_to_string(dir.join("energy")).unwrap();
        assert!(energy.trim().ends_with("J"));
        assert!(dir.join("accel0_power").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn power_cap_file_reflects_board_limits() {
        let node = Node::new(cscs_a100().node);
        node.settle_until(t(100), 0.1, 0.1);
        let pm = PmCounters::attach(&node);
        // Uncapped: file reads 0 W, matching real blades with no cap.
        assert_eq!(pm.read_file("power_cap", t(100)).unwrap(), "0 W");
        // Cap one GPU (privileged path: unlock, set, relock).
        {
            let g = node.gpu(0).unwrap();
            let mut g = g.lock();
            g.unlock_clock_control();
            g.set_power_limit(archsim::Watts(300.0)).unwrap();
            g.lock_clock_control();
        }
        let cap = pm.power_cap();
        assert!(cap.0 > 0.0);
        // 300 + 3x400 (uncapped GPUs) + 225 CPU + 90 mem = 1815 W.
        assert!((cap.0 - 1815.0).abs() < 1e-9, "cap {cap}");
        assert!(pm.files().contains(&"power_cap".to_string()));
    }

    #[test]
    fn custom_scan_period_changes_quantization() {
        let node = Node::new(cscs_a100().node);
        node.settle_until(t(1000), 0.2, 0.3);
        let pm = PmCounters::attach(&node).with_scan_period(SimDuration::from_millis(250));
        assert_eq!(pm.tick(t(499)), t(250));
        assert_eq!(pm.read_file("raw_scan_hz", t(0)).unwrap(), "4");
    }
}
