//! Counter-rollover correction for cumulative energy registers.
//!
//! Real acquisition counters (`pm_counters` energy files, NVML's
//! `totalEnergyConsumption`) are fixed-width registers that wrap; the
//! companion measurement paper (arXiv:2312.05102) validates raw counters
//! against Slurm accounting precisely because of drops and rollovers. This
//! corrector reconstructs the monotone cumulative value from raw readings
//! under the standard assumption of at most one wrap per read interval.

/// Reconstructs a monotone cumulative counter from raw modulo-`modulus`
/// register readings.
#[derive(Debug, Clone)]
pub struct RolloverCorrector {
    modulus: f64,
    last_raw: f64,
    wraps: u64,
}

impl RolloverCorrector {
    /// A corrector for a register that wraps at `modulus` (must be
    /// positive).
    pub fn new(modulus: f64) -> Self {
        assert!(modulus > 0.0, "rollover modulus must be positive");
        RolloverCorrector {
            modulus,
            last_raw: 0.0,
            wraps: 0,
        }
    }

    /// Feed the next raw register reading; returns the corrected cumulative
    /// value and whether a wrap was detected at this reading. Correct as
    /// long as the counter wraps at most once between consecutive reads.
    pub fn correct(&mut self, raw: f64) -> (f64, bool) {
        let wrapped = raw < self.last_raw;
        if wrapped {
            self.wraps += 1;
        }
        self.last_raw = raw;
        (raw + self.wraps as f64 * self.modulus, wrapped)
    }

    /// Wraps detected so far.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// The register's wrap modulus.
    pub fn modulus(&self) -> f64 {
        self.modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_input_passes_through() {
        let mut c = RolloverCorrector::new(100.0);
        for raw in [0.0, 10.0, 55.0, 99.9] {
            let (v, wrapped) = c.correct(raw);
            assert_eq!(v, raw);
            assert!(!wrapped);
        }
        assert_eq!(c.wraps(), 0);
    }

    #[test]
    fn wrap_is_detected_and_corrected_exactly() {
        let mut c = RolloverCorrector::new(100.0);
        c.correct(80.0);
        let (v, wrapped) = c.correct(5.0); // true cumulative 105
        assert!(wrapped);
        assert_eq!(v, 105.0);
        let (v, wrapped) = c.correct(60.0); // true cumulative 160
        assert!(!wrapped);
        assert_eq!(v, 160.0);
        assert_eq!(c.wraps(), 1);
    }

    #[test]
    fn multiple_wraps_accumulate() {
        let mut c = RolloverCorrector::new(50.0);
        // True cumulative climbs 0..=170 in steps small enough for ≤ 1 wrap
        // per read.
        for true_val in (0..=170).step_by(20) {
            let raw = f64::from(true_val) % 50.0;
            let (v, _) = c.correct(raw);
            assert!((v - f64::from(true_val)).abs() < 1e-9, "at {true_val}");
        }
        assert_eq!(c.wraps(), 3); // 170 / 50
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_modulus_rejected() {
        let _ = RolloverCorrector::new(0.0);
    }
}
