//! Serializable point-in-time capture of a blade's pm_counters.

use serde::{Deserialize, Serialize};

use archsim::SimInstant;

use crate::PmCounters;

/// Every counter value as of one collection tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PmSnapshot {
    /// The tick the values correspond to (nanoseconds of virtual time).
    pub tick_ns: u64,
    pub node_power_w: f64,
    pub node_energy_j: f64,
    pub cpu_power_w: f64,
    pub cpu_energy_j: f64,
    pub memory_power_w: f64,
    pub memory_energy_j: f64,
    /// Per-card accelerator power, `accel<i>_power`.
    pub accel_power_w: Vec<f64>,
    /// Per-card accelerator energy, `accel<i>_energy`.
    pub accel_energy_j: Vec<f64>,
}

impl PmSnapshot {
    /// Capture all counters of `pm` as of instant `t`.
    pub fn capture(pm: &PmCounters, t: SimInstant) -> Self {
        let cards = pm.accel_count();
        PmSnapshot {
            tick_ns: pm.tick(t).as_nanos(),
            node_power_w: pm.node_power(t).0,
            node_energy_j: pm.node_energy(t).0,
            cpu_power_w: pm.cpu_power(t).0,
            cpu_energy_j: pm.cpu_energy(t).0,
            memory_power_w: pm.memory_power(t).0,
            memory_energy_j: pm.memory_energy(t).0,
            accel_power_w: (0..cards)
                .map(|c| pm.accel_power(c, t).expect("card in range").0)
                .collect(),
            accel_energy_j: (0..cards)
                .map(|c| pm.accel_energy(c, t).expect("card in range").0)
                .collect(),
        }
    }

    /// Total accelerator energy across cards.
    pub fn total_accel_energy_j(&self) -> f64 {
        self.accel_energy_j.iter().sum()
    }

    /// The "Other" share the paper computes by subtraction: node minus CPU,
    /// memory and accelerators.
    pub fn other_energy_j(&self) -> f64 {
        self.node_energy_j - self.cpu_energy_j - self.memory_energy_j - self.total_accel_energy_j()
    }
}

/// Capture one snapshot per collection tick over `[from, to]` — the raw
/// series an out-of-band monitoring pipeline stores.
pub fn capture_series(pm: &crate::PmCounters, from: SimInstant, to: SimInstant) -> Vec<PmSnapshot> {
    let period = pm.scan_period();
    let mut out = Vec::new();
    let mut t = pm.tick(from);
    let end = pm.tick(to);
    while t <= end {
        out.push(PmSnapshot::capture(pm, t));
        t += period;
    }
    out
}

/// Render a snapshot series as CSV (one row per tick).
pub fn series_to_csv(series: &[PmSnapshot]) -> String {
    let cards = series.first().map_or(0, |s| s.accel_power_w.len());
    let mut out = String::from("t_s,node_w,node_j,cpu_w,cpu_j,mem_w,mem_j");
    for c in 0..cards {
        out.push_str(&format!(",accel{c}_w,accel{c}_j"));
    }
    out.push('\n');
    for s in series {
        out.push_str(&format!(
            "{:.3},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
            s.tick_ns as f64 * 1e-9,
            s.node_power_w,
            s.node_energy_j,
            s.cpu_power_w,
            s.cpu_energy_j,
            s.memory_power_w,
            s.memory_energy_j
        ));
        for c in 0..cards {
            out.push_str(&format!(
                ",{:.1},{:.1}",
                s.accel_power_w[c], s.accel_energy_j[c]
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use archsim::{lumi_g, Node, SimDuration};

    #[test]
    fn series_covers_every_tick_and_energy_is_monotone() {
        let node = Node::new(lumi_g().node);
        let end = SimInstant::ZERO + SimDuration::from_secs(1);
        node.settle_until(end, 0.2, 0.3);
        let pm = PmCounters::attach(&node);
        let series = capture_series(&pm, SimInstant::ZERO, end);
        assert_eq!(series.len(), 11, "0.0 .. 1.0 s at 10 Hz inclusive");
        assert!(series
            .windows(2)
            .all(|w| w[1].node_energy_j >= w[0].node_energy_j));
        let csv = series_to_csv(&series);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 12);
        assert!(
            lines[0].contains("accel3_w"),
            "4 cards on LUMI-G: {}",
            lines[0]
        );
    }

    #[test]
    fn snapshot_matches_direct_reads_and_other_is_positive() {
        let node = Node::new(lumi_g().node);
        let end = SimInstant::ZERO + SimDuration::from_secs(2);
        node.settle_until(end, 0.2, 0.3);
        let pm = PmCounters::attach(&node);
        let s = pm.snapshot(end);
        assert_eq!(s.tick_ns, end.as_nanos());
        assert_eq!(s.accel_energy_j.len(), 4);
        assert!((s.node_energy_j - pm.node_energy(end).0).abs() < 1e-9);
        // Auxiliary draw means "Other" must be strictly positive.
        assert!(s.other_energy_j() > 0.0);
        // Round-trips through serde (serde_json floats are approximate
        // without the `float_roundtrip` feature, so compare with tolerance).
        let json = serde_json::to_string(&s).unwrap();
        let back: PmSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tick_ns, s.tick_ns);
        assert!((back.node_energy_j - s.node_energy_j).abs() < 1e-6);
        assert!((back.other_energy_j() - s.other_energy_j()).abs() < 1e-6);
    }
}
