//! PMT backends: NVML, rocm-smi, RAPL, Cray pm_counters, and Dummy.
//!
//! Like upstream PMT, each backend adapts one vendor interface to the common
//! [`PowerSensor`] trait so instrumented application code never changes when
//! the machine under it does.

use std::sync::Arc;

use parking_lot::Mutex;

use archsim::{CpuDevice, GpuDevice, Joules, MemoryDevice, SimDuration, SimInstant, Watts};
use nvml_shim::NvmlDevice;
use pm_counters::PmCounters;

use crate::sensor::{PowerSensor, SensorKind};

/// NVML backend: watches one Nvidia GPU through its device handle.
pub struct NvmlSensor {
    index: usize,
    device: Arc<Mutex<GpuDevice>>,
}

impl NvmlSensor {
    pub fn new(device: &NvmlDevice) -> Self {
        NvmlSensor {
            index: device.index(),
            device: device.raw(),
        }
    }

    /// Attach directly to a simulated device (bypassing the shim).
    pub fn from_raw(index: usize, device: Arc<Mutex<GpuDevice>>) -> Self {
        NvmlSensor { index, device }
    }
}

impl PowerSensor for NvmlSensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Gpu
    }

    fn label(&self) -> String {
        format!("nvml:{}", self.index)
    }

    fn now(&self) -> SimInstant {
        self.device.lock().now()
    }

    fn power_now(&self) -> Watts {
        self.device.lock().power_timeline().last_power()
    }

    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.device.lock().energy_between(a, b)
    }

    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules {
        self.device
            .lock()
            .power_timeline()
            .sampled_energy(a, b, period)
    }
}

/// rocm-smi backend: watches one AMD GCD. Identical mechanics to NVML —
/// only the label differs, mirroring PMT's thin backend layers.
pub struct RocmSensor {
    index: usize,
    device: Arc<Mutex<GpuDevice>>,
}

impl RocmSensor {
    pub fn new(index: usize, device: Arc<Mutex<GpuDevice>>) -> Self {
        RocmSensor { index, device }
    }
}

impl PowerSensor for RocmSensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Gpu
    }

    fn label(&self) -> String {
        format!("rocm:{}", self.index)
    }

    fn now(&self) -> SimInstant {
        self.device.lock().now()
    }

    fn power_now(&self) -> Watts {
        self.device.lock().power_timeline().last_power()
    }

    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.device.lock().energy_between(a, b)
    }

    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules {
        self.device
            .lock()
            .power_timeline()
            .sampled_energy(a, b, period)
    }
}

/// RAPL backend: package-level CPU energy. All ranks on a node read the same
/// package counter — the paper's note that "all MPI ranks on the same node
/// report the same energy measurement" (§III-B).
pub struct RaplSensor {
    sockets: u32,
    cpu: Arc<Mutex<CpuDevice>>,
}

impl RaplSensor {
    pub fn new(cpu: Arc<Mutex<CpuDevice>>, sockets: u32) -> Self {
        RaplSensor { cpu, sockets }
    }
}

impl PowerSensor for RaplSensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Cpu
    }

    fn label(&self) -> String {
        format!("rapl:package*{}", self.sockets)
    }

    fn now(&self) -> SimInstant {
        self.cpu.lock().now()
    }

    fn power_now(&self) -> Watts {
        self.cpu.lock().power_timeline().last_power() * f64::from(self.sockets)
    }

    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.cpu.lock().energy_between(a, b) * f64::from(self.sockets)
    }

    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules {
        self.cpu
            .lock()
            .power_timeline()
            .sampled_energy(a, b, period)
            * f64::from(self.sockets)
    }
}

/// DRAM sensor (RAPL's DRAM domain).
pub struct DramSensor {
    mem: Arc<Mutex<MemoryDevice>>,
}

impl DramSensor {
    pub fn new(mem: Arc<Mutex<MemoryDevice>>) -> Self {
        DramSensor { mem }
    }
}

impl PowerSensor for DramSensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Memory
    }

    fn label(&self) -> String {
        "rapl:dram".into()
    }

    fn now(&self) -> SimInstant {
        self.mem.lock().now()
    }

    fn power_now(&self) -> Watts {
        self.mem.lock().power_timeline().last_power()
    }

    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.mem.lock().energy_between(a, b)
    }

    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, period: SimDuration) -> Joules {
        self.mem
            .lock()
            .power_timeline()
            .sampled_energy(a, b, period)
    }
}

/// Cray backend: whole-node energy through pm_counters. Natively 10 Hz
/// quantized — `sampled_energy_between` ignores the caller's period.
pub struct CraySensor {
    pm: PmCounters,
}

impl CraySensor {
    pub fn new(pm: PmCounters) -> Self {
        CraySensor { pm }
    }

    /// The underlying counters (for per-device breakdowns).
    pub fn counters(&self) -> &PmCounters {
        &self.pm
    }
}

impl PowerSensor for CraySensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Node
    }

    fn label(&self) -> String {
        "cray:pm_counters".into()
    }

    fn now(&self) -> SimInstant {
        self.pm.recorded_until()
    }

    fn power_now(&self) -> Watts {
        self.pm.node_power(self.now())
    }

    fn energy_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        if b <= a {
            return Joules::ZERO;
        }
        self.pm.node_energy(b) - self.pm.node_energy(a)
    }

    fn sampled_energy_between(&self, a: SimInstant, b: SimInstant, _period: SimDuration) -> Joules {
        self.energy_between(a, b)
    }
}

/// Dummy backend: reads zero forever. PMT ships one for exactly this purpose —
/// keeping instrumentation compiled in on machines with no sensors.
#[derive(Default)]
pub struct DummySensor {
    now: SimInstant,
}

impl DummySensor {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PowerSensor for DummySensor {
    fn kind(&self) -> SensorKind {
        SensorKind::Dummy
    }

    fn label(&self) -> String {
        "dummy".into()
    }

    fn now(&self) -> SimInstant {
        self.now
    }

    fn power_now(&self) -> Watts {
        Watts::ZERO
    }

    fn energy_between(&self, _a: SimInstant, _b: SimInstant) -> Joules {
        Joules::ZERO
    }

    fn sampled_energy_between(&self, _a: SimInstant, _b: SimInstant, _p: SimDuration) -> Joules {
        Joules::ZERO
    }
}
