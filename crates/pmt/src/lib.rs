//! # pmt — Power Measurement Toolkit
//!
//! Reproduction of PMT (Corda, Veenboer, Tolley — HUST 2022, the paper's
//! ref. \[4\]): one measurement interface over many vendor back-ends, so that
//! instrumented application code is portable across CPU+GPU architectures.
//!
//! * [`PowerSensor`] — the common trait; [`backends`] provides NVML,
//!   rocm-smi, RAPL (package + DRAM), Cray pm_counters and Dummy.
//! * [`Pmt`] — a handle with cumulative-energy state: `read()` returns a
//!   [`State`]; [`seconds`]/[`joules`]/[`watts`] combine two states.
//! * [`Pmt::dump_samples`]/[`Pmt::write_dump`] — the async dump-thread
//!   equivalent: a fixed-rate power trace for post-hoc analysis.
//!
//! ```
//! use archsim::{GpuDevice, GpuSpec, KernelWorkload};
//! use parking_lot::Mutex;
//! use pmt::{backends::NvmlSensor, joules, seconds, Pmt};
//! use std::sync::Arc;
//!
//! let gpu = Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_pcie_40gb())));
//! let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&gpu))));
//! let start = pmt.read();
//! gpu.lock().run_region(&KernelWorkload::new("Density", 1e12, 2e11));
//! let end = pmt.read();
//! assert!(joules(&start, &end).0 > 0.0);
//! assert!(seconds(&start, &end) > 0.0);
//! ```

pub mod backends;
pub mod sensor;

use archsim::{Joules, SimDuration, SimInstant, Watts};

pub use sensor::{joules, seconds, watts, PowerSensor, SensorKind, State};

/// A PMT instance: one sensor plus cumulative-energy bookkeeping.
///
/// Reads are expected to be (weakly) monotonic in device time; the cumulative
/// counter advances incrementally so a long run costs O(total segments), not
/// O(reads × segments).
pub struct Pmt {
    sensor: Box<dyn PowerSensor>,
    last_read: SimInstant,
    cumulative: Joules,
}

impl Pmt {
    /// Wrap a backend sensor.
    pub fn new(sensor: Box<dyn PowerSensor>) -> Self {
        Pmt {
            sensor,
            last_read: SimInstant::ZERO,
            cumulative: Joules::ZERO,
        }
    }

    /// Backend kind.
    pub fn kind(&self) -> SensorKind {
        self.sensor.kind()
    }

    /// Backend label, e.g. `"nvml:0"`.
    pub fn label(&self) -> String {
        self.sensor.label()
    }

    /// Take a measurement at the device's current instant.
    pub fn read(&mut self) -> State {
        let t = self.sensor.now();
        if t > self.last_read {
            self.cumulative += self.sensor.energy_between(self.last_read, t);
            self.last_read = t;
        }
        State {
            timestamp: t,
            watts: self.sensor.power_now(),
            joules: self.cumulative,
        }
    }

    /// Exact energy over an explicit window (post-hoc analysis).
    pub fn joules_between(&self, a: SimInstant, b: SimInstant) -> Joules {
        self.sensor.energy_between(a, b)
    }

    /// Energy over a window as estimated by polling at `period` — the
    /// sampling-rate ablation hook.
    pub fn sampled_joules_between(
        &self,
        a: SimInstant,
        b: SimInstant,
        period: SimDuration,
    ) -> Joules {
        self.sensor.sampled_energy_between(a, b, period)
    }

    /// Fixed-rate power trace over `[from, to]` — what PMT's dump thread
    /// writes while the application runs.
    pub fn dump_samples(
        &self,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> Vec<(SimInstant, Watts)> {
        assert!(!period.is_zero(), "dump period must be positive");
        let mut out = Vec::new();
        let mut t = from;
        loop {
            let w = self
                .sensor
                .energy_between(t, t + period)
                .average_power(period);
            out.push((t, w));
            if t >= to {
                break;
            }
            t += period;
        }
        out
    }

    /// Write a dump trace as TSV (`virtual_seconds\twatts`), the shape PMT's
    /// dump files have.
    pub fn write_dump(
        &self,
        path: &std::path::Path,
        from: SimInstant,
        to: SimInstant,
        period: SimDuration,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            f,
            "# pmt dump sensor={} period_s={}",
            self.label(),
            period.as_secs_f64()
        )?;
        for (t, w) in self.dump_samples(from, to, period) {
            writeln!(f, "{:.6}\t{:.3}", t.as_secs_f64(), w.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::backends::*;
    use super::*;
    use archsim::{cscs_a100, GpuDevice, GpuSpec, KernelWorkload, MegaHertz, Node};
    use parking_lot::Mutex;
    use pm_counters::PmCounters;
    use std::sync::Arc;

    fn gpu() -> Arc<Mutex<GpuDevice>> {
        Arc::new(Mutex::new(GpuDevice::new(0, GpuSpec::a100_sxm4_80gb())))
    }

    fn work() -> KernelWorkload {
        KernelWorkload::new("MomentumEnergy", 1e12, 1e11).with_activity(0.9, 0.6)
    }

    #[test]
    fn cumulative_energy_is_monotone_across_reads() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        let s0 = pmt.read();
        g.lock().run_region(&work());
        let s1 = pmt.read();
        g.lock().run_region(&work());
        let s2 = pmt.read();
        assert!(s0.joules <= s1.joules);
        assert!(s1.joules < s2.joules);
        // Region deltas add up to the total.
        let total = joules(&s0, &s2);
        let parts = joules(&s0, &s1) + joules(&s1, &s2);
        assert!((total.0 - parts.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_reads_match_direct_integral() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        let s0 = pmt.read();
        for _ in 0..5 {
            g.lock().run_region(&work());
            pmt.read();
        }
        let s_end = pmt.read();
        let direct = g.lock().energy_between(s0.timestamp, s_end.timestamp);
        assert!((joules(&s0, &s_end).0 - direct.0).abs() < 1e-9);
    }

    #[test]
    fn rapl_scales_by_sockets() {
        let node = Node::new(archsim::mini_hpc().node); // 2 sockets
        let end = SimInstant::from_nanos(1_000_000_000);
        node.settle_until(end, 0.5, 0.2);
        let one = Pmt::new(Box::new(RaplSensor::new(node.cpu(), 1)));
        let two = Pmt::new(Box::new(RaplSensor::new(node.cpu(), 2)));
        let e1 = one.joules_between(SimInstant::ZERO, end);
        let e2 = two.joules_between(SimInstant::ZERO, end);
        assert!((e2.0 - 2.0 * e1.0).abs() < 1e-9);
    }

    #[test]
    fn cray_backend_reads_whole_node_quantized() {
        let node = Node::new(cscs_a100().node);
        let end = SimInstant::from_nanos(1_050_000_000); // 1.05 s
        node.settle_until(end, 0.2, 0.3);
        let mut pmt = Pmt::new(Box::new(CraySensor::new(PmCounters::attach(&node))));
        let s = pmt.read();
        // Node-level reading includes aux; must exceed any single GPU's idle.
        assert!(s.joules.0 > 0.0);
        assert_eq!(pmt.kind(), SensorKind::Node);
        // Quantized to the last 10 Hz tick: energy at 1.04s equals at 1.0s.
        let e_a = pmt.joules_between(SimInstant::ZERO, SimInstant::from_nanos(1_000_000_000));
        let e_b = pmt.joules_between(SimInstant::ZERO, SimInstant::from_nanos(1_040_000_000));
        assert_eq!(e_a.0, e_b.0);
    }

    #[test]
    fn dummy_backend_reads_zero() {
        let mut pmt = Pmt::new(Box::new(DummySensor::new()));
        let s = pmt.read();
        assert_eq!(s.watts, Watts::ZERO);
        assert_eq!(s.joules, Joules::ZERO);
    }

    #[test]
    fn sampled_energy_converges_to_exact_with_finer_period() {
        let g = gpu();
        g.lock().set_application_clocks(MegaHertz(1410)).unwrap();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        for _ in 0..10 {
            g.lock().run_region(&work());
            g.lock().advance_idle(SimDuration::from_millis(1));
        }
        let end = pmt.read().timestamp;
        let exact = pmt.joules_between(SimInstant::ZERO, end);
        let coarse =
            pmt.sampled_joules_between(SimInstant::ZERO, end, SimDuration::from_millis(100));
        let fine = pmt.sampled_joules_between(SimInstant::ZERO, end, SimDuration::from_micros(50));
        let err_coarse = (coarse.0 - exact.0).abs() / exact.0;
        let err_fine = (fine.0 - exact.0).abs() / exact.0;
        assert!(
            err_fine <= err_coarse + 1e-12,
            "finer sampling must not be worse"
        );
        assert!(
            err_fine < 0.01,
            "fine sampling should be near-exact: {err_fine}"
        );
    }

    #[test]
    fn dump_trace_has_expected_length_and_positive_power() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        g.lock().run_region(&work());
        let end = pmt.read().timestamp;
        let samples = pmt.dump_samples(SimInstant::ZERO, end, SimDuration::from_millis(1));
        assert!(!samples.is_empty());
        assert!(samples.iter().any(|(_, w)| w.0 > 0.0));
    }

    #[test]
    fn write_dump_produces_tsv() {
        let g = gpu();
        let mut pmt = Pmt::new(Box::new(NvmlSensor::from_raw(0, Arc::clone(&g))));
        g.lock().run_region(&work());
        let end = pmt.read().timestamp;
        let path = std::env::temp_dir().join("pmt_dump_test.tsv");
        pmt.write_dump(&path, SimInstant::ZERO, end, SimDuration::from_millis(1))
            .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("# pmt dump sensor=nvml:0"));
        assert!(contents.lines().count() > 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rocm_and_dram_sensors_label_correctly() {
        let node = Node::new(archsim::lumi_g().node);
        let rocm = RocmSensor::new(3, node.gpu(3).unwrap());
        assert_eq!(rocm.label(), "rocm:3");
        assert_eq!(rocm.kind(), SensorKind::Gpu);
        let dram = DramSensor::new(node.mem());
        assert_eq!(dram.label(), "rapl:dram");
        assert_eq!(dram.kind(), SensorKind::Memory);
    }
}
